// Experiment X7: batch-at-a-time vs tuple-at-a-time physical execution,
// extended with the morsel-driven parallel pipeline (X7b). Drives the
// same scan+select plan (extent scan over ~100k Paragraph objects,
// predicate on a stored property) through the row pipeline (Next), the
// vectorized pipeline (NextBatch) and the parallel driver at a sweep of
// thread counts, and reports throughput plus the batch/row and
// parallel/serial speedups. Acceptance bars: >= 2x for batch over row,
// and >= 2x at threads=4 over threads=1 (on hardware with >= 4 cores;
// the JSON records hardware_concurrency so single-core CI runs are
// interpretable).
//
// A second section (X8) measures the set-at-a-time method ABI on the
// paper's own workload shape — WHERE clauses calling external methods:
// the IR predicate `p->contains_string(s)` (batch dispatch amortizes
// the content-column read and query tokenization) and the IR retrieval
// `p IS-IN Paragraph->retrieve_by_string(s)` (batch dispatch dedups the
// constant argument into ONE postings intersection per ~1024-row batch,
// where the row pipeline probes the index once per row). The method
// corpus is capped (--method-docs) because the row-mode probe storm is
// quadratic-ish in corpus size; the JSON records the probe counts so
// the amortization is checkable, not just the wall clock.
//
// A third section (X9) measures the selection-vector pipeline on a
// multi-predicate selection chain (map + three stacked filters, the
// shape the semantic optimizer's derived predicates produce): the
// marking pipeline (filters intersect the batch's selection vector,
// density restored once at the drain boundary) against the compacting
// baseline (ExecContext::filter_compacts — every filter physically
// moves the survivors). Both wall clock and the BatchCopyStats value
// move/copy counters are recorded, so the copy-tax claim is checkable;
// scripts/ci.sh fails when the selection path regresses to more copies
// than rows.
//
// Flags: --docs=N        corpus size in documents (default 8350 ->
//                        ~100k paragraphs, 3 sections x 4 paragraphs)
//        --method-docs=N corpus size for the method workloads
//                        (default min(docs, 800))
//        --reps=N        timed repetitions per mode (default 5)
//        --json=PATH     machine-readable scan+parallel results
//        --json-method=PATH machine-readable method-ABI results
//        --json-selvec=PATH machine-readable selection-chain results
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algebra/translate.h"
#include "bench_util.h"
#include "common/copy_stats.h"
#include "exec/parallel.h"
#include "exec/physical.h"
#include "vql/parser.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct PlanFixture {
  std::unique_ptr<algebra::AlgebraContext> ctx;
  algebra::LogicalRef plan;
  exec::ExecContext exec_ctx;
};

PlanFixture MakePlan(workload::DocumentDb* db, const std::string& vql) {
  PlanFixture fixture;
  fixture.ctx =
      std::make_unique<algebra::AlgebraContext>(&db->catalog());
  auto query = vql::ParseQuery(vql);
  VODAK_CHECK(query.ok()) << query.status().ToString();
  vql::Binder binder(&db->catalog());
  auto bound = binder.Bind(query.value());
  VODAK_CHECK(bound.ok()) << bound.status().ToString();
  auto plan = algebra::TranslateQuery(*fixture.ctx, bound.value());
  VODAK_CHECK(plan.ok()) << plan.status().ToString();
  fixture.plan = plan.value();
  fixture.exec_ctx =
      exec::ExecContext{&db->catalog(), &db->store(), &db->methods()};
  return fixture;
}

/// One timed drain through the chosen pipeline; returns (elapsed ms,
/// rows emitted by the plan root).
std::pair<double, size_t> RunOnce(const PlanFixture& fixture,
                                  exec::ExecMode mode) {
  auto phys = exec::BuildPhysical(fixture.plan, fixture.exec_ctx);
  VODAK_CHECK(phys.ok()) << phys.status().ToString();
  exec::PhysOperator* root = phys.value().get();
  size_t rows = 0;
  auto start = std::chrono::steady_clock::now();
  VODAK_CHECK(root->Open().ok());
  if (mode == exec::ExecMode::kRow) {
    exec::Row row;
    for (;;) {
      auto more = root->Next(&row);
      VODAK_CHECK(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      ++rows;
    }
  } else {
    exec::RowBatch batch;
    for (;;) {
      auto more = root->NextBatch(&batch);
      VODAK_CHECK(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      rows += batch.active_rows();  // filters emit selected batches
    }
  }
  root->Close();
  return {MsSince(start), rows};
}

/// One timed drain through the morsel-driven parallel driver (threads=1
/// degenerates to the serial batch pipeline inside the driver).
std::pair<double, size_t> RunParallelOnce(const PlanFixture& fixture,
                                          size_t threads,
                                          exec::WorkerPool* pool) {
  exec::ParallelOptions options;
  options.threads = threads;
  options.pool = pool;
  auto start = std::chrono::steady_clock::now();
  auto rows = exec::ParallelDrainRows(fixture.plan, fixture.exec_ctx,
                                      options);
  double ms = MsSince(start);
  VODAK_CHECK(rows.ok()) << rows.status().ToString();
  return {ms, rows.value().size()};
}

struct ParallelPoint {
  size_t threads = 0;
  double ms = 0.0;
  double mrows_per_s = 0.0;
  double speedup_vs_threads1 = 0.0;
};

/// Row-vs-batch timings for one method-ABI workload, plus the external
/// index probe counts that prove the set-at-a-time amortization.
struct MethodPoint {
  const char* key = "";
  const char* vql = "";
  double row_ms = 0.0;
  double batch_ms = 0.0;
  size_t hits = 0;
  uint64_t probes_row = 0;    // IR searches during one row drain
  uint64_t probes_batch = 0;  // IR searches during one batch drain
};

/// Times one method workload through both pipelines and records the IR
/// probe counts of a single drain of each.
MethodPoint RunMethodWorkload(workload::DocumentDb* db, const char* key,
                              const char* vql, int reps) {
  MethodPoint point;
  point.key = key;
  point.vql = vql;
  PlanFixture fixture = MakePlan(db, vql);
  db->ResetCounters();
  auto warm_row = RunOnce(fixture, exec::ExecMode::kRow);
  point.probes_row = db->paragraph_index().search_count();
  db->ResetCounters();
  auto warm_batch = RunOnce(fixture, exec::ExecMode::kBatch);
  point.probes_batch = db->paragraph_index().search_count();
  VODAK_CHECK(warm_row.second == warm_batch.second)
      << key << ": row/batch cardinality mismatch: " << warm_row.second
      << " vs " << warm_batch.second;
  point.hits = warm_row.second;
  for (int r = 0; r < reps; ++r) {
    point.row_ms += RunOnce(fixture, exec::ExecMode::kRow).first;
    point.batch_ms += RunOnce(fixture, exec::ExecMode::kBatch).first;
  }
  point.row_ms /= reps;
  point.batch_ms /= reps;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 8350;
  uint32_t method_docs = 0;  // 0 = min(docs, 800)
  int reps = 5;
  std::string json_path;
  std::string json_method_path;
  std::string json_selvec_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--method-docs=", 14) == 0) {
      method_docs = static_cast<uint32_t>(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--json-method=", 14) == 0) {
      json_method_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--json-selvec=", 14) == 0) {
      json_selvec_path = argv[i] + 14;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--docs=N] [--method-docs=N] [--reps=N] "
                   "[--json=PATH] [--json-method=PATH] "
                   "[--json-selvec=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (method_docs == 0) method_docs = docs < 800 ? docs : 800;

  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 8;  // keep corpus build cheap
  params.vocabulary_size = 200;
  const size_t num_paragraphs = static_cast<size_t>(docs) * 3 * 4;

  std::printf("building corpus: %u documents, %zu paragraphs...\n", docs,
              num_paragraphs);
  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  VODAK_CHECK(db.Populate(params).ok());

  // Scan + select on a stored property; translates to
  // Filter(p.number >= 1) over ExtentScan(Paragraph).
  PlanFixture fixture = MakePlan(
      &db, "ACCESS p FROM p IN Paragraph WHERE p.number >= 1");

  // Warm-up (also validates that both modes agree on the result).
  auto warm_row = RunOnce(fixture, exec::ExecMode::kRow);
  auto warm_batch = RunOnce(fixture, exec::ExecMode::kBatch);
  VODAK_CHECK(warm_row.second == warm_batch.second)
      << "row/batch cardinality mismatch: " << warm_row.second << " vs "
      << warm_batch.second;

  double row_ms = 0.0;
  double batch_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    row_ms += RunOnce(fixture, exec::ExecMode::kRow).first;
    batch_ms += RunOnce(fixture, exec::ExecMode::kBatch).first;
  }
  row_ms /= reps;
  batch_ms /= reps;

  const double row_mrows =
      num_paragraphs / row_ms / 1000.0;  // million rows/s
  const double batch_mrows = num_paragraphs / batch_ms / 1000.0;
  std::printf("workload: scan+select over %zu paragraphs, %zu hits\n",
              num_paragraphs, warm_row.second);
  std::printf("row-at-a-time   (Next):      %8.2f ms  %6.2f Mrows/s\n",
              row_ms, row_mrows);
  std::printf("batch-at-a-time (NextBatch): %8.2f ms  %6.2f Mrows/s\n",
              batch_ms, batch_mrows);
  std::printf("batch_vs_row_speedup: %.2fx\n", row_ms / batch_ms);

  // Morsel-driven parallel sweep. One pool sized for the largest sweep
  // point, reused across thread counts (ParallelRun claims only as many
  // lanes as there are worker drains).
  const std::vector<size_t> sweep = {1, 2, 4, 8};
  exec::WorkerPool pool(sweep.back());
  std::vector<ParallelPoint> points;
  double t1_ms = 0.0;
  for (size_t threads : sweep) {
    auto warm = RunParallelOnce(fixture, threads, &pool);
    VODAK_CHECK(warm.second == warm_row.second)
        << "parallel cardinality mismatch at threads=" << threads
        << ": " << warm.second << " vs " << warm_row.second;
    double ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      ms += RunParallelOnce(fixture, threads, &pool).first;
    }
    ms /= reps;
    if (threads == 1) t1_ms = ms;
    ParallelPoint point;
    point.threads = threads;
    point.ms = ms;
    point.mrows_per_s = num_paragraphs / ms / 1000.0;
    point.speedup_vs_threads1 = t1_ms / ms;
    points.push_back(point);
    std::printf(
        "parallel (threads=%zu):       %8.2f ms  %6.2f Mrows/s  "
        "%5.2fx vs threads=1\n",
        threads, point.ms, point.mrows_per_s,
        point.speedup_vs_threads1);
  }
  double speedup_t4 = 0.0;
  for (const ParallelPoint& p : points) {
    if (p.threads == 4) speedup_t4 = p.speedup_vs_threads1;
  }
  std::printf("parallel_speedup_threads4: %.2fx (hardware threads: %u)\n",
              speedup_t4, std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"parallel_exec\",\n");
    std::fprintf(f, "  \"workload\": \"scan+select p.number >= 1\",\n");
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", num_paragraphs);
    std::fprintf(f, "  \"hits\": %zu,\n", warm_row.second);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"row_ms\": %.3f,\n", row_ms);
    std::fprintf(f, "  \"batch_ms\": %.3f,\n", batch_ms);
    std::fprintf(f, "  \"batch_vs_row_speedup\": %.3f,\n",
                 row_ms / batch_ms);
    std::fprintf(f, "  \"parallel\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %zu, \"ms\": %.3f, "
                   "\"mrows_per_s\": %.3f, "
                   "\"speedup_vs_threads1\": %.3f}%s\n",
                   points[i].threads, points[i].ms,
                   points[i].mrows_per_s,
                   points[i].speedup_vs_threads1,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"parallel_speedup_threads4\": %.3f\n",
                 speedup_t4);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  // -------- X8: set-at-a-time method dispatch on external methods.
  const size_t method_paragraphs = static_cast<size_t>(method_docs) * 3 * 4;
  // The scan corpus is reused when it already has the right size (the
  // CI smoke shape); otherwise a capped method corpus is built — the
  // row pipeline's one-probe-per-row storm makes larger ones pointless.
  workload::DocumentDb mdb_storage;
  workload::DocumentDb* mdb = &db;
  if (method_docs != docs) {
    std::printf(
        "\nbuilding method corpus: %u documents, %zu paragraphs...\n",
        method_docs, method_paragraphs);
    workload::CorpusParams mparams = params;
    mparams.num_documents = method_docs;
    VODAK_CHECK(mdb_storage.Init().ok());
    VODAK_CHECK(mdb_storage.Populate(mparams).ok());
    mdb = &mdb_storage;
  }

  std::vector<MethodPoint> method_points;
  method_points.push_back(RunMethodWorkload(
      mdb, "contains_string",
      "ACCESS p FROM p IN Paragraph WHERE "
      "p->contains_string('implementation')",
      reps));
  method_points.push_back(RunMethodWorkload(
      mdb, "retrieve_is_in",
      "ACCESS p FROM p IN Paragraph WHERE p IS-IN "
      "Paragraph->retrieve_by_string('implementation')",
      reps));
  for (const MethodPoint& p : method_points) {
    std::printf("method workload %-16s %8.2f ms row  %8.2f ms batch  "
                "%5.2fx  (IR probes: %llu row vs %llu batch)\n",
                p.key, p.row_ms, p.batch_ms, p.row_ms / p.batch_ms,
                static_cast<unsigned long long>(p.probes_row),
                static_cast<unsigned long long>(p.probes_batch));
  }

  if (!json_method_path.empty()) {
    std::FILE* f = std::fopen(json_method_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   json_method_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"method_batch\",\n");
    std::fprintf(f, "  \"method_docs\": %u,\n", method_docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", method_paragraphs);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < method_points.size(); ++i) {
      const MethodPoint& p = method_points[i];
      std::fprintf(
          f,
          "    {\"workload\": \"%s\", \"vql\": \"%s\", \"hits\": %zu,\n"
          "     \"row_ms\": %.3f, \"batch_ms\": %.3f, "
          "\"batch_vs_row_speedup\": %.3f,\n"
          "     \"ir_probes_row\": %llu, \"ir_probes_batch\": %llu}%s\n",
          p.key, p.vql, p.hits, p.row_ms, p.batch_ms,
          p.row_ms / p.batch_ms,
          static_cast<unsigned long long>(p.probes_row),
          static_cast<unsigned long long>(p.probes_batch),
          i + 1 < method_points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_method_path.c_str());
  }

  // -------- X9: selection-vector chain vs compacting filters.
  // The chain: map n := p.number, then three stacked cheap predicates
  // (75% / 50% / 25% cumulative survivors over numbers 0..3). Each
  // Select is its own Filter operator, so the compacting baseline pays
  // one full-batch compaction per predicate while the marking pipeline
  // narrows one selection vector and compacts once at the drain
  // boundary.
  auto parse_expr = [](const char* text) {
    auto e = vql::ParseExpr(text);
    VODAK_CHECK(e.ok()) << e.status().ToString();
    return e.value();
  };
  algebra::AlgebraContext selvec_ctx(&db.catalog());
  auto chain_get = selvec_ctx.Get("p", "Paragraph");
  VODAK_CHECK(chain_get.ok());
  auto chain_map =
      selvec_ctx.Map("n", parse_expr("p.number"), chain_get.value());
  VODAK_CHECK(chain_map.ok());
  // A second carried column (the section reference a later operator
  // would consume): real optimized plans drag several references
  // through their filter stack, and every one of them is a column the
  // compacting baseline moves per predicate while the marking pipeline
  // leaves all of them in place.
  auto chain_map2 =
      selvec_ctx.Map("s", parse_expr("p.section"), chain_map.value());
  VODAK_CHECK(chain_map2.ok());
  auto chain_f1 =
      selvec_ctx.Select(parse_expr("n >= 1"), chain_map2.value());
  VODAK_CHECK(chain_f1.ok());
  auto chain_f2 =
      selvec_ctx.Select(parse_expr("n <= 2"), chain_f1.value());
  VODAK_CHECK(chain_f2.ok());
  auto chain_f3 =
      selvec_ctx.Select(parse_expr("n >= 2"), chain_f2.value());
  VODAK_CHECK(chain_f3.ok());
  const algebra::LogicalRef chain = chain_f3.value();
  const char* chain_desc =
      "map n := p.number; map s := p.section; "
      "select n >= 1; select n <= 2; select n >= 2";

  // One timed drain of the chain under the given pipeline mode,
  // including the drain-boundary Compact() (the batch representation's
  // density boundary). Returns (ms, rows); the BatchCopyStats counters
  // accumulate across the call.
  exec::ExecContext selvec_exec = exec::ExecContext{
      &db.catalog(), &db.store(), &db.methods()};
  exec::ExecContext compact_exec = selvec_exec;
  compact_exec.filter_compacts = true;
  auto run_chain =
      [&](const exec::ExecContext& mode) -> std::pair<double, size_t> {
    auto phys = exec::BuildPhysical(chain, mode);
    VODAK_CHECK(phys.ok()) << phys.status().ToString();
    size_t rows = 0;
    auto start = std::chrono::steady_clock::now();
    VODAK_CHECK(phys.value()->Open().ok());
    exec::RowBatch batch;
    for (;;) {
      auto more = phys.value()->NextBatch(&batch);
      VODAK_CHECK(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      batch.Compact();  // density boundary: rows leave the pipeline
      rows += batch.num_rows();
    }
    phys.value()->Close();
    return {MsSince(start), rows};
  };

  struct SelvecPoint {
    double ms = 0.0;
    size_t hits = 0;
    uint64_t compact_moves = 0;  // values moved by compaction
    uint64_t gather_copies = 0;  // values copied into selection gathers
    uint64_t total() const { return compact_moves + gather_copies; }
  };
  auto measure_chain = [&](const exec::ExecContext& mode) {
    SelvecPoint point;
    // Counted warm drain: the move/copy counters are deterministic per
    // drain, so one counted pass suffices.
    BatchCopyStats::Reset();
    point.hits = run_chain(mode).second;
    point.compact_moves =
        BatchCopyStats::compact_moves.load(std::memory_order_relaxed);
    point.gather_copies =
        BatchCopyStats::gather_copies.load(std::memory_order_relaxed);
    for (int r = 0; r < reps; ++r) point.ms += run_chain(mode).first;
    point.ms /= reps;
    return point;
  };
  SelvecPoint marking = measure_chain(selvec_exec);
  SelvecPoint compacting = measure_chain(compact_exec);
  VODAK_CHECK(marking.hits == compacting.hits)
      << "selection-chain cardinality mismatch: " << marking.hits
      << " vs " << compacting.hits;
  std::printf("\nselection chain over %zu paragraphs, %zu hits: %s\n",
              num_paragraphs, marking.hits, chain_desc);
  std::printf(
      "selection-vector pipeline:   %8.2f ms  %10llu value moves "
      "(%llu compact + %llu gather)\n",
      marking.ms, static_cast<unsigned long long>(marking.total()),
      static_cast<unsigned long long>(marking.compact_moves),
      static_cast<unsigned long long>(marking.gather_copies));
  std::printf(
      "compacting baseline:         %8.2f ms  %10llu value moves "
      "(%llu compact + %llu gather)\n",
      compacting.ms, static_cast<unsigned long long>(compacting.total()),
      static_cast<unsigned long long>(compacting.compact_moves),
      static_cast<unsigned long long>(compacting.gather_copies));
  std::printf("selvec_vs_compact_speedup: %.2fx, moves %llu -> %llu\n",
              compacting.ms / marking.ms,
              static_cast<unsigned long long>(compacting.total()),
              static_cast<unsigned long long>(marking.total()));

  if (!json_selvec_path.empty()) {
    std::FILE* f = std::fopen(json_selvec_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_selvec_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"selvec\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", chain_desc);
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", num_paragraphs);
    std::fprintf(f, "  \"hits\": %zu,\n", marking.hits);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"selvec_ms\": %.3f,\n", marking.ms);
    std::fprintf(f, "  \"compact_ms\": %.3f,\n", compacting.ms);
    std::fprintf(f, "  \"selvec_vs_compact_speedup\": %.3f,\n",
                 compacting.ms / marking.ms);
    std::fprintf(f, "  \"selvec_compact_moves\": %llu,\n",
                 static_cast<unsigned long long>(marking.compact_moves));
    std::fprintf(f, "  \"selvec_gather_copies\": %llu,\n",
                 static_cast<unsigned long long>(marking.gather_copies));
    std::fprintf(f, "  \"selvec_moves_total\": %llu,\n",
                 static_cast<unsigned long long>(marking.total()));
    std::fprintf(
        f, "  \"compact_moves_total\": %llu\n",
        static_cast<unsigned long long>(compacting.total()));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_selvec_path.c_str());
  }
  return 0;
}
