// Experiment X7: batch-at-a-time vs tuple-at-a-time physical execution.
// Drives the same scan+select plan (extent scan over ~100k Paragraph
// objects, predicate on a stored property) through the row pipeline
// (Next) and the vectorized pipeline (NextBatch) and reports throughput
// and the batch/row speedup. The acceptance bar for the vectorized
// executor is a >= 2x speedup on this workload.
//
// Flags: --docs=N  corpus size in documents (default 8350 -> ~100k
//                  paragraphs with 3 sections x 4 paragraphs each)
//        --reps=N  timed repetitions per mode (default 5)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algebra/translate.h"
#include "bench_util.h"
#include "exec/physical.h"
#include "vql/parser.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct PlanFixture {
  std::unique_ptr<algebra::AlgebraContext> ctx;
  algebra::LogicalRef plan;
  exec::ExecContext exec_ctx;
};

PlanFixture MakePlan(workload::DocumentDb* db, const std::string& vql) {
  PlanFixture fixture;
  fixture.ctx =
      std::make_unique<algebra::AlgebraContext>(&db->catalog());
  auto query = vql::ParseQuery(vql);
  VODAK_CHECK(query.ok()) << query.status().ToString();
  vql::Binder binder(&db->catalog());
  auto bound = binder.Bind(query.value());
  VODAK_CHECK(bound.ok()) << bound.status().ToString();
  auto plan = algebra::TranslateQuery(*fixture.ctx, bound.value());
  VODAK_CHECK(plan.ok()) << plan.status().ToString();
  fixture.plan = plan.value();
  fixture.exec_ctx =
      exec::ExecContext{&db->catalog(), &db->store(), &db->methods()};
  return fixture;
}

/// One timed drain through the chosen pipeline; returns (elapsed ms,
/// rows emitted by the plan root).
std::pair<double, size_t> RunOnce(const PlanFixture& fixture,
                                  exec::ExecMode mode) {
  auto phys = exec::BuildPhysical(fixture.plan, fixture.exec_ctx);
  VODAK_CHECK(phys.ok()) << phys.status().ToString();
  exec::PhysOperator* root = phys.value().get();
  size_t rows = 0;
  auto start = std::chrono::steady_clock::now();
  VODAK_CHECK(root->Open().ok());
  if (mode == exec::ExecMode::kRow) {
    exec::Row row;
    for (;;) {
      auto more = root->Next(&row);
      VODAK_CHECK(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      ++rows;
    }
  } else {
    exec::RowBatch batch;
    for (;;) {
      auto more = root->NextBatch(&batch);
      VODAK_CHECK(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      rows += batch.num_rows();
    }
  }
  root->Close();
  return {MsSince(start), rows};
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 8350;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr, "usage: %s [--docs=N] [--reps=N]\n", argv[0]);
      return 2;
    }
  }

  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 8;  // keep corpus build cheap
  params.vocabulary_size = 200;
  const size_t num_paragraphs = static_cast<size_t>(docs) * 3 * 4;

  std::printf("building corpus: %u documents, %zu paragraphs...\n", docs,
              num_paragraphs);
  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  VODAK_CHECK(db.Populate(params).ok());

  // Scan + select on a stored property; translates to
  // Filter(p.number >= 1) over ExtentScan(Paragraph).
  PlanFixture fixture = MakePlan(
      &db, "ACCESS p FROM p IN Paragraph WHERE p.number >= 1");

  // Warm-up (also validates that both modes agree on the result).
  auto warm_row = RunOnce(fixture, exec::ExecMode::kRow);
  auto warm_batch = RunOnce(fixture, exec::ExecMode::kBatch);
  VODAK_CHECK(warm_row.second == warm_batch.second)
      << "row/batch cardinality mismatch: " << warm_row.second << " vs "
      << warm_batch.second;

  double row_ms = 0.0;
  double batch_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    row_ms += RunOnce(fixture, exec::ExecMode::kRow).first;
    batch_ms += RunOnce(fixture, exec::ExecMode::kBatch).first;
  }
  row_ms /= reps;
  batch_ms /= reps;

  const double row_mrows =
      num_paragraphs / row_ms / 1000.0;  // million rows/s
  const double batch_mrows = num_paragraphs / batch_ms / 1000.0;
  std::printf("workload: scan+select over %zu paragraphs, %zu hits\n",
              num_paragraphs, warm_row.second);
  std::printf("row-at-a-time   (Next):      %8.2f ms  %6.2f Mrows/s\n",
              row_ms, row_mrows);
  std::printf("batch-at-a-time (NextBatch): %8.2f ms  %6.2f Mrows/s\n",
              batch_ms, batch_mrows);
  std::printf("batch_vs_row_speedup: %.2fx\n", row_ms / batch_ms);
  return 0;
}
