// Experiment X1 (DESIGN.md): the paper's headline result. The Example 4
// query is executed (a) as translated ("straightforward evaluation") and
// (b) after semantic optimization, which — given E1–E5 — yields plan PQ:
//   retrieve_by_string('implementation') INTERSECTION
//   select_by_index('Query Optimization').sections.paragraphs.
// The paper claims PQ "can be evaluated much more efficiently"; the
// speedup must grow with corpus size. An ablation series shows the plan
// degrading as equivalences are removed (the §2.3 claim that the plan is
// unreachable without schema-specific knowledge).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace vodak;

const char* kQuery =
    "ACCESS p FROM p IN Paragraph "
    "WHERE p->contains_string('implementation') "
    "AND (p->document()).title == 'Query Optimization'";

bench::Scenario& ScenarioFor(int num_docs, int knowledge_mask) {
  // knowledge_mask: bit i set -> E(i+1) registered (bit 5 = LARGE).
  return bench::CachedScenario(
      num_docs * 100 + knowledge_mask, [num_docs, knowledge_mask] {
        workload::CorpusParams params;
        params.num_documents = static_cast<uint32_t>(num_docs);
        params.implementation_fraction = 0.1;
        std::set<std::string> knowledge;
        const char* names[] = {"E1", "E2", "E3", "E4", "E5", "LARGE"};
        for (int i = 0; i < 6; ++i) {
          if (knowledge_mask & (1 << i)) knowledge.insert(names[i]);
        }
        if (knowledge.empty()) knowledge.insert("__none__");
        return bench::MakeScenario(params, knowledge);
      });
}

void BM_Example4_Naive(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), 0x3f);
  for (auto _ : state) {
    auto result = scenario.session->Run(kQuery, {/*optimize=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  state.counters["paragraphs"] =
      static_cast<double>(state.range(0)) * 12;
}
BENCHMARK(BM_Example4_Naive)->Arg(20)->Arg(100)->Arg(400)->Arg(1000);

void BM_Example4_Optimized(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), 0x3f);
  double opt_ms = 0;
  double cost_ratio = 0;
  for (auto _ : state) {
    auto result = scenario.session->Run(kQuery, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
    opt_ms = result.value().optimize_ms;
    cost_ratio = result.value().original_cost /
                 std::max(1.0, result.value().chosen_cost);
  }
  state.counters["optimize_ms"] = opt_ms;
  state.counters["est_cost_ratio"] = cost_ratio;
}
BENCHMARK(BM_Example4_Optimized)->Arg(20)->Arg(100)->Arg(400)->Arg(1000);

// Ablation: which equivalences are available changes the reachable plan.
// mask 0x3f = all, 0x1f = no LARGE (same plan), 0x1d = no E2 (no title
// index path), 0x0f = no E5 (no IR scan), 0 = none (plain plan).
void BM_Example4_Ablation(benchmark::State& state) {
  auto& scenario =
      ScenarioFor(200, static_cast<int>(state.range(0)));
  double cost = 0;
  for (auto _ : state) {
    auto result = scenario.session->Run(kQuery, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
    cost = result.value().chosen_cost;
  }
  state.counters["est_plan_cost"] = cost;
}
BENCHMARK(BM_Example4_Ablation)
    ->Arg(0x3f)   // all knowledge -> PQ
    ->Arg(0x1d)   // without E2: no select_by_index path
    ->Arg(0x0f)   // without E5: no retrieve_by_string scan
    ->Arg(0x00);  // no knowledge: straightforward plan

}  // namespace

BENCHMARK_MAIN();
