// Experiment X2: the §2.3 observation (after [14]) that methods are not
// uniform-cost attributes, so predicate ORDER matters. The same
// conjunctive query is executed with the expensive IR predicate first
// (as written), cheap-first (hand-reordered) and optimizer-ordered; the
// optimizer must match the cheap-first ordering via select-commute +
// method cost annotations.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace vodak;

// Expensive predicate first, as a careless user writes it.
const char* kExpensiveFirst =
    "ACCESS p FROM p IN Paragraph WHERE "
    "p->contains_string('implementation') AND p.number == 0";
// Cheap structural predicate first.
const char* kCheapFirst =
    "ACCESS p FROM p IN Paragraph WHERE "
    "p.number == 0 AND p->contains_string('implementation')";

bench::Scenario& ScenarioFor(int num_docs) {
  return bench::CachedScenario(num_docs, [num_docs] {
    workload::CorpusParams params;
    params.num_documents = static_cast<uint32_t>(num_docs);
    params.paragraphs_per_section = 6;  // numbers 0..5: cheap pred ~1/6
    params.implementation_fraction = 0.3;
    // Only E1 registered: no IR rewrite available, ordering is the only
    // optimization left — isolates the predicate-migration effect.
    return bench::MakeScenario(params, {"E1"});
  });
}

void RunFixed(benchmark::State& state, const char* query) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // optimize=false executes predicates in written order
    // (short-circuit AND, left to right).
    auto result = scenario.session->Run(query, {/*optimize=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  auto result = scenario.session->Run(query, {false});
  state.counters["contains_calls"] =
      static_cast<double>(scenario.db->methods().invocation_count(
          "Paragraph", "contains_string", MethodLevel::kInstance));
}

void BM_ExpensiveFirst(benchmark::State& state) {
  RunFixed(state, kExpensiveFirst);
}
BENCHMARK(BM_ExpensiveFirst)->Arg(50)->Arg(200)->Arg(800);

void BM_CheapFirst(benchmark::State& state) {
  RunFixed(state, kCheapFirst);
}
BENCHMARK(BM_CheapFirst)->Arg(50)->Arg(200)->Arg(800);

void BM_OptimizerOrdered(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Written expensive-first; the optimizer must flip the order.
    auto result = scenario.session->Run(kExpensiveFirst,
                                        {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  (void)scenario.session->Run(kExpensiveFirst, {true});
  state.counters["contains_calls"] =
      static_cast<double>(scenario.db->methods().invocation_count(
          "Paragraph", "contains_string", MethodLevel::kInstance));
}
BENCHMARK(BM_OptimizerOrdered)->Arg(50)->Arg(200)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
