// Experiment X4: the §4.2 condition-implication example. The query
// filters paragraphs by wordCount() > threshold, which recomputes the
// word count per paragraph. With the LARGE implication registered the
// optimizer introduces natural_join with the precomputed
// Document.largeParagraphs sets ("very interesting for finding efficient
// execution plans in the presence of precomputed information").
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace vodak;

std::string Query(uint32_t threshold) {
  return "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > " +
         std::to_string(threshold);
}

bench::Scenario& ScenarioFor(int num_docs, bool with_knowledge) {
  return bench::CachedScenario(
      num_docs * 2 + (with_knowledge ? 1 : 0), [=] {
        workload::CorpusParams params;
        params.num_documents = static_cast<uint32_t>(num_docs);
        params.large_paragraph_fraction = 0.1;
        return bench::MakeScenario(
            params, with_knowledge
                        ? std::set<std::string>{"LARGE"}
                        : std::set<std::string>{"__none__"});
      });
}

void BM_WordCount_Recomputed(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), false);
  std::string query = Query(scenario.db->params().large_paragraph_threshold);
  for (auto _ : state) {
    auto result = scenario.session->Run(query, {/*optimize=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  (void)scenario.session->Run(query, {false});
  state.counters["wordCount_calls"] =
      static_cast<double>(scenario.db->methods().invocation_count(
          "Paragraph", "wordCount", MethodLevel::kInstance));
}
BENCHMARK(BM_WordCount_Recomputed)->Arg(50)->Arg(200)->Arg(800);

void BM_WordCount_WithImplication(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), true);
  std::string query = Query(scenario.db->params().large_paragraph_threshold);
  for (auto _ : state) {
    auto result = scenario.session->Run(query, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  (void)scenario.session->Run(query, {true});
  state.counters["wordCount_calls"] =
      static_cast<double>(scenario.db->methods().invocation_count(
          "Paragraph", "wordCount", MethodLevel::kInstance));
}
BENCHMARK(BM_WordCount_WithImplication)->Arg(50)->Arg(200)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
