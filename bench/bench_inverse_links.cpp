// Experiment X3: the inverse-link equivalences E3/E4 (§5.1 "redundant
// structures ... provided in order to gain simple and efficient access").
// The query restricts paragraphs to those of an indexed document set.
// Upward evaluation chases p.section.document per paragraph; downward
// evaluation (after E3+E4) expands D.sections.paragraphs from the small
// document set. Downward must win when |D| is small; the series sweeps
// the number of matching documents via the title.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace vodak;

const char* kQuery =
    "ACCESS p FROM p IN Paragraph WHERE p.section.document IS-IN "
    "Document->select_by_index('Query Optimization')";

bench::Scenario& ScenarioFor(int num_docs, bool with_knowledge) {
  return bench::CachedScenario(
      num_docs * 2 + (with_knowledge ? 1 : 0), [=] {
        workload::CorpusParams params;
        params.num_documents = static_cast<uint32_t>(num_docs);
        params.sections_per_document = 3;
        params.paragraphs_per_section = 4;
        return bench::MakeScenario(
            params, with_knowledge
                        ? std::set<std::string>{"E3", "E4"}
                        : std::set<std::string>{"__none__"});
      });
}

void BM_InverseLinks_Upward(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    auto result = scenario.session->Run(kQuery, {/*optimize=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  (void)scenario.session->Run(kQuery, {false});
  state.counters["property_reads"] = static_cast<double>(
      scenario.db->store().stats().property_reads);
}
BENCHMARK(BM_InverseLinks_Upward)->Arg(20)->Arg(100)->Arg(500);

void BM_InverseLinks_Downward(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    auto result = scenario.session->Run(kQuery, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  (void)scenario.session->Run(kQuery, {true});
  state.counters["property_reads"] = static_cast<double>(
      scenario.db->store().stats().property_reads);
}
BENCHMARK(BM_InverseLinks_Downward)->Arg(20)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
