// Experiment X6: methods as algebraic operators (§3.2) at the physical
// level. Compares evaluating the IR predicate per object (extent scan +
// contains_string filter) against the set-at-a-time external method scan
// (retrieve_by_string), sweeping the hit rate. Also measures the two
// index substrates directly.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/physical.h"
#include "vql/parser.h"

namespace {

using namespace vodak;

bench::Scenario& ScenarioFor(int hit_percent) {
  return bench::CachedScenario(hit_percent, [=] {
    workload::CorpusParams params;
    params.num_documents = 300;
    params.implementation_fraction = hit_percent / 100.0;
    return bench::MakeScenario(params, {"E5"});
  });
}

void BM_PerObjectFilter(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  const char* query =
      "ACCESS p FROM p IN Paragraph WHERE "
      "p->contains_string('implementation')";
  for (auto _ : state) {
    auto result = scenario.session->Run(query, {/*optimize=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
}
BENCHMARK(BM_PerObjectFilter)->Arg(2)->Arg(10)->Arg(50);

void BM_ExternalMethodScan(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  // The optimizer rewrites the same query into the method scan via E5.
  const char* query =
      "ACCESS p FROM p IN Paragraph WHERE "
      "p->contains_string('implementation')";
  for (auto _ : state) {
    auto result = scenario.session->Run(query, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().result);
  }
  scenario.db->ResetCounters();
  auto result = scenario.session->Run(query, {true});
  state.counters["hits"] =
      static_cast<double>(result.value().result.AsSet().size());
}
BENCHMARK(BM_ExternalMethodScan)->Arg(2)->Arg(10)->Arg(50);

// Micro: the inverted index search alone.
void BM_InvertedIndexSearch(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = scenario.db->paragraph_index().Search("implementation");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_InvertedIndexSearch)->Arg(10);

// Micro: the ordered title index alone.
void BM_TitleIndexLookup(benchmark::State& state) {
  auto& scenario = ScenarioFor(10);
  for (auto _ : state) {
    auto hits = scenario.db->title_index().Lookup("Query Optimization");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TitleIndexLookup);

}  // namespace

BENCHMARK_MAIN();
