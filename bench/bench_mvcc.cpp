// Experiment X12: the epoch-snapshot mutation path under a mixed
// closed loop. K client sessions drive a 90/10 read/write workload
// over one Account extent: reads are single-query Submits (each pins
// the epoch current at admission and scans that snapshot), writes are
// batched copy-on-write Submits (VQL UPDATE/INSERT/DELETE and
// programmatic Mutation batches, committing a fresh epoch each). The
// background reclaimer runs throughout, freeing versions behind the
// oldest pin while the clients race it.
//
// The claim is measured, not inferred: the store's MVCC counters of
// the counted run go into the JSON and scripts/ci.sh gates on them —
// every read must have pinned a snapshot (snapshot_reads >= reads
// completed), every committed batch must have made versions
// (versions_created > 0, epochs_committed > 0), and reclaim must have
// actually freed superseded versions behind the moving horizon
// (versions_reclaimed > 0).
//
// Flags: --objects=N   extent size (default 20000)
//        --clients=N   closed-loop client sessions (default 8)
//        --ops=N       operations per client (default 400)
//        --write-pct=N write percentage of the mix (default 10)
//        --json=PATH   machine-readable record (BENCH_mvcc.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "engine/database.h"
#include "objstore/object_store.h"
#include "schema/catalog.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t objects = 20000;
  size_t clients = 8;
  size_t ops = 400;
  int write_pct = 10;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--objects=", 10) == 0) {
      objects = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = static_cast<size_t>(std::atoi(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--write-pct=", 12) == 0) {
      write_pct = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--objects=N] [--clients=N] [--ops=N] "
                   "[--write-pct=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (clients == 0) clients = 1;
  if (write_pct < 0) write_pct = 0;
  if (write_pct > 100) write_pct = 100;

  constexpr int kBuckets = 16;
  Catalog catalog;
  ObjectStore store;
  MethodRegistry methods;
  auto cls = catalog.DefineClass("Account");
  VODAK_CHECK(cls.ok());
  VODAK_CHECK(cls.value()->AddProperty("v1", Type::Int()).ok());
  VODAK_CHECK(cls.value()->AddProperty("v2", Type::Int()).ok());
  VODAK_CHECK(cls.value()->AddProperty("bucket", Type::Int()).ok());
  const uint32_t class_id = cls.value()->class_id();
  VODAK_CHECK(store.RegisterClass("Account", 3) == class_id);

  std::printf("building extent: %zu Account objects...\n", objects);
  {
    engine::Database loader(&catalog, &store, &methods);
    engine::QueryRequest seed_batch;
    for (size_t i = 0; i < objects; ++i) {
      const int v = static_cast<int>(i);
      seed_batch.mutations.push_back(Mutation::Insert(
          class_id,
          {{0, Value::Int(v)},
           {1, Value::Int(v)},
           {2, Value::Int(v % kBuckets)}}));
    }
    auto outcomes = loader.Submit({seed_batch});
    VODAK_CHECK(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  }
  store.mutable_stats()->Reset();
  store.StartBackgroundReclaim();

  std::atomic<uint64_t> reads_done{0};
  std::atomic<uint64_t> writes_done{0};
  std::atomic<uint64_t> rows_read{0};
  std::atomic<bool> failed{false};

  auto client = [&](size_t id) {
    engine::Database session(&catalog, &store, &methods);
    std::mt19937_64 rng(0x5eed + id);
    engine::PlanOptions no_opt;
    no_opt.optimize = false;
    for (size_t op = 0; op < ops; ++op) {
      const int bucket = static_cast<int>(rng() % kBuckets);
      if (static_cast<int>(rng() % 100) < write_pct) {
        const int x = static_cast<int>(rng() % 100000);
        engine::QueryRequest request;
        request.vql = "UPDATE Account SET v1 = " + std::to_string(x) +
                      ", v2 = " + std::to_string(x) +
                      " WHERE self.bucket == " + std::to_string(bucket);
        auto outcomes = session.Submit({request});
        if (!outcomes[0].status.ok()) {
          std::fprintf(stderr, "client %zu write: %s\n", id,
                       outcomes[0].status.ToString().c_str());
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        writes_done.fetch_add(1, std::memory_order_relaxed);
      } else {
        auto result = session.Run(
            "ACCESS a.v1 FROM a IN Account WHERE a.bucket == " +
                std::to_string(bucket),
            no_opt);
        if (!result.ok()) {
          std::fprintf(stderr, "client %zu read: %s\n", id,
                       result.status().ToString().c_str());
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        rows_read.fetch_add(result.value().result.AsSet().size(),
                            std::memory_order_relaxed);
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::printf("closed loop: %zu clients x %zu ops, %d%% writes...\n",
              clients, ops, write_pct);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(client, c);
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_ms = MsSince(start);
  store.StopBackgroundReclaim();
  // One final pass with every pin dropped picks up whatever the
  // background thread hadn't reached when the loop ended.
  store.Reclaim();
  VODAK_CHECK(!failed.load(std::memory_order_relaxed));

  const StoreStats& stats = store.stats();
  const uint64_t reads = reads_done.load(std::memory_order_relaxed);
  const uint64_t writes = writes_done.load(std::memory_order_relaxed);
  const uint64_t snapshot_reads =
      stats.snapshot_reads.load(std::memory_order_relaxed);
  const uint64_t versions_created =
      stats.versions_created.load(std::memory_order_relaxed);
  const uint64_t versions_reclaimed =
      stats.versions_reclaimed.load(std::memory_order_relaxed);
  const uint64_t epochs_committed =
      stats.epochs_committed.load(std::memory_order_relaxed);
  const double ops_per_sec =
      (reads + writes) / (elapsed_ms / 1000.0);

  std::printf(
      "mixed loop: %8.2f ms, %llu reads + %llu writes = %.0f ops/s\n",
      elapsed_ms, static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(writes), ops_per_sec);
  std::printf(
      "mvcc: %llu snapshot reads, %llu epochs committed, %llu versions "
      "created, %llu reclaimed\n",
      static_cast<unsigned long long>(snapshot_reads),
      static_cast<unsigned long long>(epochs_committed),
      static_cast<unsigned long long>(versions_created),
      static_cast<unsigned long long>(versions_reclaimed));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"mvcc\",\n");
    std::fprintf(f,
                 "  \"workload\": \"closed-loop %d/%d read/write mix "
                 "over one Account extent, background reclaim on\",\n",
                 100 - write_pct, write_pct);
    std::fprintf(f, "  \"objects\": %zu,\n", objects);
    std::fprintf(f, "  \"clients\": %zu,\n", clients);
    std::fprintf(f, "  \"ops_per_client\": %zu,\n", ops);
    std::fprintf(f, "  \"write_pct\": %d,\n", write_pct);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"elapsed_ms\": %.3f,\n", elapsed_ms);
    std::fprintf(f, "  \"ops_per_sec\": %.1f,\n", ops_per_sec);
    std::fprintf(f, "  \"reads_completed\": %llu,\n",
                 static_cast<unsigned long long>(reads));
    std::fprintf(f, "  \"writes_committed\": %llu,\n",
                 static_cast<unsigned long long>(writes));
    std::fprintf(f, "  \"rows_read\": %llu,\n",
                 static_cast<unsigned long long>(
                     rows_read.load(std::memory_order_relaxed)));
    std::fprintf(f, "  \"snapshot_reads\": %llu,\n",
                 static_cast<unsigned long long>(snapshot_reads));
    std::fprintf(f, "  \"epochs_committed\": %llu,\n",
                 static_cast<unsigned long long>(epochs_committed));
    std::fprintf(f, "  \"versions_created\": %llu,\n",
                 static_cast<unsigned long long>(versions_created));
    std::fprintf(f, "  \"versions_reclaimed\": %llu\n",
                 static_cast<unsigned long long>(versions_reclaimed));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
