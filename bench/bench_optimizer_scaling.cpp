// Experiment X5: cost of the optimization itself. §6 adopts Volcano
// because it "has been shown to be very efficient"; this harness
// measures optimization wall time and memo sizes as (a) the number of
// registered semantic rules grows and (b) the number of query ranges
// (joins) grows. The paper's viability argument requires optimization to
// stay in the milliseconds at schema scale.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace vodak;

bench::Scenario& ScenarioFor(int knowledge_count) {
  return bench::CachedScenario(knowledge_count, [=] {
    workload::CorpusParams params;
    params.num_documents = 50;
    std::set<std::string> knowledge = {"__none__"};
    const char* names[] = {"E1", "E2", "E3", "E4", "E5", "LARGE"};
    for (int i = 0; i < knowledge_count; ++i) knowledge.insert(names[i]);
    return bench::MakeScenario(params, knowledge);
  });
}

// Optimization time of the Example 4 query vs number of registered
// semantic equivalences (0..6).
void BM_OptimizeTime_vs_Rules(benchmark::State& state) {
  auto& scenario = ScenarioFor(static_cast<int>(state.range(0)));
  const char* query =
      "ACCESS p FROM p IN Paragraph "
      "WHERE p->contains_string('implementation') "
      "AND (p->document()).title == 'Query Optimization'";
  size_t exprs = 0;
  size_t groups = 0;
  for (auto _ : state) {
    auto result = scenario.session->Run(query, {/*optimize=*/true});
    VODAK_CHECK(result.ok());
    exprs = result.value().memo_exprs;
    groups = result.value().memo_groups;
    benchmark::DoNotOptimize(result.value().chosen_cost);
  }
  state.counters["memo_exprs"] = static_cast<double>(exprs);
  state.counters["memo_groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_OptimizeTime_vs_Rules)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6);

// Optimization time vs number of ranges (join reordering space).
void BM_OptimizeTime_vs_Joins(benchmark::State& state) {
  auto& scenario = ScenarioFor(6);
  std::string query = "ACCESS p1.number FROM p1 IN Paragraph";
  for (int i = 2; i <= state.range(0); ++i) {
    query += ", p" + std::to_string(i) + " IN Paragraph";
  }
  query += " WHERE p1.number == 0";
  for (int i = 2; i <= state.range(0); ++i) {
    query += " AND p" + std::to_string(i - 1) + "->sameDocument(p" +
             std::to_string(i) + ")";
  }
  size_t exprs = 0;
  for (auto _ : state) {
    // Plan only: executing a 3-way self-join would swamp the signal.
    auto result = scenario.session->Run(
        query, {/*optimize=*/true, /*trace=*/false},
        {/*execute=*/false});
    VODAK_CHECK(result.ok()) << result.status().ToString();
    exprs = result.value().memo_exprs;
    benchmark::DoNotOptimize(result.value().chosen_cost);
  }
  state.counters["memo_exprs"] = static_cast<double>(exprs);
}
BENCHMARK(BM_OptimizeTime_vs_Joins)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
