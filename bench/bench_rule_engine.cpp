// Experiment X7: the rule machinery itself. Measures (a) deriving
// optimizer rules from knowledge specifications (§4.2's lifting, part of
// the §7 per-schema generation step), (b) generating a complete
// optimizer module, and (c) a single parameter-rewrite-driven
// optimization pass (one equivalence, one query).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "semantics/generator.h"

namespace {

using namespace vodak;

void BM_KnowledgeRegistration(benchmark::State& state) {
  auto& scenario = bench::CachedScenario(1, [] {
    workload::CorpusParams params;
    params.num_documents = 10;
    return bench::MakeScenario(params);
  });
  for (auto _ : state) {
    semantics::KnowledgeBase kb(&scenario.db->catalog());
    VODAK_CHECK(kb.AddExprEquivalence("E1", "p", "Paragraph",
                                      "p->document()",
                                      "p.section.document")
                    .ok());
    VODAK_CHECK(kb.AddCondEquivalence(
                       "E2", "d", "Document", "d.title == s",
                       "d IS-IN Document->select_by_index(s)")
                    .ok());
    VODAK_CHECK(kb.AddCondEquivalence("E3", "p", "Paragraph",
                                      "p.section.document IS-IN D",
                                      "p.section IS-IN D.sections")
                    .ok());
    benchmark::DoNotOptimize(kb.size());
  }
}
BENCHMARK(BM_KnowledgeRegistration);

void BM_RuleDerivation(benchmark::State& state) {
  auto& scenario = bench::CachedScenario(1, [] {
    workload::CorpusParams params;
    params.num_documents = 10;
    return bench::MakeScenario(params);
  });
  const semantics::KnowledgeBase& kb = scenario.session->knowledge();
  for (auto _ : state) {
    auto rules = kb.DeriveRules();
    benchmark::DoNotOptimize(rules.size());
  }
}
BENCHMARK(BM_RuleDerivation);

void BM_OptimizerGeneration(benchmark::State& state) {
  auto& scenario = bench::CachedScenario(1, [] {
    workload::CorpusParams params;
    params.num_documents = 10;
    return bench::MakeScenario(params);
  });
  semantics::OptimizerGenerator generator(&scenario.db->catalog(),
                                          &scenario.db->store(),
                                          &scenario.db->methods());
  for (auto _ : state) {
    auto generated = generator.Generate(&scenario.session->knowledge());
    VODAK_CHECK(generated.ok());
    benchmark::DoNotOptimize(generated.value().optimizer.get());
  }
}
BENCHMARK(BM_OptimizerGeneration);

void BM_SingleEquivalenceRewrite(benchmark::State& state) {
  auto& scenario = bench::CachedScenario(2, [] {
    workload::CorpusParams params;
    params.num_documents = 10;
    return bench::MakeScenario(params, {"E1"});
  });
  const char* query =
      "ACCESS p FROM p IN Paragraph WHERE "
      "(p->document()).title == 'Query Optimization'";
  for (auto _ : state) {
    auto result = scenario.session->Run(
        query, {/*optimize=*/true, /*trace=*/false},
        {/*execute=*/false});
    VODAK_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().chosen_cost);
  }
}
BENCHMARK(BM_SingleEquivalenceRewrite);

}  // namespace

BENCHMARK_MAIN();
