// Load harness for the query service (docs/ARCHITECTURE.md §"Query
// service & admission control"). K closed-loop clients connect to an
// in-process QueryService over real loopback sockets and each fires
// --requests queries back-to-back, drawn round-robin from a small mix
// over the same extents. The run happens twice — shared-scan
// generations on, then off (private cursors) — and the acceptance
// claims are measured, not inferred:
//   * every reply's rows+hash must equal the row-mode interpreter
//     oracle's digest for that query (computed up front),
//   * the shared run must form strictly fewer generations than it
//     admitted queries (arrivals actually grouped), and
//   * the shared run must pay strictly fewer extent passes than the
//     private one. scripts/ci.sh --service gates on the JSON fields.
//
// Flags: --docs=N      corpus size in documents (default 400)
//        --clients=N   closed-loop client connections (default 8)
//        --requests=N  queries per client (default 25)
//        --lanes=N     generation drain lanes (default 0 = hw)
//        --json=PATH   machine-readable record (BENCH_service.json)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "engine/database.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "vql/interpreter.h"
#include "workload/document_db.h"

namespace {

using namespace vodak;

/// The query mix: all touch the Paragraph/Section/Document extents, so
/// a generation's members overlap on scan sources and sharing pays.
const char* kMix[] = {
    "ACCESS p.number FROM p IN Paragraph",
    "ACCESS p FROM p IN Paragraph WHERE p.number >= 1",
    "ACCESS p FROM p IN Paragraph WHERE p.number == 0",
    "ACCESS s FROM s IN Section WHERE s.number == 1",
    "ACCESS d.title FROM d IN Document",
};
constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

/// One client's view of a blocking line socket.
struct Client {
  int fd = -1;
  std::string buf;

  bool Connect(uint16_t port) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          send(fd, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      const size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        *line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<size_t>(n));
    }
  }

  ~Client() {
    if (fd >= 0) close(fd);
  }
};

struct ModeResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  uint64_t errors = 0;
  uint64_t extent_scans = 0;
  uint64_t property_reads = 0;
  service::ServiceStats stats;
};

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return (*latencies)[idx];
}

/// Runs one full closed-loop experiment against a fresh service.
ModeResult RunMode(engine::Database* session, workload::DocumentDb* db,
                   bool shared_scan, size_t clients, size_t requests,
                   size_t lanes,
                   const std::vector<std::string>& oracle_hash) {
  ModeResult mode;
  service::ServiceOptions options;
  options.shared_scan = shared_scan;
  options.lanes = lanes;
  service::QueryService service(session, options);
  VODAK_CHECK(service.Start().ok()) << "service failed to start";

  db->ResetCounters();
  const StoreStats& store_stats = db->store().stats();
  const uint64_t scans_before =
      store_stats.extent_scans.load(std::memory_order_relaxed);
  const uint64_t reads_before =
      store_stats.property_reads.load(std::memory_order_relaxed);

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> errors(clients, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(service.port())) {
        errors[c] = requests;
        return;
      }
      for (size_t r = 0; r < requests; ++r) {
        const size_t q = (c + r) % kMixSize;
        const std::string id =
            "c" + std::to_string(c) + "r" + std::to_string(r);
        const auto start = std::chrono::steady_clock::now();
        std::string line;
        if (!client.SendLine("Q " + id + " 0 " + kMix[q]) ||
            !client.ReadLine(&line)) {
          ++errors[c];
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count());
        auto reply = service::ParseReplyLine(line);
        // Correctness, per reply: id, row count and digest must match
        // the row-mode oracle.
        if (!reply.ok() || !reply.value().ok() || reply.value().id != id ||
            reply.value().hash != oracle_hash[q]) {
          ++errors[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  mode.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
  mode.stats = service.stats();
  service.Stop();

  mode.extent_scans =
      store_stats.extent_scans.load(std::memory_order_relaxed) -
      scans_before;
  mode.property_reads =
      store_stats.property_reads.load(std::memory_order_relaxed) -
      reads_before;
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  for (uint64_t e : errors) mode.errors += e;
  mode.p50_ms = Percentile(&all, 0.50);
  mode.p99_ms = Percentile(&all, 0.99);
  mode.qps = mode.wall_ms > 0
                 ? static_cast<double>(all.size()) / (mode.wall_ms / 1000.0)
                 : 0.0;
  return mode;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 400;
  size_t clients = 8;
  size_t requests = 25;
  size_t lanes = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<size_t>(std::atoi(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--lanes=", 8) == 0) {
      lanes = static_cast<size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--docs=N] [--clients=N] [--requests=N] "
                   "[--lanes=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (clients == 0) clients = 1;
  if (requests == 0) requests = 1;

  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 8;
  params.vocabulary_size = 200;
  VODAK_CHECK(db.Populate(params).ok());
  engine::Database session(&db.catalog(), &db.store(), &db.methods());

  // Oracle digests through the row-mode interpreter: a fully
  // independent evaluation path from the batch executor the service
  // drains with.
  std::vector<std::string> oracle_hash(kMixSize);
  vql::Interpreter::Options row_mode;
  row_mode.row_mode = true;
  for (size_t q = 0; q < kMixSize; ++q) {
    auto oracle = session.RunNaive(kMix[q], row_mode);
    VODAK_CHECK(oracle.ok()) << kMix[q];
    oracle_hash[q] =
        service::DigestHex(service::ResultDigest(oracle.value()));
  }

  std::printf(
      "service load: %u docs, %zu clients x %zu requests, lanes=%zu\n",
      docs, clients, requests, lanes);
  ModeResult shared =
      RunMode(&session, &db, /*shared_scan=*/true, clients, requests,
              lanes, oracle_hash);
  ModeResult priv =
      RunMode(&session, &db, /*shared_scan=*/false, clients, requests,
              lanes, oracle_hash);

  auto report = [&](const char* name, const ModeResult& m) {
    std::printf(
        "  %-8s qps=%8.1f  p50=%7.3fms  p99=%7.3fms  errors=%llu\n"
        "           generations=%llu queries=%llu late=%llu "
        "extent_passes=%llu property_reads=%llu\n",
        name, m.qps, m.p50_ms, m.p99_ms,
        static_cast<unsigned long long>(m.errors),
        static_cast<unsigned long long>(m.stats.generations),
        static_cast<unsigned long long>(m.stats.queries_admitted),
        static_cast<unsigned long long>(m.stats.late_attached),
        static_cast<unsigned long long>(m.extent_scans),
        static_cast<unsigned long long>(m.property_reads));
  };
  report("shared", shared);
  report("private", priv);

  // Hard checks the harness itself enforces, shared mode or not: every
  // reply correct, nothing lost.
  const uint64_t expected =
      static_cast<uint64_t>(clients) * static_cast<uint64_t>(requests);
  if (shared.errors != 0 || priv.errors != 0) {
    std::fprintf(stderr, "FAIL: %llu replies wrong or missing\n",
                 static_cast<unsigned long long>(shared.errors +
                                                 priv.errors));
    return 1;
  }
  if (shared.stats.queries_ok != expected ||
      priv.stats.queries_ok != expected) {
    std::fprintf(stderr, "FAIL: expected %llu ok queries per mode\n",
                 static_cast<unsigned long long>(expected));
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"service\",\n");
    std::fprintf(f,
                 "  \"workload\": \"K closed-loop socket clients over a "
                 "5-query mix, shared-scan generations vs private\",\n");
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"clients\": %zu,\n", clients);
    std::fprintf(f, "  \"requests_per_client\": %zu,\n", requests);
    std::fprintf(f, "  \"lanes\": %zu,\n", lanes);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"qps_shared\": %.1f,\n", shared.qps);
    std::fprintf(f, "  \"qps_private\": %.1f,\n", priv.qps);
    std::fprintf(f, "  \"p50_ms_shared\": %.3f,\n", shared.p50_ms);
    std::fprintf(f, "  \"p99_ms_shared\": %.3f,\n", shared.p99_ms);
    std::fprintf(f, "  \"p50_ms_private\": %.3f,\n", priv.p50_ms);
    std::fprintf(f, "  \"p99_ms_private\": %.3f,\n", priv.p99_ms);
    std::fprintf(f, "  \"queries_shared\": %llu,\n",
                 static_cast<unsigned long long>(
                     shared.stats.queries_admitted));
    std::fprintf(f, "  \"generations_shared\": %llu,\n",
                 static_cast<unsigned long long>(shared.stats.generations));
    std::fprintf(f, "  \"late_attached_shared\": %llu,\n",
                 static_cast<unsigned long long>(
                     shared.stats.late_attached));
    std::fprintf(f, "  \"extent_scans_shared\": %llu,\n",
                 static_cast<unsigned long long>(shared.extent_scans));
    std::fprintf(f, "  \"extent_scans_private\": %llu,\n",
                 static_cast<unsigned long long>(priv.extent_scans));
    std::fprintf(f, "  \"property_reads_shared\": %llu,\n",
                 static_cast<unsigned long long>(shared.property_reads));
    std::fprintf(f, "  \"property_reads_private\": %llu\n",
                 static_cast<unsigned long long>(priv.property_reads));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
