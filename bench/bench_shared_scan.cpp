// Experiment X10: the shared-scan multi-query executor. K concurrent
// queries over the same Paragraph extent run once as K independent
// drains (the private-cursor baseline: every query materializes its
// own extent pass and reads its own property columns) and once
// attached to one SharedScanManager (one extent pass and one
// property-column read serve the whole batch). The claim is measured,
// not inferred: the store's extent_scans / property_reads counters of
// one counted drain of each mode go into the JSON, and scripts/ci.sh
// fails if the shared batch does not do strictly fewer extent passes
// than the K independent queries — the ~K× → ~1× acceptance bar of
// the shared-scan PR.
//
// Flags: --docs=N     corpus size in documents (default 8350 ->
//                     ~100k paragraphs, 3 sections x 4 paragraphs)
//        --k=N        concurrent queries per batch (default 8)
//        --threads=N  worker lanes for the batch (default 0 = hw)
//        --reps=N     timed repetitions per mode (default 5)
//        --json=PATH  machine-readable record (BENCH_shared_scan.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algebra/translate.h"
#include "common/logging.h"
#include "exec/parallel.h"
#include "exec/physical.h"
#include "vql/parser.h"
#include "workload/document_db.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 8350;
  size_t k = 8;
  size_t threads = 0;
  int reps = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--k=", 4) == 0) {
      k = static_cast<size_t>(std::atoi(argv[i] + 4));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--docs=N] [--k=N] [--threads=N] [--reps=N] "
                   "[--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;  // the per-mode means divide by reps
  if (k == 0) k = 1;

  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 8;
  params.vocabulary_size = 200;
  const size_t num_paragraphs = static_cast<size_t>(docs) * 3 * 4;

  std::printf("building corpus: %u documents, %zu paragraphs...\n", docs,
              num_paragraphs);
  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  VODAK_CHECK(db.Populate(params).ok());

  // The paper's serving shape: many clients, same document base, cheap
  // stored-property predicates. Every query drives the same Paragraph
  // extent and touches the same p.number column, so the sharing is
  // directly readable from the store counters.
  const std::vector<std::string> pool = {
      "ACCESS p FROM p IN Paragraph WHERE p.number >= 1",
      "ACCESS p FROM p IN Paragraph WHERE p.number == 0",
      "ACCESS p FROM p IN Paragraph WHERE p.number <= 2",
      "ACCESS p FROM p IN Paragraph WHERE p.number >= 2",
      "ACCESS p FROM p IN Paragraph WHERE p.number == 1",
      "ACCESS p FROM p IN Paragraph WHERE p.number == 2",
      "ACCESS p.number FROM p IN Paragraph",
      "ACCESS p FROM p IN Paragraph WHERE p.number > 0",
  };

  algebra::AlgebraContext ctx(&db.catalog());
  exec::ExecContext exec_ctx{&db.catalog(), &db.store(), &db.methods()};
  std::vector<exec::ConcurrentQuery> queries;
  queries.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const std::string& text = pool[i % pool.size()];
    auto parsed = vql::ParseQuery(text);
    VODAK_CHECK(parsed.ok()) << parsed.status().ToString();
    vql::Binder binder(&db.catalog());
    auto bound = binder.Bind(parsed.value());
    VODAK_CHECK(bound.ok()) << bound.status().ToString();
    auto plan = algebra::TranslateQuery(ctx, bound.value());
    VODAK_CHECK(plan.ok()) << plan.status().ToString();
    exec::ConcurrentQuery query;
    query.plan = plan.value();
    query.result_ref = algebra::ResultRef(bound.value());
    queries.push_back(std::move(query));
  }

  const size_t lanes = exec::ResolveThreads(threads);
  exec::WorkerPool pool_obj(std::min(lanes, k));
  auto run_batch = [&](bool shared) {
    exec::ConcurrentOptions options;
    options.threads = lanes;
    options.shared_scan = shared;
    options.pool = &pool_obj;
    auto start = std::chrono::steady_clock::now();
    auto results = exec::ExecuteConcurrentColumns(queries, exec_ctx,
                                                  options);
    double ms = MsSince(start);
    VODAK_CHECK(results.ok()) << results.status().ToString();
    return std::make_pair(ms, std::move(results).value());
  };

  struct ModePoint {
    double ms = 0.0;
    uint64_t extent_scans = 0;
    uint64_t property_reads = 0;
  };
  auto measure = [&](bool shared) {
    ModePoint point;
    // Counted warm drain: the store counters are deterministic per
    // batch drain, so one counted pass suffices.
    db.ResetCounters();
    run_batch(shared);
    point.extent_scans = db.store().stats().extent_scans.load();
    point.property_reads = db.store().stats().property_reads.load();
    for (int r = 0; r < reps; ++r) point.ms += run_batch(shared).first;
    point.ms /= reps;
    return point;
  };

  // Parity first: both modes must agree query by query.
  auto shared_values = run_batch(true).second;
  auto private_values = run_batch(false).second;
  for (size_t i = 0; i < k; ++i) {
    VODAK_CHECK(shared_values[i] == private_values[i])
        << "query " << i << " differs between shared and private scans";
  }

  ModePoint shared = measure(true);
  ModePoint priv = measure(false);

  std::printf(
      "workload: K=%zu concurrent p.number queries over %zu paragraphs, "
      "%zu lanes\n",
      k, num_paragraphs, lanes);
  std::printf(
      "private scans (baseline):  %8.2f ms  %3llu extent passes  "
      "%10llu property reads\n",
      priv.ms, static_cast<unsigned long long>(priv.extent_scans),
      static_cast<unsigned long long>(priv.property_reads));
  std::printf(
      "shared scans:              %8.2f ms  %3llu extent passes  "
      "%10llu property reads\n",
      shared.ms, static_cast<unsigned long long>(shared.extent_scans),
      static_cast<unsigned long long>(shared.property_reads));
  std::printf(
      "shared_vs_private_speedup: %.2fx, scan passes %llux -> %llux, "
      "property reads %.1fx -> 1x\n",
      priv.ms / shared.ms,
      static_cast<unsigned long long>(priv.extent_scans),
      static_cast<unsigned long long>(shared.extent_scans),
      static_cast<double>(priv.property_reads) /
          static_cast<double>(shared.property_reads == 0
                                  ? 1
                                  : shared.property_reads));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"shared_scan\",\n");
    std::fprintf(f,
                 "  \"workload\": \"K concurrent p.number queries over "
                 "one Paragraph extent\",\n");
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", num_paragraphs);
    std::fprintf(f, "  \"k\": %zu,\n", k);
    std::fprintf(f, "  \"threads\": %zu,\n", lanes);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"shared_ms\": %.3f,\n", shared.ms);
    std::fprintf(f, "  \"private_ms\": %.3f,\n", priv.ms);
    std::fprintf(f, "  \"shared_vs_private_speedup\": %.3f,\n",
                 priv.ms / shared.ms);
    std::fprintf(f, "  \"extent_scans_shared\": %llu,\n",
                 static_cast<unsigned long long>(shared.extent_scans));
    std::fprintf(f, "  \"extent_scans_private\": %llu,\n",
                 static_cast<unsigned long long>(priv.extent_scans));
    std::fprintf(f, "  \"property_reads_shared\": %llu,\n",
                 static_cast<unsigned long long>(shared.property_reads));
    std::fprintf(f, "  \"property_reads_private\": %llu\n",
                 static_cast<unsigned long long>(priv.property_reads));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
