// Experiment X14: paged columnar storage — zone-map segment skipping
// under a deliberately small buffer cache. The paragraph corpus
// ingests into ~64k-row column segments behind the Pager (cache far
// below the data size, so the replacement policy is live), then a
// selective scan — a contiguous section-oid range that zone maps can
// refute segment by segment — re-runs in a loop against the
// segment-backed leaf, the in-memory extent baseline, and a row-mode
// oracle recomputed directly off the store.
//
// Wall clock alone is not the gate (CI is 1-core and noisy); the bench
// records the deterministic counters and *fails itself* when the
// structural claims do not hold on this run:
//   - every sampled query agrees exactly with the extent baseline and
//     the row-mode oracle (Value::Set equality, not counts),
//   - the selective loop skips segments (segments_skipped > 0) while
//     scanning only the survivors,
//   - the re-scan loop hits the buffer cache more than it misses
//     (cache_hits > cache_misses: survivors stay resident), and
//   - the full pass evicts (the cache really is smaller than the data).
// scripts/ci.sh --storage re-checks the counter claims out of
// BENCH_storage.json.
//
// Flags: --docs=N        corpus size in documents (default 834000 ->
//                        10,008,000 paragraphs, 3 sections x 4
//                        paragraphs; CI runs a smaller corpus)
//        --reps=N        selective re-scan repetitions (default 8)
//        --queries=N     sampled correctness queries (default 5)
//        --cache-pages=N pager buffer-cache budget (default 64)
//        --rows-per-segment=N column-segment row count (default 65536;
//                        CI shrinks it so a small corpus still spans
//                        many segments)
//        --json=PATH     machine-readable results (BENCH_storage.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "algebra/translate.h"
#include "bench_util.h"
#include "exec/physical.h"
#include "storage/segment_store.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One timed batch drain of `root`, counting active rows at the root.
std::pair<double, size_t> DrainOnce(exec::PhysOperator* root) {
  size_t rows = 0;
  auto start = std::chrono::steady_clock::now();
  VODAK_CHECK(root->Open().ok());
  exec::RowBatch batch;
  for (;;) {
    auto more = root->NextBatch(&batch);
    VODAK_CHECK(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    rows += batch.active_rows();
  }
  root->Close();
  return {MsSince(start), rows};
}

/// `p.section >= #Section:lo AND p.section < #Section:hi` — the
/// sargable shape zone maps refute: section oids are assigned in
/// creation order, so the range selects a contiguous slice of the
/// paragraph extent and every segment outside it.
algebra::LogicalRef RangePlan(algebra::AlgebraContext* ctx,
                              uint32_t section_class, uint32_t lo,
                              uint32_t hi) {
  auto get = ctx->Get("p", "Paragraph");
  VODAK_CHECK(get.ok());
  ExprRef cond = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kGe, Expr::Property(Expr::Var("p"), "section"),
                   Expr::Const(Value::OfOid(Oid(section_class, lo)))),
      Expr::Binary(BinOp::kLt, Expr::Property(Expr::Var("p"), "section"),
                   Expr::Const(Value::OfOid(Oid(section_class, hi)))));
  auto sel = ctx->Select(cond, get.value());
  VODAK_CHECK(sel.ok());
  return sel.value();
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 834000;
  int reps = 8;
  int queries = 5;
  size_t cache_pages = 64;
  uint32_t rows_per_segment = 64 * 1024;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-pages=", 14) == 0) {
      cache_pages = static_cast<size_t>(std::atoll(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--rows-per-segment=", 19) == 0) {
      rows_per_segment = static_cast<uint32_t>(std::atoi(argv[i] + 19));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--docs=N] [--reps=N] [--queries=N] "
                   "[--cache-pages=N] [--rows-per-segment=N] "
                   "[--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 6;  // keep the 10M-row build affordable
  params.vocabulary_size = 200;
  const size_t num_paragraphs = static_cast<size_t>(docs) * 3 * 4;
  const uint32_t num_sections = docs * 3;

  std::printf("building corpus: %u documents, %zu paragraphs...\n", docs,
              num_paragraphs);
  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  VODAK_CHECK(db.Populate(params).ok());

  const ClassDef* paragraph = db.catalog().FindClass("Paragraph");
  VODAK_CHECK(paragraph != nullptr);
  const PropertyDef* section_prop = paragraph->FindProperty("section");
  VODAK_CHECK(section_prop != nullptr);

  // ------------------------------------------------------------ ingest
  storage::PagerOptions pager_options;
  pager_options.cache_pages = cache_pages;
  auto segments = storage::SegmentStore::Open("bench_storage.pages",
                                              pager_options);
  VODAK_CHECK(segments.ok()) << segments.status().ToString();
  // Only the zone-tracked scalar slots ingest (number, section); the
  // content strings stay behind the store's normal property path, so
  // the page file holds exactly what segment scans touch.
  const uint32_t ingest_slots = section_prop->slot + 1;
  storage::IngestOptions ingest_options;
  ingest_options.rows_per_segment = rows_per_segment;
  auto ingest_start = std::chrono::steady_clock::now();
  VODAK_CHECK(segments.value()
                  ->IngestClass(db.store(), db.paragraph_class_id(),
                                ingest_slots, db.store().CurrentEpoch(),
                                ingest_options)
                  .ok());
  const double ingest_ms = MsSince(ingest_start);
  auto version = segments.value()->VersionAt(db.paragraph_class_id(),
                                             kEpochLatest);
  VODAK_CHECK(version != nullptr && version->total_rows == num_paragraphs);
  const size_t segments_total = version->segments.size();
  const storage::PagerStats& pstats = segments.value()->pager()->stats();
  const uint64_t ingest_misses =
      pstats.cache_misses.load(std::memory_order_relaxed);
  const uint64_t ingest_writebacks =
      pstats.writebacks.load(std::memory_order_relaxed);
  std::printf(
      "ingested %zu segments (%zu rows, %llu page faults, %llu "
      "writebacks) in %.0f ms\n",
      segments_total, static_cast<size_t>(version->total_rows),
      static_cast<unsigned long long>(ingest_misses),
      static_cast<unsigned long long>(ingest_writebacks), ingest_ms);

  algebra::AlgebraContext ctx(&db.catalog());
  exec::ExecContext extent_ctx =
      exec::ExecContext{&db.catalog(), &db.store(), &db.methods()};
  exec::ExecContext segment_ctx = extent_ctx;
  segment_ctx.segments = segments.value().get();

  // ------------------------------------------- full pass: eviction live
  // An unselective scan drags every segment's OID pages through the
  // small cache once — proof the budget really is below the data size.
  segments.value()->pager()->mutable_stats()->Reset();
  auto full_plan = RangePlan(&ctx, db.section_class_id(), 0,
                             num_sections + 1);
  auto full_root = exec::BuildPhysical(full_plan, segment_ctx);
  VODAK_CHECK(full_root.ok()) << full_root.status().ToString();
  auto full = DrainOnce(full_root.value().get());
  VODAK_CHECK(full.second == num_paragraphs)
      << "full segment pass saw " << full.second << " of "
      << num_paragraphs << " rows";
  const uint64_t full_evictions =
      pstats.evictions.load(std::memory_order_relaxed);
  std::printf("full segment pass: %zu rows, %.0f ms, %llu evictions\n",
              full.second, full.first,
              static_cast<unsigned long long>(full_evictions));

  // --------------------------------------- selective re-scan loop: gate
  // ~1% of sections, far from the extent head: zone maps must refute
  // every segment outside the slice, and the survivors' pages must stay
  // resident across the loop.
  const uint32_t slice = num_sections / 100 + 1;
  const uint32_t lo = num_sections / 2;
  auto selective_plan =
      RangePlan(&ctx, db.section_class_id(), lo, lo + slice);
  segments.value()->mutable_stats()->Reset();
  segments.value()->pager()->mutable_stats()->Reset();
  double selective_ms = 0.0;
  size_t selective_rows = 0;
  for (int r = 0; r < reps; ++r) {
    auto root = exec::BuildPhysical(selective_plan, segment_ctx);
    VODAK_CHECK(root.ok()) << root.status().ToString();
    auto got = DrainOnce(root.value().get());
    selective_ms += got.first;
    selective_rows = got.second;
  }
  selective_ms /= reps;
  const uint64_t seg_scanned = segments.value()->stats().segments_scanned
                                   .load(std::memory_order_relaxed);
  const uint64_t seg_skipped = segments.value()->stats().segments_skipped
                                   .load(std::memory_order_relaxed);
  const uint64_t cache_hits =
      pstats.cache_hits.load(std::memory_order_relaxed);
  const uint64_t cache_misses =
      pstats.cache_misses.load(std::memory_order_relaxed);

  // Extent baseline of the same predicate (no segment store attached).
  double extent_ms = 0.0;
  size_t extent_rows = 0;
  for (int r = 0; r < reps; ++r) {
    auto root = exec::BuildPhysical(selective_plan, extent_ctx);
    VODAK_CHECK(root.ok()) << root.status().ToString();
    auto got = DrainOnce(root.value().get());
    extent_ms += got.first;
    extent_rows = got.second;
  }
  extent_ms /= reps;
  VODAK_CHECK(selective_rows == extent_rows)
      << "segment drain found " << selective_rows
      << " rows, extent drain " << extent_rows;

  std::printf(
      "selective scan (%u of %u sections): %zu rows; segment path "
      "%.2f ms vs extent path %.2f ms (%.2fx)\n",
      slice, num_sections, selective_rows, selective_ms, extent_ms,
      extent_ms / selective_ms);
  std::printf(
      "pruning: %llu segments scanned / %llu skipped over %d reps; "
      "cache: %llu hits / %llu misses\n",
      static_cast<unsigned long long>(seg_scanned),
      static_cast<unsigned long long>(seg_skipped), reps,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses));

  // --------------------------------- sampled correctness vs the oracle
  // Random section ranges, each drained through the segment leaf and
  // the extent leaf as full result sets, then recomputed row by row
  // straight off the store — no shared scan, batch or paging code.
  auto extent = db.store().Extent(db.paragraph_class_id());
  VODAK_CHECK(extent.ok());
  std::vector<Value> section_col;
  VODAK_CHECK(db.store()
                  .GetPropertyColumn(db.paragraph_class_id(),
                                     section_prop->slot, extent.value(), 0,
                                     extent.value().size(), &section_col)
                  .ok());
  std::mt19937_64 rng(20260809);
  for (int q = 0; q < queries; ++q) {
    const uint32_t qlo = rng() % num_sections;
    const uint32_t qhi =
        qlo + 1 + static_cast<uint32_t>(rng() % (num_sections / 20 + 1));
    auto plan = RangePlan(&ctx, db.section_class_id(), qlo, qhi);
    auto seg_root = exec::BuildPhysical(plan, segment_ctx);
    auto ext_root = exec::BuildPhysical(plan, extent_ctx);
    VODAK_CHECK(seg_root.ok() && ext_root.ok());
    auto seg = exec::ExecuteColumn(seg_root.value().get(), "p",
                                   exec::ExecMode::kBatch);
    auto ext = exec::ExecuteColumn(ext_root.value().get(), "p",
                                   exec::ExecMode::kBatch);
    VODAK_CHECK(seg.ok() && ext.ok());
    const Value lo_oid = Value::OfOid(Oid(db.section_class_id(), qlo));
    const Value hi_oid = Value::OfOid(Oid(db.section_class_id(), qhi));
    std::vector<Value> expect;
    for (size_t i = 0; i < extent.value().size(); ++i) {
      if (Value::Compare(section_col[i], lo_oid) >= 0 &&
          Value::Compare(section_col[i], hi_oid) < 0) {
        expect.push_back(Value::OfOid(extent.value()[i]));
      }
    }
    const Value oracle = Value::Set(std::move(expect));
    VODAK_CHECK(seg.value() == oracle)
        << "sampled query " << q << " [" << qlo << ", " << qhi
        << "): segment drain diverged from the row oracle";
    VODAK_CHECK(ext.value() == oracle)
        << "sampled query " << q << " [" << qlo << ", " << qhi
        << "): extent drain diverged from the row oracle";
  }
  std::printf("%d sampled queries agree with the row-mode oracle\n",
              queries);

  // Deterministic structural gates — these fail the bench itself, not
  // just a downstream JSON check, so any standalone run is a real test.
  VODAK_CHECK(seg_skipped > 0 && seg_scanned > 0)
      << "selective loop scanned " << seg_scanned << " / skipped "
      << seg_skipped << " segments: zone maps refuted nothing";
  VODAK_CHECK(cache_hits > cache_misses)
      << "re-scan loop hit the cache " << cache_hits << " times vs "
      << cache_misses << " misses: survivors did not stay resident";
  VODAK_CHECK(segments_total > 1 || full_evictions > 0)
      << "corpus too small to exercise the cache (1 segment, 0 "
         "evictions)";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"storage\",\n");
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", num_paragraphs);
    std::fprintf(f, "  \"segments_total\": %zu,\n", segments_total);
    std::fprintf(f, "  \"rows_per_segment\": %u,\n", rows_per_segment);
    std::fprintf(f, "  \"page_size\": %zu,\n",
                 segments.value()->pager()->page_size());
    std::fprintf(f, "  \"cache_pages\": %zu,\n", cache_pages);
    std::fprintf(f, "  \"ingest_ms\": %.3f,\n", ingest_ms);
    std::fprintf(f, "  \"ingest_page_faults\": %llu,\n",
                 static_cast<unsigned long long>(ingest_misses));
    std::fprintf(f, "  \"ingest_writebacks\": %llu,\n",
                 static_cast<unsigned long long>(ingest_writebacks));
    std::fprintf(f, "  \"full_scan_ms\": %.3f,\n", full.first);
    std::fprintf(f, "  \"full_scan_evictions\": %llu,\n",
                 static_cast<unsigned long long>(full_evictions));
    std::fprintf(f, "  \"selective_reps\": %d,\n", reps);
    std::fprintf(f, "  \"selective_rows\": %zu,\n", selective_rows);
    std::fprintf(f, "  \"selective_segment_ms\": %.3f,\n", selective_ms);
    std::fprintf(f, "  \"selective_extent_ms\": %.3f,\n", extent_ms);
    std::fprintf(f, "  \"segments_scanned\": %llu,\n",
                 static_cast<unsigned long long>(seg_scanned));
    std::fprintf(f, "  \"segments_skipped\": %llu,\n",
                 static_cast<unsigned long long>(seg_skipped));
    std::fprintf(f, "  \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(cache_hits));
    std::fprintf(f, "  \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(cache_misses));
    std::fprintf(f, "  \"queries_checked\": %d\n", queries);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  std::remove("bench_storage.pages");
  return 0;
}
