#ifndef VODAK_BENCH_BENCH_UTIL_H_
#define VODAK_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <set>

#include "workload/document_knowledge.h"

namespace vodak {
namespace bench {

/// A populated document database plus a wired session, cached per
/// parameter combination so google-benchmark iterations don't pay the
/// corpus build repeatedly.
struct Scenario {
  std::unique_ptr<workload::DocumentDb> db;
  std::unique_ptr<engine::Database> session;
};

inline Scenario MakeScenario(const workload::CorpusParams& params,
                             const std::set<std::string>& knowledge = {}) {
  Scenario scenario;
  scenario.db = std::make_unique<workload::DocumentDb>();
  VODAK_CHECK(scenario.db->Init().ok());
  VODAK_CHECK(scenario.db->Populate(params).ok());
  auto session = workload::MakePaperSession(scenario.db.get(), knowledge);
  VODAK_CHECK(session.ok()) << session.status().ToString();
  scenario.session = std::move(session).value();
  return scenario;
}

/// Cache keyed by an integer id the benchmark derives from its Args().
inline Scenario& CachedScenario(
    int key, const std::function<Scenario()>& factory) {
  static std::map<int, Scenario>* cache = new std::map<int, Scenario>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, factory()).first;
  }
  return it->second;
}

}  // namespace bench
}  // namespace vodak

#endif  // VODAK_BENCH_BENCH_UTIL_H_
