// Experiment X13: compiled (bytecode VM) vs interpreted (operator tree)
// execution of a predicate-heavy fused chain — the workload compiled
// query execution exists for: four stacked predicates over the same
// stored property, the shape derived-predicate rewrites emit (bound
// predicates are individually redundant at runtime but each is its own
// Filter operator). The operator tree pays one virtual NextBatch
// hand-off per operator per batch and re-reads the property column
// from the store once per filter; the VM's compiler CSEs the property
// hop into one register materialization, then runs the whole predicate
// stack as typed compare loops inside a single fused dispatch per scan
// batch.
//
// Wall clock alone is not the gate (CI is 1-core and noisy); the bench
// also records the deterministic process-wide counters from
// common/vm_stats.h and *fails itself* when the structural claims do
// not hold on this run:
//   - vm_dispatches < operator_handoffs on the same drain (fusion
//     collapses the per-operator virtual calls), and
//   - arena_allocations_steady == 0 (after the first drain warms the
//     QueryArena, re-running the query allocates nothing per batch).
// scripts/ci.sh --vm re-checks both out of BENCH_vm.json.
//
// Flags: --docs=N   corpus size in documents (default 8350 -> ~100k
//                   paragraphs, 3 sections x 4 paragraphs)
//        --reps=N   timed repetitions per mode (default 5)
//        --json=PATH machine-readable results (BENCH_vm.json in CI)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "algebra/translate.h"
#include "bench_util.h"
#include "common/vm_stats.h"
#include "exec/physical.h"
#include "exec/vm.h"
#include "vql/parser.h"

namespace {

using namespace vodak;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One timed batch drain of `root`, counting active rows at the root.
std::pair<double, size_t> DrainOnce(exec::PhysOperator* root) {
  size_t rows = 0;
  auto start = std::chrono::steady_clock::now();
  VODAK_CHECK(root->Open().ok());
  exec::RowBatch batch;
  for (;;) {
    auto more = root->NextBatch(&batch);
    VODAK_CHECK(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    rows += batch.active_rows();
  }
  root->Close();
  return {MsSince(start), rows};
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t docs = 8350;
  int reps = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      docs = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--docs=N] [--reps=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::CorpusParams params;
  params.num_documents = docs;
  params.sections_per_document = 3;
  params.paragraphs_per_section = 4;
  params.words_per_paragraph = 8;  // keep corpus build cheap
  params.vocabulary_size = 200;
  const size_t num_paragraphs = static_cast<size_t>(docs) * 3 * 4;

  std::printf("building corpus: %u documents, %zu paragraphs...\n", docs,
              num_paragraphs);
  workload::DocumentDb db;
  VODAK_CHECK(db.Init().ok());
  VODAK_CHECK(db.Populate(params).ok());

  // The fused chain: five stacked predicates on p.number (0..3) —
  // two derived bounds and a derived exclusion guard (satisfied by
  // every row, as derived predicates typically are at runtime), then
  // 75% / 50% cumulative survivors. Every predicate is a total-order
  // compare of the same
  // one-hop property against an INT constant, so the VM materializes
  // p.number once (CSE temp register) and runs five typed compare
  // loops; the tree re-fetches the property column per filter.
  auto parse_expr = [](const char* text) {
    auto e = vql::ParseExpr(text);
    VODAK_CHECK(e.ok()) << e.status().ToString();
    return e.value();
  };
  algebra::AlgebraContext ctx(&db.catalog());
  auto get = ctx.Get("p", "Paragraph");
  VODAK_CHECK(get.ok());
  auto f1 = ctx.Select(parse_expr("p.number >= 0"), get.value());
  VODAK_CHECK(f1.ok());
  auto f2 = ctx.Select(parse_expr("p.number <= 3"), f1.value());
  VODAK_CHECK(f2.ok());
  auto f3 = ctx.Select(parse_expr("p.number >= 1"), f2.value());
  VODAK_CHECK(f3.ok());
  auto f4 = ctx.Select(parse_expr("p.number <= 2"), f3.value());
  VODAK_CHECK(f4.ok());
  auto f5 = ctx.Select(parse_expr("p.number != 99"), f4.value());
  VODAK_CHECK(f5.ok());
  const algebra::LogicalRef chain = f5.value();
  const char* chain_desc =
      "select p.number >= 0; select p.number <= 3; "
      "select p.number >= 1; select p.number <= 2; "
      "select p.number != 99";
  exec::ExecContext exec_ctx =
      exec::ExecContext{&db.catalog(), &db.store(), &db.methods()};

  // Operator-tree drain with counted hand-offs.
  auto tree = exec::BuildPhysical(chain, exec_ctx);
  VODAK_CHECK(tree.ok()) << tree.status().ToString();
  VmStats::Reset();
  auto tree_warm = DrainOnce(tree.value().get());
  const uint64_t operator_handoffs =
      VmStats::operator_handoffs.load(std::memory_order_relaxed);

  // VM compile (the cost model must choose it on its own — no force)
  // plus a counted warm drain and a counted steady re-drain.
  auto choice = exec::TryCompileVm(chain, exec_ctx, /*force=*/false);
  VODAK_CHECK(choice.ok()) << choice.status().ToString();
  VODAK_CHECK(choice.value().compiled)
      << "cost model refused the fused chain: " << choice.value().annotation;
  auto* vm = static_cast<exec::VmExec*>(choice.value().op.get());
  std::printf("%s", choice.value().annotation.c_str());

  VmStats::Reset();
  auto vm_warm = DrainOnce(vm);
  const uint64_t vm_dispatches =
      VmStats::vm_dispatches.load(std::memory_order_relaxed);
  const uint64_t vm_handoffs =
      VmStats::operator_handoffs.load(std::memory_order_relaxed);
  const uint64_t arena_warmup =
      VmStats::arena_allocations.load(std::memory_order_relaxed);
  auto vm_steady_probe = DrainOnce(vm);
  const uint64_t arena_steady =
      VmStats::arena_allocations.load(std::memory_order_relaxed) -
      arena_warmup;
  const uint64_t arena_bytes = vm->arena().RetainedBytes();

  VODAK_CHECK(tree_warm.second == vm_warm.second &&
              vm_warm.second == vm_steady_probe.second)
      << "tree/vm cardinality mismatch: " << tree_warm.second << " vs "
      << vm_warm.second << " vs " << vm_steady_probe.second;

  double tree_ms = 0.0;
  double vm_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    tree_ms += DrainOnce(tree.value().get()).first;
    vm_ms += DrainOnce(vm).first;
  }
  tree_ms /= reps;
  vm_ms /= reps;

  std::printf("workload: %s over %zu paragraphs, %zu hits\n", chain_desc,
              num_paragraphs, tree_warm.second);
  std::printf("operator tree (NextBatch): %8.2f ms  %6.2f Mrows/s\n",
              tree_ms, num_paragraphs / tree_ms / 1000.0);
  std::printf("bytecode VM   (fused):     %8.2f ms  %6.2f Mrows/s\n",
              vm_ms, num_paragraphs / vm_ms / 1000.0);
  std::printf("vm_vs_tree_speedup: %.2fx (hardware threads: %u)\n",
              tree_ms / vm_ms, std::thread::hardware_concurrency());
  std::printf(
      "counters: %llu operator hand-offs -> %llu vm dispatches; arena "
      "allocations %llu warm-up, %llu steady; %llu arena bytes retained\n",
      static_cast<unsigned long long>(operator_handoffs),
      static_cast<unsigned long long>(vm_dispatches),
      static_cast<unsigned long long>(arena_warmup),
      static_cast<unsigned long long>(arena_steady),
      static_cast<unsigned long long>(arena_bytes));

  // Deterministic structural gates — these fail the bench itself, not
  // just a downstream JSON check, so any standalone run is a real test.
  VODAK_CHECK(vm_dispatches > 0 && vm_dispatches < operator_handoffs)
      << "fusion claim failed: " << vm_dispatches << " vm dispatches vs "
      << operator_handoffs << " operator hand-offs";
  VODAK_CHECK(vm_handoffs == 0)
      << "vm drain passed through " << vm_handoffs << " tree hand-offs";
  VODAK_CHECK(arena_steady == 0)
      << "steady-state drain grew the arena " << arena_steady << " times";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"vm\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", chain_desc);
    std::fprintf(f, "  \"docs\": %u,\n", docs);
    std::fprintf(f, "  \"paragraphs\": %zu,\n", num_paragraphs);
    std::fprintf(f, "  \"hits\": %zu,\n", tree_warm.second);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"tree_ms\": %.3f,\n", tree_ms);
    std::fprintf(f, "  \"vm_ms\": %.3f,\n", vm_ms);
    std::fprintf(f, "  \"vm_vs_tree_speedup\": %.3f,\n", tree_ms / vm_ms);
    std::fprintf(f, "  \"operator_handoffs_tree\": %llu,\n",
                 static_cast<unsigned long long>(operator_handoffs));
    std::fprintf(f, "  \"vm_dispatches\": %llu,\n",
                 static_cast<unsigned long long>(vm_dispatches));
    std::fprintf(f, "  \"arena_allocations_warmup\": %llu,\n",
                 static_cast<unsigned long long>(arena_warmup));
    std::fprintf(f, "  \"arena_allocations_steady\": %llu,\n",
                 static_cast<unsigned long long>(arena_steady));
    std::fprintf(f, "  \"arena_retained_bytes\": %llu\n",
                 static_cast<unsigned long long>(arena_bytes));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
