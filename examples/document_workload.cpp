// Runs the paper's Examples 1–3 (methods in the WHERE, FROM and ACCESS
// clauses, §2.2) plus the §4.2 implication query over the synthetic
// document corpus, printing plans, result sizes and measured method
// invocation counts. Run: ./build/examples/document_workload
#include <iostream>

#include "workload/document_knowledge.h"

int main() {
  using namespace vodak;

  workload::DocumentDb db;
  (void)db.Init();
  workload::CorpusParams params;
  params.num_documents = 60;
  params.implementation_fraction = 0.15;
  (void)db.Populate(params);
  auto session = workload::MakePaperSession(&db);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  struct Scenario {
    const char* title;
    const char* query;
  };
  const Scenario scenarios[] = {
      {"Example 1 — parameterized method as join predicate",
       "ACCESS [p: p.number, q: q.number] "
       "FROM p IN Paragraph, q IN Paragraph "
       "WHERE p->sameDocument(q) AND p.number == 0 AND q.number == 1"},
      {"Example 2 — method in the FROM clause (dependent range)",
       "ACCESS d.title FROM d IN Document, p IN d->paragraphs() "
       "WHERE p->contains_string('implementation')"},
      {"Example 3 — method in the ACCESS clause",
       "ACCESS [doc: d.title, paras: d->paragraphs()] FROM d IN Document "
       "WHERE d.title == 'Query Optimization'"},
      {"Implication (§4.2) — precomputed largeParagraphs",
       "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 100"},
  };

  for (const Scenario& scenario : scenarios) {
    std::cout << "=== " << scenario.title << " ===\n"
              << scenario.query << "\n";
    db.ResetCounters();
    auto result = (*session)->Run(scenario.query, {/*optimize=*/true});
    if (!result.ok()) {
      std::cerr << "  failed: " << result.status().ToString() << "\n";
      continue;
    }
    auto naive = (*session)->RunNaive(scenario.query);
    std::cout << "  plan: " << result.value().chosen_plan->ToString()
              << "\n";
    std::cout << "  |result| = " << result.value().result.AsSet().size()
              << ", cost " << result.value().original_cost << " -> "
              << result.value().chosen_cost << ", execute "
              << result.value().execute_ms << " ms\n";
    std::cout << "  method invocations during execution: "
              << db.methods().total_invocations() << "\n";
    std::cout << "  matches naive evaluation: "
              << (naive.ok() && naive.value() == result.value().result
                      ? "yes"
                      : "NO")
              << "\n\n";
  }
  return 0;
}
