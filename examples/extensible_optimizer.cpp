// Demonstrates the §7 extensibility story on a *fresh* schema that has
// nothing to do with documents: a Person/City schema with an age()
// method over a stored birth year (derived data, §5.1). The schema
// designer declares two pieces of knowledge, the generator builds a new
// optimizer module for the schema, and the optimizer rewrites queries it
// could never rewrite otherwise.  Run: ./build/examples/extensible_optimizer
#include <iostream>

#include "engine/database.h"
#include "workload/document_db.h"

using namespace vodak;

int main() {
  // -- schema ------------------------------------------------------------
  Catalog catalog;
  ObjectStore store;
  MethodRegistry methods;

  ClassDef* person = catalog.DefineClass("Person").value();
  (void)person->AddProperty("name", Type::String());
  (void)person->AddProperty("birthYear", Type::Int());
  (void)person->AddProperty("home", Type::OidOf("City"));
  (void)person->AddMethod(
      {"age", {}, Type::Int(), MethodLevel::kInstance});
  ClassDef* city = catalog.DefineClass("City").value();
  (void)city->AddProperty("name", Type::String());
  (void)city->AddProperty("inhabitants",
                          Type::SetOf(Type::OidOf("Person")));

  uint32_t person_id = store.RegisterClass("Person", 3);
  uint32_t city_id = store.RegisterClass("City", 2);

  // age(): derived from the stored birth year — internal encoding.
  const int64_t kCurrentYear = 1995;  // the paper's year, fittingly
  MethodImpl age_impl;
  age_impl.kind = MethodImplKind::kNative;
  age_impl.native = [kCurrentYear](MethodCallContext& ctx,
                                   const Value& self,
                                   const std::vector<Value>&)
      -> Result<Value> {
    VODAK_ASSIGN_OR_RETURN(
        Value year, ReadPropertyByName(*ctx.catalog, *ctx.store,
                                       self.AsOid(), "birthYear"));
    return Value::Int(kCurrentYear - year.AsInt());
  };
  (void)methods.Register("Person",
                         {"age", {}, Type::Int(), MethodLevel::kInstance},
                         std::move(age_impl), {4.0, 0.5, 1.0});

  // -- data ---------------------------------------------------------------
  Oid metropolis = store.CreateObject(city_id).value();
  (void)store.SetProperty(metropolis, 0, Value::String("Metropolis"));
  std::vector<Value> inhabitants;
  for (int i = 0; i < 100; ++i) {
    Oid p = store.CreateObject(person_id).value();
    (void)store.SetProperty(p, 0,
                            Value::String("P" + std::to_string(i)));
    (void)store.SetProperty(p, 1, Value::Int(1930 + (i * 7) % 60));
    (void)store.SetProperty(p, 2, Value::OfOid(metropolis));
    inhabitants.push_back(Value::OfOid(p));
  }
  (void)store.SetProperty(metropolis, 1, Value::Set(inhabitants));

  // -- knowledge + per-schema optimizer generation (§7) --------------------
  engine::Database session(&catalog, &store, &methods);
  // The derived-data equivalence: age() unfolds to arithmetic over the
  // stored property (expression equivalence, §4.2).
  auto s1 = session.knowledge().AddExprEquivalence(
      "AGE", "x", "Person", "x->age()",
      "1995 - x.birthYear");
  // The inverse link between home and inhabitants (condition
  // equivalence, like E3/E4).
  auto s2 = session.knowledge().AddCondEquivalence(
      "HOME", "x", "Person", "x.home == c", "x IS-IN c.inhabitants");
  if (!s1.ok() || !s2.ok()) {
    std::cerr << s1.ToString() << " / " << s2.ToString() << "\n";
    return 1;
  }
  if (auto s = session.GenerateOptimizer(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const std::string query =
      "ACCESS x.name FROM x IN Person "
      "WHERE x->age() > 40 AND x.home == "
      "NIL";  // placeholder, replaced below
  // Queries over the new schema:
  for (const char* q : {
           "ACCESS x.name FROM x IN Person WHERE x->age() > 40",
           "ACCESS x.name FROM x IN Person, c IN City "
           "WHERE x.home == c AND c.name == 'Metropolis' AND "
           "x->age() > 40",
       }) {
    auto explained = session.Explain(q, {/*optimize=*/true,
                                         /*trace=*/true});
    if (!explained.ok()) {
      std::cerr << explained.status().ToString() << "\n";
      return 1;
    }
    std::cout << explained.value() << "\n";
    auto optimized = session.Run(q, {true, false});
    auto naive = session.RunNaive(q);
    std::cout << "results match naive: "
              << (optimized.ok() && naive.ok() &&
                          optimized.value().result == naive.value()
                      ? "yes"
                      : "NO")
              << "\n\n";
  }
  (void)query;
  return 0;
}
