// Quickstart: build the paper's §2.1 document schema, load a synthetic
// corpus, register the Example 4 equivalences, run the paper's
// headline query with and without semantic optimization, then submit
// a concurrent batch through the Submit API so the queries share one
// extent pass.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "workload/document_knowledge.h"

int main() {
  using namespace vodak;

  // 1. The paper's document database (classes Document, Section,
  //    Paragraph with the §2.1 methods) with a synthetic corpus.
  workload::DocumentDb db;
  if (auto s = db.Init(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  workload::CorpusParams params;
  params.num_documents = 200;
  if (auto s = db.Populate(params); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // 2. A database session with the paper's knowledge (E1–E5 + the
  //    largeParagraphs implication) and a generated optimizer (§7).
  auto session = workload::MakePaperSession(&db);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  // 3. The Example 4 query, exactly as a user would write it.
  const std::string query =
      "ACCESS p FROM p IN Paragraph "
      "WHERE p->contains_string('implementation') "
      "AND (p->document()).title == 'Query Optimization'";

  std::cout << "Registered knowledge:\n"
            << (*session)->knowledge().ToString() << "\n";

  auto unoptimized = (*session)->Run(query, {/*optimize=*/false});
  auto optimized = (*session)->Run(query, {/*optimize=*/true});
  if (!unoptimized.ok() || !optimized.ok()) {
    std::cerr << "query failed\n";
    return 1;
  }

  std::cout << "Query:\n  " << query << "\n\n";
  std::cout << "Unoptimized plan (cost "
            << unoptimized.value().original_cost << ", "
            << unoptimized.value().execute_ms << " ms):\n"
            << unoptimized.value().chosen_plan->ToTreeString() << "\n";
  std::cout << "Optimized plan (cost " << optimized.value().chosen_cost
            << ", " << optimized.value().execute_ms << " ms, optimized in "
            << optimized.value().optimize_ms << " ms):\n"
            << optimized.value().chosen_plan->ToTreeString() << "\n";
  std::cout << "Results agree: "
            << (unoptimized.value().result == optimized.value().result
                    ? "yes"
                    : "NO (bug!)")
            << ", " << optimized.value().result.AsSet().size()
            << " paragraphs found\n";
  std::cout << "Speedup: "
            << unoptimized.value().execute_ms /
                   std::max(1e-6, optimized.value().execute_ms)
            << "x\n";

  // 4. A concurrent batch through the Submit API: each request carries
  //    its own plan/run knobs (and optionally a deadline or a
  //    CancellationToken); the batch drains on shared scans, so these
  //    three Paragraph queries pay one extent pass between them.
  std::vector<engine::QueryRequest> batch(3);
  batch[0].vql = "ACCESS p FROM p IN Paragraph WHERE p.number >= 2";
  batch[1].vql = "ACCESS p FROM p IN Paragraph WHERE p.number <= 1";
  batch[2].vql = query;  // the Example 4 query again, optimized
  for (auto& request : batch) request.plan.optimize = true;

  auto outcomes = (*session)->Submit(batch, {/*lanes=*/2});
  std::cout << "\nSubmit batch (" << batch.size() << " queries):\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    if (!out.status.ok()) {
      std::cerr << "  [" << i << "] " << out.status.ToString() << "\n";
      return 1;
    }
    std::cout << "  [" << i << "] " << out.result.result.AsSet().size()
              << " rows, generation " << out.stats.generation_id
              << ", queue " << out.stats.queue_ms << " ms, drain "
              << out.stats.drain_ms << " ms\n";
  }
  return 0;
}
