// The §7 demonstrator: traces every rule application while the optimizer
// rewrites the Example 4 query step by step, visualizing how the
// schema-specific equivalences E1–E5 drive the derivation Q → … → PQ of
// §2.3. Run: ./build/examples/trace_demo
#include <iostream>

#include "workload/document_knowledge.h"

int main() {
  using namespace vodak;

  workload::DocumentDb db;
  (void)db.Init();
  workload::CorpusParams params;
  params.num_documents = 50;
  (void)db.Populate(params);
  auto session = workload::MakePaperSession(&db);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  const std::string query =
      "ACCESS p FROM p IN Paragraph "
      "WHERE p->contains_string('implementation') "
      "AND (p->document()).title == 'Query Optimization'";

  auto explained = (*session)->Explain(query, {/*optimize=*/true,
                                               /*trace=*/true});
  if (!explained.ok()) {
    std::cerr << explained.status().ToString() << "\n";
    return 1;
  }
  std::cout << explained.value();

  // Show the restricted-algebra (§6.1) decomposition of the two method
  // scans of plan PQ.
  std::cout << "\n== restricted-algebra decomposition of PQ's sources ==\n";
  auto result = (*session)->Run(query, {true, false});
  if (result.ok()) {
    const algebra::LogicalNode* node = result.value().chosen_plan.get();
    std::function<void(const algebra::LogicalNode&)> walk =
        [&](const algebra::LogicalNode& n) {
          if (n.op() == algebra::LogicalOp::kExprSource) {
            std::cout << "  " << n.expr()->ToString() << "\n    -> "
                      << exec::DecomposeToRestrictedOps(n.expr()) << "\n";
          }
          for (const auto& input : n.inputs()) walk(*input);
        };
    walk(*node);
  }
  return 0;
}
