#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke pass (so bench binaries cannot
# bit-rot silently), with sanitizer modes that run the executor tests
# under TSan/ASan/UBSan — races in the morsel-driven worker pool (and
# UB the optimizer could weaponize) must fail the build, not corrupt
# results silently — and static-analysis modes: `--lint` runs the
# repo's own contract lint (scripts/lint.py) plus the clang-format
# drift check on src/exec/, `--tidy` runs clang-tidy (.clang-tidy)
# over src/ against the build's compile_commands.json.
# `--thread-safety` arms clang's Thread Safety Analysis
# (-Werror=thread-safety over the GUARDED_BY contracts; see
# docs/ARCHITECTURE.md §"Static analysis & concurrency contracts").
# `--service` runs the query-service load-harness smoke (K closed-loop
# socket clients vs the row-mode oracle) and gates BENCH_service.json
# on its admission counters.
#
# `--mvcc` runs the epoch-snapshot stress gate: the differential MVCC
# harness (tests/mvcc_stress_test.cc) under ThreadSanitizer with three
# fixed seeds plus one time-derived seed (echoed into the log so any
# failure replays with --seed=N).
#
# `--vm` runs the compiled-execution gate: the VM unit suite plus the
# three-way differential fuzz harness (tests/vm_diff_test.cc — bytecode
# VM vs operator tree vs row-mode oracle) under ThreadSanitizer with
# seeds 1/2/3 plus a time-derived seed, then bench_vm's structural
# counter gate out of BENCH_vm.json (fused dispatches strictly below
# the tree's operator hand-offs; zero steady-state arena growth).
#
# `--storage` runs the paged-storage gate: the pager/zone-map unit
# suite plus the segment differential harness (tests/segment_diff_test.cc
# — segment-backed scans vs the in-memory extent vs the row-mode
# oracle, across serial/parallel/VM drains and under concurrent
# writers) under ThreadSanitizer, then bench_storage's structural
# counter gate out of BENCH_storage.json (zone maps must skip segments
# on the selective workload; the re-scan loop must hit the buffer
# cache more than it misses).
#
# Usage: scripts/ci.sh [--skip-bench] [--tsan|--asan|--ubsan]
#                      [--lint] [--tidy] [--thread-safety] [--service]
#                      [--mvcc] [--vm] [--storage]
#                      [--build-type=TYPE] [--build-dir=DIR]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
SANITIZE=""
BUILD_TYPE=""
BUILD_DIR=""
LINT=0
TIDY=0
THREAD_SAFETY=0
SERVICE=0
MVCC=0
VM=0
STORAGE=0
for arg in "$@"; do
  case "$arg" in
    --skip-bench) SKIP_BENCH=1 ;;
    --tsan) SANITIZE=thread ;;
    --asan) SANITIZE=address ;;
    --ubsan) SANITIZE=undefined ;;
    --lint) LINT=1 ;;
    --tidy) TIDY=1 ;;
    --thread-safety) THREAD_SAFETY=1 ;;
    --service) SERVICE=1 ;;
    --mvcc) MVCC=1 ;;
    --vm) VM=1 ;;
    --storage) STORAGE=1 ;;
    --build-type=*) BUILD_TYPE="${arg#*=}" ;;
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    *) echo "usage: scripts/ci.sh [--skip-bench] [--tsan|--asan|--ubsan]" \
            "[--lint] [--tidy] [--thread-safety] [--service] [--mvcc]" \
            "[--vm] [--storage] [--build-type=TYPE] [--build-dir=DIR]" >&2
       exit 2 ;;
  esac
done

THREAD_SAFETY_FLAG=""
if [[ "$THREAD_SAFETY" == "1" ]]; then
  THREAD_SAFETY_FLAG="-DVODAK_THREAD_SAFETY=ON"
fi

# ---------------------------------------------------------------- --lint
# The vodak contract lint plus the format drift check; a pure
# static pass, so it neither needs nor builds a tree.
if [[ "$LINT" == "1" ]]; then
  echo "== lint: scripts/lint.py =="
  python3 scripts/lint.py
  echo "== lint: clang-format drift check (src/exec/) =="
  CLANG_FORMAT="${CLANG_FORMAT:-}"
  if [[ -z "$CLANG_FORMAT" ]]; then
    for candidate in clang-format clang-format-2{0,1} clang-format-1{9,8,7,6,5,4}; do
      if command -v "$candidate" >/dev/null 2>&1; then
        CLANG_FORMAT="$candidate"
        break
      fi
    done
  fi
  if [[ -n "$CLANG_FORMAT" ]]; then
    "$CLANG_FORMAT" --dry-run -Werror src/exec/*.h src/exec/*.cc
    echo "lint: src/exec/ is clang-format clean"
  else
    # Tolerated locally (the image may lack LLVM tools); the CI lint
    # job always has clang-format, so drift still cannot land.
    echo "lint: clang-format not found; skipping the drift check" >&2
  fi
fi

# ---------------------------------------------------------------- --tidy
if [[ "$TIDY" == "1" ]]; then
  echo "== tidy: clang-tidy over src/ =="
  CLANG_TIDY="${CLANG_TIDY:-}"
  if [[ -z "$CLANG_TIDY" ]]; then
    for candidate in clang-tidy clang-tidy-2{0,1} clang-tidy-1{9,8,7,6,5,4}; do
      if command -v "$candidate" >/dev/null 2>&1; then
        CLANG_TIDY="$candidate"
        break
      fi
    done
  fi
  if [[ -z "$CLANG_TIDY" ]]; then
    echo "ci.sh: --tidy needs clang-tidy on PATH (or CLANG_TIDY=...);" \
         "not found" >&2
    exit 1
  fi
  TIDY_BUILD_DIR="${BUILD_DIR:-build-tidy}"
  # Any configured tree emits compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally); building is
  # not required, but FetchContent'd gtest headers must exist for the
  # test includes, so configure is.
  cmake -B "$TIDY_BUILD_DIR" -S . \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  "$CLANG_TIDY" -p "$TIDY_BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
  echo "tidy: ${#TIDY_SOURCES[@]} files clean"
fi

if [[ "$LINT" == "1" || "$TIDY" == "1" ]]; then
  echo "== ci.sh (static analysis): all green =="
  exit 0
fi

if [[ -n "$SANITIZE" ]]; then
  : "${BUILD_DIR:=build-$SANITIZE}"
  echo "== sanitizer ($SANITIZE): configure + build + executor tests =="
  cmake -B "$BUILD_DIR" -S . -DVODAK_SANITIZE="$SANITIZE" \
        ${THREAD_SAFETY_FLAG:+"$THREAD_SAFETY_FLAG"} \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"}
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
        --target exec_batch_test exec_parallel_test exec_selvec_test \
                 exec_shared_scan_test engine_submit_test service_test \
                 mvcc_edge_test mvcc_stress_test vm_test vm_diff_test \
                 storage_test segment_diff_test
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
        -R 'exec_batch_test|exec_parallel_test|exec_selvec_test|exec_shared_scan_test|engine_submit_test|service_test|mvcc_edge_test|mvcc_stress_test|vm_test|vm_diff_test|storage_test|segment_diff_test'
  echo "== ci.sh ($SANITIZE): all green =="
  exit 0
fi

# ----------------------------------------------------------------- --mvcc
# The epoch-snapshot stress gate: the differential MVCC harness under
# ThreadSanitizer. Three fixed seeds make the leg reproducible run to
# run; the fourth, time-derived seed walks the schedule space so the
# suite keeps probing new interleavings — it is echoed (and printed by
# the binary itself) so a failing run replays exactly.
if [[ "$MVCC" == "1" ]]; then
  : "${BUILD_DIR:=build-mvcc-tsan}"
  echo "== mvcc: TSan build of the stress + edge suites =="
  cmake -B "$BUILD_DIR" -S . -DVODAK_SANITIZE=thread \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
        --target mvcc_stress_test mvcc_edge_test
  echo "== mvcc: deterministic edge cases =="
  "$BUILD_DIR"/mvcc_edge_test
  TIME_SEED="$(date +%s)"
  echo "== mvcc: stress seeds 1 2 3 $TIME_SEED (time-derived) =="
  for seed in 1 2 3 "$TIME_SEED"; do
    echo "-- mvcc_stress_test --seed=$seed"
    "$BUILD_DIR"/mvcc_stress_test --seed="$seed"
  done
  echo "== ci.sh (mvcc): all green =="
  exit 0
fi

# ------------------------------------------------------------------ --vm
# The compiled-execution gate, in two halves. Correctness first: the
# deterministic opcode/compiler units, then the three-way differential
# fuzz harness (tests/vm_diff_test.cc — bytecode VM vs operator tree vs
# row-mode oracle, >=1000 generated queries per seed, plus the
# concurrent-writer run that replays the oracle at the reader's pinned
# epoch) under ThreadSanitizer with three fixed seeds and one
# time-derived seed (echoed so any failure replays with --seed=N).
# Then performance, gated on deterministic counters rather than wall
# clock (CI is 1-core): bench_vm self-checks and BENCH_vm.json must
# show fusion collapsing the per-operator virtual hand-offs
# (vm_dispatches strictly below operator_handoffs_tree) and a
# steady-state drain that never grows the QueryArena
# (arena_allocations_steady exactly zero).
if [[ "$VM" == "1" ]]; then
  : "${BUILD_DIR:=build-vm-tsan}"
  echo "== vm: TSan build of the VM unit + differential suites =="
  cmake -B "$BUILD_DIR" -S . -DVODAK_SANITIZE=thread \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target vm_test vm_diff_test
  echo "== vm: deterministic opcode + compiler units =="
  "$BUILD_DIR"/vm_test
  TIME_SEED="$(date +%s)"
  echo "== vm: differential fuzz seeds 1 2 3 $TIME_SEED (time-derived) =="
  for seed in 1 2 3 "$TIME_SEED"; do
    echo "-- vm_diff_test --seed=$seed"
    "$BUILD_DIR"/vm_diff_test --seed="$seed"
  done
  echo "== vm: bench_vm counter gate (plain build) =="
  VM_BENCH_DIR=build
  cmake -B "$VM_BENCH_DIR" -S . \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$VM_BENCH_DIR" -j"$(nproc)" --target bench_vm
  "$VM_BENCH_DIR"/bench_vm --docs=800 --reps=2 --json=BENCH_vm.json
  vm_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_vm.json; }
  VM_DISPATCHES="$(vm_field vm_dispatches)"
  VM_HANDOFFS="$(vm_field operator_handoffs_tree)"
  VM_ARENA_STEADY="$(vm_field arena_allocations_steady)"
  if [[ -z "$VM_DISPATCHES" || -z "$VM_HANDOFFS" || -z "$VM_ARENA_STEADY" ]]; then
    echo "ci.sh: BENCH_vm.json is missing counter fields" >&2
    exit 1
  fi
  if (( VM_DISPATCHES == 0 || VM_DISPATCHES >= VM_HANDOFFS )); then
    echo "ci.sh: fused chain paid $VM_DISPATCHES vm dispatches," \
         "not fewer than the operator tree's $VM_HANDOFFS hand-offs" >&2
    exit 1
  fi
  if (( VM_ARENA_STEADY != 0 )); then
    echo "ci.sh: steady-state drain grew the QueryArena" \
         "$VM_ARENA_STEADY times (expected zero)" >&2
    exit 1
  fi
  echo "vm gate: $VM_DISPATCHES vm dispatches vs $VM_HANDOFFS tree" \
       "hand-offs, arena steady growth $VM_ARENA_STEADY -- ok"
  echo "== ci.sh (vm): all green =="
  exit 0
fi

# ------------------------------------------------------------- --storage
# The paged-storage gate, in two halves. Correctness first: the
# deterministic pager/serde/zone-map/segment-store units, then the
# segment differential harness (tests/segment_diff_test.cc —
# segment-backed scans vs the in-memory extent vs the row-mode oracle
# across serial, morsel-parallel, shared-scan and VM drains, including
# under concurrent Submit writers replayed at each reader's pinned
# epoch) under ThreadSanitizer with three fixed seeds and one
# time-derived seed (echoed so any failure replays with --seed=N).
# Then performance, gated on deterministic counters rather than wall
# clock (CI is 1-core): bench_storage self-checks and
# BENCH_storage.json must show zone maps refuting segments on the
# selective workload (segments_skipped strictly positive) and the
# re-scan loop keeping the survivors resident in the deliberately
# small buffer cache (cache_hits strictly above cache_misses).
if [[ "$STORAGE" == "1" ]]; then
  : "${BUILD_DIR:=build-storage-tsan}"
  echo "== storage: TSan build of the storage unit + differential suites =="
  cmake -B "$BUILD_DIR" -S . -DVODAK_SANITIZE=thread \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
        --target storage_test segment_diff_test
  echo "== storage: deterministic pager + zone-map + segment units =="
  "$BUILD_DIR"/storage_test
  TIME_SEED="$(date +%s)"
  echo "== storage: differential seeds 1 2 3 $TIME_SEED (time-derived) =="
  for seed in 1 2 3 "$TIME_SEED"; do
    echo "-- segment_diff_test --seed=$seed"
    "$BUILD_DIR"/segment_diff_test --seed="$seed"
  done
  echo "== storage: bench_storage counter gate (plain build) =="
  STORAGE_BENCH_DIR=build
  cmake -B "$STORAGE_BENCH_DIR" -S . \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$STORAGE_BENCH_DIR" -j"$(nproc)" --target bench_storage
  "$STORAGE_BENCH_DIR"/bench_storage --docs=20000 --reps=4 --queries=3 \
                                     --cache-pages=16 \
                                     --rows-per-segment=8192 \
                                     --json=BENCH_storage.json
  storage_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_storage.json; }
  SEG_SCANNED="$(storage_field segments_scanned)"
  SEG_SKIPPED="$(storage_field segments_skipped)"
  CACHE_HITS="$(storage_field cache_hits)"
  CACHE_MISSES="$(storage_field cache_misses)"
  if [[ -z "$SEG_SCANNED" || -z "$SEG_SKIPPED" || \
        -z "$CACHE_HITS" || -z "$CACHE_MISSES" ]]; then
    echo "ci.sh: BENCH_storage.json is missing counter fields" >&2
    exit 1
  fi
  if (( SEG_SKIPPED == 0 || SEG_SCANNED == 0 )); then
    echo "ci.sh: selective workload scanned $SEG_SCANNED segments and" \
         "skipped $SEG_SKIPPED -- zone maps refuted nothing" >&2
    exit 1
  fi
  if (( CACHE_HITS <= CACHE_MISSES )); then
    echo "ci.sh: re-scan loop hit the buffer cache $CACHE_HITS times vs" \
         "$CACHE_MISSES misses -- survivors did not stay resident" >&2
    exit 1
  fi
  echo "storage gate: $SEG_SCANNED segments scanned / $SEG_SKIPPED" \
       "skipped, $CACHE_HITS cache hits vs $CACHE_MISSES misses -- ok"
  echo "== ci.sh (storage): all green =="
  exit 0
fi

# -------------------------------------------------------------- --service
# The query-service load harness as a standalone gate: build only
# bench_service, run K closed-loop socket clients against an in-process
# service (every reply is checked against the row-mode oracle's digest
# inside the harness), then gate the admission counters: arrivals must
# actually group into generations, and the shared generations must pay
# strictly fewer extent passes than the private baseline.
if [[ "$SERVICE" == "1" ]]; then
  : "${BUILD_DIR:=build}"
  echo "== service: build + load-harness smoke =="
  cmake -B "$BUILD_DIR" -S . \
        ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_service
  "$BUILD_DIR"/bench_service --docs=200 --clients=8 --requests=25 \
                             --json=BENCH_service.json
  service_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_service.json; }
  SVC_QUERIES="$(service_field queries_shared)"
  SVC_GENERATIONS="$(service_field generations_shared)"
  SVC_EXT_SHARED="$(service_field extent_scans_shared)"
  SVC_EXT_PRIVATE="$(service_field extent_scans_private)"
  if [[ -z "$SVC_QUERIES" || -z "$SVC_GENERATIONS" || \
        -z "$SVC_EXT_SHARED" || -z "$SVC_EXT_PRIVATE" ]]; then
    echo "ci.sh: BENCH_service.json is missing counter fields" >&2
    exit 1
  fi
  if (( SVC_GENERATIONS >= SVC_QUERIES )); then
    echo "ci.sh: service formed $SVC_GENERATIONS generations for" \
         "$SVC_QUERIES queries -- arrivals are not being grouped" >&2
    exit 1
  fi
  if (( SVC_EXT_SHARED >= SVC_EXT_PRIVATE )); then
    echo "ci.sh: shared generations paid $SVC_EXT_SHARED extent passes," \
         "not fewer than the private baseline's $SVC_EXT_PRIVATE" >&2
    exit 1
  fi
  echo "service gate: $SVC_QUERIES queries in $SVC_GENERATIONS" \
       "generations, $SVC_EXT_SHARED vs $SVC_EXT_PRIVATE extent passes -- ok"
  echo "== ci.sh (service): all green =="
  exit 0
fi

echo "== docs check =="
# The executor book is a deliverable: a build that drops it (or unlinks
# it from the README) fails here, not in review.
if [[ ! -f docs/ARCHITECTURE.md ]]; then
  echo "ci.sh: docs/ARCHITECTURE.md is missing" >&2
  exit 1
fi
if [[ ! -f docs/BENCHMARKS.md ]]; then
  echo "ci.sh: docs/BENCHMARKS.md is missing" >&2
  exit 1
fi
if ! grep -q "docs/ARCHITECTURE.md" README.md; then
  echo "ci.sh: README.md does not link docs/ARCHITECTURE.md" >&2
  exit 1
fi
if ! grep -q "docs/BENCHMARKS.md" README.md; then
  echo "ci.sh: README.md does not link docs/BENCHMARKS.md" >&2
  exit 1
fi
# New executor subsystems must keep their book sections (ROADMAP's
# docs-upkeep rule): the selection-vector chapter with its operator
# contract table, and the BENCH_selvec field documentation.
if ! grep -q "^## Selection vectors" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Selection vectors' chapter" >&2
  exit 1
fi
if ! grep -q "operator-contract" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the operator-contract table" >&2
  exit 1
fi
if ! grep -q "BENCH_selvec.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_selvec.json" >&2
  exit 1
fi
# The shared-scan chapter (attach/detach protocol, exactly-once batch
# contract) and its bench record documentation.
if ! grep -q "^## Shared scans" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Shared scans' chapter" >&2
  exit 1
fi
if ! grep -q "BENCH_shared_scan.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_shared_scan.json" >&2
  exit 1
fi
# The static-analysis chapter (annotation conventions, the vodak lint's
# contracts, how to run --tidy/--lint/--ubsan locally).
if ! grep -q "^## Static analysis & concurrency contracts" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Static analysis &" \
       "concurrency contracts' chapter" >&2
  exit 1
fi
# The MVCC chapter (version-chain layout, the epoch pin/unpin
# protocol, cache keying, the reclaim rule) and its bench record.
if ! grep -q "^## Writes, epochs & snapshot isolation" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Writes, epochs & snapshot" \
       "isolation' chapter" >&2
  exit 1
fi
if ! grep -q "BENCH_mvcc.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_mvcc.json" >&2
  exit 1
fi
# The query-service chapter (wire protocol, generation state machine,
# cancellation points, the Run→Submit migration table) and the
# load-harness record documentation.
if ! grep -q "^## Query service & admission control" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Query service & admission" \
       "control' chapter" >&2
  exit 1
fi
if ! grep -q "BENCH_service.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_service.json" >&2
  exit 1
fi
# The compiled-execution chapter (opcode table, eligibility rule, arena
# lifetime, epoch contract) and the bench_vm record documentation.
if ! grep -q "^## Compiled execution" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Compiled execution' chapter" >&2
  exit 1
fi
if ! grep -q "BENCH_vm.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_vm.json" >&2
  exit 1
fi
# The paged-storage chapter (page file format, zone-map pruning rule,
# pin/epoch interaction with MVCC reclaim) and the bench_storage
# record documentation.
if ! grep -q "^## Paged storage & segment skipping" docs/ARCHITECTURE.md; then
  echo "ci.sh: docs/ARCHITECTURE.md lost the 'Paged storage & segment" \
       "skipping' chapter" >&2
  exit 1
fi
if ! grep -q "BENCH_storage.json" docs/BENCHMARKS.md; then
  echo "ci.sh: docs/BENCHMARKS.md does not document BENCH_storage.json" >&2
  exit 1
fi

: "${BUILD_DIR:=build}"
echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S . \
      ${THREAD_SAFETY_FLAG:+"$THREAD_SAFETY_FLAG"} \
      ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"}
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [[ "$SKIP_BENCH" == "1" ]]; then
  echo "== bench smoke skipped =="
  exit 0
fi

echo "== bench smoke (small N) =="
# Collect the built bench binaries up front: after a partial build the
# glob may match nothing, and that must fail the smoke loudly instead
# of silently running zero benches.
BENCHES=()
for bench in "$BUILD_DIR"/bench_*; do
  [[ -x "$bench" && ! -d "$bench" ]] && BENCHES+=("$bench")
done
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  echo "ci.sh: no bench_* binaries found in $BUILD_DIR/ (partial build?)" >&2
  exit 1
fi

# The batch-executor bench has its own flags; a tiny corpus suffices to
# prove it runs end to end. Its machine-readable outputs (scan+parallel,
# the method-ABI record and the selection-chain record) seed the perf
# trajectory (archived by the CI workflow); docs/BENCHMARKS.md documents
# each field by field.
"$BUILD_DIR"/bench_batch_exec --docs=200 --reps=2 \
                              --json=BENCH_parallel_exec.json \
                              --json-method=BENCH_method_batch.json \
                              --json-selvec=BENCH_selvec.json

# Selection-chain regression gate: the marking pipeline must move
# strictly fewer values than the compacting baseline, and must never
# regress to more copies than scanned rows (the copy-tax bar from the
# selection-vector PR). The record is flat one-field-per-line JSON, so
# plain grep/sed extraction is stable.
json_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_selvec.json; }
SEL_MOVES="$(json_field selvec_moves_total)"
BASE_MOVES="$(json_field compact_moves_total)"
SEL_ROWS="$(json_field paragraphs)"
if [[ -z "$SEL_MOVES" || -z "$BASE_MOVES" || -z "$SEL_ROWS" ]]; then
  echo "ci.sh: BENCH_selvec.json is missing copy-counter fields" >&2
  exit 1
fi
if (( SEL_MOVES >= BASE_MOVES )); then
  echo "ci.sh: selection chain moved $SEL_MOVES values," \
       "not fewer than the compacting baseline's $BASE_MOVES" >&2
  exit 1
fi
if (( SEL_MOVES > SEL_ROWS )); then
  echo "ci.sh: selection chain moved $SEL_MOVES values for only" \
       "$SEL_ROWS scanned rows (copy tax regression)" >&2
  exit 1
fi
echo "selection-chain copy gate: $SEL_MOVES moves (baseline $BASE_MOVES," \
     "rows $SEL_ROWS) -- ok"

# Shared-scan gate: K concurrent queries attached to one shared scan
# must do strictly fewer extent passes than the same K queries with
# private cursors (~1x vs ~Kx), and at least halve the property reads
# (the column cache serves the batch from one snapshot).
"$BUILD_DIR"/bench_shared_scan --docs=200 --reps=2 \
                               --json=BENCH_shared_scan.json
shared_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_shared_scan.json; }
EXT_SHARED="$(shared_field extent_scans_shared)"
EXT_PRIVATE="$(shared_field extent_scans_private)"
PROP_SHARED="$(shared_field property_reads_shared)"
PROP_PRIVATE="$(shared_field property_reads_private)"
if [[ -z "$EXT_SHARED" || -z "$EXT_PRIVATE" || -z "$PROP_SHARED" || -z "$PROP_PRIVATE" ]]; then
  echo "ci.sh: BENCH_shared_scan.json is missing counter fields" >&2
  exit 1
fi
if (( EXT_SHARED >= EXT_PRIVATE )); then
  echo "ci.sh: shared scan paid $EXT_SHARED extent passes," \
       "not fewer than the $EXT_PRIVATE of K independent queries" >&2
  exit 1
fi
if (( PROP_SHARED * 2 > PROP_PRIVATE )); then
  echo "ci.sh: shared scan read $PROP_SHARED property values," \
       "not at most half the private baseline's $PROP_PRIVATE" >&2
  exit 1
fi
echo "shared-scan gate: $EXT_SHARED extent pass(es) vs $EXT_PRIVATE," \
     "$PROP_SHARED property reads vs $PROP_PRIVATE -- ok"

# MVCC gate: under the mixed closed loop every read must have pinned a
# snapshot, every committed write batch must have created copy-on-write
# versions, and the reclaimer must have actually freed superseded
# versions behind the moving pin horizon.
"$BUILD_DIR"/bench_mvcc --objects=2000 --clients=4 --ops=100 \
                        --json=BENCH_mvcc.json
mvcc_field() { sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" BENCH_mvcc.json; }
MVCC_READS="$(mvcc_field reads_completed)"
MVCC_WRITES="$(mvcc_field writes_committed)"
MVCC_SNAP="$(mvcc_field snapshot_reads)"
MVCC_CREATED="$(mvcc_field versions_created)"
MVCC_RECLAIMED="$(mvcc_field versions_reclaimed)"
MVCC_EPOCHS="$(mvcc_field epochs_committed)"
if [[ -z "$MVCC_READS" || -z "$MVCC_WRITES" || -z "$MVCC_SNAP" || \
      -z "$MVCC_CREATED" || -z "$MVCC_RECLAIMED" || -z "$MVCC_EPOCHS" ]]; then
  echo "ci.sh: BENCH_mvcc.json is missing counter fields" >&2
  exit 1
fi
if (( MVCC_SNAP < MVCC_READS )); then
  echo "ci.sh: only $MVCC_SNAP snapshot reads for $MVCC_READS completed" \
       "reads -- readers are not pinning epoch snapshots" >&2
  exit 1
fi
if (( MVCC_WRITES > 0 && (MVCC_CREATED == 0 || MVCC_EPOCHS == 0) )); then
  echo "ci.sh: $MVCC_WRITES write batches committed but versions_created" \
       "=$MVCC_CREATED, epochs_committed=$MVCC_EPOCHS" >&2
  exit 1
fi
if (( MVCC_CREATED > 0 && MVCC_RECLAIMED == 0 )); then
  echo "ci.sh: $MVCC_CREATED versions created but none reclaimed --" \
       "the reclaimer never freed behind the pin horizon" >&2
  exit 1
fi
echo "mvcc gate: $MVCC_SNAP snapshot reads / $MVCC_READS reads," \
     "$MVCC_CREATED versions created, $MVCC_RECLAIMED reclaimed -- ok"

# Google-benchmark binaries: run only the smallest Arg() variant of each
# benchmark (plus arg-less ones) with a minimal measuring time.
SMOKE_FILTER='(/(1|2|10|20|50)$|^[^/]+$)'
for bench in "${BENCHES[@]}"; do
  [[ "$(basename "$bench")" == "bench_batch_exec" ]] && continue
  [[ "$(basename "$bench")" == "bench_shared_scan" ]] && continue
  # bench_service has its own flags and gate (ci.sh --service).
  [[ "$(basename "$bench")" == "bench_service" ]] && continue
  [[ "$(basename "$bench")" == "bench_mvcc" ]] && continue
  # bench_vm has its own flags and gate (ci.sh --vm).
  [[ "$(basename "$bench")" == "bench_vm" ]] && continue
  # bench_storage has its own flags and gate (ci.sh --storage).
  [[ "$(basename "$bench")" == "bench_storage" ]] && continue
  echo "-- $bench"
  "$bench" --benchmark_filter="$SMOKE_FILTER" --benchmark_min_time=0.01
done

echo "== ci.sh: all green =="
