#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke pass, so bench binaries cannot
# bit-rot silently. Usage: scripts/ci.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
[[ "${1:-}" == "--skip-bench" ]] && SKIP_BENCH=1

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$SKIP_BENCH" == "1" ]]; then
  echo "== bench smoke skipped =="
  exit 0
fi

echo "== bench smoke (small N) =="
# The batch-executor bench has its own flags; a tiny corpus suffices to
# prove it runs end to end.
./build/bench_batch_exec --docs=50 --reps=1

# Google-benchmark binaries: run only the smallest Arg() variant of each
# benchmark (plus arg-less ones) with a minimal measuring time.
SMOKE_FILTER='(/(1|2|10|20|50)$|^[^/]+$)'
for bench in build/bench_*; do
  [[ -x "$bench" && ! -d "$bench" ]] || continue
  [[ "$(basename "$bench")" == "bench_batch_exec" ]] && continue
  echo "-- $bench"
  "$bench" --benchmark_filter="$SMOKE_FILTER" --benchmark_min_time=0.01
done

echo "== ci.sh: all green =="
