#!/usr/bin/env python3
"""The vodak lint: repo-specific contracts the bash greps can't check.

Run as `scripts/ci.sh --lint` (or directly: `python3 scripts/lint.py`).
Exit code 0 means every contract holds; violations print one line each
(path:line: message) and exit 1.

Contracts (docs/ARCHITECTURE.md §"Static analysis & concurrency
contracts"):

1. mutex-guards — every mutex member in src/ is the annotated
   vodak::Mutex or vodak::SharedMutex (raw std::mutex /
   std::shared_mutex members defeat the clang thread-safety analysis,
   which needs the CAPABILITY attribute) and has at least one
   GUARDED_BY/PT_GUARDED_BY(<name>) field in the same file. A mutex
   that deliberately guards a phase rather than fields carries
   `lint: no-guarded-fields(<why>)` on its declaration.

2. atomic-orders — every std::atomic operation in src/ spells its
   memory order explicitly. Implicit seq_cst (`.load()`, `ctr = 0`,
   `ctr++`) hides the strongest, most expensive ordering behind the
   most innocent syntax; the repo's rule is that ordering is always a
   written-down decision. `// lint: not-atomic` waives a line whose
   .load()/.store() call is not an atomic — except on atomics whose
   name contains epoch/version (the MVCC clock, version-chain stamps
   and reclaim counters): those orders are always load-bearing for
   snapshot visibility and must be spelled, waiver or not.

3. operator-contracts — every PhysOperator/BatchSource subclass
   anywhere in src/ (today they all live in src/exec/physical.{h,cc},
   but a subclass added elsewhere — e.g. under src/service/ — is held
   to the same bar) has a row in ARCHITECTURE.md's operator
   density-contract table (the table is how density bugs are reviewed;
   an operator missing from it has no reviewed contract).

4. bench-fields — every field of every BENCH_*.json at the repo root
   is documented in docs/BENCHMARKS.md (the JSONs are the archived
   perf trajectory; an undocumented field is unreviewable drift).

5. header-cycles — the `#include "..."` graph over src/ headers is
   acyclic (cycles compile by accident-of-order until they don't).

6. vm-entry — the compiled-execution entry point keeps its contract
   anchor: src/exec/vm.h carries exactly one `[vm-entry]` marker, the
   class it marks subclasses PhysOperator, and that class has a row in
   ARCHITECTURE.md's operator density-contract table. The VM bypasses
   the per-operator NextBatch chain, so its density/epoch contract is
   only reviewable through that one marked class — losing the marker
   (or its table row) would let the fused path drift unreviewed.
"""

import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
ANNOTATIONS_HEADER = os.path.join("src", "common", "thread_annotations.h")

errors = []


def err(path, line, message):
    errors.append(f"{os.path.relpath(path, REPO)}:{line}: {message}")


def src_files(exts=(".h", ".cc")):
    for root, _dirs, names in sorted(os.walk(SRC)):
        for name in sorted(names):
            if name.endswith(exts):
                yield os.path.join(root, name)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def strip_comments(text):
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("\\ ")
                i += 2
                continue
            if c == quote:
                state = None
            out.append(c)
        i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


# ----------------------------------------------------------- 1. mutexes
def check_mutex_guards():
    # `[ \t]*` (not `\s*`): under re.M a `\s*` after `^` walks across
    # newlines, so a match could start lines above the declaration and
    # the waiver-comment check would read the wrong line. The trailing
    # alternative matches declarations carrying an attribute macro
    # (`SharedMutex data_mu_ ACQUIRED_BEFORE(...)`).
    decl_re = re.compile(
        r"^[ \t]*(?:mutable\s+)?"
        r"(std::mutex|std::shared_mutex|(?:vodak::)?(?:Shared)?Mutex)"
        r"\s+(\w+)\s*(?:;|=|[A-Z_][A-Z0-9_]*\s*\()",
        re.M,
    )
    for path in src_files():
        if path.endswith(os.path.basename(ANNOTATIONS_HEADER)) and \
                os.path.relpath(path, REPO) == ANNOTATIONS_HEADER:
            continue  # the wrapper's own internals
        text = read(path)
        code = strip_comments(text)
        lines = text.splitlines()
        for m in decl_re.finditer(code):
            mutex_type, name = m.group(1), m.group(2)
            line = line_of(code, m.start())
            raw_line = lines[line - 1] if line <= len(lines) else ""
            if mutex_type.startswith("std::"):
                err(path, line,
                    f"raw {mutex_type} member '{name}': use the annotated "
                    "vodak::Mutex (common/thread_annotations.h) so the "
                    "clang thread-safety analysis can see it")
                continue
            if "lint: no-guarded-fields(" in raw_line:
                continue
            guard_re = re.compile(
                r"(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)")
            if not guard_re.search(text):
                err(path, line,
                    f"mutex '{name}' has no GUARDED_BY({name}) field set "
                    "in this file; annotate what it guards or waive with "
                    "`lint: no-guarded-fields(<why>)` on the declaration")


# ----------------------------------------------------------- 2. atomics
ATOMIC_METHODS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
)

# Atomics whose name says epoch or version are the MVCC machinery: the
# global epoch clock, version-chain stamps, the reclaim counters. Their
# ordering is always load-bearing for snapshot visibility, so the
# `lint: not-atomic` waiver does not apply to them — the memory order
# must be spelled at every operation, no exceptions.
MVCC_NAME_RE = re.compile(r"epoch|version", re.I)


def call_args(code, open_paren):
    """The argument text of a call whose '(' is at open_paren."""
    depth, i = 0, open_paren
    while i < len(code):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:i]
        i += 1
    return code[open_paren + 1:]


def check_atomic_orders():
    atomic_decl_re = re.compile(r"std::atomic<[^;{}]*?>\s+(\w+)\s*[{;=]")
    atomic_names = set()
    for path in src_files():
        for m in atomic_decl_re.finditer(strip_comments(read(path))):
            atomic_names.add(m.group(1))

    method_re = re.compile(
        r"\.\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\(")
    for path in src_files():
        text = read(path)
        code = strip_comments(text)
        lines = text.splitlines()

        for m in method_re.finditer(code):
            name = m.group(1)
            args = call_args(code, m.end() - 1)
            line = line_of(code, m.start())
            raw_line = lines[line - 1] if line <= len(lines) else ""
            recv = re.search(r"(\w+)\s*$", code[:m.start()])
            recv_name = recv.group(1) if recv else ""
            mvcc = (recv_name in atomic_names
                    and MVCC_NAME_RE.search(recv_name))
            if "lint: not-atomic" in raw_line and not mvcc:
                continue
            if "memory_order" in args:
                continue
            # `.store()` / `.exchange()` etc. with NO value argument is
            # a same-named accessor, not an atomic op; `.load()` with no
            # argument IS an implicit seq_cst atomic load — but only
            # when the receiver is a known atomic member (getters named
            # load() would false-positive otherwise).
            if not args.strip():
                if name == "load" and recv_name in atomic_names:
                    if mvcc:
                        err(path, line,
                            f"epoch/version atomic '{recv_name}': "
                            "implicit seq_cst .load(); MVCC clock and "
                            "chain atomics must spell the memory order "
                            "(`lint: not-atomic` does not apply)")
                    else:
                        err(path, line,
                            "implicit seq_cst .load(): spell the memory "
                            "order (or waive with `lint: not-atomic`)")
                continue
            if mvcc:
                err(path, line,
                    f"epoch/version atomic '{recv_name}': .{name}() "
                    "without an explicit std::memory_order; MVCC clock "
                    "and chain atomics must spell the memory order "
                    "(`lint: not-atomic` does not apply)")
            else:
                err(path, line,
                    f"atomic .{name}() without an explicit "
                    "std::memory_order argument (or waive with "
                    "`lint: not-atomic`)")

        # Implicit operations spelled as plain arithmetic/assignment on
        # known atomic members: `ctr = 0`, `ctr++`, `++ctr`, `ctr += n`.
        if atomic_names:
            implicit_re = re.compile(
                r"(?:(\+\+|--)\s*(" + "|".join(map(re.escape, atomic_names))
                + r")\b|\b(" + "|".join(map(re.escape, atomic_names))
                + r")\s*(\+\+|--|(?:[+\-|&^]|<<|>>)?=(?!=)))")
            decl_or_type = re.compile(r"std::atomic|template|typename")
            for m in implicit_re.finditer(code):
                line = line_of(code, m.start())
                raw_line = lines[line - 1] if line <= len(lines) else ""
                if decl_or_type.search(raw_line):
                    continue  # declaration/initialization, not an op
                name = m.group(2) or m.group(3)
                if ("lint: not-atomic" in raw_line
                        and not MVCC_NAME_RE.search(name)):
                    continue
                err(path, line,
                    f"implicit seq_cst atomic op on '{name}': use "
                    ".store/.load/.fetch_* with an explicit memory order")


# ------------------------------------------------- 3. operator contracts
def check_operator_contracts():
    arch = read(os.path.join(REPO, "docs", "ARCHITECTURE.md"))
    section_re = re.compile(
        r"### Operator density contracts(.*?)(?:\n### |\n## |\Z)", re.S)
    section = section_re.search(arch)
    if not section:
        err(os.path.join(REPO, "docs", "ARCHITECTURE.md"), 1,
            "missing '### Operator density contracts' section")
        return
    table = section.group(1)
    subclass_re = re.compile(
        r"class\s+(\w+)\s*(?:final\s*)?:\s*public\s+"
        r"(PhysOperator|BatchSource)\b")
    # All of src/, not just physical.{h,cc}: src/service/ (or any other
    # subsystem) adding an operator is held to the same contract.
    for path in src_files():
        text = read(path)
        code = strip_comments(text)
        for m in subclass_re.finditer(code):
            cls = m.group(1)
            if not re.search(r"\b" + re.escape(cls) + r"\b", table):
                err(path, line_of(code, m.start()),
                    f"{m.group(2)} subclass '{cls}' has no row in the "
                    "operator density-contract table "
                    "(docs/ARCHITECTURE.md §'Selection vectors')")


# ------------------------------------------------------- 4. bench fields
def json_keys(obj):
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield k
            yield from json_keys(v)
    elif isinstance(obj, list):
        for v in obj:
            yield from json_keys(v)


def check_bench_fields():
    bench_doc = read(os.path.join(REPO, "docs", "BENCHMARKS.md"))
    for name in sorted(os.listdir(REPO)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(REPO, name)
        try:
            record = json.load(open(path, encoding="utf-8"))
        except json.JSONDecodeError as e:
            err(path, e.lineno, f"unparseable JSON: {e.msg}")
            continue
        for key in sorted(set(json_keys(record))):
            if key not in bench_doc:
                err(path, 1,
                    f"field '{key}' is not documented in "
                    "docs/BENCHMARKS.md")


# ------------------------------------------------------ 5. header cycles
def check_header_cycles():
    include_re = re.compile(r'^\s*#include\s+"([^"]+)"', re.M)
    graph = {}
    for path in src_files(exts=(".h",)):
        rel = os.path.relpath(path, SRC)
        edges = []
        for m in include_re.finditer(read(path)):
            target = m.group(1)
            if os.path.exists(os.path.join(SRC, target)):
                edges.append(target)
        graph[rel] = edges

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for dep in graph.get(node, ()):
            if color.get(dep, BLACK) == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                err(os.path.join(SRC, node), 1,
                    "header include cycle: " + " -> ".join(cycle))
            elif color.get(dep, BLACK) == WHITE:
                dfs(dep)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)


# ----------------------------------------------------------- 6. vm-entry
def check_vm_entry():
    """The `[vm-entry]` anchor in src/exec/vm.h marks the one class
    through which compiled execution enters the operator world; it must
    exist, be unique, sit on a PhysOperator subclass, and that subclass
    must keep its density-table row."""
    vm_header = os.path.join(SRC, "exec", "vm.h")
    if not os.path.exists(vm_header):
        err(vm_header, 1, "src/exec/vm.h is missing (the [vm-entry] "
            "contract anchor lives there)")
        return
    text = read(vm_header)
    markers = [m.start() for m in re.finditer(r"\[vm-entry\]", text)]
    if len(markers) != 1:
        err(vm_header, line_of(text, markers[1]) if markers else 1,
            f"expected exactly one [vm-entry] marker, found "
            f"{len(markers)}")
        if not markers:
            return
    cls_m = re.search(r"class\s+(\w+)", text[markers[0]:])
    if not cls_m:
        err(vm_header, line_of(text, markers[0]),
            "[vm-entry] marker is not followed by a class declaration")
        return
    cls = cls_m.group(1)
    entry_line = line_of(text, markers[0] + cls_m.start())
    subclass_re = re.compile(
        r"class\s+" + re.escape(cls) +
        r"\s*(?:final\s*)?:\s*public\s+PhysOperator\b")
    if not subclass_re.search(strip_comments(text)):
        err(vm_header, entry_line,
            f"[vm-entry] class '{cls}' does not subclass PhysOperator; "
            "the compiled path must enter execution through the "
            "reviewed operator contract")
    arch = read(os.path.join(REPO, "docs", "ARCHITECTURE.md"))
    section = re.search(
        r"### Operator density contracts(.*?)(?:\n### |\n## |\Z)",
        arch, re.S)
    table = section.group(1) if section else ""
    if not re.search(r"\b" + re.escape(cls) + r"\b", table):
        err(vm_header, entry_line,
            f"[vm-entry] class '{cls}' has no row in the operator "
            "density-contract table (docs/ARCHITECTURE.md §'Selection "
            "vectors')")


def main():
    check_mutex_guards()
    check_atomic_orders()
    check_operator_contracts()
    check_bench_fields()
    check_header_cycles()
    check_vm_entry()
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"lint.py: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint.py: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
