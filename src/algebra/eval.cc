#include "algebra/eval.h"

#include <algorithm>

namespace vodak {
namespace algebra {

namespace {

/// Chunk size for driving the naive evaluator's expression work through
/// the batched entry points (mirrors exec::kDefaultBatchSize without a
/// layering dependency on the physical executor).
constexpr size_t kEvalChunk = 1024;

Env EnvFromTuple(const Value& tuple) {
  Env env;
  for (const auto& [name, value] : tuple.AsTuple()) {
    env[name] = value;
  }
  return env;
}

Result<Value> ExtendTuple(const Value& tuple, const std::string& ref,
                          Value value) {
  ValueTuple fields = tuple.AsTuple();
  fields.emplace_back(ref, std::move(value));
  return Value::Tuple(std::move(fields));
}

std::vector<std::string> SchemaRefs(const LogicalRef& node) {
  std::vector<std::string> names;
  names.reserve(node->schema().size());
  for (const auto& [name, type] : node->schema()) names.push_back(name);
  return names;  // map order = sorted, matching canonical tuple order
}

/// Splits the fields of tuples [begin, end) into per-reference columns.
/// Canonical tuples (fields sorted by name) align positionally with the
/// sorted schema reference list; misaligned tuples fall back to by-name
/// field lookup.
Status ColumnsFromTuples(const ValueSet& tuples, size_t begin, size_t end,
                         const std::vector<std::string>& names,
                         std::vector<ValueColumn>* cols);

/// Drives `fn(env, begin, end)` over `input`'s tuples a chunk at a
/// time, with the chunk's fields split into a BatchEnv over the refs of
/// `schema_node`. Shared scaffolding of the batched kSelect / kMap /
/// kFlat evaluation.
template <typename Fn>
Status ForEachChunk(const ValueSet& input, const LogicalRef& schema_node,
                    Fn fn) {
  std::vector<std::string> names = SchemaRefs(schema_node);
  std::vector<ValueColumn> cols(names.size());
  for (size_t begin = 0; begin < input.size(); begin += kEvalChunk) {
    size_t end = std::min(begin + kEvalChunk, input.size());
    VODAK_RETURN_IF_ERROR(
        ColumnsFromTuples(input, begin, end, names, &cols));
    BatchEnv env{&names, &cols, end - begin};
    VODAK_RETURN_IF_ERROR(fn(env, begin, end));
  }
  return Status::OK();
}

Status ColumnsFromTuples(const ValueSet& tuples, size_t begin, size_t end,
                         const std::vector<std::string>& names,
                         std::vector<ValueColumn>* cols) {
  for (auto& col : *cols) col.clear();
  for (size_t i = begin; i < end; ++i) {
    const ValueTuple& fields = tuples[i].AsTuple();
    bool aligned = fields.size() == names.size();
    if (aligned) {
      for (size_t j = 0; j < names.size(); ++j) {
        if (fields[j].first != names[j]) {
          aligned = false;
          break;
        }
      }
    }
    if (aligned) {
      for (size_t j = 0; j < names.size(); ++j) {
        (*cols)[j].push_back(fields[j].second);
      }
    } else {
      for (size_t j = 0; j < names.size(); ++j) {
        VODAK_ASSIGN_OR_RETURN(Value v, tuples[i].GetField(names[j]));
        (*cols)[j].push_back(std::move(v));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<Value> EvalLogical(const LogicalRef& node,
                          const ExprEvaluator& evaluator) {
  switch (node->op()) {
    case LogicalOp::kGet: {
      const ClassDef* cls =
          evaluator.catalog()->FindClass(node->class_name());
      if (cls == nullptr) {
        return Status::BindError("unknown class '" + node->class_name() +
                                 "'");
      }
      VODAK_ASSIGN_OR_RETURN(
          std::vector<Oid> extent,
          evaluator.store()->Extent(cls->class_id(),
                                    evaluator.snapshot()));
      std::vector<Value> tuples;
      tuples.reserve(extent.size());
      for (Oid oid : extent) {
        tuples.push_back(Value::Tuple({{node->ref(), Value::OfOid(oid)}}));
      }
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kExprSource: {
      VODAK_ASSIGN_OR_RETURN(Value set, evaluator.Eval(node->expr(), {}));
      if (set.is_null()) return Value::Set({});
      if (!set.is_set()) {
        return Status::ExecError("expr_source evaluated to non-set " +
                                 set.ToString());
      }
      std::vector<Value> tuples;
      tuples.reserve(set.AsSet().size());
      for (const Value& v : set.AsSet()) {
        tuples.push_back(Value::Tuple({{node->ref(), v}}));
      }
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kSelect: {
      VODAK_ASSIGN_OR_RETURN(Value input,
                             EvalLogical(node->input(0), evaluator));
      const ValueSet& input_set = input.AsSet();
      std::vector<char> keep;
      std::vector<Value> tuples;
      VODAK_RETURN_IF_ERROR(ForEachChunk(
          input_set, node->input(0),
          [&](const BatchEnv& env, size_t begin, size_t end) -> Status {
            VODAK_RETURN_IF_ERROR(
                evaluator.EvalPredicateBatch(node->expr(), env, &keep));
            for (size_t i = begin; i < end; ++i) {
              if (keep[i - begin]) tuples.push_back(input_set[i]);
            }
            return Status::OK();
          }));
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kJoin: {
      VODAK_ASSIGN_OR_RETURN(Value left,
                             EvalLogical(node->input(0), evaluator));
      VODAK_ASSIGN_OR_RETURN(Value right,
                             EvalLogical(node->input(1), evaluator));
      std::vector<Value> tuples;
      for (const Value& lt : left.AsSet()) {
        for (const Value& rt : right.AsSet()) {
          ValueTuple fields = lt.AsTuple();
          const ValueTuple& rf = rt.AsTuple();
          fields.insert(fields.end(), rf.begin(), rf.end());
          Value joined = Value::Tuple(std::move(fields));
          Env env = EnvFromTuple(joined);
          VODAK_ASSIGN_OR_RETURN(
              bool keep, evaluator.EvalPredicate(node->expr(), env));
          if (keep) tuples.push_back(std::move(joined));
        }
      }
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kNaturalJoin: {
      VODAK_ASSIGN_OR_RETURN(Value left,
                             EvalLogical(node->input(0), evaluator));
      VODAK_ASSIGN_OR_RETURN(Value right,
                             EvalLogical(node->input(1), evaluator));
      // Shared references.
      std::vector<std::string> shared;
      for (const auto& [ref, type] : node->input(0)->schema()) {
        if (node->input(1)->HasRef(ref)) shared.push_back(ref);
      }
      std::vector<Value> tuples;
      for (const Value& lt : left.AsSet()) {
        for (const Value& rt : right.AsSet()) {
          bool match = true;
          for (const std::string& ref : shared) {
            auto lv = lt.GetField(ref);
            auto rv = rt.GetField(ref);
            if (!lv.ok() || !rv.ok() ||
                Value::Compare(lv.value(), rv.value()) != 0) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          ValueTuple fields = lt.AsTuple();
          for (const auto& [name, value] : rt.AsTuple()) {
            bool present = false;
            for (const auto& [lname, lvalue] : fields) {
              if (lname == name) {
                present = true;
                break;
              }
            }
            if (!present) fields.emplace_back(name, value);
          }
          tuples.push_back(Value::Tuple(std::move(fields)));
        }
      }
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kUnion: {
      VODAK_ASSIGN_OR_RETURN(Value left,
                             EvalLogical(node->input(0), evaluator));
      VODAK_ASSIGN_OR_RETURN(Value right,
                             EvalLogical(node->input(1), evaluator));
      return SetUnion(left, right);
    }
    case LogicalOp::kDiff: {
      VODAK_ASSIGN_OR_RETURN(Value left,
                             EvalLogical(node->input(0), evaluator));
      VODAK_ASSIGN_OR_RETURN(Value right,
                             EvalLogical(node->input(1), evaluator));
      return SetDifference(left, right);
    }
    case LogicalOp::kMap: {
      VODAK_ASSIGN_OR_RETURN(Value input,
                             EvalLogical(node->input(0), evaluator));
      const ValueSet& input_set = input.AsSet();
      std::vector<Value> tuples;
      tuples.reserve(input_set.size());
      VODAK_RETURN_IF_ERROR(ForEachChunk(
          input_set, node->input(0),
          [&](const BatchEnv& env, size_t begin, size_t end) -> Status {
            VODAK_ASSIGN_OR_RETURN(
                ValueColumn computed,
                evaluator.EvalBatch(node->expr(), env));
            for (size_t i = begin; i < end; ++i) {
              VODAK_ASSIGN_OR_RETURN(
                  Value extended,
                  ExtendTuple(input_set[i], node->ref(),
                              std::move(computed[i - begin])));
              tuples.push_back(std::move(extended));
            }
            return Status::OK();
          }));
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kFlat: {
      VODAK_ASSIGN_OR_RETURN(Value input,
                             EvalLogical(node->input(0), evaluator));
      const ValueSet& input_set = input.AsSet();
      std::vector<Value> tuples;
      VODAK_RETURN_IF_ERROR(ForEachChunk(
          input_set, node->input(0),
          [&](const BatchEnv& env, size_t begin, size_t end) -> Status {
            VODAK_ASSIGN_OR_RETURN(
                ValueColumn sets, evaluator.EvalBatch(node->expr(), env));
            for (size_t i = begin; i < end; ++i) {
              const Value& set = sets[i - begin];
              if (set.is_null()) continue;
              if (!set.is_set()) {
                return Status::ExecError(
                    "flat expression evaluated to non-set " +
                    set.ToString());
              }
              for (const Value& v : set.AsSet()) {
                VODAK_ASSIGN_OR_RETURN(
                    Value extended,
                    ExtendTuple(input_set[i], node->ref(), v));
                tuples.push_back(std::move(extended));
              }
            }
            return Status::OK();
          }));
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kProject: {
      VODAK_ASSIGN_OR_RETURN(Value input,
                             EvalLogical(node->input(0), evaluator));
      std::vector<Value> tuples;
      tuples.reserve(input.AsSet().size());
      for (const Value& tuple : input.AsSet()) {
        ValueTuple fields;
        for (const std::string& ref : node->projection()) {
          VODAK_ASSIGN_OR_RETURN(Value v, tuple.GetField(ref));
          fields.emplace_back(ref, std::move(v));
        }
        tuples.push_back(Value::Tuple(std::move(fields)));
      }
      return Value::Set(std::move(tuples));
    }
    case LogicalOp::kGroupRef:
      return Status::Internal(
          "group placeholder reached the evaluator (optimizer bug)");
  }
  return Status::Internal("unreachable logical op in evaluator");
}

Result<Value> EvalLogicalColumn(const LogicalRef& node,
                                const std::string& ref,
                                const ExprEvaluator& evaluator) {
  VODAK_ASSIGN_OR_RETURN(Value tuples, EvalLogical(node, evaluator));
  std::vector<Value> out;
  out.reserve(tuples.AsSet().size());
  for (const Value& tuple : tuples.AsSet()) {
    VODAK_ASSIGN_OR_RETURN(Value v, tuple.GetField(ref));
    out.push_back(std::move(v));
  }
  return Value::Set(std::move(out));
}

}  // namespace algebra
}  // namespace vodak
