#ifndef VODAK_ALGEBRA_EVAL_H_
#define VODAK_ALGEBRA_EVAL_H_

#include "algebra/logical.h"
#include "expr/expr_eval.h"

namespace vodak {
namespace algebra {

/// Direct (unoptimized) evaluation of a logical algebra expression,
/// literally implementing the set comprehensions of §4.1. The result is a
/// SET of TUPLE values over the node's references.
///
/// This evaluator is the semantic oracle for the optimizer: a
/// transformation rule is sound iff both sides evaluate to the same set
/// on every database, and the property tests check exactly that. It is
/// deliberately naive — the efficient path is the physical executor.
Result<Value> EvalLogical(const LogicalRef& node,
                          const ExprEvaluator& evaluator);

/// Projects the result of EvalLogical onto a single reference, unwrapping
/// the tuples: {[p: v]} becomes {v}. Used to compare plan results with
/// the VQL interpreter's value sets.
Result<Value> EvalLogicalColumn(const LogicalRef& node,
                                const std::string& ref,
                                const ExprEvaluator& evaluator);

}  // namespace algebra
}  // namespace vodak

#endif  // VODAK_ALGEBRA_EVAL_H_
