#include "algebra/logical.h"

#include <algorithm>

#include "common/string_util.h"

namespace vodak {
namespace algebra {

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kGet:
      return "get";
    case LogicalOp::kExprSource:
      return "expr_source";
    case LogicalOp::kSelect:
      return "select";
    case LogicalOp::kJoin:
      return "join";
    case LogicalOp::kNaturalJoin:
      return "natural_join";
    case LogicalOp::kUnion:
      return "union";
    case LogicalOp::kDiff:
      return "diff";
    case LogicalOp::kMap:
      return "map";
    case LogicalOp::kFlat:
      return "flat";
    case LogicalOp::kProject:
      return "project";
    case LogicalOp::kGroupRef:
      return "?A";
  }
  return "?";
}

std::string LogicalNode::RefClass(const std::string& name) const {
  auto it = schema_.find(name);
  if (it == schema_.end()) return "";
  if (it->second->kind() != TypeKind::kOid) return "";
  return it->second->class_name();
}

void LogicalNode::ComputeHash() {
  uint64_t h = HashCombine(0x1c0ffee, static_cast<uint64_t>(op_));
  h = HashCombine(h, static_cast<uint64_t>(group_id_ + 1));
  h = HashCombine(h, HashBytes(ref_.data(), ref_.size()));
  h = HashCombine(h, HashBytes(class_name_.data(), class_name_.size()));
  if (expr_ != nullptr) h = HashCombine(h, expr_->Hash());
  for (const auto& p : projection_) {
    h = HashCombine(h, HashBytes(p.data(), p.size()));
  }
  for (const auto& in : inputs_) h = HashCombine(h, in->Hash());
  hash_ = h;
}

bool LogicalNode::Equals(const LogicalRef& a, const LogicalRef& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->hash_ != b->hash_) return false;
  if (a->op_ != b->op_ || a->ref_ != b->ref_ ||
      a->class_name_ != b->class_name_ ||
      a->projection_ != b->projection_ || a->group_id_ != b->group_id_) {
    return false;
  }
  if ((a->expr_ == nullptr) != (b->expr_ == nullptr)) return false;
  if (a->expr_ != nullptr && !Expr::Equals(a->expr_, b->expr_)) {
    return false;
  }
  if (a->inputs_.size() != b->inputs_.size()) return false;
  for (size_t i = 0; i < a->inputs_.size(); ++i) {
    if (!Equals(a->inputs_[i], b->inputs_[i])) return false;
  }
  return true;
}

std::string LogicalNode::ToString() const {
  std::string out = LogicalOpName(op_);
  switch (op_) {
    case LogicalOp::kGet:
      out += "<" + ref_ + ", " + class_name_ + ">";
      break;
    case LogicalOp::kExprSource:
      out += "<" + ref_ + ", " + expr_->ToString() + ">";
      break;
    case LogicalOp::kSelect:
    case LogicalOp::kJoin:
      out += "<" + expr_->ToString() + ">";
      break;
    case LogicalOp::kMap:
    case LogicalOp::kFlat:
      out += "<" + ref_ + ", " + expr_->ToString() + ">";
      break;
    case LogicalOp::kProject:
      out += "<" + Join(projection_, ", ") + ">";
      break;
    case LogicalOp::kGroupRef:
      return "?G" + std::to_string(group_id_);
    default:
      break;
  }
  out += "(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i) out += ", ";
    out += inputs_[i]->ToString();
  }
  out += ")";
  return out;
}

std::string LogicalNode::ToTreeString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string head = LogicalOpName(op_);
  switch (op_) {
    case LogicalOp::kGet:
      head += "<" + ref_ + ", " + class_name_ + ">";
      break;
    case LogicalOp::kExprSource:
      head += "<" + ref_ + ", " + expr_->ToString() + ">";
      break;
    case LogicalOp::kSelect:
    case LogicalOp::kJoin:
      head += "<" + expr_->ToString() + ">";
      break;
    case LogicalOp::kMap:
    case LogicalOp::kFlat:
      head += "<" + ref_ + ", " + expr_->ToString() + ">";
      break;
    case LogicalOp::kProject:
      head += "<" + Join(projection_, ", ") + ">";
      break;
    case LogicalOp::kGroupRef:
      head = "?G" + std::to_string(group_id_);
      break;
    default:
      break;
  }
  std::string out = pad + head + "\n";
  for (const auto& in : inputs_) {
    out += in->ToTreeString(indent + 1);
  }
  return out;
}

Result<ExprRef> AlgebraContext::BindInSchema(const ExprRef& expr,
                                             const RefSchema& schema,
                                             TypeRef* out_type) const {
  std::map<std::string, TypeRef> scope(schema.begin(), schema.end());
  return binder_.BindExpr(expr, scope, out_type);
}

Result<LogicalRef> AlgebraContext::Get(const std::string& ref,
                                       const std::string& class_name) const {
  const ClassDef* cls = catalog_->FindClass(class_name);
  if (cls == nullptr) {
    return Status::BindError("get: unknown class '" + class_name + "'");
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kGet;
  node->ref_ = ref;
  node->class_name_ = class_name;
  node->schema_[ref] = Type::OidOf(class_name);
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::ExprSource(const std::string& ref,
                                              const ExprRef& expr) const {
  // Bind first: binding reclassifies `Class→m(...)` receivers, which
  // would otherwise look like free variables.
  TypeRef type;
  VODAK_ASSIGN_OR_RETURN(ExprRef bound, BindInSchema(expr, {}, &type));
  if (!bound->FreeVars().empty()) {
    return Status::PlanError(
        "expr_source expression must be closed, has free vars in " +
        bound->ToString());
  }
  if (type->kind() != TypeKind::kSet && type->kind() != TypeKind::kAny) {
    return Status::TypeError("expr_source expression must be set-valued: " +
                             expr->ToString() + " : " + type->ToString());
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kExprSource;
  node->ref_ = ref;
  node->expr_ = std::move(bound);
  node->schema_[ref] = type->kind() == TypeKind::kSet ? type->element()
                                                      : Type::Any();
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Select(const ExprRef& condition,
                                          LogicalRef input) const {
  TypeRef type;
  VODAK_ASSIGN_OR_RETURN(ExprRef bound,
                         BindInSchema(condition, input->schema(), &type));
  if (!Type::Bool()->Accepts(*type)) {
    return Status::TypeError("select condition must be boolean: " +
                             condition->ToString());
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kSelect;
  node->expr_ = std::move(bound);
  node->schema_ = input->schema();
  node->inputs_.push_back(std::move(input));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Join(const ExprRef& condition,
                                        LogicalRef left,
                                        LogicalRef right) const {
  RefSchema schema = left->schema();
  for (const auto& [ref, type] : right->schema()) {
    if (schema.count(ref) > 0) {
      return Status::PlanError("join: reference '" + ref +
                               "' occurs in both inputs (use "
                               "natural_join)");
    }
    schema[ref] = type;
  }
  TypeRef type;
  VODAK_ASSIGN_OR_RETURN(ExprRef bound,
                         BindInSchema(condition, schema, &type));
  if (!Type::Bool()->Accepts(*type)) {
    return Status::TypeError("join condition must be boolean: " +
                             condition->ToString());
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kJoin;
  node->expr_ = std::move(bound);
  node->schema_ = std::move(schema);
  node->inputs_.push_back(std::move(left));
  node->inputs_.push_back(std::move(right));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::NaturalJoin(LogicalRef left,
                                               LogicalRef right) const {
  RefSchema schema = left->schema();
  bool overlap = false;
  for (const auto& [ref, type] : right->schema()) {
    auto it = schema.find(ref);
    if (it != schema.end()) {
      overlap = true;
    } else {
      schema[ref] = type;
    }
  }
  if (!overlap) {
    return Status::PlanError(
        "natural_join inputs share no references; use join<TRUE>");
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kNaturalJoin;
  node->schema_ = std::move(schema);
  node->inputs_.push_back(std::move(left));
  node->inputs_.push_back(std::move(right));
  node->ComputeHash();
  return LogicalRef(node);
}

namespace {
/// Structural schema equality (TypeRef pointers are not interned).
bool SchemaEquals(const RefSchema& a, const RefSchema& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (!ia->second->Equals(*ib->second)) return false;
  }
  return true;
}
}  // namespace

Result<LogicalRef> AlgebraContext::Union(LogicalRef left,
                                         LogicalRef right) const {
  if (!SchemaEquals(left->schema(), right->schema())) {
    return Status::PlanError("union: input schemas differ");
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kUnion;
  node->schema_ = left->schema();
  node->inputs_.push_back(std::move(left));
  node->inputs_.push_back(std::move(right));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Diff(LogicalRef left,
                                        LogicalRef right) const {
  if (!SchemaEquals(left->schema(), right->schema())) {
    return Status::PlanError("diff: input schemas differ");
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kDiff;
  node->schema_ = left->schema();
  node->inputs_.push_back(std::move(left));
  node->inputs_.push_back(std::move(right));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Map(const std::string& ref,
                                       const ExprRef& expr,
                                       LogicalRef input) const {
  if (input->HasRef(ref)) {
    return Status::PlanError("map: reference '" + ref +
                             "' already present in input");
  }
  TypeRef type;
  VODAK_ASSIGN_OR_RETURN(ExprRef bound,
                         BindInSchema(expr, input->schema(), &type));
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kMap;
  node->ref_ = ref;
  node->expr_ = std::move(bound);
  node->schema_ = input->schema();
  node->schema_[ref] = type;
  node->inputs_.push_back(std::move(input));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Flat(const std::string& ref,
                                        const ExprRef& expr,
                                        LogicalRef input) const {
  if (input->HasRef(ref)) {
    return Status::PlanError("flat: reference '" + ref +
                             "' already present in input");
  }
  TypeRef type;
  VODAK_ASSIGN_OR_RETURN(ExprRef bound,
                         BindInSchema(expr, input->schema(), &type));
  if (type->kind() != TypeKind::kSet && type->kind() != TypeKind::kAny) {
    return Status::TypeError("flat expression must be set-valued: " +
                             expr->ToString() + " : " + type->ToString());
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kFlat;
  node->ref_ = ref;
  node->expr_ = std::move(bound);
  node->schema_ = input->schema();
  node->schema_[ref] = type->kind() == TypeKind::kSet ? type->element()
                                                      : Type::Any();
  node->inputs_.push_back(std::move(input));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::Project(std::vector<std::string> refs,
                                           LogicalRef input) const {
  if (refs.empty()) {
    return Status::PlanError("project: empty reference list");
  }
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
  RefSchema schema;
  for (const auto& ref : refs) {
    auto it = input->schema().find(ref);
    if (it == input->schema().end()) {
      return Status::PlanError("project: reference '" + ref +
                               "' not in input schema");
    }
    schema[ref] = it->second;
  }
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kProject;
  node->projection_ = std::move(refs);
  node->schema_ = std::move(schema);
  node->inputs_.push_back(std::move(input));
  node->ComputeHash();
  return LogicalRef(node);
}

Result<LogicalRef> AlgebraContext::WithInputs(
    const LogicalNode& node, std::vector<LogicalRef> inputs) const {
  switch (node.op()) {
    case LogicalOp::kGet:
      return Get(node.ref(), node.class_name());
    case LogicalOp::kExprSource:
      return ExprSource(node.ref(), node.expr());
    case LogicalOp::kSelect:
      VODAK_DCHECK(inputs.size() == 1);
      return Select(node.expr(), std::move(inputs[0]));
    case LogicalOp::kJoin:
      VODAK_DCHECK(inputs.size() == 2);
      return Join(node.expr(), std::move(inputs[0]), std::move(inputs[1]));
    case LogicalOp::kNaturalJoin:
      VODAK_DCHECK(inputs.size() == 2);
      return NaturalJoin(std::move(inputs[0]), std::move(inputs[1]));
    case LogicalOp::kUnion:
      VODAK_DCHECK(inputs.size() == 2);
      return Union(std::move(inputs[0]), std::move(inputs[1]));
    case LogicalOp::kDiff:
      VODAK_DCHECK(inputs.size() == 2);
      return Diff(std::move(inputs[0]), std::move(inputs[1]));
    case LogicalOp::kMap:
      VODAK_DCHECK(inputs.size() == 1);
      return Map(node.ref(), node.expr(), std::move(inputs[0]));
    case LogicalOp::kFlat:
      VODAK_DCHECK(inputs.size() == 1);
      return Flat(node.ref(), node.expr(), std::move(inputs[0]));
    case LogicalOp::kProject:
      VODAK_DCHECK(inputs.size() == 1);
      return Project(node.projection(), std::move(inputs[0]));
    case LogicalOp::kGroupRef:
      return GroupRef(node.group_id(), node.schema());
  }
  return Status::Internal("unreachable logical op");
}

LogicalRef AlgebraContext::GroupRef(int group_id, RefSchema schema) const {
  auto node = std::shared_ptr<LogicalNode>(new LogicalNode());
  node->op_ = LogicalOp::kGroupRef;
  node->group_id_ = group_id;
  node->schema_ = std::move(schema);
  node->ComputeHash();
  return LogicalRef(node);
}

}  // namespace algebra
}  // namespace vodak
