#ifndef VODAK_ALGEBRA_LOGICAL_H_
#define VODAK_ALGEBRA_LOGICAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "schema/catalog.h"
#include "vql/binder.h"

namespace vodak {
namespace algebra {

/// The general query algebra of §4.1 over values of type
/// `set[tuple[a1: D1, ..., an: Dn]]`, plus one addition:
/// kExprSource realizes §3.2's "methods as algebraic operators" — a leaf
/// producing the tuples {[a: v] | v ∈ eval(expr)} for a closed set-valued
/// expression, typically a class-object method call such as
/// `Paragraph→retrieve_by_string(s)`. Implementation rules derived from
/// query≡method equivalences (§4.2) rewrite into this operator.
enum class LogicalOp {
  kGet,          ///< get<a, class>
  kExprSource,   ///< <a, expr> with expr closed and set-valued
  kSelect,       ///< select<condition>(S)
  kJoin,         ///< join<condition>(S1, S2); condition TRUE = product
  kNaturalJoin,  ///< natural_join(S1, S2)
  kUnion,        ///< union(S1, S2)
  kDiff,         ///< diff(S1, S2)
  kMap,          ///< map<a, expression>(S)
  kFlat,         ///< flat<a, expression>(S)
  kProject,      ///< project<a1,...,ai>(S)
  kGroupRef,     ///< optimizer-internal: placeholder for a memo group
};

const char* LogicalOpName(LogicalOp op);

class LogicalNode;
using LogicalRef = std::shared_ptr<const LogicalNode>;

/// Output schema of an operator: reference name -> element type
/// (Ref(S) of §4.1, with types carried along so rules can check class
/// membership of references — the `?A<?a1, Paragraph>` side conditions).
using RefSchema = std::map<std::string, TypeRef>;

/// Immutable logical algebra node. Nodes are created through
/// AlgebraContext, which type-checks operator parameters against the
/// input schemas and the catalog; an ill-typed plan is unrepresentable.
class LogicalNode {
 public:
  LogicalOp op() const { return op_; }
  const std::vector<LogicalRef>& inputs() const { return inputs_; }
  const LogicalRef& input(size_t i) const { return inputs_[i]; }

  /// kGet / kExprSource / kMap / kFlat: the introduced reference.
  const std::string& ref() const { return ref_; }
  /// kGet: the class whose extension is produced.
  const std::string& class_name() const { return class_name_; }
  /// kSelect / kJoin condition, kMap / kFlat / kExprSource expression.
  const ExprRef& expr() const { return expr_; }
  /// kProject: retained references.
  const std::vector<std::string>& projection() const { return projection_; }
  /// kGroupRef: the memo group this leaf stands for.
  int group_id() const { return group_id_; }

  const RefSchema& schema() const { return schema_; }
  bool HasRef(const std::string& name) const {
    return schema_.count(name) > 0;
  }
  /// Class name of an OID-typed reference ("" when untyped/non-OID).
  std::string RefClass(const std::string& name) const;

  uint64_t Hash() const { return hash_; }
  static bool Equals(const LogicalRef& a, const LogicalRef& b);

  /// Single-line rendering, e.g. `select<(p->contains_string('x'))>(...)`.
  std::string ToString() const;
  /// Multi-line indented plan rendering.
  std::string ToTreeString(int indent = 0) const;

 private:
  friend class AlgebraContext;
  LogicalNode() = default;

  void ComputeHash();

  LogicalOp op_ = LogicalOp::kGet;
  std::vector<LogicalRef> inputs_;
  std::string ref_;
  std::string class_name_;
  ExprRef expr_;
  std::vector<std::string> projection_;
  RefSchema schema_;
  int group_id_ = -1;
  uint64_t hash_ = 0;
};

/// Factory for logical nodes; owns the typing rules of the algebra.
/// Every factory validates its parameters against the catalog and the
/// input schemas and computes the output schema.
class AlgebraContext {
 public:
  explicit AlgebraContext(const Catalog* catalog)
      : catalog_(catalog), binder_(catalog) {}

  const Catalog* catalog() const { return catalog_; }
  const vql::Binder& binder() const { return binder_; }

  /// get<ref, class>: {[ref: o] | o ∈ extension(class)}.
  Result<LogicalRef> Get(const std::string& ref,
                         const std::string& class_name) const;

  /// {[ref: v] | v ∈ expr} for closed set-valued expr.
  Result<LogicalRef> ExprSource(const std::string& ref,
                                const ExprRef& expr) const;

  Result<LogicalRef> Select(const ExprRef& condition,
                            LogicalRef input) const;

  Result<LogicalRef> Join(const ExprRef& condition, LogicalRef left,
                          LogicalRef right) const;

  Result<LogicalRef> NaturalJoin(LogicalRef left, LogicalRef right) const;

  Result<LogicalRef> Union(LogicalRef left, LogicalRef right) const;
  Result<LogicalRef> Diff(LogicalRef left, LogicalRef right) const;

  /// map<ref, expr>(S): extends each tuple with ref = expr(tuple).
  Result<LogicalRef> Map(const std::string& ref, const ExprRef& expr,
                         LogicalRef input) const;

  /// flat<ref, expr>(S): one output tuple per element of set-valued expr.
  Result<LogicalRef> Flat(const std::string& ref, const ExprRef& expr,
                          LogicalRef input) const;

  Result<LogicalRef> Project(std::vector<std::string> refs,
                             LogicalRef input) const;

  /// Optimizer-internal leaf standing for memo group `group_id` with the
  /// given output schema. Never evaluable; rules treat it as an opaque
  /// input (`?A` in the paper's rule notation).
  LogicalRef GroupRef(int group_id, RefSchema schema) const;

  /// Rebuilds `node` with new inputs (same op and parameters),
  /// re-validating. Used by the memo when extracting plans.
  Result<LogicalRef> WithInputs(const LogicalNode& node,
                                std::vector<LogicalRef> inputs) const;

  /// Binds and types `expr` in the scope given by `schema`.
  Result<ExprRef> BindInSchema(const ExprRef& expr, const RefSchema& schema,
                               TypeRef* out_type) const;

 private:
  const Catalog* catalog_;
  vql::Binder binder_;
};

}  // namespace algebra
}  // namespace vodak

#endif  // VODAK_ALGEBRA_LOGICAL_H_
