#include "algebra/translate.h"

namespace vodak {
namespace algebra {

std::string ResultRef(const vql::BoundQuery& query) {
  if (query.access->kind() == ExprKind::kVar) {
    return query.access->var_name();
  }
  return kOutputRef;
}

Result<LogicalRef> TranslateQuery(const AlgebraContext& ctx,
                                  const vql::BoundQuery& query) {
  if (query.from.empty()) {
    return Status::PlanError("query has no FROM ranges");
  }

  LogicalRef accum;
  for (const auto& range : query.from) {
    if (range.kind == vql::RangeKind::kExtent) {
      VODAK_ASSIGN_OR_RETURN(LogicalRef get,
                             ctx.Get(range.var, range.class_name));
      if (accum == nullptr) {
        accum = std::move(get);
      } else {
        VODAK_ASSIGN_OR_RETURN(
            accum, ctx.Join(Expr::Const(Value::Bool(true)),
                            std::move(accum), std::move(get)));
      }
      continue;
    }
    // Dependent range.
    if (accum == nullptr) {
      if (!range.domain->FreeVars().empty()) {
        return Status::PlanError("first range '" + range.var +
                                 "' depends on unbound variables");
      }
      VODAK_ASSIGN_OR_RETURN(accum,
                             ctx.ExprSource(range.var, range.domain));
      continue;
    }
    VODAK_ASSIGN_OR_RETURN(
        accum, ctx.Flat(range.var, range.domain, std::move(accum)));
  }

  if (query.where != nullptr) {
    VODAK_ASSIGN_OR_RETURN(accum,
                           ctx.Select(query.where, std::move(accum)));
  }

  std::string out_ref = ResultRef(query);
  if (out_ref == kOutputRef) {
    VODAK_ASSIGN_OR_RETURN(
        accum, ctx.Map(kOutputRef, query.access, std::move(accum)));
  }
  return ctx.Project({out_ref}, std::move(accum));
}

}  // namespace algebra
}  // namespace vodak
