#ifndef VODAK_ALGEBRA_TRANSLATE_H_
#define VODAK_ALGEBRA_TRANSLATE_H_

#include "algebra/logical.h"
#include "vql/ast.h"

namespace vodak {
namespace algebra {

/// Reference name used for the ACCESS expression result column.
inline const char* kOutputRef = "$out";

/// Translates a bound VQL query into the general algebra following the
/// §4.1 mapping:
///
///   project<$out>(map<$out, access>(select<cond>(
///       join<TRUE>(get<a_n, C_n>, ... join<TRUE>(get<a_1, C_1>,
///                                                get<a_2, C_2>)...))))
///
/// with two refinements for VQL features the mapping glosses over:
///  - dependent ranges (Example 2) become flat<var, domain>(...) on top
///    of the accumulated input, and a *leading* dependent range with a
///    closed domain becomes an expr_source leaf;
///  - when the query has no WHERE clause, the select is omitted.
///
/// As a convenience, when the ACCESS expression is exactly one range
/// variable the map/$out indirection is skipped and the plan projects
/// onto that variable, which matches how the paper writes plans like PQ.
Result<LogicalRef> TranslateQuery(const AlgebraContext& ctx,
                                  const vql::BoundQuery& query);

/// The reference whose values form the query result in a translated
/// plan (kOutputRef or the single access variable).
std::string ResultRef(const vql::BoundQuery& query);

}  // namespace algebra
}  // namespace vodak

#endif  // VODAK_ALGEBRA_TRANSLATE_H_
