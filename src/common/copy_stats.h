// Process-wide counters of batch value movement, the observable the
// selection-vector pipeline optimizes: compaction moves (values
// physically relocated inside a RowBatch) and gather copies (values
// copied out of a batch to build a dense selection/mask view for the
// expression evaluator). bench_batch_exec's selection-chain section
// records both per pipeline mode into BENCH_selvec.json, and
// scripts/ci.sh fails the build when the selection path regresses to
// more copies than rows. See docs/ARCHITECTURE.md §"Selection vectors".
#ifndef VODAK_COMMON_COPY_STATS_H_
#define VODAK_COMMON_COPY_STATS_H_

#include <atomic>
#include <cstdint>

namespace vodak {

/// Relaxed atomics: the counters are bumped once per compaction/gather
/// (not per value) from parallel morsel workers, and read only by the
/// benchmark/test harness while no query is in flight.
struct BatchCopyStats {
  /// Values physically moved by RowBatch::Compact / CompactRows.
  static inline std::atomic<uint64_t> compact_moves{0};
  /// Values copied into dense gathered sub-batches (selection views and
  /// AND/OR mask gathers in expr/expr_eval_batch.cc).
  static inline std::atomic<uint64_t> gather_copies{0};

  static uint64_t TotalMoves() {
    return compact_moves.load(std::memory_order_relaxed) +
           gather_copies.load(std::memory_order_relaxed);
  }
  static void Reset() {
    compact_moves.store(0, std::memory_order_relaxed);
    gather_copies.store(0, std::memory_order_relaxed);
  }
};

}  // namespace vodak

#endif  // VODAK_COMMON_COPY_STATS_H_
