#ifndef VODAK_COMMON_LOGGING_H_
#define VODAK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vodak {
namespace internal {

/// Collects a failure message and aborts the process when destroyed.
/// Used by VODAK_CHECK / VODAK_DCHECK for internal invariants only;
/// user-facing errors travel through Status instead.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace vodak

#define VODAK_CHECK(cond)                                             \
  (cond) ? (void)0                                                    \
         : VodakCheckVoidify() &                                      \
               ::vodak::internal::FatalLogMessage(__FILE__, __LINE__, \
                                                  #cond)              \
                   .stream()

#ifndef NDEBUG
#define VODAK_DCHECK(cond) VODAK_CHECK(cond)
#else
#define VODAK_DCHECK(cond) \
  true ? (void)0 : VodakCheckVoidify() & ::vodak::internal::NullStream()
#endif

/// Helper giving the ternary in VODAK_CHECK a void-typed right arm.
struct VodakCheckVoidify {
  template <typename T>
  friend void operator&(VodakCheckVoidify, T&&) {}
};

#endif  // VODAK_COMMON_LOGGING_H_
