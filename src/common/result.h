#ifndef VODAK_COMMON_RESULT_H_
#define VODAK_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace vodak {

/// A Status plus, on success, a value of type T.
///
/// Usage:
///   Result<int> Parse(...);
///   VODAK_ASSIGN_OR_RETURN(int v, Parse(...));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {
    VODAK_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VODAK_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    VODAK_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  /// By value on rvalues: `for (auto& x : F().value())` stays safe
  /// because the returned prvalue's lifetime is extended by the range
  /// binding, which a returned reference's would not be.
  T value() && {
    VODAK_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vodak

#define VODAK_CONCAT_IMPL(a, b) a##b
#define VODAK_CONCAT(a, b) VODAK_CONCAT_IMPL(a, b)

/// Evaluate a Result<T> expression; on error return the Status, on success
/// bind the value to `lhs` (which may include a type declaration).
#define VODAK_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  VODAK_ASSIGN_OR_RETURN_IMPL(VODAK_CONCAT(_res_, __LINE__), lhs, rexpr)

#define VODAK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#endif  // VODAK_COMMON_RESULT_H_
