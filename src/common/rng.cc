#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vodak {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(state);
  s1_ = SplitMix64(state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  VODAK_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed) {
  VODAK_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace vodak
