#ifndef VODAK_COMMON_RNG_H_
#define VODAK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vodak {

/// Deterministic xorshift128+ generator. All workload generation in the
/// repository uses this so that every test, example and benchmark is
/// reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian sampler over {0, .., n-1} with skew `theta` (theta = 0 means
/// uniform). Used to give synthetic document text a realistic skewed term
/// frequency distribution, which is what makes the inverted-index
/// substitution for the paper's external IR engine behave realistically
/// (few very frequent terms, a long tail of rare ones).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta, uint64_t seed);

  size_t Next();

  size_t n() const { return n_; }

 private:
  size_t n_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace vodak

#endif  // VODAK_COMMON_RNG_H_
