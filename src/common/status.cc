#include "common/status.h"

namespace vodak {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecError:
      return "ExecError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace vodak
