#ifndef VODAK_COMMON_STATUS_H_
#define VODAK_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace vodak {

/// Error categories used across the library. Modeled on the RocksDB/Arrow
/// Status idiom: cheap to pass by value, OK carries no allocation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kBindError,
  kPlanError,
  kExecError,
  kUnsupported,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

/// Return-value based error propagation. All fallible public APIs return a
/// Status or a Result<T>; exceptions are never thrown across module
/// boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecError(std::string msg) {
    return Status(StatusCode::kExecError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

}  // namespace vodak

/// Propagate a non-OK Status from the current function.
#define VODAK_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::vodak::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // VODAK_COMMON_STATUS_H_
