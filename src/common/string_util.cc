#include "common/string_util.h"

#include <cctype>

namespace vodak {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool ContainsSubstring(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace vodak
