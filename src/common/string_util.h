#ifndef VODAK_COMMON_STRING_UTIL_H_
#define VODAK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vodak {

/// Join `parts` with `sep`, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-case ASCII copy.
std::string ToLower(std::string_view s);

/// Split `s` into maximal runs of alphanumeric characters, lower-cased.
/// This is the tokenizer shared by the inverted index and by the
/// per-object `contains_string` scan so that both sides of equivalence E5
/// agree exactly on what "contains" means.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Case-sensitive substring test used by token-granularity callers that
/// need the raw semantics (infrastructure helper).
bool ContainsSubstring(std::string_view haystack, std::string_view needle);

/// 64-bit FNV-1a hash, the common hash primitive for values and plans.
uint64_t HashBytes(const void* data, size_t n, uint64_t seed = 14695981039346656037ULL);

/// Combine two 64-bit hashes (boost-style mixing).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace vodak

#endif  // VODAK_COMMON_STRING_UTIL_H_
