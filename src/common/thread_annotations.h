// Compile-time concurrency contracts: Clang Thread Safety Analysis
// attributes plus the annotated lock types the analysis needs
// (docs/ARCHITECTURE.md §"Static analysis & concurrency contracts").
//
// The macro set is the standard GUARDED_BY/REQUIRES/ACQUIRE/RELEASE
// vocabulary from the Clang documentation; on non-clang compilers (and
// on clang without the attribute) every macro expands to nothing, so
// gcc builds are byte-identical. The clang CI legs build with
// `-Wthread-safety -Werror=thread-safety` (CMake option
// VODAK_THREAD_SAFETY), turning every locking-discipline violation —
// a GUARDED_BY field touched without its mutex, a lock leaked out of
// scope, a REQUIRES contract broken by a caller — into a build error
// on every compile, not a TSan finding on the interleavings a test
// happens to hit.
//
// libstdc++'s std::mutex carries no capability attributes, so guarding
// a field with a raw std::mutex would make every *correct* access a
// false positive. Concurrent structures therefore use the annotated
// wrappers below (vodak::Mutex + MutexLock/UniqueLock), which forward
// to std::mutex and cost nothing beyond it. scripts/lint.py enforces
// that every mutex member in src/ has a GUARDED_BY-annotated field set
// (or an explicit `lint: no-guarded-fields(reason)` waiver).
#ifndef VODAK_COMMON_THREAD_ANNOTATIONS_H_
#define VODAK_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define VODAK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VODAK_THREAD_ANNOTATION
#define VODAK_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define CAPABILITY(x) VODAK_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY VODAK_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define GUARDED_BY(x) VODAK_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define PT_GUARDED_BY(x) VODAK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively / shared) on entry.
#define REQUIRES(...) \
  VODAK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VODAK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define ACQUIRE(...) \
  VODAK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VODAK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases a held capability.
#define RELEASE(...) \
  VODAK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VODAK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  VODAK_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself);
/// the deadlock-prevention half of the vocabulary.
#define EXCLUDES(...) VODAK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock ordering: this mutex must be acquired after / before `x`.
#define ACQUIRED_AFTER(...) \
  VODAK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  VODAK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned data.
#define RETURN_CAPABILITY(x) VODAK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot follow (init paths,
/// test shims). Use sparingly and say why at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  VODAK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vodak {

/// std::mutex with the capability attribute the analysis keys on.
/// Same cost, same semantics; exists only because libstdc++'s mutex is
/// unannotated. Locked via MutexLock/UniqueLock below (or lock() /
/// unlock() directly in the rare manual-scope case).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // lint: no-guarded-fields(the wrapper IS the lock)
};

/// std::lock_guard over vodak::Mutex: acquire in the constructor,
/// release in the destructor, nothing else.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over vodak::Mutex: a relockable scoped capability
/// (the analysis tracks the lock()/unlock() calls), and the lock type
/// std::condition_variable_any waits on — wait(lock) releases and
/// reacquires inside the call, so the capability is held at both edges
/// of wait(), which is exactly what the analysis checks.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~UniqueLock() RELEASE() {
    if (owned_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    owned_ = false;
    mu_.unlock();
  }

  // lock()/unlock() double as the BasicLockable surface that
  // std::condition_variable_any::wait drives. The release/reacquire
  // pair inside wait() happens in libstdc++ header code, where clang
  // suppresses analysis diagnostics (system headers), and wait()
  // itself carries no attributes — so from the caller's view the
  // capability is held across the call, which matches reality at both
  // edges of wait().

 private:
  Mutex& mu_;
  bool owned_;
};

/// std::shared_mutex with the capability attribute, for the
/// reader/writer split the MVCC store needs: many concurrent snapshot
/// readers (lock_shared) against one writer (lock). Same rationale as
/// vodak::Mutex — libstdc++'s shared_mutex is unannotated, so guarding
/// fields with it raw would blind the analysis.
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;  // lint: no-guarded-fields(the wrapper IS the lock)
};

/// Scoped shared (reader) hold on a SharedMutex. The destructor uses
/// the generic RELEASE() — for a scoped capability clang treats it as
/// releasing whichever mode the constructor acquired, which is the
/// abseil ReaderMutexLock convention.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() RELEASE() { mu_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) hold on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace vodak

#endif  // VODAK_COMMON_THREAD_ANNOTATIONS_H_
