// Process-wide counters of the compiled-execution backend, the
// observables the batch VM optimizes: how many fused per-batch VM
// dispatches replaced how many virtual NextBatch hand-offs in the
// operator tree, how often compilation fell back, and whether the
// per-query arena reached its zero-allocation steady state.
// bench_vm records them into BENCH_vm.json and scripts/ci.sh --vm
// gates `vm_dispatches < operator_handoffs` on the fused chain and
// zero arena growth after warmup. See docs/ARCHITECTURE.md
// §"Compiled execution — the batch VM".
#ifndef VODAK_COMMON_VM_STATS_H_
#define VODAK_COMMON_VM_STATS_H_

#include <atomic>
#include <cstdint>

namespace vodak {

/// Relaxed atomics: every counter is bumped once per batch / per query
/// (never per row) from query threads, and read only by the benchmark
/// and test harnesses while no query is in flight.
struct VmStats {
  /// Fused program runs: one per scan batch the VM consumes, covering
  /// the whole filter→map→project chain in a single dispatch.
  static inline std::atomic<uint64_t> vm_dispatches{0};
  /// Virtual NextBatch entries in the operator tree — one per operator
  /// per batch, the hand-off cost the VM fuses away.
  static inline std::atomic<uint64_t> operator_handoffs{0};
  /// Queries TryCompileVm lowered to a VM program.
  static inline std::atomic<uint64_t> vm_compiled{0};
  /// Queries TryCompileVm declined (ineligible shape or no cost win).
  static inline std::atomic<uint64_t> vm_fallbacks{0};
  /// QueryArena buffer capacity-growth events. Zero across a drain
  /// means the batch loop ran allocation-free out of retained buffers.
  static inline std::atomic<uint64_t> arena_allocations{0};
  /// Bytes acquired by those growth events (cumulative).
  static inline std::atomic<uint64_t> arena_bytes{0};
  /// Per-query arena resets (Open() of a VM execution).
  static inline std::atomic<uint64_t> arena_resets{0};

  static void Reset() {
    vm_dispatches.store(0, std::memory_order_relaxed);
    operator_handoffs.store(0, std::memory_order_relaxed);
    vm_compiled.store(0, std::memory_order_relaxed);
    vm_fallbacks.store(0, std::memory_order_relaxed);
    arena_allocations.store(0, std::memory_order_relaxed);
    arena_bytes.store(0, std::memory_order_relaxed);
    arena_resets.store(0, std::memory_order_relaxed);
  }
};

}  // namespace vodak

#endif  // VODAK_COMMON_VM_STATS_H_
