#include "engine/database.h"

#include <algorithm>
#include <chrono>

#include "algebra/translate.h"
#include "vql/parser.h"

namespace vodak {
namespace engine {

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Database::Database(const Catalog* catalog, ObjectStore* store,
                   MethodRegistry* methods)
    : catalog_(catalog),
      store_(store),
      methods_(methods),
      knowledge_(catalog) {}

void Database::AddStatsProvider(opt::MethodStatsProvider provider) {
  providers_.push_back(std::move(provider));
}

Status Database::GenerateOptimizer(opt::OptimizerOptions options) {
  options_ = options;
  semantics::OptimizerGenerator generator(catalog_, store_, methods_);
  VODAK_ASSIGN_OR_RETURN(module_,
                         generator.Generate(&knowledge_, providers_,
                                            options));
  return Status::OK();
}

Result<vql::BoundQuery> Database::Parse(const std::string& vql) const {
  VODAK_ASSIGN_OR_RETURN(vql::Query query, vql::ParseQuery(vql));
  vql::Binder binder(catalog_);
  return binder.Bind(query);
}

Result<QueryResult> Database::PlanQuery(const std::string& vql,
                                        const ExecOptions& options,
                                        vql::BoundQuery* bound_out) {
  VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));

  // A throwaway algebra context suffices when no optimizer was
  // generated.
  algebra::AlgebraContext local_ctx(catalog_);
  const algebra::AlgebraContext& ctx =
      module_.algebra != nullptr ? *module_.algebra : local_ctx;

  QueryResult out;
  VODAK_ASSIGN_OR_RETURN(out.original_plan, algebra::TranslateQuery(ctx, bound));
  out.chosen_plan = out.original_plan;

  if (options.optimize) {
    if (module_.optimizer == nullptr) {
      return Status::InvalidArgument(
          "no optimizer generated; call GenerateOptimizer() first");
    }
    opt::OptimizerOptions run_options = options_;
    run_options.enable_trace = options.trace;
    opt::Optimizer tracer(module_.algebra.get(), module_.cost.get(),
                          module_.optimizer->rules(), run_options);
    auto start = std::chrono::steady_clock::now();
    VODAK_ASSIGN_OR_RETURN(opt::OptimizeResult opt_result,
                           tracer.Optimize(out.original_plan));
    out.optimize_ms = MsSince(start);
    out.chosen_plan = opt_result.best_plan;
    out.chosen_cost = opt_result.best_cost;
    out.original_cost = opt_result.original_cost;
    out.memo_groups = opt_result.group_count;
    out.memo_exprs = opt_result.expr_count;
    out.rule_applications = opt_result.rule_applications;
    out.trace = std::move(opt_result.trace);
  }

  if (bound_out != nullptr) *bound_out = std::move(bound);
  return out;
}

Result<QueryResult> Database::Run(const std::string& vql,
                                  const ExecOptions& options) {
  vql::BoundQuery bound;
  VODAK_ASSIGN_OR_RETURN(QueryResult out,
                         PlanQuery(vql, options, &bound));

  if (!options.execute) {
    out.result = Value::Set({});
    return out;
  }
  exec::ExecContext exec_ctx{catalog_, store_, methods_};
  VODAK_ASSIGN_OR_RETURN(exec::PhysOpPtr root,
                         exec::BuildPhysical(out.chosen_plan, exec_ctx));
  out.physical_explain = exec::ExplainPhysical(*root);
  const size_t threads = exec::ResolveThreads(options.threads);
  auto start = std::chrono::steady_clock::now();
  exec::ParallelPlanStatePtr pstate;
  if (options.batch && threads > 1) {
    // Probe for a parallelizable driving scan up front, so plans with
    // none (set ops on the driving path) reuse the already-built
    // serial tree instead of paying a second plan build in the driver.
    VODAK_ASSIGN_OR_RETURN(
        pstate, exec::PrepareParallelPlan(out.chosen_plan, exec_ctx,
                                          threads, options.morsel_size));
  }
  if (pstate != nullptr) {
    exec::ParallelOptions popts;
    popts.threads = threads;
    popts.morsel_size = options.morsel_size;
    popts.pool = EnsurePool(threads);
    // The serial tree above is only the EXPLAIN skeleton; mark that
    // execution actually ran worker clones over shared morsels.
    out.physical_explain +=
        "[parallel: threads=" + std::to_string(threads) +
        ", morsel<=" + std::to_string(popts.morsel_size) +
        "; driving scan executed as per-worker MorselScan clones]\n";
    VODAK_ASSIGN_OR_RETURN(
        out.result,
        exec::ParallelExecuteColumn(out.chosen_plan, exec_ctx,
                                    algebra::ResultRef(bound), popts,
                                    std::move(pstate)));
  } else {
    VODAK_ASSIGN_OR_RETURN(
        out.result,
        exec::ExecuteColumn(root.get(), algebra::ResultRef(bound),
                            options.batch ? exec::ExecMode::kBatch
                                          : exec::ExecMode::kRow));
  }
  out.execute_ms = MsSince(start);
  return out;
}

Result<std::vector<QueryResult>> Database::RunConcurrent(
    const std::vector<std::string>& queries, const ExecOptions& options) {
  std::vector<QueryResult> out;
  if (queries.empty()) return out;  // nothing to plan, no pool to spawn
  // Planning stays serial (the optimizer module is not built for
  // concurrent Optimize calls); the drains below overlap.
  out.reserve(queries.size());
  std::vector<exec::ConcurrentQuery> plans;
  plans.reserve(queries.size());
  for (const std::string& vql : queries) {
    vql::BoundQuery bound;
    VODAK_ASSIGN_OR_RETURN(QueryResult planned,
                           PlanQuery(vql, options, &bound));
    exec::ConcurrentQuery query;
    query.plan = planned.chosen_plan;
    query.result_ref = algebra::ResultRef(bound);
    plans.push_back(std::move(query));
    out.push_back(std::move(planned));
  }
  if (!options.execute) {
    for (QueryResult& result : out) result.result = Value::Set({});
    return out;
  }

  exec::ExecContext exec_ctx{catalog_, store_, methods_};
  // The EXPLAIN skeleton is the serial private-leaf tree, like the
  // morsel-parallel path's; the note below records how the leaves
  // actually executed. The workers rebuild their own (shared-leaf)
  // trees — these skeletons are plan construction only, no Open, and
  // operator trees are a handful of nodes.
  for (size_t i = 0; i < out.size(); ++i) {
    VODAK_ASSIGN_OR_RETURN(exec::PhysOpPtr root,
                           exec::BuildPhysical(plans[i].plan, exec_ctx));
    out[i].physical_explain = exec::ExplainPhysical(*root);
  }
  exec::ConcurrentOptions copts;
  copts.threads = exec::ResolveThreads(options.threads);
  copts.morsel_size = options.morsel_size;
  copts.shared_scan = options.shared_scan;
  copts.batch = options.batch;
  copts.pool = EnsurePoolExact(std::min(copts.threads, queries.size()));
  auto start = std::chrono::steady_clock::now();
  VODAK_ASSIGN_OR_RETURN(
      std::vector<Value> results,
      exec::ExecuteConcurrentColumns(plans, exec_ctx, copts));
  const double batch_ms = MsSince(start);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].result = std::move(results[i]);
    out[i].execute_ms = batch_ms;  // the drains overlap: batch time
    out[i].physical_explain +=
        "[concurrent batch of " + std::to_string(queries.size()) +
        (options.shared_scan ? ": scan leaves attached to shared scans]\n"
                             : ": private-scan baseline]\n");
  }
  return out;
}

exec::WorkerPool* Database::EnsurePool(size_t threads) {
  if (pool_ == nullptr || pool_->parallelism() < threads) {
    pool_ = std::make_unique<exec::WorkerPool>(threads);
  }
  return pool_.get();
}

exec::WorkerPool* Database::EnsurePoolExact(size_t threads) {
  if (pool_ == nullptr || pool_->parallelism() != threads) {
    pool_ = std::make_unique<exec::WorkerPool>(threads);
  }
  return pool_.get();
}

Result<Value> Database::RunNaive(
    const std::string& vql,
    const vql::Interpreter::Options& options) const {
  VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));
  vql::Interpreter interpreter(catalog_, store_, methods_);
  return interpreter.Run(bound, options);
}

Result<std::vector<Value>> Database::RunNaiveConcurrent(
    const std::vector<std::string>& queries,
    vql::Interpreter::Options options) const {
  exec::SharedScanManager manager(store_, options.morsel_size);
  options.shared_scans = &manager;
  vql::Interpreter interpreter(catalog_, store_, methods_);
  std::vector<Value> out;
  out.reserve(queries.size());
  for (const std::string& vql : queries) {
    VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));
    VODAK_ASSIGN_OR_RETURN(Value result, interpreter.Run(bound, options));
    out.push_back(std::move(result));
  }
  return out;
}

Result<std::string> Database::Explain(const std::string& vql,
                                      const ExecOptions& options) {
  VODAK_ASSIGN_OR_RETURN(QueryResult result, Run(vql, options));
  std::string out;
  out += "== VQL ==\n" + vql + "\n";
  out += "== algebra (translated, cost " +
         std::to_string(result.original_cost) + ") ==\n";
  out += result.original_plan->ToTreeString();
  out += "== algebra (optimized, cost " +
         std::to_string(result.chosen_cost) + ") ==\n";
  out += result.chosen_plan->ToTreeString();
  out += "== physical plan ==\n" + result.physical_explain;
  if (!result.trace.empty()) {
    out += "== rule applications (" +
           std::to_string(result.trace.size()) + ") ==\n";
    for (const auto& entry : result.trace) {
      out += "  [" + entry.rule + "]\n    " + entry.before + "\n    => " +
             entry.after + "\n";
    }
  }
  return out;
}

}  // namespace engine
}  // namespace vodak
