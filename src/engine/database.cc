#include "engine/database.h"

#include <algorithm>
#include <chrono>

#include "algebra/translate.h"
#include "exec/vm.h"
#include "vql/parser.h"

namespace vodak {
namespace engine {

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Database::Database(const Catalog* catalog, ObjectStore* store,
                   MethodRegistry* methods)
    : catalog_(catalog),
      store_(store),
      methods_(methods),
      knowledge_(catalog) {}

void Database::AddStatsProvider(opt::MethodStatsProvider provider) {
  providers_.push_back(std::move(provider));
}

Status Database::GenerateOptimizer(opt::OptimizerOptions options) {
  options_ = options;
  semantics::OptimizerGenerator generator(catalog_, store_, methods_);
  VODAK_ASSIGN_OR_RETURN(module_,
                         generator.Generate(&knowledge_, providers_,
                                            options));
  return Status::OK();
}

Result<vql::BoundQuery> Database::Parse(const std::string& vql) const {
  VODAK_ASSIGN_OR_RETURN(vql::Query query, vql::ParseQuery(vql));
  vql::Binder binder(catalog_);
  return binder.Bind(query);
}

Result<QueryResult> Database::PlanQuery(const std::string& vql,
                                        const PlanOptions& options,
                                        vql::BoundQuery* bound_out) {
  VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));

  // A throwaway algebra context suffices when no optimizer was
  // generated.
  algebra::AlgebraContext local_ctx(catalog_);
  const algebra::AlgebraContext& ctx =
      module_.algebra != nullptr ? *module_.algebra : local_ctx;

  QueryResult out;
  VODAK_ASSIGN_OR_RETURN(out.original_plan, algebra::TranslateQuery(ctx, bound));
  out.chosen_plan = out.original_plan;

  if (options.optimize) {
    if (module_.optimizer == nullptr) {
      return Status::InvalidArgument(
          "no optimizer generated; call GenerateOptimizer() first");
    }
    opt::OptimizerOptions run_options = options_;
    run_options.enable_trace = options.trace;
    opt::Optimizer tracer(module_.algebra.get(), module_.cost.get(),
                          module_.optimizer->rules(), run_options);
    auto start = std::chrono::steady_clock::now();
    VODAK_ASSIGN_OR_RETURN(opt::OptimizeResult opt_result,
                           tracer.Optimize(out.original_plan));
    out.optimize_ms = MsSince(start);
    out.chosen_plan = opt_result.best_plan;
    out.chosen_cost = opt_result.best_cost;
    out.original_cost = opt_result.original_cost;
    out.memo_groups = opt_result.group_count;
    out.memo_exprs = opt_result.expr_count;
    out.rule_applications = opt_result.rule_applications;
    out.trace = std::move(opt_result.trace);
  }

  if (bound_out != nullptr) *bound_out = std::move(bound);
  return out;
}

Result<PreparedQuery> Database::Prepare(const std::string& vql,
                                        const PlanOptions& options) {
  vql::BoundQuery bound;
  PreparedQuery prepared;
  VODAK_ASSIGN_OR_RETURN(prepared.planned,
                         PlanQuery(vql, options, &bound));
  prepared.result_ref = algebra::ResultRef(bound);
  return prepared;
}

Status Database::ExecuteSingle(const QueryRequest& request,
                               const std::string& result_ref,
                               QueryResult* result, QueryStats* stats,
                               Epoch snapshot) {
  exec::ExecContext exec_ctx{catalog_, store_, methods_};
  exec_ctx.cancel = request.cancel;
  exec_ctx.deadline = request.deadline;
  exec_ctx.snapshot_epoch = snapshot;
  exec_ctx.segments = segments_;
  VODAK_ASSIGN_OR_RETURN(
      exec::PhysOpPtr root,
      exec::BuildPhysical(result->chosen_plan, exec_ctx));
  result->physical_explain = exec::ExplainPhysical(*root);
  const size_t threads = exec::ResolveThreads(request.run.threads);
  auto start = std::chrono::steady_clock::now();
  exec::ParallelPlanStatePtr pstate;
  if (request.run.batch && threads > 1) {
    // Probe for a parallelizable driving scan up front, so plans with
    // none (set ops on the driving path) reuse the already-built
    // serial tree instead of paying a second plan build in the driver.
    VODAK_ASSIGN_OR_RETURN(
        pstate,
        exec::PrepareParallelPlan(result->chosen_plan, exec_ctx, threads,
                                  request.run.morsel_size));
  }
  if (pstate != nullptr) {
    exec::ParallelOptions popts;
    popts.threads = threads;
    popts.morsel_size = request.run.morsel_size;
    popts.pool = EnsurePool(threads);
    // The serial tree above is only the EXPLAIN skeleton; mark that
    // execution actually ran worker clones over shared morsels.
    result->physical_explain +=
        "[parallel: threads=" + std::to_string(threads) +
        ", morsel<=" + std::to_string(popts.morsel_size) +
        "; driving scan executed as per-worker MorselScan clones]\n";
    VODAK_ASSIGN_OR_RETURN(
        result->result,
        exec::ParallelExecuteColumn(result->chosen_plan, exec_ctx,
                                    result_ref, popts,
                                    std::move(pstate)));
  } else {
    // Serial batch drains may lower the plan to the bytecode VM
    // (exec/vm.h): the same ExecuteColumn drives either root, so the
    // engine above cannot tell compiled from interpreted execution.
    // Row mode stays on the tree — it is the independent oracle the VM
    // is differentially tested against.
    if (request.run.batch && request.run.vm != VmMode::kOff) {
      VODAK_ASSIGN_OR_RETURN(
          exec::VmChoice vm,
          exec::TryCompileVm(result->chosen_plan, exec_ctx,
                             request.run.vm == VmMode::kForce));
      result->physical_explain += vm.annotation;
      if (vm.compiled) root = std::move(vm.op);
    }
    VODAK_ASSIGN_OR_RETURN(
        result->result,
        exec::ExecuteColumn(root.get(), result_ref,
                            request.run.batch ? exec::ExecMode::kBatch
                                              : exec::ExecMode::kRow));
  }
  stats->drain_ms = MsSince(start);
  result->execute_ms = stats->drain_ms;
  return Status::OK();
}

Result<std::vector<Mutation>> Database::BuildMutations(
    const vql::BoundWrite& write) const {
  const ExprEvaluator evaluator(catalog_, store_, methods_);
  std::vector<Mutation> mutations;
  if (write.kind == vql::WriteStatement::Kind::kInsert) {
    std::vector<std::pair<uint32_t, Value>> sets;
    sets.reserve(write.sets.size());
    for (const auto& [slot, expr] : write.sets) {
      VODAK_ASSIGN_OR_RETURN(Value v, evaluator.Eval(expr, {}));
      sets.emplace_back(slot, std::move(v));
    }
    mutations.push_back(Mutation::Insert(write.class_id, std::move(sets)));
    return mutations;
  }
  // UPDATE / DELETE: expand the predicate over the current extent. The
  // caller holds write_mu_, so no other writer can move the extent
  // between this scan and the Apply.
  VODAK_ASSIGN_OR_RETURN(std::vector<Oid> extent,
                         store_->Extent(write.class_id));
  for (Oid oid : extent) {
    Env env;
    env["self"] = Value::OfOid(oid);
    if (write.where != nullptr) {
      VODAK_ASSIGN_OR_RETURN(bool keep,
                             evaluator.EvalPredicate(write.where, env));
      if (!keep) continue;
    }
    if (write.kind == vql::WriteStatement::Kind::kDelete) {
      mutations.push_back(Mutation::Delete(oid));
      continue;
    }
    std::vector<std::pair<uint32_t, Value>> sets;
    sets.reserve(write.sets.size());
    for (const auto& [slot, expr] : write.sets) {
      VODAK_ASSIGN_OR_RETURN(Value v, evaluator.Eval(expr, env));
      sets.emplace_back(slot, std::move(v));
    }
    mutations.push_back(Mutation::Update(oid, std::move(sets)));
  }
  return mutations;
}

Status Database::ExecuteWrite(const QueryRequest& request,
                              QueryResult* result, QueryStats* stats) {
  auto plan_start = std::chrono::steady_clock::now();
  UniqueLock lock(write_mu_);
  std::vector<Mutation> mutations;
  bool vql_insert = false;
  if (!request.mutations.empty()) {
    mutations = request.mutations;
  } else {
    VODAK_ASSIGN_OR_RETURN(vql::WriteStatement stmt,
                           vql::ParseWrite(request.vql));
    vql::Binder binder(catalog_);
    VODAK_ASSIGN_OR_RETURN(vql::BoundWrite write, binder.BindWrite(stmt));
    vql_insert = write.kind == vql::WriteStatement::Kind::kInsert;
    VODAK_ASSIGN_OR_RETURN(mutations, BuildMutations(write));
  }
  stats->plan_ms = MsSince(plan_start);

  auto apply_start = std::chrono::steady_clock::now();
  VODAK_ASSIGN_OR_RETURN(MutationResult applied, store_->Apply(mutations));
  if (segments_ != nullptr) {
    // Segment data predates this commit: close the touched classes'
    // open versions at the commit epoch, so readers pinned below it
    // keep the segment path while later snapshots fall back to the
    // store until the class is re-ingested.
    for (const Mutation& m : mutations) {
      segments_->CloseVersions(m.kind == Mutation::Kind::kInsert
                                   ? m.class_id
                                   : m.oid.class_id,
                               applied.epoch);
    }
  }
  stats->drain_ms = MsSince(apply_start);
  result->execute_ms = stats->drain_ms;
  // A write's "snapshot" is the epoch its batch committed as — the
  // first epoch at which its effects are visible.
  result->snapshot_epoch = applied.epoch;
  stats->snapshot_epoch = applied.epoch;

  // Result shape: creations yield the created oids (a set, like a
  // read); pure update/delete batches yield the affected-object count.
  if (!applied.created.empty() || vql_insert) {
    std::vector<Value> oids;
    oids.reserve(applied.created.size());
    for (Oid oid : applied.created) oids.push_back(Value::OfOid(oid));
    result->result = Value::Set(std::move(oids));
  } else {
    result->result =
        Value::Int(static_cast<int64_t>(applied.updated + applied.deleted));
  }
  return Status::OK();
}

Status Database::RefreshSegments() {
  if (segments_ == nullptr) return Status::OK();
  const Epoch at = store_->CurrentEpoch();
  for (const auto& cls : catalog_->classes()) {
    uint32_t slot_count = 0;
    for (const PropertyDef& prop : cls->properties()) {
      slot_count = std::max(slot_count, prop.slot + 1);
    }
    VODAK_RETURN_IF_ERROR(
        segments_->IngestClass(*store_, cls->class_id(), slot_count, at));
  }
  return Status::OK();
}

std::vector<QueryOutcome> Database::Submit(
    const std::vector<QueryRequest>& requests,
    const SubmitOptions& options) {
  std::vector<QueryOutcome> out(requests.size());
  // Plan serially (the optimizer module is not built for concurrent
  // Optimize calls); the drains below overlap. A request that is
  // already cancelled or expired is rejected here, before planning.
  // Write requests commit right here, in request order, during this
  // admission pass — so the snapshot the batch's readers pin below
  // already contains every write the batch carried.
  std::vector<size_t> runnable;
  std::vector<exec::ConcurrentQuery> plans;
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    QueryOutcome& o = out[i];
    o.status = exec::CheckQueryAlive(request.cancel, request.deadline);
    if (!o.status.ok()) continue;
    if (!request.mutations.empty() || vql::IsWriteStatement(request.vql)) {
      o.status = ExecuteWrite(request, &o.result, &o.stats);
      continue;
    }
    auto plan_start = std::chrono::steady_clock::now();
    vql::BoundQuery bound;
    Result<QueryResult> planned = PlanQuery(request.vql, request.plan,
                                            &bound);
    o.stats.plan_ms = MsSince(plan_start);
    if (!planned.ok()) {
      o.status = planned.status();
      continue;
    }
    o.result = std::move(planned).value();
    if (!request.run.execute) {
      o.result.result = Value::Set({});
      continue;
    }
    exec::ConcurrentQuery query;
    query.plan = o.result.chosen_plan;
    query.result_ref = algebra::ResultRef(bound);
    query.cancel = request.cancel;
    query.deadline = request.deadline;
    query.batch = request.run.batch;
    runnable.push_back(i);
    plans.push_back(std::move(query));
  }
  if (runnable.empty()) return out;

  // Pin the batch's read snapshot: one epoch for every reader, taken
  // after the batch's writes committed. Versions visible at this epoch
  // survive reclaim until the pin drops at the end of the drain.
  EpochPin pin(store_);
  for (size_t i : runnable) {
    out[i].stats.snapshot_epoch = pin.epoch();
    out[i].result.snapshot_epoch = pin.epoch();
  }

  if (runnable.size() == 1) {
    // A lone query gets the intra-query morsel-parallel path: its
    // RunOptions::threads splits the one plan over morsels instead of
    // the batch lanes splitting queries.
    QueryOutcome& o = out[runnable[0]];
    o.stats.generation_id = NextGenerationId();
    o.status = ExecuteSingle(requests[runnable[0]], plans[0].result_ref,
                             &o.result, &o.stats, pin.epoch());
    return out;
  }

  exec::ExecContext exec_ctx{catalog_, store_, methods_};
  exec_ctx.snapshot_epoch = pin.epoch();
  exec_ctx.segments = segments_;
  // The EXPLAIN skeleton is the serial private-leaf tree, like the
  // morsel-parallel path's; the note below records how the leaves
  // actually executed. The workers rebuild their own (shared-leaf)
  // trees — these skeletons are plan construction only, no Open, and
  // operator trees are a handful of nodes.
  for (size_t i = 0; i < runnable.size(); ++i) {
    Result<exec::PhysOpPtr> root =
        exec::BuildPhysical(plans[i].plan, exec_ctx);
    if (root.ok()) {
      out[runnable[i]].result.physical_explain =
          exec::ExplainPhysical(*root.value());
    }
  }
  exec::ConcurrentOptions copts;
  copts.threads = exec::ResolveThreads(options.lanes);
  copts.morsel_size = options.morsel_size;
  copts.shared_scan = options.shared_scan;
  copts.pool = EnsurePoolExact(std::min(copts.threads, plans.size()));
  const uint64_t generation = NextGenerationId();
  Result<std::vector<exec::ConcurrentQueryOutcome>> outcomes =
      exec::ExecuteConcurrentOutcomes(plans, exec_ctx, copts);
  if (!outcomes.ok()) {
    for (size_t i : runnable) out[i].status = outcomes.status();
    return out;
  }
  for (size_t i = 0; i < runnable.size(); ++i) {
    QueryOutcome& o = out[runnable[i]];
    exec::ConcurrentQueryOutcome& oc = outcomes.value()[i];
    o.status = oc.status;
    o.result.result = std::move(oc.value);
    o.stats.queue_ms = oc.queue_ms;
    o.stats.drain_ms = oc.drain_ms;
    o.stats.generation_id = generation;
    // The honest per-query number: this drain, not the batch's.
    o.result.execute_ms = oc.drain_ms;
    o.result.physical_explain +=
        "[concurrent batch of " + std::to_string(plans.size()) +
        (options.shared_scan ? ": scan leaves attached to shared scans]\n"
                             : ": private-scan baseline]\n");
  }
  return out;
}

Result<QueryResult> Database::Run(const std::string& vql,
                                  const PlanOptions& plan,
                                  const RunOptions& run) {
  QueryRequest request;
  request.vql = vql;
  request.plan = plan;
  request.run = run;
  std::vector<QueryOutcome> outcomes = Submit({request});
  VODAK_RETURN_IF_ERROR(outcomes[0].status);
  return std::move(outcomes[0].result);
}

Result<std::vector<QueryResult>> Database::RunConcurrent(
    const std::vector<std::string>& queries, const SubmitOptions& options,
    const PlanOptions& plan, const RunOptions& run) {
  std::vector<QueryResult> out;
  if (queries.empty()) return out;  // nothing to plan, no pool to spawn
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const std::string& vql : queries) {
    QueryRequest request;
    request.vql = vql;
    request.plan = plan;
    request.run = run;
    requests.push_back(std::move(request));
  }
  std::vector<QueryOutcome> outcomes = Submit(requests, options);
  out.reserve(outcomes.size());
  for (QueryOutcome& outcome : outcomes) {
    VODAK_RETURN_IF_ERROR(outcome.status);
    out.push_back(std::move(outcome.result));
  }
  return out;
}

exec::WorkerPool* Database::EnsurePool(size_t threads) {
  if (pool_ == nullptr || pool_->parallelism() < threads) {
    pool_ = std::make_unique<exec::WorkerPool>(threads);
  }
  return pool_.get();
}

exec::WorkerPool* Database::EnsurePoolExact(size_t threads) {
  if (pool_ == nullptr || pool_->parallelism() != threads) {
    pool_ = std::make_unique<exec::WorkerPool>(threads);
  }
  return pool_.get();
}

Result<Value> Database::RunNaive(
    const std::string& vql,
    const vql::Interpreter::Options& options) const {
  VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));
  vql::Interpreter interpreter(catalog_, store_, methods_);
  return interpreter.Run(bound, options);
}

Result<std::vector<Value>> Database::RunNaiveConcurrent(
    const std::vector<std::string>& queries,
    vql::Interpreter::Options options) const {
  // Pin one snapshot for the whole batch (unless the caller already
  // chose one) so the shared extents and the per-query property reads
  // agree even when a writer commits mid-batch.
  EpochPin pin(store_);
  if (options.snapshot_epoch == kEpochLatest) {
    options.snapshot_epoch = pin.epoch();
  }
  exec::SharedScanManager manager(store_, options.morsel_size,
                                  options.snapshot_epoch, segments_);
  options.shared_scans = &manager;
  vql::Interpreter interpreter(catalog_, store_, methods_);
  std::vector<Value> out;
  out.reserve(queries.size());
  for (const std::string& vql : queries) {
    VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound, Parse(vql));
    VODAK_ASSIGN_OR_RETURN(Value result, interpreter.Run(bound, options));
    out.push_back(std::move(result));
  }
  return out;
}

Result<std::string> Database::Explain(const std::string& vql,
                                      const PlanOptions& plan,
                                      const RunOptions& run) {
  VODAK_ASSIGN_OR_RETURN(QueryResult result, Run(vql, plan, run));
  std::string out;
  out += "== VQL ==\n" + vql + "\n";
  out += "== algebra (translated, cost " +
         std::to_string(result.original_cost) + ") ==\n";
  out += result.original_plan->ToTreeString();
  out += "== algebra (optimized, cost " +
         std::to_string(result.chosen_cost) + ") ==\n";
  out += result.chosen_plan->ToTreeString();
  out += "== physical plan ==\n" + result.physical_explain;
  if (!result.trace.empty()) {
    out += "== rule applications (" +
           std::to_string(result.trace.size()) + ") ==\n";
    for (const auto& entry : result.trace) {
      out += "  [" + entry.rule + "]\n    " + entry.before + "\n    => " +
             entry.after + "\n";
    }
  }
  return out;
}

}  // namespace engine
}  // namespace vodak
