#ifndef VODAK_ENGINE_DATABASE_H_
#define VODAK_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "engine/query_api.h"
#include "exec/parallel.h"
#include "exec/physical.h"
#include "exec/worker_pool.h"
#include "semantics/generator.h"
#include "vql/interpreter.h"

namespace vodak {
namespace engine {

/// The public face of the system: a VODAK-style database session over a
/// schema (catalog), a store, a method registry and a knowledge base,
/// with a per-schema generated optimizer (§7).
///
/// Typical use (see examples/quickstart.cc):
///   workload::DocumentDb db;  db.Init();  db.Populate({});
///   engine::Database session(&db.catalog(), &db.store(), &db.methods());
///   session.knowledge().AddCondEquivalence("E3", ...);
///   session.GenerateOptimizer();
///   auto result = session.Run("ACCESS p FROM p IN Paragraph WHERE ...");
class Database {
 public:
  Database(const Catalog* catalog, ObjectStore* store,
           MethodRegistry* methods);

  /// The schema-specific knowledge collection; add entries before
  /// calling GenerateOptimizer().
  semantics::KnowledgeBase& knowledge() { return knowledge_; }
  const semantics::KnowledgeBase& knowledge() const { return knowledge_; }

  /// Installs an argument-aware statistics provider (index document
  /// frequencies etc.) used by the generated cost model.
  void AddStatsProvider(opt::MethodStatsProvider provider);

  /// (Re)generates the optimizer module from builtin + derived rules —
  /// the §7 per-schema generation step. Must be called before Run() with
  /// optimize=true, and again after knowledge changes.
  Status GenerateOptimizer(opt::OptimizerOptions options = {});

  bool HasOptimizer() const { return module_.optimizer != nullptr; }

  /// The one execution entry point everything else shims over: submits
  /// a batch of queries that plan serially (parse / bind / optimize —
  /// the optimizer module is not built for concurrent Optimize calls)
  /// and drain concurrently on the session pool, one lane per query up
  /// to `options.lanes`, with their scan leaves attached to one
  /// SharedScanManager per batch — K queries over the same extent pay
  /// ~1 scan pass and ~1 property-column read per source instead of K
  /// (options.shared_scan = false keeps the private-scan baseline).
  /// outcomes[i] belongs to requests[i]; a member that fails to plan,
  /// is cancelled, or misses its deadline reports that in its own
  /// outcome.status without failing its siblings. A single-request
  /// batch takes the intra-query morsel-parallel path under its
  /// RunOptions::threads knob instead of the inter-query lanes.
  std::vector<QueryOutcome> Submit(const std::vector<QueryRequest>& requests,
                                   const SubmitOptions& options = {});

  /// The planning half of Submit as a public step: parse / bind /
  /// (optionally) optimize, no execution. The query service plans on
  /// its event thread through this and hands the PreparedQuery to a
  /// shared-scan generation drain.
  Result<PreparedQuery> Prepare(const std::string& vql,
                                const PlanOptions& options = {});

  /// Parses, binds, (optionally) optimizes and executes one VQL query:
  /// a thin shim over Submit. The two-options split keeps the old
  /// `Run(vql, {/*optimize=*/false})` call shape working (those braces
  /// now initialize PlanOptions).
  Result<QueryResult> Run(const std::string& vql,
                          const PlanOptions& plan = {},
                          const RunOptions& run = {});

  /// Concurrent-batch shim over Submit with the all-or-nothing
  /// contract (first failing member fails the call) kept for callers
  /// without per-query error handling. results[i] belongs to
  /// queries[i]; execute_ms is each query's own drain time.
  Result<std::vector<QueryResult>> RunConcurrent(
      const std::vector<std::string>& queries,
      const SubmitOptions& options = {}, const PlanOptions& plan = {},
      const RunOptions& run = {});

  /// Ground-truth evaluation through the naive interpreter (S9); used by
  /// the correctness property tests and as the paper's "straightforward
  /// evaluation" baseline. `options` selects the interpreter's row-mode
  /// (fully independent oracle) or its morsel-parallel outer loop.
  Result<Value> RunNaive(const std::string& vql,
                         const vql::Interpreter::Options& options = {}) const;

  /// Naive counterpart of RunConcurrent: evaluates the query batch
  /// through the interpreter with a shared-scan manager installed, so
  /// the batch pays one extent pass per class (the queries themselves
  /// evaluate one after another — the naive path stays the simple
  /// oracle). results[i] belongs to queries[i]; `options` keeps its
  /// usual meaning per query (row_mode composes with the sharing).
  Result<std::vector<Value>> RunNaiveConcurrent(
      const std::vector<std::string>& queries,
      vql::Interpreter::Options options = {}) const;

  /// Human-readable optimization report: original plan, chosen plan,
  /// costs, and with `plan.trace` the full rewrite storyboard.
  Result<std::string> Explain(const std::string& vql,
                              const PlanOptions& plan = {},
                              const RunOptions& run = {});

  const Catalog* catalog() const { return catalog_; }
  ObjectStore* store() const { return store_; }
  MethodRegistry* methods() const { return methods_; }

  /// Attaches the paged segment store (docs/ARCHITECTURE.md §"Paged
  /// storage & segment skipping"; not owned, outlives the session).
  /// Read paths — serial, morsel-parallel, shared-scan and VM — then
  /// prefer segment-backed scans whenever a SegmentVersion covers
  /// their pinned snapshot, and every write commit through this
  /// session closes the touched classes' open versions so stale
  /// segments are never read. Writes that bypass the session (direct
  /// store mutations) are invisible here: re-ingest before relying on
  /// segment scans after such writes.
  void AttachSegmentStore(storage::SegmentStore* segments) {
    segments_ = segments;
  }
  storage::SegmentStore* segment_store() const { return segments_; }

  /// (Re)ingests every catalog class into the attached segment store
  /// at the current epoch — the bulk (re)load step after populating
  /// the store or after a write burst closed the open versions.
  /// No-op without an attached store.
  Status RefreshSegments();

  /// The session's worker pool, created lazily (and regrown) to satisfy
  /// the largest thread count requested so far. Reused across queries so
  /// repeated parallel Runs don't pay thread spawn latency.
  exec::WorkerPool* EnsurePool(size_t threads);

  /// The next shared-scan generation id; Submit takes one per executed
  /// batch and the query service takes one per generation it forms.
  uint64_t NextGenerationId() {
    return next_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  Result<vql::BoundQuery> Parse(const std::string& vql) const;
  /// The planning half of Submit (parse / bind / optimize): fills
  /// everything in QueryResult except the executed result and its
  /// timing.
  Result<QueryResult> PlanQuery(const std::string& vql,
                                const PlanOptions& options,
                                vql::BoundQuery* bound_out);
  /// The single-query execution path: morsel-driven intra-query
  /// parallelism under run.threads, honoring cancel/deadline. Every
  /// store read resolves at `snapshot` — the epoch Submit pinned for
  /// the batch.
  Status ExecuteSingle(const QueryRequest& request,
                       const std::string& result_ref, QueryResult* result,
                       QueryStats* stats, Epoch snapshot);
  /// The write half of Submit: parses/binds a VQL write statement (or
  /// takes the programmatic Mutation batch verbatim), expands
  /// UPDATE/DELETE predicates into per-object mutations, and commits
  /// the whole request atomically under one epoch bump. Serialized
  /// under write_mu_ so the expansion scan and the Apply are one
  /// indivisible writer step.
  Status ExecuteWrite(const QueryRequest& request, QueryResult* result,
                      QueryStats* stats) EXCLUDES(write_mu_);
  /// Expands a bound write statement into the store's mutation batch:
  /// INSERT evaluates its closed SET expressions once; UPDATE/DELETE
  /// scan the class extent at the current epoch and evaluate the
  /// predicate (and UPDATE's SET expressions) per candidate under
  /// `self`. Caller holds write_mu_.
  Result<std::vector<Mutation>> BuildMutations(
      const vql::BoundWrite& write) const REQUIRES(write_mu_);
  /// EnsurePool, but exact: ExecuteConcurrentColumns refuses a
  /// mis-sized pool (the threads knob, not the pool, sizes a batch),
  /// so the session pool is rebuilt at exactly `threads` lanes when it
  /// differs. Repeated same-shape batches then reuse it; alternating
  /// Run/RunConcurrent shapes pay one rebuild at the boundary.
  exec::WorkerPool* EnsurePoolExact(size_t threads);

  const Catalog* catalog_;
  ObjectStore* store_;
  MethodRegistry* methods_;
  storage::SegmentStore* segments_ = nullptr;
  /// Serializes write requests across Submit calls: the predicate
  /// expansion scan in BuildMutations and the subsequent Apply must see
  /// no interleaved writer, or an UPDATE could target objects a
  /// concurrent DELETE already removed. Guards a critical section, not
  /// data — the store's own data_mu_ protects the objects.
  Mutex write_mu_;  // lint: no-guarded-fields(serializes build+apply, guards no data)
  semantics::KnowledgeBase knowledge_;
  std::vector<opt::MethodStatsProvider> providers_;
  semantics::GeneratedOptimizer module_;
  opt::OptimizerOptions options_;
  std::unique_ptr<exec::WorkerPool> pool_;
  /// Generation ids handed out to Submit batches and the query
  /// service's scheduler; monotone across the session so per-query
  /// stats from either path never collide. Relaxed: an id only needs
  /// uniqueness, it orders nothing.
  std::atomic<uint64_t> next_generation_{0};
};

}  // namespace engine
}  // namespace vodak

#endif  // VODAK_ENGINE_DATABASE_H_
