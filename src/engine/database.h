#ifndef VODAK_ENGINE_DATABASE_H_
#define VODAK_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "exec/parallel.h"
#include "exec/physical.h"
#include "exec/worker_pool.h"
#include "semantics/generator.h"
#include "vql/interpreter.h"

namespace vodak {
namespace engine {

struct ExecOptions {
  /// Run the generated optimizer; false executes the plain §4.1
  /// translation (the ablation baseline).
  bool optimize = true;
  /// Record the rule-application storyboard (the §7 demonstrator).
  bool trace = false;
  /// Execute the chosen plan; false stops after planning (used by
  /// optimizer-scaling benchmarks where execution would dominate).
  bool execute = true;
  /// Drive the physical plan batch-at-a-time (the vectorized pipeline);
  /// false falls back to the row-at-a-time Volcano path.
  bool batch = true;
  /// Worker threads for morsel-driven parallel execution. 1 keeps the
  /// serial pipeline (the degenerate case), 0 resolves to the hardware
  /// concurrency, >1 drains the plan through per-worker operator chains
  /// over shared extent morsels (requires batch=true; ignored in row
  /// mode, which exists as the independent oracle).
  size_t threads = 1;
  /// Upper bound on rows per morsel in the parallel path.
  size_t morsel_size = exec::kDefaultMorselSize;
};

/// Everything one query execution produced.
struct QueryResult {
  /// The result value set (ACCESS-expression values).
  Value result;
  /// Plans before/after optimization and their estimated costs.
  algebra::LogicalRef original_plan;
  algebra::LogicalRef chosen_plan;
  double original_cost = 0.0;
  double chosen_cost = 0.0;
  /// Optimizer statistics (zeroed when optimize=false).
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
  size_t rule_applications = 0;
  std::vector<opt::TraceEntry> trace;
  /// Wall-clock milliseconds.
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  /// Physical plan rendering.
  std::string physical_explain;
};

/// The public face of the system: a VODAK-style database session over a
/// schema (catalog), a store, a method registry and a knowledge base,
/// with a per-schema generated optimizer (§7).
///
/// Typical use (see examples/quickstart.cc):
///   workload::DocumentDb db;  db.Init();  db.Populate({});
///   engine::Database session(&db.catalog(), &db.store(), &db.methods());
///   session.knowledge().AddCondEquivalence("E3", ...);
///   session.GenerateOptimizer();
///   auto result = session.Run("ACCESS p FROM p IN Paragraph WHERE ...");
class Database {
 public:
  Database(const Catalog* catalog, ObjectStore* store,
           MethodRegistry* methods);

  /// The schema-specific knowledge collection; add entries before
  /// calling GenerateOptimizer().
  semantics::KnowledgeBase& knowledge() { return knowledge_; }
  const semantics::KnowledgeBase& knowledge() const { return knowledge_; }

  /// Installs an argument-aware statistics provider (index document
  /// frequencies etc.) used by the generated cost model.
  void AddStatsProvider(opt::MethodStatsProvider provider);

  /// (Re)generates the optimizer module from builtin + derived rules —
  /// the §7 per-schema generation step. Must be called before Run() with
  /// optimize=true, and again after knowledge changes.
  Status GenerateOptimizer(opt::OptimizerOptions options = {});

  bool HasOptimizer() const { return module_.optimizer != nullptr; }

  /// Parses, binds, (optionally) optimizes and executes a VQL query.
  Result<QueryResult> Run(const std::string& vql,
                          const ExecOptions& options = {});

  /// Ground-truth evaluation through the naive interpreter (S9); used by
  /// the correctness property tests and as the paper's "straightforward
  /// evaluation" baseline. `options` selects the interpreter's row-mode
  /// (fully independent oracle) or its morsel-parallel outer loop.
  Result<Value> RunNaive(const std::string& vql,
                         const vql::Interpreter::Options& options = {}) const;

  /// Human-readable optimization report: original plan, chosen plan,
  /// costs, and with `options.trace` the full rewrite storyboard.
  Result<std::string> Explain(const std::string& vql,
                              const ExecOptions& options = {});

  const Catalog* catalog() const { return catalog_; }
  ObjectStore* store() const { return store_; }
  MethodRegistry* methods() const { return methods_; }

  /// The session's worker pool, created lazily (and regrown) to satisfy
  /// the largest thread count requested so far. Reused across queries so
  /// repeated parallel Runs don't pay thread spawn latency.
  exec::WorkerPool* EnsurePool(size_t threads);

 private:
  Result<vql::BoundQuery> Parse(const std::string& vql) const;

  const Catalog* catalog_;
  ObjectStore* store_;
  MethodRegistry* methods_;
  semantics::KnowledgeBase knowledge_;
  std::vector<opt::MethodStatsProvider> providers_;
  semantics::GeneratedOptimizer module_;
  opt::OptimizerOptions options_;
  std::unique_ptr<exec::WorkerPool> pool_;
};

}  // namespace engine
}  // namespace vodak

#endif  // VODAK_ENGINE_DATABASE_H_
