#ifndef VODAK_ENGINE_DATABASE_H_
#define VODAK_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "exec/parallel.h"
#include "exec/physical.h"
#include "exec/worker_pool.h"
#include "semantics/generator.h"
#include "vql/interpreter.h"

namespace vodak {
namespace engine {

struct ExecOptions {
  /// Run the generated optimizer; false executes the plain §4.1
  /// translation (the ablation baseline).
  bool optimize = true;
  /// Record the rule-application storyboard (the §7 demonstrator).
  bool trace = false;
  /// Execute the chosen plan; false stops after planning (used by
  /// optimizer-scaling benchmarks where execution would dominate).
  bool execute = true;
  /// Drive the physical plan batch-at-a-time (the vectorized pipeline);
  /// false falls back to the row-at-a-time Volcano path.
  bool batch = true;
  /// Worker threads for morsel-driven parallel execution. 1 keeps the
  /// serial pipeline (the degenerate case), 0 resolves to the hardware
  /// concurrency, >1 drains the plan through per-worker operator chains
  /// over shared extent morsels (requires batch=true; ignored in row
  /// mode, which exists as the independent oracle). For RunConcurrent
  /// the same knob sizes the lanes the *query batch* drains on.
  size_t threads = 1;
  /// Upper bound on rows per morsel in the parallel path (and the
  /// shared scans' fan-out ring in RunConcurrent).
  size_t morsel_size = exec::kDefaultMorselSize;
  /// RunConcurrent only: attach the batch's scan leaves to shared
  /// scans (one extent pass and one property-column read per source
  /// for all K queries). False runs the same queries with private
  /// cursors — the measurable K-independent-queries baseline.
  bool shared_scan = true;
};

/// Everything one query execution produced.
struct QueryResult {
  /// The result value set (ACCESS-expression values).
  Value result;
  /// Plans before/after optimization and their estimated costs.
  algebra::LogicalRef original_plan;
  algebra::LogicalRef chosen_plan;
  double original_cost = 0.0;
  double chosen_cost = 0.0;
  /// Optimizer statistics (zeroed when optimize=false).
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
  size_t rule_applications = 0;
  std::vector<opt::TraceEntry> trace;
  /// Wall-clock milliseconds.
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  /// Physical plan rendering.
  std::string physical_explain;
};

/// The public face of the system: a VODAK-style database session over a
/// schema (catalog), a store, a method registry and a knowledge base,
/// with a per-schema generated optimizer (§7).
///
/// Typical use (see examples/quickstart.cc):
///   workload::DocumentDb db;  db.Init();  db.Populate({});
///   engine::Database session(&db.catalog(), &db.store(), &db.methods());
///   session.knowledge().AddCondEquivalence("E3", ...);
///   session.GenerateOptimizer();
///   auto result = session.Run("ACCESS p FROM p IN Paragraph WHERE ...");
class Database {
 public:
  Database(const Catalog* catalog, ObjectStore* store,
           MethodRegistry* methods);

  /// The schema-specific knowledge collection; add entries before
  /// calling GenerateOptimizer().
  semantics::KnowledgeBase& knowledge() { return knowledge_; }
  const semantics::KnowledgeBase& knowledge() const { return knowledge_; }

  /// Installs an argument-aware statistics provider (index document
  /// frequencies etc.) used by the generated cost model.
  void AddStatsProvider(opt::MethodStatsProvider provider);

  /// (Re)generates the optimizer module from builtin + derived rules —
  /// the §7 per-schema generation step. Must be called before Run() with
  /// optimize=true, and again after knowledge changes.
  Status GenerateOptimizer(opt::OptimizerOptions options = {});

  bool HasOptimizer() const { return module_.optimizer != nullptr; }

  /// Parses, binds, (optionally) optimizes and executes a VQL query.
  Result<QueryResult> Run(const std::string& vql,
                          const ExecOptions& options = {});

  /// The concurrent-session entry point: submits a batch of queries
  /// that execute together over shared scans. Each query is planned
  /// exactly like Run would plan it (parse / bind / optimize,
  /// serially), then all plans drain concurrently on the session pool
  /// — one lane per query up to `options.threads` — with their scan
  /// leaves attached to one SharedScanManager, so K queries over the
  /// same extent pay ~1 scan pass and ~1 property-column read per
  /// source instead of K (options.shared_scan = false keeps the
  /// private-scan baseline). results[i] belongs to queries[i];
  /// per-query execute_ms reports the whole batch's drain time, since
  /// the drains overlap.
  Result<std::vector<QueryResult>> RunConcurrent(
      const std::vector<std::string>& queries,
      const ExecOptions& options = {});

  /// Ground-truth evaluation through the naive interpreter (S9); used by
  /// the correctness property tests and as the paper's "straightforward
  /// evaluation" baseline. `options` selects the interpreter's row-mode
  /// (fully independent oracle) or its morsel-parallel outer loop.
  Result<Value> RunNaive(const std::string& vql,
                         const vql::Interpreter::Options& options = {}) const;

  /// Naive counterpart of RunConcurrent: evaluates the query batch
  /// through the interpreter with a shared-scan manager installed, so
  /// the batch pays one extent pass per class (the queries themselves
  /// evaluate one after another — the naive path stays the simple
  /// oracle). results[i] belongs to queries[i]; `options` keeps its
  /// usual meaning per query (row_mode composes with the sharing).
  Result<std::vector<Value>> RunNaiveConcurrent(
      const std::vector<std::string>& queries,
      vql::Interpreter::Options options = {}) const;

  /// Human-readable optimization report: original plan, chosen plan,
  /// costs, and with `options.trace` the full rewrite storyboard.
  Result<std::string> Explain(const std::string& vql,
                              const ExecOptions& options = {});

  const Catalog* catalog() const { return catalog_; }
  ObjectStore* store() const { return store_; }
  MethodRegistry* methods() const { return methods_; }

  /// The session's worker pool, created lazily (and regrown) to satisfy
  /// the largest thread count requested so far. Reused across queries so
  /// repeated parallel Runs don't pay thread spawn latency.
  exec::WorkerPool* EnsurePool(size_t threads);

 private:
  Result<vql::BoundQuery> Parse(const std::string& vql) const;
  /// The planning half of Run (parse / bind / optimize / EXPLAIN),
  /// shared with RunConcurrent: fills everything in QueryResult except
  /// the executed result and its timing.
  Result<QueryResult> PlanQuery(const std::string& vql,
                                const ExecOptions& options,
                                vql::BoundQuery* bound_out);
  /// EnsurePool, but exact: ExecuteConcurrentColumns refuses a
  /// mis-sized pool (the threads knob, not the pool, sizes a batch),
  /// so the session pool is rebuilt at exactly `threads` lanes when it
  /// differs. Repeated same-shape batches then reuse it; alternating
  /// Run/RunConcurrent shapes pay one rebuild at the boundary.
  exec::WorkerPool* EnsurePoolExact(size_t threads);

  const Catalog* catalog_;
  ObjectStore* store_;
  MethodRegistry* methods_;
  semantics::KnowledgeBase knowledge_;
  std::vector<opt::MethodStatsProvider> providers_;
  semantics::GeneratedOptimizer module_;
  opt::OptimizerOptions options_;
  std::unique_ptr<exec::WorkerPool> pool_;
};

}  // namespace engine
}  // namespace vodak

#endif  // VODAK_ENGINE_DATABASE_H_
