// The session's query API types. PR 7 split the old catch-all
// ExecOptions into PlanOptions (planning knobs) / RunOptions (one
// query's execution knobs) / SubmitOptions (batch-level knobs), and
// made Database::Submit(std::vector<QueryRequest>) →
// std::vector<QueryOutcome> the one entry point that Run and
// RunConcurrent shim over; the migration table is in
// docs/ARCHITECTURE.md §"Query service & admission control".
#ifndef VODAK_ENGINE_QUERY_API_H_
#define VODAK_ENGINE_QUERY_API_H_

#include <string>
#include <vector>

#include "algebra/logical.h"
#include "exec/cancellation.h"
#include "exec/morsel_source.h"
#include "objstore/epoch.h"
#include "objstore/object_store.h"
#include "optimizer/optimizer.h"

namespace vodak {
namespace engine {

/// Planning knobs: everything that shapes the chosen plan, nothing
/// about how (or whether) it executes. Brace-initialization keeps the
/// old ExecOptions call shape — `Run(vql, {/*optimize=*/false})`.
struct PlanOptions {
  /// Run the generated optimizer; false executes the plain §4.1
  /// translation (the ablation baseline).
  bool optimize = true;
  /// Record the rule-application storyboard (the §7 demonstrator).
  bool trace = false;
};

/// Compiled-execution choice for one query. kAuto lets the batch-aware
/// cost model pick VM vs operator tree (the production default); kOff
/// pins the operator tree (the differential baseline); kForce compiles
/// every *eligible* plan regardless of cost (the differential subject —
/// ineligible shapes still fall back to the tree). Row-mode and
/// parallel drains never use the VM.
enum class VmMode { kAuto, kOff, kForce };

/// One query's execution knobs. Batch-level knobs (lanes, shared
/// scans) live in SubmitOptions — they never made sense per query.
struct RunOptions {
  /// Execute the chosen plan; false stops after planning (used by
  /// optimizer-scaling benchmarks where execution would dominate).
  bool execute = true;
  /// Drive the physical plan batch-at-a-time (the vectorized
  /// pipeline); false falls back to the row-at-a-time Volcano path.
  bool batch = true;
  /// Worker threads for *intra-query* morsel-driven parallelism when
  /// the query runs alone. 1 keeps the serial pipeline, 0 resolves to
  /// the hardware concurrency (requires batch=true; ignored in row
  /// mode, which exists as the independent oracle). Ignored for
  /// multi-query Submit batches, where SubmitOptions::lanes sizes the
  /// inter-query parallelism instead.
  size_t threads = 1;
  /// Upper bound on rows per morsel in the parallel path.
  size_t morsel_size = exec::kDefaultMorselSize;
  /// Compiled execution: whether the serial batch drain may lower the
  /// plan to the bytecode VM (exec/vm.h). EXPLAIN reports the choice
  /// either way as a `[vm: ...]` annotation.
  VmMode vm = VmMode::kAuto;
};

/// Batch-level knobs of one Submit call.
struct SubmitOptions {
  /// Worker lanes the query batch drains on; each query is one task
  /// (queries beyond the lane count queue and run as lanes free up).
  /// 0 resolves to the hardware concurrency.
  size_t lanes = 0;
  /// Morsel size of the shared scans' fixed fan-out ring.
  size_t morsel_size = exec::kDefaultMorselSize;
  /// True attaches every query's scan leaves to one SharedScanManager
  /// (one scan pass and one property-column read per source for the
  /// whole batch); false runs the same queries with private cursors —
  /// the measurable K-independent-queries baseline.
  bool shared_scan = true;
};

/// One query of a Submit batch. A request is a *write* when
/// `mutations` is non-empty (a programmatic batch) or when `vql` is a
/// write statement (INSERT INTO / UPDATE / DELETE FROM); writes commit
/// atomically under one epoch bump and run in request order during
/// admission, before the batch's readers drain (see
/// Database::Submit).
struct QueryRequest {
  std::string vql;
  /// Programmatic write batch; non-empty makes this request a write
  /// and `vql` is ignored.
  std::vector<Mutation> mutations;
  /// Cancel flag the caller may trip from any thread (null: not
  /// cancellable). The token must outlive the Submit call.
  const exec::CancellationToken* cancel = nullptr;
  /// Per-query deadline; already-expired deadlines are rejected at
  /// admission with kDeadlineExceeded, before any planning.
  exec::Deadline deadline;
  PlanOptions plan;
  RunOptions run;
};

/// Everything one query execution produced.
struct QueryResult {
  /// The result value set (ACCESS-expression values).
  Value result;
  /// Plans before/after optimization and their estimated costs.
  algebra::LogicalRef original_plan;
  algebra::LogicalRef chosen_plan;
  double original_cost = 0.0;
  double chosen_cost = 0.0;
  /// Optimizer statistics (zeroed when optimize=false).
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
  size_t rule_applications = 0;
  std::vector<opt::TraceEntry> trace;
  /// Wall-clock milliseconds. execute_ms is this query's own drain
  /// time (== QueryStats::drain_ms), not the batch's.
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  /// Physical plan rendering.
  std::string physical_explain;
  /// The epoch this query read at (write requests: the epoch their
  /// batch committed as). Duplicated from QueryStats::snapshot_epoch so
  /// the Run/RunConcurrent shims — which drop stats — still surface it.
  Epoch snapshot_epoch = kEpochLatest;
};

/// Per-query timing and placement stats — the honest replacement for
/// the old concurrent path's execute_ms, which reported the whole
/// batch's drain time for every member.
struct QueryStats {
  /// Time spent waiting for a lane (from batch submission / service
  /// admission until the drain picked the query up).
  double queue_ms = 0.0;
  /// Planning time (parse / bind / optimize).
  double plan_ms = 0.0;
  /// This query's own drain time.
  double drain_ms = 0.0;
  /// The shared-scan generation the query drained in (0: never reached
  /// a drain — rejected at admission or planning failed).
  uint64_t generation_id = 0;
  /// True when the query joined a generation whose shared-scan pass
  /// was already in flight and circled back for the morsels it missed.
  bool attached_late = false;
  /// The snapshot this query executed against: readers report the
  /// epoch pinned at admission; write requests report the epoch their
  /// mutation batch committed as.
  Epoch snapshot_epoch = kEpochLatest;
};

/// One query's complete outcome. `status` is per query: a cancelled,
/// expired or failed member never fails its siblings.
struct QueryOutcome {
  Status status;
  /// Meaningful when status.ok(); on failure only the planning-side
  /// fields that were produced before the failure are filled.
  QueryResult result;
  QueryStats stats;
};

/// A planned-but-not-executed query: the planning half of Run, exposed
/// so the query service can plan on its event thread (planning is
/// serialized there — the optimizer module is not built for concurrent
/// Optimize calls) and hand the plan to a generation drain.
struct PreparedQuery {
  /// Plan-side QueryResult fields (plans, costs, optimizer stats,
  /// optimize_ms); result/execute_ms stay empty.
  QueryResult planned;
  /// The reference whose column is the query result
  /// (algebra::ResultRef of the bound query).
  std::string result_ref;
};

}  // namespace engine
}  // namespace vodak

#endif  // VODAK_ENGINE_QUERY_API_H_
