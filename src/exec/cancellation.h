// Per-query cancellation and deadlines for the batch executor. A query
// carries an optional CancellationToken plus a Deadline in its
// ExecContext; the pipeline polls both at batch boundaries — ScanOp's
// NextBatch/refill and the morsel drain loop — so a cancel lands within
// ~one batch (~kDefaultBatchSize rows) of being requested, without any
// per-row cost. Cancellation points are catalogued in
// docs/ARCHITECTURE.md §"Query service & admission control".
#ifndef VODAK_EXEC_CANCELLATION_H_
#define VODAK_EXEC_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace vodak {
namespace exec {

/// One query's cancel flag. The requester (a service connection, a
/// client thread) calls Cancel(); every executor-side check observes it
/// via cancel_requested(). Safe to share across threads; release on the
/// store pairs with acquire on the load so whatever the canceller wrote
/// before cancelling (a reason, a log line) is visible to the drain
/// that observes the flag.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// An absolute steady-clock deadline; `armed == false` (the default)
/// means "no deadline". Value type: copied freely into ExecContexts and
/// worker clones.
struct Deadline {
  std::chrono::steady_clock::time_point at{};
  bool armed = false;

  static Deadline None() { return Deadline{}; }
  /// `ms` from now; non-positive values produce an already-expired
  /// deadline (admission rejects those up front).
  static Deadline After(double ms) {
    Deadline d;
    d.at = std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(ms));
    d.armed = true;
    return d;
  }

  bool expired() const {
    return armed && std::chrono::steady_clock::now() >= at;
  }
  /// Milliseconds until expiry (negative once past); meaningless when
  /// not armed.
  double remaining_ms() const {
    return std::chrono::duration<double, std::milli>(
               at - std::chrono::steady_clock::now())
        .count();
  }
};

/// The one check every cancellation point runs: cancel wins over
/// deadline (an explicit cancel is the stronger, intentional signal).
/// Both resulting codes are terminal per-query outcomes, never batch
/// failures — the service and Submit map them to distinct statuses.
inline Status CheckQueryAlive(const CancellationToken* token,
                              const Deadline& deadline) {
  if (token != nullptr && token->cancel_requested()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_CANCELLATION_H_
