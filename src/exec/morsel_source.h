// Morsels: the atomic-cursor unit of work stealing in the parallel
// pipeline (docs/ARCHITECTURE.md §"Morsel-driven parallelism").
#ifndef VODAK_EXEC_MORSEL_SOURCE_H_
#define VODAK_EXEC_MORSEL_SOURCE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>

namespace vodak {
namespace exec {

/// Target number of rows per morsel handed to a parallel worker. Morsels
/// are the unit of work stealing in the morsel-driven pipeline: big
/// enough that a worker amortizes the (single) atomic claim over many
/// NextBatch calls, small enough that a scan splits into more morsels
/// than workers so the pool load-balances dynamically.
constexpr size_t kDefaultMorselSize = 16384;

/// Morsel size giving each of `threads` workers several morsels of a
/// `total`-row source for dynamic load balance, clamped to
/// [min(1024, cap), cap]. Shared by the physical parallel driver and
/// the interpreter's outer-range loop so both balance identically.
inline size_t BalancedMorselSize(size_t total, size_t threads,
                                 size_t cap) {
  if (cap == 0) cap = 1;
  if (threads <= 1) return cap;
  const size_t floor_size = cap < 1024 ? cap : 1024;
  const size_t target = total / (threads * 4);
  return std::max(floor_size, std::min(cap, target));
}

/// A half-open index range [begin, end) into the driving scan's
/// materialized source (extent Oids or method-scan elements).
struct Morsel {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// Hands out disjoint morsels of a fixed-size source behind one atomic
/// cursor. Workers call Next() until it returns false; the claims
/// partition [0, total) exactly, so per-worker scans never overlap and
/// never miss a row. Reset/total/morsel_size must not race with Next
/// (the driver configures the source before starting the workers, and
/// the pool's ParallelRun fork/join is the happens-before edge that
/// publishes the plain fields — so only the cursor needs atomicity,
/// and relaxed order suffices: each claim is independent and no other
/// data is ordered against it. See docs/ARCHITECTURE.md §"Static
/// analysis & concurrency contracts" for the memory-order rules
/// scripts/lint.py enforces here).
class MorselSource {
 public:
  MorselSource() = default;
  MorselSource(const MorselSource&) = delete;
  MorselSource& operator=(const MorselSource&) = delete;

  /// Configures a fresh scan over `total` rows. Not thread-safe; call
  /// before handing the source to workers.
  void Reset(size_t total, size_t morsel_size) {
    total_ = total;
    morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
    cursor_.store(0, std::memory_order_relaxed);
  }

  /// Claims the next morsel; returns false when the source is drained.
  bool Next(Morsel* morsel) {
    size_t begin =
        cursor_.fetch_add(morsel_size_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    morsel->begin = begin;
    morsel->end = std::min(begin + morsel_size_, total_);
    return true;
  }

  size_t total() const { return total_; }
  size_t morsel_size() const { return morsel_size_; }

 private:
  std::atomic<size_t> cursor_{0};
  size_t total_ = 0;
  size_t morsel_size_ = kDefaultMorselSize;
};

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_MORSEL_SOURCE_H_
