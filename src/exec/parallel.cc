#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "exec/row_hash.h"

namespace vodak {
namespace exec {

namespace {

/// Output reference order of the physical root built for `plan`: a
/// project root keeps its projection list (sorted by construction in
/// AlgebraContext::Project), everything else the sorted schema order.
/// Must match how BuildPhysical lays out root columns.
std::vector<std::string> SchemaRefs(const algebra::LogicalRef& plan) {
  if (plan->op() == algebra::LogicalOp::kProject) {
    return plan->projection();
  }
  std::vector<std::string> refs;
  refs.reserve(plan->schema().size());
  for (const auto& [name, type] : plan->schema()) refs.push_back(name);
  return refs;  // map order = sorted, matching PhysOperator::refs()
}

/// Serial batch drain used for threads=1 and non-parallelizable plans.
Result<std::vector<Row>> SerialDrainRows(const algebra::LogicalRef& plan,
                                         const ExecContext& ctx) {
  VODAK_ASSIGN_OR_RETURN(PhysOpPtr root, BuildPhysical(plan, ctx));
  VODAK_RETURN_IF_ERROR(root->Open());
  std::vector<Row> rows;
  RowBatch batch;
  Row row;
  for (;;) {
    VODAK_ASSIGN_OR_RETURN(bool more, root->NextBatch(&batch));
    if (!more) break;
    // Row hand-off is a density boundary: every column crosses into the
    // Row representation, so selected batches compact once here.
    batch.Compact();
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      batch.CopyRowTo(r, &row);
      rows.push_back(std::move(row));
    }
  }
  root->Close();
  return rows;
}

/// One worker: build the plan clone, drain it over morsels, collect
/// rows. Runs on a pool thread; touches only worker-local state plus
/// the shared read-only / atomic plan state.
Status DrainWorker(const algebra::LogicalRef& plan, const ExecContext& ctx,
                   const ParallelPlanStatePtr& state,
                   std::vector<Row>* out) {
  VODAK_ASSIGN_OR_RETURN(PhysOpPtr root,
                         BuildPhysicalWorker(plan, ctx, state));
  VODAK_RETURN_IF_ERROR(root->Open());
  RowBatch batch;
  Row row;
  for (;;) {
    // Cancellation point of the morsel loop; the leaf's own ScanOp
    // check covers plans whose driving scan is deep under joins, this
    // one bounds the latency of the common flat drive to one morsel
    // batch even when upper operators buffer.
    VODAK_RETURN_IF_ERROR(CheckQueryAlive(ctx.cancel, ctx.deadline));
    VODAK_ASSIGN_OR_RETURN(bool more, root->NextBatch(&batch));
    if (!more) break;
    // Same density boundary as the serial drain: the morsel hand-off
    // into the per-worker row buffer compacts the selected rows once.
    batch.Compact();
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      batch.CopyRowTo(r, &row);
      out->push_back(std::move(row));
    }
  }
  root->Close();
  return Status::OK();
}

/// Keeps the first occurrence of every distinct row, in place.
void DedupRows(std::vector<Row>* rows) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows->size());
  size_t kept = 0;
  for (size_t i = 0; i < rows->size(); ++i) {
    if (!seen.insert((*rows)[i]).second) continue;
    if (kept != i) (*rows)[kept] = std::move((*rows)[i]);
    ++kept;
  }
  rows->resize(kept);
}

}  // namespace

Result<std::vector<Row>> ParallelDrainRows(const algebra::LogicalRef& plan,
                                           const ExecContext& ctx,
                                           const ParallelOptions& options,
                                           bool* parallelized,
                                           ParallelPlanStatePtr prepared) {
  if (parallelized != nullptr) *parallelized = false;
  const size_t threads = ResolveThreads(options.threads);
  if (threads <= 1) return SerialDrainRows(plan, ctx);

  ParallelPlanStatePtr state = std::move(prepared);
  if (state == nullptr) {
    VODAK_ASSIGN_OR_RETURN(
        state, PrepareParallelPlan(plan, ctx, threads,
                                   options.morsel_size));
  }
  if (state == nullptr) return SerialDrainRows(plan, ctx);

  std::vector<std::vector<Row>> worker_rows(threads);
  std::vector<Status> worker_status(threads, Status::OK());
  auto task = [&](size_t w) {
    worker_status[w] = DrainWorker(plan, ctx, state, &worker_rows[w]);
  };
  if (options.pool != nullptr) {
    options.pool->ParallelRun(threads, task);
  } else {
    WorkerPool ephemeral(threads);
    ephemeral.ParallelRun(threads, task);
  }
  for (const Status& status : worker_status) {
    VODAK_RETURN_IF_ERROR(status);
  }

  size_t total = 0;
  for (const auto& rows : worker_rows) total += rows.size();
  std::vector<Row> merged;
  merged.reserve(total);
  for (auto& rows : worker_rows) {
    for (Row& row : rows) merged.push_back(std::move(row));
    rows.clear();
    rows.shrink_to_fit();
  }
  // Per-worker dedup is only local; distinct rows straddling a worker
  // boundary need the final single-threaded pass.
  if (ParallelPlanNeedsFinalDedup(*state)) DedupRows(&merged);
  if (parallelized != nullptr) *parallelized = true;
  return merged;
}

Result<std::vector<ConcurrentQueryOutcome>> ExecuteConcurrentOutcomes(
    const std::vector<ConcurrentQuery>& queries, const ExecContext& ctx,
    const ConcurrentOptions& options) {
  std::vector<ConcurrentQueryOutcome> out(queries.size());
  if (queries.empty()) return out;

  // One manager per batch: its shared scans and property-column cache
  // live exactly as long as the queries that attach to them, and
  // materialize at the batch's pinned snapshot.
  SharedScanManager manager(ctx.store, options.morsel_size,
                            ctx.snapshot_epoch, ctx.segments);
  ExecContext query_ctx = ctx;
  if (options.shared_scan) {
    query_ctx.shared_scans = &manager;
    query_ctx.property_cache = manager.property_cache();
  }

  const auto submitted = std::chrono::steady_clock::now();
  auto ms_since = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  auto task = [&](size_t q) {
    ConcurrentQueryOutcome& o = out[q];
    o.queue_ms = ms_since(submitted);
    const auto drain_start = std::chrono::steady_clock::now();
    o.status = [&]() -> Status {
      ExecContext member_ctx = query_ctx;
      member_ctx.cancel = queries[q].cancel;
      member_ctx.deadline = queries[q].deadline;
      // A query cancelled or expired while waiting for a lane never
      // opens: it must not attach (and so never claims ring morsels it
      // would abandon), and its siblings drain on unaffected.
      VODAK_RETURN_IF_ERROR(
          CheckQueryAlive(member_ctx.cancel, member_ctx.deadline));
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr root,
                             BuildPhysical(queries[q].plan, member_ctx));
      VODAK_ASSIGN_OR_RETURN(
          o.value,
          ExecuteColumn(root.get(), queries[q].result_ref,
                        queries[q].batch ? ExecMode::kBatch
                                         : ExecMode::kRow));
      return Status::OK();
    }();
    o.drain_ms = ms_since(drain_start);
  };
  // options.threads sizes the concurrent drains even when a reusable
  // pool is supplied: a session pool warmed wider by an earlier query
  // must not silently widen this batch beyond its knob (nor an
  // undersized pool silently narrow it), so a mis-sized pool falls
  // back to an ephemeral lanes-sized one.
  const size_t lanes =
      std::min(ResolveThreads(options.threads), queries.size());
  if (options.pool != nullptr && options.pool->parallelism() == lanes) {
    options.pool->ParallelRun(queries.size(), task);
  } else {
    WorkerPool ephemeral(lanes);
    ephemeral.ParallelRun(queries.size(), task);
  }
  return out;
}

Result<std::vector<Value>> ExecuteConcurrentColumns(
    const std::vector<ConcurrentQuery>& queries, const ExecContext& ctx,
    const ConcurrentOptions& options) {
  VODAK_ASSIGN_OR_RETURN(std::vector<ConcurrentQueryOutcome> outcomes,
                         ExecuteConcurrentOutcomes(queries, ctx, options));
  std::vector<Value> results(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    VODAK_RETURN_IF_ERROR(outcomes[i].status);
    results[i] = std::move(outcomes[i].value);
  }
  return results;
}

Result<Value> ParallelExecuteToSet(const algebra::LogicalRef& plan,
                                   const ExecContext& ctx,
                                   const ParallelOptions& options) {
  VODAK_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         ParallelDrainRows(plan, ctx, options));
  const std::vector<std::string> refs = SchemaRefs(plan);
  std::vector<Value> tuples;
  tuples.reserve(rows.size());
  for (Row& row : rows) {
    ValueTuple fields;
    fields.reserve(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      fields.emplace_back(refs[i], std::move(row[i]));
    }
    tuples.push_back(Value::Tuple(std::move(fields)));
  }
  return Value::Set(std::move(tuples));
}

Result<Value> ParallelExecuteColumn(const algebra::LogicalRef& plan,
                                    const ExecContext& ctx,
                                    const std::string& ref,
                                    const ParallelOptions& options,
                                    ParallelPlanStatePtr prepared) {
  const std::vector<std::string> refs = SchemaRefs(plan);
  int index = -1;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i] == ref) index = static_cast<int>(i);
  }
  if (index < 0) {
    return Status::PlanError("result reference '" + ref +
                             "' not produced by plan");
  }
  VODAK_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ParallelDrainRows(plan, ctx, options, /*parallelized=*/nullptr,
                        std::move(prepared)));
  std::vector<Value> values;
  values.reserve(rows.size());
  for (Row& row : rows) values.push_back(std::move(row[index]));
  return Value::Set(std::move(values));
}

}  // namespace exec
}  // namespace vodak
