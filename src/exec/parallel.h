// Morsel-driven parallel drivers over the NextBatch pipeline. The
// driving-path analysis, shared-build rules and the serial-fallback
// conditions are documented in docs/ARCHITECTURE.md §"Morsel-driven
// parallelism" and §"Serial-fallback rules".
#ifndef VODAK_EXEC_PARALLEL_H_
#define VODAK_EXEC_PARALLEL_H_

#include <string>
#include <vector>

#include "exec/morsel_source.h"
#include "exec/physical.h"
#include "exec/shared_scan.h"
#include "exec/worker_pool.h"

namespace vodak {
namespace exec {

/// Knobs for the morsel-driven parallel pipeline drivers.
struct ParallelOptions {
  /// Worker count. 1 runs the serial batch pipeline (the degenerate
  /// case); 0 resolves to the hardware concurrency.
  size_t threads = 1;
  /// Upper bound on rows per morsel; the planner shrinks morsels below
  /// this so each worker sees several morsels (dynamic load balance).
  size_t morsel_size = kDefaultMorselSize;
  /// Reusable pool to run on; when null an ephemeral pool of `threads`
  /// lanes is spun up for the query.
  WorkerPool* pool = nullptr;
};

/// Drains `plan` into its result row multiset through the parallel
/// pipeline: every worker runs its own clone of the NextBatch operator
/// chain over morsels of the shared driving scan, and the per-worker
/// outputs are concatenated (order-insensitive multiset semantics; a
/// final single-threaded dedup pass applies when the plan dedups on the
/// driving path). Falls back to the serial batch drain when threads is
/// 1 or the plan has no parallelizable driving scan; `parallelized`
/// (optional) reports which path ran. The row order is unspecified in
/// the parallel case.
/// `prepared` (optional) supplies the plan state from an earlier
/// PrepareParallelPlan call with the same resolved thread count and
/// morsel cap, so callers that probe parallelizability first don't pay
/// a second driving-scan materialization.
Result<std::vector<Row>> ParallelDrainRows(
    const algebra::LogicalRef& plan, const ExecContext& ctx,
    const ParallelOptions& options, bool* parallelized = nullptr,
    ParallelPlanStatePtr prepared = nullptr);

/// Parallel counterpart of ExecuteToSet: drains the plan in parallel
/// and canonicalizes the merged rows into a set of tuples.
Result<Value> ParallelExecuteToSet(const algebra::LogicalRef& plan,
                                   const ExecContext& ctx,
                                   const ParallelOptions& options);

/// Parallel counterpart of ExecuteColumn: drains the plan in parallel
/// and canonicalizes one reference's column into a value set.
Result<Value> ParallelExecuteColumn(const algebra::LogicalRef& plan,
                                    const ExecContext& ctx,
                                    const std::string& ref,
                                    const ParallelOptions& options,
                                    ParallelPlanStatePtr prepared = nullptr);

/// One query of a concurrent batch: its plan plus the reference whose
/// column is the query result (algebra::ResultRef of the bound query),
/// and the per-query execution knobs — cancellation, deadline, drain
/// mode — that used to leak into the batch-level options.
struct ConcurrentQuery {
  algebra::LogicalRef plan;
  std::string result_ref;
  /// This query's cancel flag (null: not cancellable) and deadline;
  /// checked before the drain opens and at every scan-leaf batch.
  const CancellationToken* cancel = nullptr;
  Deadline deadline;
  /// Drain this query batch-at-a-time (the vectorized pipeline); false
  /// drains row-at-a-time — the same oracle knob as
  /// engine::RunOptions::batch, honored per query.
  bool batch = true;
};

/// Knobs for the shared-scan multi-query driver.
struct ConcurrentOptions {
  /// Worker lanes the query batch drains on; each query is one task
  /// (queries beyond the lane count queue and run as lanes free up).
  /// 0 resolves to the hardware concurrency.
  size_t threads = 0;
  /// Morsel size of the shared scans' fixed fan-out ring.
  size_t morsel_size = kDefaultMorselSize;
  /// True attaches every query's scan leaves to one SharedScanManager
  /// (one scan pass and one property-column read per source for the
  /// whole batch); false runs the same queries with private cursors —
  /// the measurable K-independent-queries baseline.
  bool shared_scan = true;
  /// Reusable pool; when null — or when the supplied pool's
  /// parallelism differs from the resolved lane count, so the knob
  /// rather than the pool sizes the batch — an ephemeral pool is spun
  /// up.
  WorkerPool* pool = nullptr;
};

/// What one query of a concurrent batch came back with. `status` is
/// per query: a cancelled or expired member reports kCancelled /
/// kDeadlineExceeded here without failing its siblings (a partial
/// ring walk releases nothing the others depend on — the shared scan's
/// exactly-once is per consumer).
struct ConcurrentQueryOutcome {
  Status status;
  /// The result value set; meaningful only when status.ok().
  Value value;
  /// Time from batch submission until a lane picked the query up, and
  /// the query's own drain time — the honest per-query split of the
  /// batch's wall clock (execute_ms used to report the whole batch's
  /// drain for every member).
  double queue_ms = 0.0;
  double drain_ms = 0.0;
};

/// The shared-scan multi-query driver: runs K query plans concurrently
/// — one worker task per query, each draining its own serial NextBatch
/// chain — with all scan leaves attached to one shared scan per source
/// (ConcurrentOptions::shared_scan). outcomes[i] belongs to
/// queries[i]; an OK outcome's value is exactly what
/// ExecuteColumn(plan, result_ref) returns for that query alone.
/// Queries attach whenever their leaf Opens, so a task that starts
/// late joins the in-flight scan and circles back for the morsels it
/// missed. The batch-level Result is only for setup failure; per-query
/// failures land in the outcomes.
Result<std::vector<ConcurrentQueryOutcome>> ExecuteConcurrentOutcomes(
    const std::vector<ConcurrentQuery>& queries, const ExecContext& ctx,
    const ConcurrentOptions& options);

/// All-or-nothing wrapper over ExecuteConcurrentOutcomes: results[i]
/// is queries[i]'s value set, and the first non-OK member outcome
/// fails the whole call (the pre-outcome contract, kept for callers
/// without per-query error handling).
Result<std::vector<Value>> ExecuteConcurrentColumns(
    const std::vector<ConcurrentQuery>& queries, const ExecContext& ctx,
    const ConcurrentOptions& options);

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_PARALLEL_H_
