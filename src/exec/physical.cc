#include "exec/physical.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "common/vm_stats.h"
#include "exec/morsel_source.h"
#include "exec/row_hash.h"
#include "exec/sargable.h"
#include "exec/shared_scan.h"

namespace vodak {
namespace exec {

using algebra::LogicalNode;
using algebra::LogicalOp;
using algebra::LogicalRef;

int PhysOperator::RefIndex(const std::string& name) const {
  for (size_t i = 0; i < refs_.size(); ++i) {
    if (refs_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<bool> PhysOperator::NextBatch(RowBatch* batch) {
  // Every NextBatch entry — this adapter and the native overrides —
  // counts one virtual batch hand-off, the per-operator cost the VM
  // backend (exec/vm.h) fuses away; ci.sh --vm gates on the ratio.
  VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
  batch->Reset(refs_.size());
  Row row;
  while (batch->num_rows() < kDefaultBatchSize) {
    VODAK_ASSIGN_OR_RETURN(bool more, Next(&row));
    if (!more) break;
    batch->AppendRow(row);
  }
  return batch->num_rows() > 0;
}

namespace {

std::vector<std::string> RefsOf(const LogicalRef& node) {
  std::vector<std::string> refs;
  refs.reserve(node->schema().size());
  for (const auto& [name, type] : node->schema()) refs.push_back(name);
  return refs;  // map order = sorted
}

Env EnvFromRow(const std::vector<std::string>& refs, const Row& row) {
  Env env;
  for (size_t i = 0; i < refs.size(); ++i) env[refs[i]] = row[i];
  return env;
}

/// Batch environment over a batch's live rows: dense when the batch is
/// dense, the selection view otherwise — so the expression layer only
/// ever evaluates the selected rows. Callers must not pass an
/// empty-selection batch (an empty selection has no data() to view);
/// the pipeline's never-empty invariant guarantees they don't.
BatchEnv EnvOfBatch(const std::vector<std::string>& refs,
                    const RowBatch& batch) {
  BatchEnv env{&refs, &batch.columns(), batch.num_rows()};
  batch.ExportSelectionTo(&env);
  return env;
}

/// Fills a single-column batch with up to kDefaultBatchSize elements
/// taken from a source of `size` elements starting at `*pos`; `emit`
/// maps a source index to the column value. Shared by the leaf scans.
template <typename Emit>
size_t FillScanBatch(RowBatch* batch, size_t size, size_t* pos,
                     Emit emit) {
  batch->Reset(1);
  const size_t remaining = *pos < size ? size - *pos : 0;
  const size_t n = std::min(kDefaultBatchSize, remaining);
  auto& col = batch->column(0);
  col.reserve(n);
  for (size_t i = 0; i < n; ++i) col.push_back(emit((*pos)++));
  batch->set_num_rows(n);
  return n;
}

}  // namespace

// Row hashing/equality shared with the parallel driver: exec/row_hash.h.
using JoinTable = std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>;

/// Once-built hash-join table shared read-only by the worker clones of
/// one logical join node. The winner of the call_once races builds from
/// its own (deterministic) build subtree; everyone probes the result.
///
/// Concurrency contract (docs/ARCHITECTURE.md §"Static analysis &
/// concurrency contracts"): `table`/`status` are published by `once` —
/// call_once's release/acquire edge is the only synchronization, so
/// they are written exclusively inside the call_once body and
/// read-only ever after. No mutex, hence no GUARDED_BY: the once_flag
/// plays the capability's role and TSan verifies the edge.
struct SharedJoinBuild {
  std::once_flag once;
  JoinTable table;
  Status status = Status::OK();
};

/// Same sharing (and the same once-publication contract) for a
/// nested-loop join's materialized inner side.
struct SharedInnerRows {
  std::once_flag once;
  std::vector<Row> rows;
  Status status = Status::OK();
};

/// See physical.h. Configured single-threaded by PrepareParallelPlan;
/// after workers start, the only mutations go through the atomic morsel
/// cursor and the per-join once_flags.
class ParallelPlanState {
 public:
  /// The driving scan: the leaf reached by following input(0) edges.
  const algebra::LogicalNode* driving_leaf = nullptr;
  bool leaf_is_extent = false;
  std::vector<Oid> extent;   // kGet driving leaf
  ValueSet elements;         // kExprSource driving leaf
  MorselSource morsels;
  bool needs_final_dedup = false;
  /// Segment pruning applied while materializing an extent driving
  /// leaf from the paged segment store: `extent` holds only the rows
  /// of the `seg_scanned` surviving segments; `seg_skipped` segments
  /// were refuted by zone maps. Both 0 when the leaf came from the
  /// in-memory store.
  bool segment_backed = false;
  size_t seg_scanned = 0;
  size_t seg_skipped = 0;
  /// Pre-created entries for every join node in the plan (keyed by node
  /// identity), so worker-side plan construction never mutates the maps.
  std::map<const algebra::LogicalNode*, SharedJoinBuild> hash_builds;
  std::map<const algebra::LogicalNode*, SharedInnerRows> inner_rows;

  size_t driving_total() const {
    return leaf_is_extent ? extent.size() : elements.size();
  }
};

bool ParallelPlanNeedsFinalDedup(const ParallelPlanState& state) {
  return state.needs_final_dedup;
}

namespace {

/// Private extent cursor (the classic physical `get`): materializes the
/// class extension in Open — one scan pass per query per Open — and
/// slices it into column fills.
class ExtentBatchSource : public BatchSource {
 public:
  ExtentBatchSource(const ExecContext& ctx, std::string class_name,
                    uint32_t class_id)
      : store_(ctx.store),
        snapshot_(ctx.snapshot_epoch),
        class_name_(std::move(class_name)),
        class_id_(class_id) {}

  Status Open() override {
    VODAK_ASSIGN_OR_RETURN(extent_, store_->Extent(class_id_, snapshot_));
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    return FillScanBatch(batch, extent_.size(), &pos_, [this](size_t i) {
             return Value::OfOid(extent_[i]);
           }) > 0;
  }
  void Close() override { extent_.clear(); }
  std::string name() const override { return "ExtentScan"; }
  std::string describe() const override { return class_name_; }
  std::string annotation() const override { return "[source: extent]"; }

 private:
  ObjectStore* store_;
  Epoch snapshot_;
  std::string class_name_;
  uint32_t class_id_;
  std::vector<Oid> extent_;
  size_t pos_ = 0;
};

/// Private cursor over a closed set-valued expression — the physical
/// form of §3.2's "methods as algebraic operators" (e.g. an external
/// method scan like Paragraph→retrieve_by_string(s)).
class ExprBatchSource : public BatchSource {
 public:
  ExprBatchSource(const ExecContext& ctx, ExprRef expr)
      : evaluator_(ctx.catalog, ctx.store, ctx.methods,
                   ctx.property_cache, ctx.snapshot_epoch),
        expr_(std::move(expr)) {}

  Status Open() override {
    // EvalClosed routes the (closed) scan parameter through the batched
    // evaluator, so an external method behind the scan is dispatched
    // through the same set-at-a-time ABI as per-row method calls.
    VODAK_ASSIGN_OR_RETURN(Value set, evaluator_.EvalClosed(expr_));
    if (set.is_null()) {
      elements_.clear();
    } else if (set.is_set()) {
      elements_ = set.AsSet();
    } else {
      return Status::ExecError("expr_source evaluated to non-set " +
                               set.ToString());
    }
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    return FillScanBatch(batch, elements_.size(), &pos_,
                         [this](size_t i) { return elements_[i]; }) > 0;
  }
  void Close() override { elements_.clear(); }
  std::string name() const override { return "MethodScan"; }
  std::string describe() const override { return expr_->ToString(); }
  std::string annotation() const override { return "[source: expr]"; }

 private:
  ExprEvaluator evaluator_;
  ExprRef expr_;
  ValueSet elements_;
  size_t pos_ = 0;
};

/// Intra-query parallel source: one worker's view of the shared driving
/// scan. The source (extent Oids or method-scan elements) was
/// materialized once by PrepareParallelPlan; workers claim disjoint
/// [begin, end) morsels from the shared atomic cursor and emit them
/// batch by batch. A batch never spans a morsel boundary, so per-worker
/// output stays cache-local.
class MorselBatchSource : public BatchSource {
 public:
  MorselBatchSource(std::string source_desc, ParallelPlanState* state)
      : source_desc_(std::move(source_desc)), state_(state) {}

  Status Open() override {
    pos_ = 0;
    end_ = 0;
    return Status::OK();
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    batch->Reset(1);
    if (pos_ >= end_ && !ClaimMorsel()) return false;
    const size_t n = std::min(kDefaultBatchSize, end_ - pos_);
    auto& col = batch->column(0);
    col.reserve(n);
    for (size_t i = 0; i < n; ++i) col.push_back(ValueAt(pos_++));
    batch->set_num_rows(n);
    return true;
  }
  void Close() override {}
  std::string name() const override { return "MorselScan"; }
  std::string describe() const override { return source_desc_; }
  std::string annotation() const override {
    if (!state_->segment_backed) return "[source: morsel]";
    return "[source: morsel] [segments: scanned " +
           std::to_string(state_->seg_scanned) + " / skipped " +
           std::to_string(state_->seg_skipped) + "]";
  }

 private:
  bool ClaimMorsel() {
    Morsel morsel;
    if (!state_->morsels.Next(&morsel)) return false;
    pos_ = morsel.begin;
    end_ = morsel.end;
    return true;
  }
  Value ValueAt(size_t i) const {
    return state_->leaf_is_extent ? Value::OfOid(state_->extent[i])
                                  : state_->elements[i];
  }

  std::string source_desc_;
  ParallelPlanState* state_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

/// Cross-query shared source: attaches to the SharedScanManager's scan
/// for this leaf's source on every Open (so a re-opened leaf — or a
/// query that arrives while the batch is mid-scan — is a fresh
/// late-attaching consumer that circles back for what it missed) and
/// emits the consumer's morsels batch by batch. The materialization
/// cost is paid by the whole query batch exactly once, inside the
/// manager.
class SharedBatchSource : public BatchSource {
 public:
  /// Extent form. `preds` are this query's sargable conjuncts over the
  /// scan variable: when the manager materialized the ring from the
  /// segment store, morsels whose merged zone maps refute them are
  /// skipped — per consumer, since the ring is shared by queries with
  /// different predicates.
  SharedBatchSource(const ExecContext& ctx, std::string class_name,
                    uint32_t class_id,
                    std::vector<storage::SlotPredicate> preds)
      : manager_(ctx.shared_scans),
        class_name_(std::move(class_name)),
        class_id_(class_id),
        preds_(std::move(preds)) {}
  /// Method-scan form: `expr` is materialized (once per manager) via a
  /// private evaluator, exactly like ExprBatchSource::Open would.
  SharedBatchSource(const ExecContext& ctx, ExprRef expr)
      : manager_(ctx.shared_scans),
        evaluator_(std::make_unique<ExprEvaluator>(
            ctx.catalog, ctx.store, ctx.methods, ctx.property_cache,
            ctx.snapshot_epoch)),
        expr_(std::move(expr)) {}

  Status Open() override {
    if (expr_ != nullptr) {
      VODAK_ASSIGN_OR_RETURN(
          consumer_,
          manager_->AttachSource(expr_->ToString(), [this] {
            return evaluator_->EvalClosed(expr_);
          }));
    } else {
      VODAK_ASSIGN_OR_RETURN(consumer_, manager_->AttachExtent(class_id_));
    }
    pos_ = 0;
    end_ = 0;
    return Status::OK();
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    while (pos_ >= end_) {
      Morsel morsel;
      size_t index = 0;
      if (!consumer_.Next(&morsel, &index)) {
        batch->Reset(1);
        return false;
      }
      if (!preds_.empty()) {
        // Segment-backed rings carry per-morsel merged zone maps; a
        // refuted morsel is skipped without touching its rows. The
        // skip is private to this consumer — other queries on the
        // same ring have their own predicates.
        const std::vector<storage::ZoneMap>* zones =
            consumer_.scan().MorselZones(index);
        if (zones != nullptr && storage::ZonesRefute(*zones, preds_)) {
          if (manager_->segments() != nullptr) {
            manager_->segments()->NotePruning(0, 1);
          }
          continue;
        }
        if (zones != nullptr && manager_->segments() != nullptr) {
          manager_->segments()->NotePruning(1, 0);
        }
      }
      pos_ = morsel.begin;
      end_ = morsel.end;
    }
    // Filling against end_ keeps a batch inside the current morsel,
    // like MorselBatchSource.
    return FillScanBatch(batch, end_, &pos_, [this](size_t i) {
             return consumer_.scan().ValueAt(i);
           }) > 0;
  }
  void Close() override { consumer_ = SharedScanConsumer(); }
  std::string name() const override { return "SharedScan"; }
  std::string describe() const override {
    return expr_ != nullptr ? expr_->ToString() : class_name_;
  }
  std::string annotation() const override { return "[source: shared]"; }

 private:
  SharedScanManager* manager_;
  std::unique_ptr<ExprEvaluator> evaluator_;
  ExprRef expr_;
  std::string class_name_;
  uint32_t class_id_ = 0;
  std::vector<storage::SlotPredicate> preds_;
  SharedScanConsumer consumer_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

/// Paged segment cursor: streams a class extent segment-by-segment
/// through the pager's buffer cache, skipping segments whose zone maps
/// refute the query's sargable predicates (docs/ARCHITECTURE.md
/// §"Paged storage & segment skipping"). The survivor partition is
/// computed at construction — EXPLAIN renders before Open, and the
/// prospective counts are exactly what a drain will do — and the
/// store's pruning totals (the cost model's survival-rate feedback)
/// are bumped once here, not per batch or per re-Open.
class SegmentBatchSource : public BatchSource {
 public:
  SegmentBatchSource(const ExecContext& ctx, std::string class_name,
                     uint32_t class_id, storage::SegmentVersionRef version,
                     std::vector<storage::SlotPredicate> preds)
      : segments_(ctx.segments),
        class_name_(std::move(class_name)),
        class_id_(class_id),
        version_(std::move(version)),
        preds_(std::move(preds)) {
    for (const storage::Segment& seg : version_->segments) {
      if (storage::SegmentRefuted(seg, preds_)) {
        ++skipped_;
      } else {
        survivors_.push_back(&seg);
      }
    }
    segments_->NotePruning(survivors_.size(), skipped_);
  }

  Status Open() override {
    next_segment_ = 0;
    rows_.clear();
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    while (pos_ >= rows_.size()) {
      if (next_segment_ >= survivors_.size()) {
        batch->Reset(1);
        return false;
      }
      // One segment's OID column resident at a time: the page-sized
      // working set is what lets a scan run under a buffer cache far
      // smaller than the class.
      VODAK_ASSIGN_OR_RETURN(
          rows_, segments_->ReadLocals(*survivors_[next_segment_++]));
      pos_ = 0;
    }
    return FillScanBatch(batch, rows_.size(), &pos_, [this](size_t i) {
             return Value::OfOid(Oid(class_id_, rows_[i]));
           }) > 0;
  }
  void Close() override {
    rows_.clear();
    pos_ = 0;
  }
  std::string name() const override { return "SegmentScan"; }
  std::string describe() const override { return class_name_; }
  std::string annotation() const override {
    return "[source: segment] [segments: scanned " +
           std::to_string(survivors_.size()) + " / skipped " +
           std::to_string(skipped_) + "]";
  }

 private:
  const storage::SegmentStore* segments_;
  std::string class_name_;
  uint32_t class_id_;
  storage::SegmentVersionRef version_;
  std::vector<storage::SlotPredicate> preds_;
  std::vector<const storage::Segment*> survivors_;
  size_t skipped_ = 0;
  size_t next_segment_ = 0;
  std::vector<uint32_t> rows_;
  size_t pos_ = 0;
};

/// The one leaf operator: a scan over an abstract BatchSource. Which
/// cursor actually feeds it — private, morsel, shared or segment — is
/// decided at plan-build time; the EXPLAIN name comes from the source
/// so plans read the same as before the refactor.
class ScanOp : public PhysOperator {
 public:
  ScanOp(const ExecContext& ctx, std::string ref, BatchSourcePtr source)
      : PhysOperator({std::move(ref)}),
        source_(std::move(source)),
        cancel_(ctx.cancel),
        deadline_(ctx.deadline) {}

  Status Open() override {
    row_pos_ = 0;
    row_batch_.Reset(1);
    return source_->Open();
  }
  Result<bool> Next(Row* row) override {
    // The row path drains the source batch-wise through a private
    // buffer; scan leaves have no per-row evaluation, so this is the
    // same value stream the dedicated row cursors produced.
    while (row_pos_ >= row_batch_.num_rows()) {
      VODAK_RETURN_IF_ERROR(CheckQueryAlive(cancel_, deadline_));
      VODAK_ASSIGN_OR_RETURN(bool more, source_->NextBatch(&row_batch_));
      if (!more) return false;
      row_pos_ = 0;
    }
    row->assign(1, row_batch_.column(0)[row_pos_++]);
    ++rows_produced_;
    return true;
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    // The executor's cancellation point: every pipeline drains through
    // its scan leaves (blocking join builds included), so one check per
    // leaf batch bounds cancel latency at ~a batch of rows everywhere.
    VODAK_RETURN_IF_ERROR(CheckQueryAlive(cancel_, deadline_));
    VODAK_ASSIGN_OR_RETURN(bool more, source_->NextBatch(batch));
    if (more) rows_produced_ += batch->num_rows();
    return more;
  }
  void Close() override {
    source_->Close();
    row_batch_.Reset(0);
  }
  std::string name() const override { return source_->name(); }
  std::string params() const override {
    return refs_[0] + " IN " + source_->describe() + " " +
           source_->annotation();
  }
  const std::vector<const PhysOperator*> children() const override {
    return {};
  }

 private:
  BatchSourcePtr source_;
  const CancellationToken* cancel_;
  Deadline deadline_;
  RowBatch row_batch_;
  size_t row_pos_ = 0;
};

/// Physical select<condition>. Density contract (operator-contract
/// table, docs/ARCHITECTURE.md §"Selection vectors"): accepts selected
/// or dense batches, emits *selected* batches — survivors are marked in
/// the selection vector, never moved. ExecContext::filter_compacts
/// restores the compacting baseline for measurement.
class Filter : public PhysOperator {
 public:
  Filter(const ExecContext& ctx, PhysOpPtr child, ExprRef cond)
      : PhysOperator(child->refs()),
        evaluator_(ctx.catalog, ctx.store, ctx.methods,
                   ctx.property_cache, ctx.snapshot_epoch),
        child_(std::move(child)),
        cond_(std::move(cond)),
        compacts_(ctx.filter_compacts) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override {
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, child_->Next(row));
      if (!more) return false;
      VODAK_ASSIGN_OR_RETURN(
          bool keep,
          evaluator_.EvalPredicate(cond_, EnvFromRow(refs_, *row)));
      if (keep) {
        ++rows_produced_;
        return true;
      }
    }
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    // refs_ == child refs, so the child's batch is filtered in place:
    // the predicate is evaluated over the batch's selection view and
    // survivors are marked by intersecting the selection — no column
    // value moves. A stack of filters narrows one selection vector.
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, child_->NextBatch(batch));
      if (!more) return false;
      BatchEnv env = EnvOfBatch(refs_, *batch);
      VODAK_RETURN_IF_ERROR(
          evaluator_.EvalPredicateBatch(cond_, env, &keep_));
      size_t kept = batch->IntersectSelection(keep_);
      if (compacts_) batch->Compact();
      if (kept > 0) {
        rows_produced_ += kept;
        return true;
      }
    }
  }
  void Close() override { child_->Close(); }
  std::string name() const override { return "Filter"; }
  std::string params() const override { return cond_->ToString(); }
  const std::vector<const PhysOperator*> children() const override {
    return {child_.get()};
  }

 private:
  ExprEvaluator evaluator_;
  PhysOpPtr child_;
  ExprRef cond_;
  bool compacts_;
  std::vector<char> keep_;
};

/// Nested-loop join with arbitrary condition (inner side materialized).
class NestedLoopJoin : public PhysOperator {
 public:
  NestedLoopJoin(const ExecContext& ctx, PhysOpPtr left, PhysOpPtr right,
                 ExprRef cond, std::vector<std::string> refs,
                 SharedInnerRows* shared = nullptr)
      : PhysOperator(std::move(refs)),
        evaluator_(ctx.catalog, ctx.store, ctx.methods,
                   ctx.property_cache, ctx.snapshot_epoch),
        left_(std::move(left)),
        right_(std::move(right)),
        cond_(std::move(cond)),
        shared_(shared) {
    BuildOutputMap();
  }

  Status Open() override {
    VODAK_RETURN_IF_ERROR(left_->Open());
    if (shared_ != nullptr) {
      // Inner side shared across worker clones: the call_once winner
      // drains its own copy of the subtree, everyone reads the result.
      std::call_once(shared_->once, [&] {
        shared_->status = MaterializeInner(&shared_->rows);
      });
      VODAK_RETURN_IF_ERROR(shared_->status);
      right_rows_ = &shared_->rows;
    } else {
      own_rows_.clear();
      VODAK_RETURN_IF_ERROR(MaterializeInner(&own_rows_));
      right_rows_ = &own_rows_;
    }
    right_pos_ = 0;
    left_valid_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    for (;;) {
      if (!left_valid_) {
        VODAK_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
        if (!more) return false;
        left_valid_ = true;
        right_pos_ = 0;
      }
      while (right_pos_ < right_rows_->size()) {
        const Row& right_row = (*right_rows_)[right_pos_++];
        Merge(left_row_, right_row, row);
        VODAK_ASSIGN_OR_RETURN(
            bool keep,
            evaluator_.EvalPredicate(cond_, EnvFromRow(refs_, *row)));
        if (keep) {
          ++rows_produced_;
          return true;
        }
      }
      left_valid_ = false;
    }
  }
  void Close() override {
    left_->Close();
    own_rows_.clear();
  }
  std::string name() const override { return "NestedLoopJoin"; }
  std::string params() const override { return cond_->ToString(); }
  const std::vector<const PhysOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  void BuildOutputMap() {
    for (const std::string& ref : refs_) {
      int li = left_->RefIndex(ref);
      int ri = right_->RefIndex(ref);
      from_left_.push_back(li);
      from_right_.push_back(li >= 0 ? -1 : ri);
    }
  }
  void Merge(const Row& left, const Row& right, Row* out) const {
    out->resize(refs_.size());
    for (size_t i = 0; i < refs_.size(); ++i) {
      (*out)[i] = from_left_[i] >= 0 ? left[from_left_[i]]
                                     : right[from_right_[i]];
    }
  }

  Status MaterializeInner(std::vector<Row>* out) {
    VODAK_RETURN_IF_ERROR(right_->Open());
    Row row;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
      if (!more) break;
      out->push_back(row);
    }
    right_->Close();
    return Status::OK();
  }

  ExprEvaluator evaluator_;
  PhysOpPtr left_;
  PhysOpPtr right_;
  ExprRef cond_;
  SharedInnerRows* shared_;
  std::vector<Row> own_rows_;
  const std::vector<Row>* right_rows_ = nullptr;
  size_t right_pos_ = 0;
  Row left_row_;
  bool left_valid_ = false;
  std::vector<int> from_left_;
  std::vector<int> from_right_;
};

/// Hash join on key references; implements natural_join (keys = shared
/// references) and bare-variable equality joins. Density contract
/// (operator-contract table, docs/ARCHITECTURE.md §"Selection
/// vectors"): the build side is a density boundary — build batches are
/// Compact()ed before rows enter the table; the probe side is iterated
/// through its selection view; output batches are dense by
/// construction.
class HashJoin : public PhysOperator {
 public:
  HashJoin(PhysOpPtr left, PhysOpPtr right,
           std::vector<std::string> left_keys,
           std::vector<std::string> right_keys,
           std::vector<std::string> refs,
           SharedJoinBuild* shared = nullptr)
      : PhysOperator(std::move(refs)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        shared_(shared) {
    for (const std::string& ref : refs_) {
      int li = left_->RefIndex(ref);
      int ri = right_->RefIndex(ref);
      from_left_.push_back(li);
      from_right_.push_back(li >= 0 ? -1 : ri);
    }
    for (const std::string& k : left_keys_) {
      left_key_idx_.push_back(left_->RefIndex(k));
    }
    for (const std::string& k : right_keys_) {
      right_key_idx_.push_back(right_->RefIndex(k));
    }
  }

  Status Open() override {
    own_table_.clear();
    table_ = nullptr;
    built_ = false;
    VODAK_RETURN_IF_ERROR(left_->Open());
    left_valid_ = false;
    bucket_ = nullptr;
    return Status::OK();
  }

  /// Drains the build (right) side into `out` in the requested pipeline
  /// mode, so a row-mode drain stays purely row-at-a-time and a
  /// batch-mode drain builds batch-at-a-time.
  Status BuildInto(JoinTable* out, bool batch_mode) {
    VODAK_RETURN_IF_ERROR(right_->Open());
    Row row;
    Row key;
    auto insert = [&]() {
      key.clear();
      key.reserve(right_key_idx_.size());
      for (int i : right_key_idx_) key.push_back(row[i]);
      (*out)[key].push_back(row);
    };
    if (batch_mode) {
      RowBatch build;
      for (;;) {
        VODAK_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&build));
        if (!more) break;
        // Density boundary: rows leave the batch representation for the
        // table, so the selected rows are gathered dense once here.
        build.Compact();
        for (size_t r = 0; r < build.num_rows(); ++r) {
          build.CopyRowTo(r, &row);
          insert();
        }
      }
    } else {
      for (;;) {
        VODAK_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
        if (!more) break;
        insert();
      }
    }
    right_->Close();
    return Status::OK();
  }

  /// Deferred build on the first Next/NextBatch call. With a shared
  /// build, the call_once winner builds the table once from its own
  /// (deterministic) build subtree and every worker probes it
  /// read-only thereafter.
  Status BuildTable(bool batch_mode) {
    if (shared_ != nullptr) {
      std::call_once(shared_->once, [&] {
        shared_->status = BuildInto(&shared_->table, batch_mode);
      });
      VODAK_RETURN_IF_ERROR(shared_->status);
      table_ = &shared_->table;
    } else {
      VODAK_RETURN_IF_ERROR(BuildInto(&own_table_, batch_mode));
      table_ = &own_table_;
    }
    built_ = true;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    if (!built_) VODAK_RETURN_IF_ERROR(BuildTable(/*batch_mode=*/false));
    for (;;) {
      if (!left_valid_) {
        VODAK_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
        if (!more) return false;
        left_valid_ = true;
        Row key;
        key.reserve(left_key_idx_.size());
        for (int i : left_key_idx_) key.push_back(left_row_[i]);
        auto it = table_->find(key);
        bucket_ = it == table_->end() ? nullptr : &it->second;
        bucket_pos_ = 0;
      }
      if (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        const Row& right_row = (*bucket_)[bucket_pos_++];
        row->resize(refs_.size());
        for (size_t i = 0; i < refs_.size(); ++i) {
          (*row)[i] = from_left_[i] >= 0 ? left_row_[from_left_[i]]
                                         : right_row[from_right_[i]];
        }
        ++rows_produced_;
        return true;
      }
      left_valid_ = false;
    }
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    if (!built_) VODAK_RETURN_IF_ERROR(BuildTable(/*batch_mode=*/true));
    Row key;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&probe_batch_));
      if (!more) return false;
      batch->Reset(refs_.size());
      size_t out_rows = 0;
      // Probe only the live rows of the (possibly selected) probe batch;
      // the output batch is dense by construction.
      for (size_t pr = 0; pr < probe_batch_.active_rows(); ++pr) {
        const size_t r = probe_batch_.RowAt(pr);
        key.clear();
        key.reserve(left_key_idx_.size());
        for (int i : left_key_idx_) {
          key.push_back(probe_batch_.column(i)[r]);
        }
        auto it = table_->find(key);
        if (it == table_->end()) continue;
        for (const Row& right_row : it->second) {
          for (size_t c = 0; c < refs_.size(); ++c) {
            batch->column(c).push_back(
                from_left_[c] >= 0 ? probe_batch_.column(from_left_[c])[r]
                                   : right_row[from_right_[c]]);
          }
          ++out_rows;
        }
      }
      if (out_rows > 0) {
        batch->set_num_rows(out_rows);
        rows_produced_ += out_rows;
        return true;
      }
    }
  }
  void Close() override {
    left_->Close();
    own_table_.clear();
  }
  std::string name() const override { return "HashJoin"; }
  std::string params() const override {
    std::string out;
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      if (i) out += ", ";
      out += left_keys_[i] + " == " + right_keys_[i];
    }
    return out;
  }
  const std::vector<const PhysOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  SharedJoinBuild* shared_;
  JoinTable own_table_;
  const JoinTable* table_ = nullptr;
  Row left_row_;
  bool left_valid_ = false;
  bool built_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  RowBatch probe_batch_;
  std::vector<int> from_left_;
  std::vector<int> from_right_;
};

/// Physical map<ref, expr>: appends one computed column. Density
/// contract (operator-contract table, docs/ARCHITECTURE.md §"Selection
/// vectors"): the child's selection passes through unchanged —
/// pass-through columns are moved wholesale, the expression is
/// evaluated only for the selected rows and its results scattered back
/// to the physical positions (unselected slots stay NULL and are never
/// read).
class MapOp : public PhysOperator {
 public:
  MapOp(const ExecContext& ctx, PhysOpPtr child, std::string ref,
        ExprRef expr, std::vector<std::string> refs)
      : PhysOperator(std::move(refs)),
        evaluator_(ctx.catalog, ctx.store, ctx.methods,
                   ctx.property_cache, ctx.snapshot_epoch),
        child_(std::move(child)),
        new_ref_(std::move(ref)),
        expr_(std::move(expr)) {
    out_index_ = RefIndex(new_ref_);
    for (const std::string& r : refs_) {
      child_index_.push_back(child_->RefIndex(r));
    }
  }

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override {
    Row child_row;
    VODAK_ASSIGN_OR_RETURN(bool more, child_->Next(&child_row));
    if (!more) return false;
    VODAK_ASSIGN_OR_RETURN(
        Value v, evaluator_.Eval(
                     expr_, EnvFromRow(child_->refs(), child_row)));
    row->resize(refs_.size());
    for (size_t i = 0; i < refs_.size(); ++i) {
      (*row)[i] = child_index_[i] >= 0 ? child_row[child_index_[i]]
                                       : Value::Null();
    }
    (*row)[out_index_] = std::move(v);
    ++rows_produced_;
    return true;
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    VODAK_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
    if (!more) return false;
    const size_t n = child_batch_.num_rows();
    const size_t active = child_batch_.active_rows();
    BatchEnv env = EnvOfBatch(child_->refs(), child_batch_);
    // One computed value per *live* row; under a selection the results
    // are scattered back to their physical positions below.
    VODAK_ASSIGN_OR_RETURN(ValueColumn computed,
                           evaluator_.EvalBatch(expr_, env));
    if (child_batch_.has_selection()) {
      ValueColumn scattered(n);  // unselected slots stay NULL, never read
      for (size_t i = 0; i < active; ++i) {
        scattered[child_batch_.RowAt(i)] = std::move(computed[i]);
      }
      computed = std::move(scattered);
    }
    batch->Reset(refs_.size());
    for (size_t c = 0; c < refs_.size(); ++c) {
      if (static_cast<int>(c) == out_index_) {
        batch->column(c) = std::move(computed);
      } else if (child_index_[c] >= 0) {
        batch->column(c) = std::move(child_batch_.column(child_index_[c]));
      } else {
        batch->column(c).assign(n, Value::Null());
      }
    }
    batch->set_num_rows(n);
    if (child_batch_.has_selection()) {
      // The child's live rows are consumed above; transplant its
      // selection rather than copying it (the child Reset()s on its
      // next NextBatch anyway).
      batch->SetSelection(child_batch_.TakeSelection());
    }
    rows_produced_ += active;
    return true;
  }
  void Close() override { child_->Close(); }
  std::string name() const override { return "Map"; }
  std::string params() const override {
    return new_ref_ + " := " + expr_->ToString();
  }
  const std::vector<const PhysOperator*> children() const override {
    return {child_.get()};
  }

 private:
  ExprEvaluator evaluator_;
  PhysOpPtr child_;
  std::string new_ref_;
  ExprRef expr_;
  int out_index_ = -1;
  std::vector<int> child_index_;
  RowBatch child_batch_;
};

/// Physical flat<ref, expr>: one output row per element of the
/// set-valued expression. Density contract (operator-contract table,
/// docs/ARCHITECTURE.md §"Selection vectors"): only the child's
/// selected rows fan out; the output batch is dense by construction
/// (the fan-out builds fresh columns anyway).
class FlatOp : public PhysOperator {
 public:
  FlatOp(const ExecContext& ctx, PhysOpPtr child, std::string ref,
         ExprRef expr, std::vector<std::string> refs)
      : PhysOperator(std::move(refs)),
        evaluator_(ctx.catalog, ctx.store, ctx.methods,
                   ctx.property_cache, ctx.snapshot_epoch),
        child_(std::move(child)),
        new_ref_(std::move(ref)),
        expr_(std::move(expr)) {
    out_index_ = RefIndex(new_ref_);
    for (const std::string& r : refs_) {
      child_index_.push_back(child_->RefIndex(r));
    }
  }

  Status Open() override {
    elem_pos_ = 0;
    elements_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* row) override {
    for (;;) {
      if (elem_pos_ < elements_.size()) {
        row->resize(refs_.size());
        for (size_t i = 0; i < refs_.size(); ++i) {
          (*row)[i] = child_index_[i] >= 0 ? child_row_[child_index_[i]]
                                           : Value::Null();
        }
        (*row)[out_index_] = elements_[elem_pos_++];
        ++rows_produced_;
        return true;
      }
      VODAK_ASSIGN_OR_RETURN(bool more, child_->Next(&child_row_));
      if (!more) return false;
      VODAK_ASSIGN_OR_RETURN(
          Value set, evaluator_.Eval(
                         expr_, EnvFromRow(child_->refs(), child_row_)));
      if (set.is_null()) {
        elements_.clear();
      } else if (set.is_set()) {
        elements_ = set.AsSet();
      } else {
        return Status::ExecError("flat expression evaluated to non-set " +
                                 set.ToString());
      }
      elem_pos_ = 0;
    }
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
      if (!more) return false;
      const size_t active = child_batch_.active_rows();
      BatchEnv env = EnvOfBatch(child_->refs(), child_batch_);
      // One set per live row (sets[i] belongs to physical row RowAt(i)).
      VODAK_ASSIGN_OR_RETURN(ValueColumn sets,
                             evaluator_.EvalBatch(expr_, env));
      batch->Reset(refs_.size());
      size_t out_rows = 0;
      for (size_t i = 0; i < active; ++i) {
        const size_t r = child_batch_.RowAt(i);
        if (sets[i].is_null()) continue;
        if (!sets[i].is_set()) {
          return Status::ExecError(
              "flat expression evaluated to non-set " +
              sets[i].ToString());
        }
        for (const Value& elem : sets[i].AsSet()) {
          for (size_t c = 0; c < refs_.size(); ++c) {
            if (static_cast<int>(c) == out_index_) {
              batch->column(c).push_back(elem);
            } else if (child_index_[c] >= 0) {
              batch->column(c).push_back(
                  child_batch_.column(child_index_[c])[r]);
            } else {
              batch->column(c).push_back(Value::Null());
            }
          }
          ++out_rows;
        }
      }
      if (out_rows > 0) {
        batch->set_num_rows(out_rows);
        rows_produced_ += out_rows;
        return true;
      }
    }
  }
  void Close() override { child_->Close(); }
  std::string name() const override { return "Flatten"; }
  std::string params() const override {
    return new_ref_ + " IN " + expr_->ToString();
  }
  const std::vector<const PhysOperator*> children() const override {
    return {child_.get()};
  }

 private:
  ExprEvaluator evaluator_;
  PhysOpPtr child_;
  std::string new_ref_;
  ExprRef expr_;
  int out_index_ = -1;
  std::vector<int> child_index_;
  Row child_row_;
  ValueSet elements_;
  size_t elem_pos_ = 0;
  RowBatch child_batch_;
};

/// Physical project with set-semantics duplicate elimination. Density
/// contract (operator-contract table, docs/ARCHITECTURE.md §"Selection
/// vectors"): only the child's selected rows are projected into the
/// dedup set; the output batch is dense by construction.
class ProjectDedup : public PhysOperator {
 public:
  ProjectDedup(PhysOpPtr child, std::vector<std::string> refs)
      : PhysOperator(std::move(refs)), child_(std::move(child)) {
    for (const std::string& r : refs_) {
      child_index_.push_back(child_->RefIndex(r));
    }
  }

  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* row) override {
    Row child_row;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, child_->Next(&child_row));
      if (!more) return false;
      row->resize(refs_.size());
      for (size_t i = 0; i < refs_.size(); ++i) {
        (*row)[i] = child_row[child_index_[i]];
      }
      if (seen_.insert(*row).second) {
        ++rows_produced_;
        return true;
      }
    }
  }
  Result<bool> NextBatch(RowBatch* batch) override {
    VmStats::operator_handoffs.fetch_add(1, std::memory_order_relaxed);
    Row projected;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
      if (!more) return false;
      batch->Reset(refs_.size());
      size_t out_rows = 0;
      for (size_t i = 0; i < child_batch_.active_rows(); ++i) {
        const size_t r = child_batch_.RowAt(i);
        projected.resize(refs_.size());
        for (size_t c = 0; c < refs_.size(); ++c) {
          projected[c] = child_batch_.column(child_index_[c])[r];
        }
        if (seen_.insert(projected).second) {
          batch->AppendRow(projected);
          ++out_rows;
        }
      }
      if (out_rows > 0) {
        rows_produced_ += out_rows;
        return true;
      }
    }
  }
  void Close() override {
    child_->Close();
    seen_.clear();
  }
  std::string name() const override { return "Project"; }
  std::string params() const override { return Join(refs_, ", "); }
  const std::vector<const PhysOperator*> children() const override {
    return {child_.get()};
  }

 private:
  PhysOpPtr child_;
  std::vector<int> child_index_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
  RowBatch child_batch_;
};

/// union / diff with set semantics (right side materialized).
class SetOp : public PhysOperator {
 public:
  SetOp(PhysOpPtr left, PhysOpPtr right, bool is_union,
        std::vector<std::string> refs)
      : PhysOperator(std::move(refs)),
        left_(std::move(left)),
        right_(std::move(right)),
        is_union_(is_union) {
    for (const std::string& r : refs_) {
      left_index_.push_back(left_->RefIndex(r));
      right_index_.push_back(right_->RefIndex(r));
    }
  }

  Status Open() override {
    right_set_.clear();
    emitted_.clear();
    VODAK_RETURN_IF_ERROR(right_->Open());
    Row row;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
      if (!more) break;
      Row aligned(refs_.size());
      for (size_t i = 0; i < refs_.size(); ++i) {
        aligned[i] = row[right_index_[i]];
      }
      right_set_.insert(std::move(aligned));
    }
    right_->Close();
    right_it_ = right_set_.begin();
    left_done_ = false;
    return left_->Open();
  }

  Result<bool> Next(Row* row) override {
    while (!left_done_) {
      Row child_row;
      VODAK_ASSIGN_OR_RETURN(bool more, left_->Next(&child_row));
      if (!more) {
        left_done_ = true;
        break;
      }
      row->resize(refs_.size());
      for (size_t i = 0; i < refs_.size(); ++i) {
        (*row)[i] = child_row[left_index_[i]];
      }
      bool in_right = right_set_.count(*row) > 0;
      if (is_union_ || !in_right) {
        if (emitted_.insert(*row).second) {
          ++rows_produced_;
          return true;
        }
      }
    }
    if (is_union_) {
      while (right_it_ != right_set_.end()) {
        *row = *right_it_++;
        if (emitted_.insert(*row).second) {
          ++rows_produced_;
          return true;
        }
      }
    }
    return false;
  }
  void Close() override {
    left_->Close();
    right_set_.clear();
    emitted_.clear();
  }
  std::string name() const override {
    return is_union_ ? "Union" : "Difference";
  }
  const std::vector<const PhysOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  bool is_union_;
  std::vector<int> left_index_;
  std::vector<int> right_index_;
  std::unordered_set<Row, RowHash, RowEq> right_set_;
  std::unordered_set<Row, RowHash, RowEq> emitted_;
  std::unordered_set<Row, RowHash, RowEq>::iterator right_it_;
  bool left_done_ = false;
};

/// Sargable predicates visible at each scan leaf, keyed by leaf node
/// identity: the kSelect conjuncts above the leaf on a pushdown-safe
/// path, classified by exec/sargable.h against the leaf's scan
/// variable. Pushing a single-variable compare below map/flat/project
/// and to either side of join/natural-join/union is sound (a row the
/// predicate refutes can only produce output rows the select above
/// would drop); the right side of a difference is NOT — skipping rows
/// there would *grow* the result — so it restarts with no pending
/// predicates.
using LeafPredMap =
    std::map<const LogicalNode*, std::vector<storage::SlotPredicate>>;

void CollectLeafPreds(const LogicalRef& plan, const Catalog& catalog,
                      std::vector<ExprRef> pending, LeafPredMap* out) {
  switch (plan->op()) {
    case LogicalOp::kSelect:
      pending.push_back(plan->expr());
      CollectLeafPreds(plan->input(0), catalog, std::move(pending), out);
      return;
    case LogicalOp::kMap:
    case LogicalOp::kFlat:
    case LogicalOp::kProject:
      CollectLeafPreds(plan->input(0), catalog, std::move(pending), out);
      return;
    case LogicalOp::kJoin:
    case LogicalOp::kNaturalJoin:
    case LogicalOp::kUnion:
      CollectLeafPreds(plan->input(0), catalog, pending, out);
      CollectLeafPreds(plan->input(1), catalog, std::move(pending), out);
      return;
    case LogicalOp::kDiff:
      CollectLeafPreds(plan->input(0), catalog, std::move(pending), out);
      CollectLeafPreds(plan->input(1), catalog, {}, out);
      return;
    case LogicalOp::kGet: {
      const ClassDef* cls = catalog.FindClass(plan->class_name());
      if (cls == nullptr) return;  // surfaced as PlanError at build
      std::vector<storage::SlotPredicate>& preds = (*out)[plan.get()];
      for (const ExprRef& cond : pending) {
        std::vector<storage::SlotPredicate> got =
            CollectSargablePredicates(cond, plan->ref(), *cls);
        preds.insert(preds.end(), got.begin(), got.end());
      }
      return;
    }
    case LogicalOp::kExprSource:
    case LogicalOp::kGroupRef:
      return;
  }
}

const std::vector<storage::SlotPredicate> kNoPreds;

const std::vector<storage::SlotPredicate>& LeafPredsFor(
    const LeafPredMap* map, const LogicalNode* leaf) {
  if (map == nullptr) return kNoPreds;
  auto it = map->find(leaf);
  return it == map->end() ? kNoPreds : it->second;
}

/// Shared plan builder. With a null `state` this is the serial
/// BuildPhysical; with a ParallelPlanState it builds one worker's clone:
/// the driving leaf becomes a MorselScan over the shared cursor and
/// joins attach to their pre-created shared build slots.
Result<PhysOpPtr> BuildPhysicalImpl(const LogicalRef& plan,
                                    const ExecContext& ctx,
                                    ParallelPlanState* state,
                                    const LeafPredMap* leaf_preds) {
  switch (plan->op()) {
    case LogicalOp::kGet: {
      const ClassDef* cls = ctx.catalog->FindClass(plan->class_name());
      if (cls == nullptr) {
        return Status::PlanError("unknown class '" + plan->class_name() +
                                 "'");
      }
      const std::vector<storage::SlotPredicate>& preds =
          LeafPredsFor(leaf_preds, plan.get());
      BatchSourcePtr source;
      if (state != nullptr && plan.get() == state->driving_leaf) {
        source = std::make_unique<MorselBatchSource>(plan->class_name(),
                                                     state);
      } else if (ctx.shared_scans != nullptr) {
        source = std::make_unique<SharedBatchSource>(
            ctx, plan->class_name(), cls->class_id(), preds);
      } else {
        storage::SegmentVersionRef version =
            ctx.segments == nullptr
                ? nullptr
                : ctx.segments->VersionAt(cls->class_id(),
                                          ctx.snapshot_epoch);
        if (version != nullptr) {
          source = std::make_unique<SegmentBatchSource>(
              ctx, plan->class_name(), cls->class_id(), std::move(version),
              preds);
        } else {
          source = std::make_unique<ExtentBatchSource>(
              ctx, plan->class_name(), cls->class_id());
        }
      }
      return PhysOpPtr(new ScanOp(ctx, plan->ref(), std::move(source)));
    }
    case LogicalOp::kExprSource: {
      BatchSourcePtr source;
      if (state != nullptr && plan.get() == state->driving_leaf) {
        source = std::make_unique<MorselBatchSource>(
            plan->expr()->ToString(), state);
      } else if (ctx.shared_scans != nullptr) {
        source = std::make_unique<SharedBatchSource>(ctx, plan->expr());
      } else {
        source = std::make_unique<ExprBatchSource>(ctx, plan->expr());
      }
      return PhysOpPtr(new ScanOp(ctx, plan->ref(), std::move(source)));
    }
    case LogicalOp::kSelect: {
      VODAK_ASSIGN_OR_RETURN(
          PhysOpPtr child,
          BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      return PhysOpPtr(new Filter(ctx, std::move(child), plan->expr()));
    }
    case LogicalOp::kJoin: {
      VODAK_ASSIGN_OR_RETURN(
          PhysOpPtr left,
          BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      VODAK_ASSIGN_OR_RETURN(
          PhysOpPtr right,
          BuildPhysicalImpl(plan->input(1), ctx, state, leaf_preds));
      const ExprRef& cond = plan->expr();
      // Bare-variable equality spanning both sides → hash join (the
      // deterministic algorithm choice shared with the cost model).
      if (cond->kind() == ExprKind::kBinary &&
          cond->bin_op() == BinOp::kEq &&
          cond->lhs()->kind() == ExprKind::kVar &&
          cond->rhs()->kind() == ExprKind::kVar) {
        std::string a = cond->lhs()->var_name();
        std::string b = cond->rhs()->var_name();
        if (plan->input(0)->HasRef(b)) std::swap(a, b);
        if (plan->input(0)->HasRef(a) && plan->input(1)->HasRef(b)) {
          return PhysOpPtr(new HashJoin(
              std::move(left), std::move(right), {a}, {b}, RefsOf(plan),
              state == nullptr ? nullptr
                               : &state->hash_builds.at(plan.get())));
        }
      }
      return PhysOpPtr(new NestedLoopJoin(
          ctx, std::move(left), std::move(right), cond, RefsOf(plan),
          state == nullptr ? nullptr
                           : &state->inner_rows.at(plan.get())));
    }
    case LogicalOp::kNaturalJoin: {
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr left,
                             BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr right,
                             BuildPhysicalImpl(plan->input(1), ctx, state, leaf_preds));
      std::vector<std::string> shared;
      for (const auto& [ref, type] : plan->input(0)->schema()) {
        if (plan->input(1)->HasRef(ref)) shared.push_back(ref);
      }
      return PhysOpPtr(new HashJoin(
          std::move(left), std::move(right), shared, shared, RefsOf(plan),
          state == nullptr ? nullptr
                           : &state->hash_builds.at(plan.get())));
    }
    case LogicalOp::kUnion:
    case LogicalOp::kDiff: {
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr left,
                             BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr right,
                             BuildPhysicalImpl(plan->input(1), ctx, state, leaf_preds));
      return PhysOpPtr(new SetOp(std::move(left), std::move(right),
                                 plan->op() == LogicalOp::kUnion,
                                 RefsOf(plan)));
    }
    case LogicalOp::kMap: {
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr child,
                             BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      return PhysOpPtr(new MapOp(ctx, std::move(child), plan->ref(),
                                 plan->expr(), RefsOf(plan)));
    }
    case LogicalOp::kFlat: {
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr child,
                             BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      return PhysOpPtr(new FlatOp(ctx, std::move(child), plan->ref(),
                                  plan->expr(), RefsOf(plan)));
    }
    case LogicalOp::kProject: {
      VODAK_ASSIGN_OR_RETURN(PhysOpPtr child,
                             BuildPhysicalImpl(plan->input(0), ctx, state, leaf_preds));
      return PhysOpPtr(
          new ProjectDedup(std::move(child), plan->projection()));
    }
    case LogicalOp::kGroupRef:
      return Status::PlanError(
          "group placeholder in executable plan (optimizer bug)");
  }
  return Status::Internal("unreachable logical op in plan builder");
}

/// Occurrences of `target` in the plan DAG. The driving leaf must occur
/// exactly once: a shared subtree node reached through another path
/// would wrongly read from the same morsel cursor.
size_t CountOccurrences(const LogicalRef& plan,
                        const algebra::LogicalNode* target) {
  size_t n = plan.get() == target ? 1 : 0;
  for (const LogicalRef& input : plan->inputs()) {
    n += CountOccurrences(input, target);
  }
  return n;
}

/// Pre-creates the shared build slots for every join node in the plan,
/// so worker-side construction only ever reads the maps.
void CreateSharedJoinSlots(const LogicalRef& plan,
                           ParallelPlanState* state) {
  if (plan->op() == LogicalOp::kJoin ||
      plan->op() == LogicalOp::kNaturalJoin) {
    state->hash_builds[plan.get()];
    state->inner_rows[plan.get()];
  }
  for (const LogicalRef& input : plan->inputs()) {
    CreateSharedJoinSlots(input, state);
  }
}

}  // namespace

Result<PhysOpPtr> BuildPhysical(const LogicalRef& plan,
                                const ExecContext& ctx) {
  LeafPredMap leaf_preds;
  CollectLeafPreds(plan, *ctx.catalog, {}, &leaf_preds);
  return BuildPhysicalImpl(plan, ctx, /*state=*/nullptr, &leaf_preds);
}

Result<BatchSourcePtr> MakeLeafBatchSource(const LogicalNode& leaf,
                                           const ExecContext& ctx) {
  return MakeLeafBatchSource(leaf, ctx, /*preds=*/nullptr);
}

Result<BatchSourcePtr> MakeLeafBatchSource(
    const LogicalNode& leaf, const ExecContext& ctx,
    const std::vector<storage::SlotPredicate>* preds) {
  const std::vector<storage::SlotPredicate>& leaf_preds =
      preds == nullptr ? kNoPreds : *preds;
  switch (leaf.op()) {
    case LogicalOp::kGet: {
      const ClassDef* cls = ctx.catalog->FindClass(leaf.class_name());
      if (cls == nullptr) {
        return Status::PlanError("unknown class '" + leaf.class_name() +
                                 "'");
      }
      if (ctx.shared_scans != nullptr) {
        return BatchSourcePtr(std::make_unique<SharedBatchSource>(
            ctx, leaf.class_name(), cls->class_id(), leaf_preds));
      }
      storage::SegmentVersionRef version =
          ctx.segments == nullptr
              ? nullptr
              : ctx.segments->VersionAt(cls->class_id(),
                                        ctx.snapshot_epoch);
      if (version != nullptr) {
        return BatchSourcePtr(std::make_unique<SegmentBatchSource>(
            ctx, leaf.class_name(), cls->class_id(), std::move(version),
            leaf_preds));
      }
      return BatchSourcePtr(std::make_unique<ExtentBatchSource>(
          ctx, leaf.class_name(), cls->class_id()));
    }
    case LogicalOp::kExprSource: {
      if (ctx.shared_scans != nullptr) {
        return BatchSourcePtr(
            std::make_unique<SharedBatchSource>(ctx, leaf.expr()));
      }
      return BatchSourcePtr(
          std::make_unique<ExprBatchSource>(ctx, leaf.expr()));
    }
    default:
      return Status::PlanError("logical node '" +
                               std::string(LogicalOpName(leaf.op())) +
                               "' is not a scan leaf");
  }
}

Result<PhysOpPtr> BuildPhysicalWorker(const LogicalRef& plan,
                                      const ExecContext& ctx,
                                      const ParallelPlanStatePtr& state) {
  if (state == nullptr) {
    return Status::Internal("BuildPhysicalWorker without plan state");
  }
  LeafPredMap leaf_preds;
  CollectLeafPreds(plan, *ctx.catalog, {}, &leaf_preds);
  return BuildPhysicalImpl(plan, ctx, state.get(), &leaf_preds);
}

Result<ParallelPlanStatePtr> PrepareParallelPlan(const LogicalRef& plan,
                                                 const ExecContext& ctx,
                                                 size_t threads,
                                                 size_t max_morsel_size) {
  auto state = std::make_shared<ParallelPlanState>();

  // Walk the driving path: the input(0) chain from the root. Joins
  // drive through their probe (outer) side; set operators interleave
  // their own right-side emission with the left drain and stay serial.
  const LogicalNode* node = plan.get();
  for (bool at_leaf = false; !at_leaf;) {
    switch (node->op()) {
      case LogicalOp::kSelect:
      case LogicalOp::kMap:
      case LogicalOp::kFlat:
      case LogicalOp::kJoin:
      case LogicalOp::kNaturalJoin:
        node = node->input(0).get();
        break;
      case LogicalOp::kProject:
        // Workers dedup locally; the driver must dedup the merge.
        state->needs_final_dedup = true;
        node = node->input(0).get();
        break;
      case LogicalOp::kGet:
      case LogicalOp::kExprSource:
        at_leaf = true;
        break;
      case LogicalOp::kUnion:
      case LogicalOp::kDiff:
      case LogicalOp::kGroupRef:
        return ParallelPlanStatePtr();  // serial fallback
    }
  }

  if (CountOccurrences(plan, node) != 1) {
    return ParallelPlanStatePtr();  // shared leaf subtree: stay serial
  }

  // Materialize the driving scan once, exactly like the serial leaf's
  // Open() would (same stats, same errors).
  state->driving_leaf = node;
  if (node->op() == LogicalOp::kGet) {
    const ClassDef* cls = ctx.catalog->FindClass(node->class_name());
    if (cls == nullptr) {
      return Status::PlanError("unknown class '" + node->class_name() +
                               "'");
    }
    const storage::SegmentVersionRef version =
        ctx.segments == nullptr
            ? nullptr
            : ctx.segments->VersionAt(cls->class_id(), ctx.snapshot_epoch);
    if (version != nullptr) {
      // Segment-backed: zone-map pruning happens here, before the
      // morsel cursor is sized, so refuted segments never become
      // morsels and every worker clone shares the savings.
      LeafPredMap leaf_preds;
      CollectLeafPreds(plan, *ctx.catalog, {}, &leaf_preds);
      const std::vector<storage::SlotPredicate>& preds =
          LeafPredsFor(&leaf_preds, node);
      state->segment_backed = true;
      state->extent.reserve(version->total_rows);
      for (const storage::Segment& seg : version->segments) {
        if (storage::SegmentRefuted(seg, preds)) {
          ++state->seg_skipped;
          continue;
        }
        ++state->seg_scanned;
        VODAK_ASSIGN_OR_RETURN(std::vector<uint32_t> locals,
                               ctx.segments->ReadLocals(seg));
        for (uint32_t local : locals) {
          state->extent.push_back(Oid(cls->class_id(), local));
        }
      }
      ctx.segments->NotePruning(state->seg_scanned, state->seg_skipped);
    } else {
      VODAK_ASSIGN_OR_RETURN(state->extent,
                             ctx.store->Extent(cls->class_id(),
                                               ctx.snapshot_epoch));
    }
    state->leaf_is_extent = true;
  } else {
    ExprEvaluator evaluator(ctx.catalog, ctx.store, ctx.methods,
                            ctx.property_cache, ctx.snapshot_epoch);
    VODAK_ASSIGN_OR_RETURN(Value set, evaluator.EvalClosed(node->expr()));
    if (set.is_null()) {
      state->elements.clear();
    } else if (set.is_set()) {
      state->elements = set.AsSet();
    } else {
      return Status::ExecError("expr_source evaluated to non-set " +
                               set.ToString());
    }
  }

  const size_t total = state->driving_total();
  state->morsels.Reset(
      total, BalancedMorselSize(total, threads, max_morsel_size));

  CreateSharedJoinSlots(plan, state.get());
  return state;
}

Result<Value> ExecuteToSet(PhysOperator* root, ExecMode mode) {
  VODAK_RETURN_IF_ERROR(root->Open());
  std::vector<Value> tuples;
  const std::vector<std::string>& refs = root->refs();
  if (mode == ExecMode::kRow) {
    Row row;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, root->Next(&row));
      if (!more) break;
      ValueTuple fields;
      fields.reserve(refs.size());
      for (size_t i = 0; i < refs.size(); ++i) {
        fields.emplace_back(refs[i], row[i]);
      }
      tuples.push_back(Value::Tuple(std::move(fields)));
    }
  } else {
    RowBatch batch;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, root->NextBatch(&batch));
      if (!more) break;
      // Final set emit is a density boundary: every column crosses into
      // the tuple representation, so the selected rows compact once.
      batch.Compact();
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        ValueTuple fields;
        fields.reserve(refs.size());
        for (size_t c = 0; c < refs.size(); ++c) {
          fields.emplace_back(refs[c], batch.column(c)[r]);
        }
        tuples.push_back(Value::Tuple(std::move(fields)));
      }
    }
  }
  root->Close();
  return Value::Set(std::move(tuples));
}

Result<Value> ExecuteColumn(PhysOperator* root, const std::string& ref,
                            ExecMode mode) {
  int index = root->RefIndex(ref);
  if (index < 0) {
    return Status::PlanError("result reference '" + ref +
                             "' not produced by plan");
  }
  VODAK_RETURN_IF_ERROR(root->Open());
  std::vector<Value> values;
  if (mode == ExecMode::kRow) {
    Row row;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, root->Next(&row));
      if (!more) break;
      values.push_back(row[index]);
    }
  } else {
    RowBatch batch;
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(bool more, root->NextBatch(&batch));
      if (!more) break;
      // Single-column extraction reads through the selection view — no
      // reason to compact every column to consume one.
      auto& col = batch.column(index);
      for (size_t i = 0; i < batch.active_rows(); ++i) {
        values.push_back(std::move(col[batch.RowAt(i)]));
      }
    }
  }
  root->Close();
  return Value::Set(std::move(values));
}

namespace {

void DecomposeRec(const ExprRef& expr, int* counter, std::string* out,
                  std::string* result_reg) {
  switch (expr->kind()) {
    case ExprKind::kConst:
      *result_reg = expr->value().ToString();
      return;
    case ExprKind::kVar:
      *result_reg = expr->var_name();
      return;
    case ExprKind::kProperty: {
      std::string base;
      DecomposeRec(expr->base(), counter, out, &base);
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_property<" + *result_reg + ", " + expr->name() + ", " +
              base + ">; ";
      return;
    }
    case ExprKind::kMethodCall: {
      std::string base;
      DecomposeRec(expr->base(), counter, out, &base);
      std::vector<std::string> args;
      for (const auto& arg : expr->args()) {
        std::string reg;
        DecomposeRec(arg, counter, out, &reg);
        args.push_back(reg);
      }
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_method<" + *result_reg + ", " + expr->method() + ", " +
              base;
      for (const auto& a : args) *out += ", " + a;
      *out += ">; ";
      return;
    }
    case ExprKind::kClassMethodCall: {
      std::vector<std::string> args;
      for (const auto& arg : expr->args()) {
        std::string reg;
        DecomposeRec(arg, counter, out, &reg);
        args.push_back(reg);
      }
      *result_reg = "t" + std::to_string(++*counter);
      *out += "method_get<" + *result_reg + ", " + expr->name() + ", " +
              expr->method();
      for (const auto& a : args) *out += ", " + a;
      *out += ">; ";
      return;
    }
    case ExprKind::kBinary: {
      std::string lhs;
      std::string rhs;
      DecomposeRec(expr->lhs(), counter, out, &lhs);
      DecomposeRec(expr->rhs(), counter, out, &rhs);
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_operator<" + *result_reg + ", " +
              BinOpName(expr->bin_op()) + ", " + lhs + ", " + rhs + ">; ";
      return;
    }
    case ExprKind::kUnary: {
      std::string operand;
      DecomposeRec(expr->operand(), counter, out, &operand);
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_operator<" + *result_reg + ", " +
              (expr->un_op() == UnOp::kNot ? "NOT" : "NEG") + ", " +
              operand + ">; ";
      return;
    }
    case ExprKind::kTupleCtor: {
      std::vector<std::string> args;
      for (const auto& [name, fe] : expr->fields()) {
        std::string reg;
        DecomposeRec(fe, counter, out, &reg);
        args.push_back(name + ": " + reg);
      }
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_operator<" + *result_reg + ", TUPLE";
      for (const auto& a : args) *out += ", " + a;
      *out += ">; ";
      return;
    }
    case ExprKind::kSetCtor: {
      std::vector<std::string> args;
      for (const auto& el : expr->args()) {
        std::string reg;
        DecomposeRec(el, counter, out, &reg);
        args.push_back(reg);
      }
      *result_reg = "t" + std::to_string(++*counter);
      *out += "map_operator<" + *result_reg + ", SET";
      for (const auto& a : args) *out += ", " + a;
      *out += ">; ";
      return;
    }
  }
}

void ExplainRec(const PhysOperator& op, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += op.name();
  std::string params = op.params();
  if (!params.empty()) *out += "(" + params + ")";
  *out += "\n";
  for (const PhysOperator* child : op.children()) {
    ExplainRec(*child, indent + 1, out);
  }
}

}  // namespace

std::string DecomposeToRestrictedOps(const ExprRef& expr) {
  std::string out;
  std::string result;
  int counter = 0;
  DecomposeRec(expr, &counter, &out, &result);
  if (out.empty()) return "atom " + result;
  // Trim trailing "; ".
  out.resize(out.size() - 2);
  return out;
}

std::string ExplainPhysical(const PhysOperator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

}  // namespace exec
}  // namespace vodak
