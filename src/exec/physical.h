// Physical operators: the batch-at-a-time (NextBatch) pipeline with
// the row-at-a-time Volcano path kept as the semantic oracle. The
// operator-by-operator batch behavior, the batch/row drain exclusivity
// rule and the parallel worker-clone machinery are documented in
// docs/ARCHITECTURE.md §"The NextBatch pipeline" and §"Morsel-driven
// parallelism". Each operator's density contract — whether it accepts
// and emits selected or compacted batches — is the operator-contract
// table in docs/ARCHITECTURE.md §"Selection vectors"; the per-operator
// comments in physical.cc name their row.
#ifndef VODAK_EXEC_PHYSICAL_H_
#define VODAK_EXEC_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/logical.h"
#include "exec/cancellation.h"
#include "exec/row_batch.h"
#include "expr/expr_eval.h"
#include "storage/segment_store.h"

namespace vodak {

class PropertyColumnCache;

namespace exec {

class SharedScanManager;

/// The paper's physical algebra, grown from the classic Volcano
/// open/next/close iterator into a batch-at-a-time pipeline: NextBatch
/// moves ~kDefaultBatchSize rows per virtual call and evaluates operator
/// parameters through the batched expression entry points, while Next
/// remains as the row-at-a-time compatibility path. Every operator
/// carries its output reference list and basic runtime counters for the
/// benchmark harness. Within one Open()..Close() cycle a plan must be
/// drained through either Next or NextBatch, not a mix of both.
class PhysOperator {
 public:
  explicit PhysOperator(std::vector<std::string> refs)
      : refs_(std::move(refs)) {}
  virtual ~PhysOperator() = default;

  virtual Status Open() = 0;
  /// Produces the next row; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  /// Produces the next batch of rows; returns false at end of stream. A
  /// true return means the batch holds at least one *live* row — the
  /// batch may carry a selection vector (filters mark survivors instead
  /// of moving values), so consumers iterate active_rows()/RowAt() or
  /// Compact() at a density boundary. The default adapter loops Next()
  /// (always dense); hot operators override it with native
  /// column-at-a-time implementations.
  virtual Result<bool> NextBatch(RowBatch* batch);
  virtual void Close() = 0;

  const std::vector<std::string>& refs() const { return refs_; }
  int RefIndex(const std::string& name) const;

  virtual std::string name() const = 0;
  /// One-line parameter description for EXPLAIN output.
  virtual std::string params() const { return ""; }
  virtual const std::vector<const PhysOperator*> children() const = 0;

  uint64_t rows_produced() const { return rows_produced_; }

 protected:
  std::vector<std::string> refs_;
  uint64_t rows_produced_ = 0;
};

using PhysOpPtr = std::unique_ptr<PhysOperator>;

/// Abstract supplier of a leaf scan's rows: one column of values,
/// delivered batch-at-a-time. Scan leaves are one generic operator
/// (`ScanOp` in physical.cc) constructed against this interface, so the
/// same leaf runs over a private cursor (extent / method scan), the
/// intra-query morsel cursor (parallel worker clones) or a shared-scan
/// attachment (cross-query sharing, docs/ARCHITECTURE.md §"Shared
/// scans") — the executor above the leaf cannot tell them apart.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// (Re)starts a full pass over the source. Private sources
  /// materialize here (the scan-pass cost); shared sources attach a
  /// fresh consumer to the managed scan — which is where a
  /// late-arriving query joins the in-flight pass.
  virtual Status Open() = 0;
  /// Emits the next (dense, single-column) batch; false at end of the
  /// pass, persistently.
  virtual Result<bool> NextBatch(RowBatch* batch) = 0;
  virtual void Close() = 0;

  /// EXPLAIN operator name ("ExtentScan", "MethodScan", "MorselScan",
  /// "SharedScan", "SegmentScan") and source description (class or
  /// expression).
  virtual std::string name() const = 0;
  virtual std::string describe() const = 0;
  /// Uniform EXPLAIN source annotation, appended to the leaf operator's
  /// params: every source kind prints `[source: <kind>]`, and
  /// segment-pruned kinds add `[segments: scanned S / skipped K]`.
  virtual std::string annotation() const = 0;
};

using BatchSourcePtr = std::unique_ptr<BatchSource>;

/// Everything operators need at runtime.
struct ExecContext {
  const Catalog* catalog = nullptr;
  ObjectStore* store = nullptr;
  MethodRegistry* methods = nullptr;
  /// When true, Filter::NextBatch physically compacts surviving rows
  /// after every predicate (the pre-selection-vector behavior). Kept as
  /// the measurable baseline for bench_batch_exec's selection-chain
  /// section and the selection tests; production paths leave it false
  /// and filter by marking the batch's selection vector instead.
  bool filter_compacts = false;
  /// Cross-query shared-scan attachment point. When set, every scan
  /// leaf (extent and method scan) attaches to this manager's shared
  /// cursors instead of opening a private one, so the K queries of a
  /// concurrent batch pay ~1 scan pass per source instead of K. Null —
  /// the default, and the measurable baseline ExecuteConcurrent keeps
  /// behind its shared_scan flag — builds private-cursor leaves.
  SharedScanManager* shared_scans = nullptr;
  /// Cross-query property-column cache (normally the manager's own);
  /// threaded into every operator's evaluator so attached queries share
  /// column reads as well as the scan pass. Null reads the store
  /// directly.
  PropertyColumnCache* property_cache = nullptr;
  /// This query's cancel flag (null: not cancellable) and deadline
  /// (default: none). Polled at batch boundaries — every scan leaf's
  /// NextBatch/refill — so a cancel or an expired deadline surfaces as
  /// kCancelled / kDeadlineExceeded within ~one batch. Worker clones
  /// copy the context, so all lanes of one query observe the same flag.
  const CancellationToken* cancel = nullptr;
  Deadline deadline;
  /// The epoch every store read of this query resolves at — pinned by
  /// Database::Submit (or the generation scheduler) at admission, so
  /// the whole operator tree sees one consistent snapshot while writer
  /// batches commit. kEpochLatest (the default) resolves per store
  /// call; only read-only paths may leave it.
  Epoch snapshot_epoch = kEpochLatest;
  /// Paged segment store (docs/ARCHITECTURE.md §"Paged storage &
  /// segment skipping"). When set and a scan leaf's class has a
  /// SegmentVersion visible at snapshot_epoch, the leaf streams the
  /// extent segment-by-segment through the pager's buffer cache and
  /// skips segments whose zone maps refute the query's sargable
  /// predicates. Null — the default — keeps every leaf on the
  /// in-memory extent paths.
  const storage::SegmentStore* segments = nullptr;
};

/// Compiles a logical plan into a physical operator tree. Algorithm
/// choice is deterministic and mirrors the cost model: natural joins and
/// bare-variable equality joins become hash joins, everything else nested
/// loops; map/flat/select evaluate their (restricted-algebra-decomposed)
/// expression parameters per row.
Result<PhysOpPtr> BuildPhysical(const algebra::LogicalRef& plan,
                                const ExecContext& ctx);

/// Builds the private batch source for a scan leaf (kGet → extent
/// cursor, kExprSource → method/expression scan), honoring the
/// context's shared-scan attachment exactly like BuildPhysical's leaf
/// construction. This is how the VM backend (exec/vm.h) obtains the
/// same scan leaves the operator tree would read — same cursor kinds,
/// same pinned snapshot epoch.
Result<BatchSourcePtr> MakeLeafBatchSource(const algebra::LogicalNode& leaf,
                                           const ExecContext& ctx);

/// As above, with the query's sargable predicates over this leaf's scan
/// variable (normalized `col op const` conjuncts, extracted by
/// exec/sargable.h) so a segment-backed source can zone-map-skip.
/// `preds` may be null or empty; non-segment sources ignore it.
Result<BatchSourcePtr> MakeLeafBatchSource(
    const algebra::LogicalNode& leaf, const ExecContext& ctx,
    const std::vector<storage::SlotPredicate>* preds);

/// How a plan is drained: batch-at-a-time (default) or the
/// row-at-a-time compatibility path.
enum class ExecMode { kRow, kBatch };

/// Drains the operator tree into a set of tuples (the algebra's result).
Result<Value> ExecuteToSet(PhysOperator* root,
                           ExecMode mode = ExecMode::kBatch);

/// Drains the tree and projects one reference, returning a value set.
Result<Value> ExecuteColumn(PhysOperator* root, const std::string& ref,
                            ExecMode mode = ExecMode::kBatch);

/// Shared, per-query state behind the morsel-driven parallel pipeline
/// (exec/parallel.h): the materialized driving scan with its atomic
/// morsel cursor, plus once-built hash-join tables and nested-loop
/// materializations shared read-only by the worker-local plan clones.
/// Opaque outside physical.cc; created by PrepareParallelPlan and
/// consumed by BuildPhysicalWorker.
class ParallelPlanState;
using ParallelPlanStatePtr = std::shared_ptr<ParallelPlanState>;

/// Analyzes `plan` for morsel-driven execution and materializes the
/// driving scan (the input(0)-chain leaf: extent or method scan) once.
/// Returns a null pointer — not an error — when the plan has no
/// parallelizable driving path (set operators on the path); callers
/// then fall back to the serial pipeline. `threads` sizes morsels for
/// load balance; `max_morsel_size` caps the rows per morsel.
Result<ParallelPlanStatePtr> PrepareParallelPlan(
    const algebra::LogicalRef& plan, const ExecContext& ctx,
    size_t threads, size_t max_morsel_size);

/// True when worker-local results must pass through a final
/// single-threaded dedup (the plan dedups on the driving path, which
/// workers can only apply locally).
bool ParallelPlanNeedsFinalDedup(const ParallelPlanState& state);

/// Builds one worker's clone of the plan: the driving leaf reads
/// morsels from the shared cursor and joins share their build side
/// through `state`. Each worker drains its own clone; the merged
/// per-worker outputs form the plan's result multiset.
Result<PhysOpPtr> BuildPhysicalWorker(const algebra::LogicalRef& plan,
                                      const ExecContext& ctx,
                                      const ParallelPlanStatePtr& state);

/// Indented physical EXPLAIN with the restricted-algebra decomposition
/// of operator parameters (§6.1): complex expressions are shown as
/// map_property / map_method / map_operator step chains.
std::string ExplainPhysical(const PhysOperator& root);

/// Renders an expression as the §6.1 restricted-algebra operator chain
/// it decomposes into, e.g. `p.section.document` becomes
/// `map_property<t1, section, p>; map_property<t2, document, t1>`.
std::string DecomposeToRestrictedOps(const ExprRef& expr);

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_PHYSICAL_H_
