// RowBatch: the column-major unit of the vectorized executor. Layout
// and invariants (column/row-count coupling, never-empty returns, the
// selection-vector view and the mark-vs-compact decision rule) are
// documented in docs/ARCHITECTURE.md §"RowBatch: the unit of
// execution" and §"Selection vectors".
#ifndef VODAK_EXEC_ROW_BATCH_H_
#define VODAK_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/copy_stats.h"
#include "common/logging.h"
#include "types/value.h"

namespace vodak {
namespace exec {

/// A physical tuple: values aligned with the operator's reference list
/// (sorted reference names, matching the logical schema's map order).
using Row = std::vector<Value>;

/// Target number of rows per batch in the vectorized pipeline. Operators
/// may emit smaller batches (filters, end of stream) or larger ones
/// (flatten / join fan-out); a returned batch is never empty.
constexpr size_t kDefaultBatchSize = 1024;

/// Column-major batch of rows flowing through the NextBatch pipeline.
/// Column i holds the values of reference refs()[i] for every row, so
/// the batched expression evaluator can bind a reference to a whole
/// column at once instead of rebuilding a per-row environment.
///
/// A batch is either *dense* (every stored row is live) or carries a
/// *selection vector*: a strictly ascending list of live physical row
/// indices into the column storage. Filters mark survivors in the
/// selection instead of moving column values; consumers iterate the
/// live rows through active_rows()/RowAt() and call Compact() only at
/// density boundaries (hash-join build, row hand-off, final set emit).
class RowBatch {
 public:
  RowBatch() = default;

  /// Drops all rows (and any selection) and resizes to `num_columns`
  /// empty columns.
  void Reset(size_t num_columns) {
    columns_.resize(num_columns);
    for (auto& col : columns_) col.clear();
    num_rows_ = 0;
    ClearSelection();
  }

  /// Physical rows held by the column storage (live or not).
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Live rows: the selection count under a selection vector, every
  /// stored row otherwise. The pipeline's never-empty invariant is on
  /// *active* rows — a batch of 1024 stored rows with an empty
  /// selection is empty.
  size_t active_rows() const { return has_sel_ ? sel_.size() : num_rows_; }
  bool empty() const { return active_rows() == 0; }

  bool has_selection() const { return has_sel_; }
  const std::vector<uint32_t>& selection() const { return sel_; }

  /// Physical index of the i-th live row (i < active_rows()).
  size_t RowAt(size_t i) const {
    return has_sel_ ? static_cast<size_t>(sel_[i]) : i;
  }

  std::vector<Value>& column(size_t i) { return columns_[i]; }
  const std::vector<Value>& column(size_t i) const { return columns_[i]; }
  std::vector<std::vector<Value>>& columns() { return columns_; }
  const std::vector<std::vector<Value>>& columns() const {
    return columns_;
  }

  /// After writing columns directly, records the row count. All columns
  /// must hold exactly `n` values.
  void set_num_rows(size_t n) { num_rows_ = n; }

  /// Installs a selection (ascending physical row indices, each <
  /// num_rows()). Used by operators that pass a child's selection
  /// through unchanged (e.g. Map).
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  /// Moves the selection out (the batch reverts to dense). For
  /// transplanting a child's selection without copying it; only valid
  /// once the donor batch's live rows are no longer needed.
  std::vector<uint32_t> TakeSelection() {
    has_sel_ = false;
    return std::move(sel_);
  }
  void ClearSelection() {
    sel_.clear();
    has_sel_ = false;
  }

  /// Writes this batch's selection view into an env-like object with
  /// `sel`/`sel_count` members (expr's BatchEnv — templated to keep
  /// this header below the expr layer). No-op on a dense batch. The
  /// pipeline's never-empty invariant is a precondition: an empty
  /// selection has no data() to view and would read back as dense.
  template <typename EnvT>
  void ExportSelectionTo(EnvT* env) const {
    if (!has_sel_) return;
    VODAK_DCHECK(!sel_.empty());
    env->sel = sel_.data();
    env->sel_count = sel_.size();
  }

  void AppendRow(const Row& row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i].push_back(row[i]);
    }
    ++num_rows_;
  }

  /// Copies physical row `i` into `row` (resized to num_columns). Under
  /// a selection, pass RowAt(i) — the index is physical, not logical.
  void CopyRowTo(size_t i, Row* row) const {
    row->resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      (*row)[c] = columns_[c][i];
    }
  }

  /// Narrows the live rows to those with keep[i] != 0, where keep has
  /// one entry per *active* row (the shape EvalPredicateBatch produces
  /// over this batch's selection view). Pure marking: no column value
  /// moves. Returns the surviving live count. A full-survival
  /// intersection of a dense batch stays dense (no selection is
  /// allocated).
  size_t IntersectSelection(const std::vector<char>& keep) {
    const size_t active = active_rows();
    if (!has_sel_) {
      size_t kept = 0;
      for (size_t i = 0; i < active; ++i) kept += keep[i] ? 1 : 0;
      if (kept == active) return kept;  // all survive: stay dense
      sel_.clear();
      sel_.reserve(kept);
      for (size_t i = 0; i < active; ++i) {
        if (keep[i]) sel_.push_back(static_cast<uint32_t>(i));
      }
      has_sel_ = true;
      return sel_.size();
    }
    size_t kept = 0;
    for (size_t i = 0; i < active; ++i) {
      if (keep[i]) sel_[kept++] = sel_[i];
    }
    sel_.resize(kept);
    return kept;
  }

  /// Gathers the selected rows into dense column storage and drops the
  /// selection. The single explicit densification of the pipeline —
  /// applied only where every column must become row-addressable
  /// (hash-join build, the drivers' row hand-off, final set emit).
  /// No-op on a dense batch. Value moves are counted into
  /// BatchCopyStats::compact_moves.
  void Compact() {
    if (!has_sel_) return;
    uint64_t moves = 0;
    for (size_t i = 0; i < sel_.size(); ++i) {
      const size_t src = sel_[i];
      if (src != i) {
        for (auto& col : columns_) col[i] = std::move(col[src]);
        moves += columns_.size();
      }
    }
    for (auto& col : columns_) col.resize(sel_.size());
    num_rows_ = sel_.size();
    ClearSelection();
    if (moves != 0) {
      BatchCopyStats::compact_moves.fetch_add(moves,
                                              std::memory_order_relaxed);
    }
  }

  /// Keeps exactly the live rows with keep[i] != 0 and densifies,
  /// preserving order; returns the surviving row count. Equivalent to
  /// IntersectSelection(keep) + Compact() — the compacting-filter
  /// baseline the selection-vector pipeline replaces (kept for the
  /// measurable baseline mode and the interpreter's oracle-adjacent
  /// paths).
  size_t CompactRows(const std::vector<char>& keep) {
    IntersectSelection(keep);
    Compact();
    return num_rows_;
  }

 private:
  size_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;
  /// Ascending physical indices of the live rows; meaningful only when
  /// has_sel_ is true.
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_ROW_BATCH_H_
