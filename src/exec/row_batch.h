// RowBatch: the column-major unit of the vectorized executor. Layout
// and invariants (column/row-count coupling, never-empty returns,
// in-place compaction) are documented in docs/ARCHITECTURE.md
// §"RowBatch: the unit of execution".
#ifndef VODAK_EXEC_ROW_BATCH_H_
#define VODAK_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <vector>

#include "types/value.h"

namespace vodak {
namespace exec {

/// A physical tuple: values aligned with the operator's reference list
/// (sorted reference names, matching the logical schema's map order).
using Row = std::vector<Value>;

/// Target number of rows per batch in the vectorized pipeline. Operators
/// may emit smaller batches (filters, end of stream) or larger ones
/// (flatten / join fan-out); a returned batch is never empty.
constexpr size_t kDefaultBatchSize = 1024;

/// Column-major batch of rows flowing through the NextBatch pipeline.
/// Column i holds the values of reference refs()[i] for every row, so
/// the batched expression evaluator can bind a reference to a whole
/// column at once instead of rebuilding a per-row environment.
class RowBatch {
 public:
  RowBatch() = default;

  /// Drops all rows and resizes to `num_columns` empty columns.
  void Reset(size_t num_columns) {
    columns_.resize(num_columns);
    for (auto& col : columns_) col.clear();
    num_rows_ = 0;
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0; }

  std::vector<Value>& column(size_t i) { return columns_[i]; }
  const std::vector<Value>& column(size_t i) const { return columns_[i]; }
  std::vector<std::vector<Value>>& columns() { return columns_; }
  const std::vector<std::vector<Value>>& columns() const {
    return columns_;
  }

  /// After writing columns directly, records the row count. All columns
  /// must hold exactly `n` values.
  void set_num_rows(size_t n) { num_rows_ = n; }

  void AppendRow(const Row& row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i].push_back(row[i]);
    }
    ++num_rows_;
  }

  /// Copies row `i` into `row` (resized to num_columns).
  void CopyRowTo(size_t i, Row* row) const {
    row->resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      (*row)[c] = columns_[c][i];
    }
  }

  /// Keeps exactly the rows with keep[i] != 0, preserving order; returns
  /// the surviving row count.
  size_t CompactRows(const std::vector<char>& keep) {
    size_t kept = 0;
    for (size_t i = 0; i < num_rows_; ++i) {
      if (!keep[i]) continue;
      if (kept != i) {
        for (auto& col : columns_) col[kept] = std::move(col[i]);
      }
      ++kept;
    }
    for (auto& col : columns_) col.resize(kept);
    num_rows_ = kept;
    return kept;
  }

 private:
  size_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_ROW_BATCH_H_
