#ifndef VODAK_EXEC_ROW_HASH_H_
#define VODAK_EXEC_ROW_HASH_H_

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "exec/row_batch.h"

namespace vodak {
namespace exec {

/// Row hashing/equality/ordering shared by the physical operators (hash
/// join tables, dedup sets), the parallel driver's final merge-dedup
/// pass and the parity tests.

inline uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    return static_cast<size_t>(HashRow(row));
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (Value::Compare(a[i], b[i]) != 0) return false;
    }
    return true;
  }
};

/// Lexicographic total order over rows (Value::Compare per column).
inline bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

/// Sorts `rows` into the RowLess order (canonical multiset form).
inline void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Row& a, const Row& b) { return RowLess(a, b); });
}

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_ROW_HASH_H_
