#include "exec/sargable.h"

#include "expr/expr_eval.h"

namespace vodak {
namespace exec {

std::optional<SargableCompare> ClassifySargableCompare(const ExprRef& e) {
  if (e->kind() != ExprKind::kBinary) return std::nullopt;
  if (!ExprEvaluator::IsLowerableCompare(e->bin_op())) return std::nullopt;
  const bool const_lhs = e->lhs()->kind() == ExprKind::kConst;
  const bool const_rhs = e->rhs()->kind() == ExprKind::kConst;
  if (const_lhs == const_rhs) return std::nullopt;  // need exactly one
  SargableCompare out;
  out.operand = const_lhs ? e->rhs() : e->lhs();
  out.constant = const_lhs ? e->lhs() : e->rhs();
  out.op = e->bin_op();
  out.const_lhs = const_lhs;
  return out;
}

BinOp NormalizeCompareToLhs(BinOp op, bool const_lhs) {
  if (!const_lhs) return op;
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

namespace {

void CollectRec(const ExprRef& cond, const std::string& scan_ref,
                const ClassDef& cls,
                std::vector<storage::SlotPredicate>* out) {
  if (cond->kind() == ExprKind::kBinary && cond->bin_op() == BinOp::kAnd) {
    CollectRec(cond->lhs(), scan_ref, cls, out);
    CollectRec(cond->rhs(), scan_ref, cls, out);
    return;
  }
  std::optional<SargableCompare> cmp = ClassifySargableCompare(cond);
  if (!cmp) return;
  // Zone maps cover one property hop off the scan variable; anything
  // else (bare vars, deeper paths, method results) stays unpruned.
  if (cmp->operand->kind() != ExprKind::kProperty) return;
  if (cmp->operand->base()->kind() != ExprKind::kVar) return;
  if (cmp->operand->base()->var_name() != scan_ref) return;
  const PropertyDef* prop = cls.FindProperty(cmp->operand->name());
  if (prop == nullptr) return;
  storage::SlotPredicate pred;
  pred.slot = prop->slot;
  pred.op = NormalizeCompareToLhs(cmp->op, cmp->const_lhs);
  pred.constant = cmp->constant->value();
  out->push_back(std::move(pred));
}

}  // namespace

std::vector<storage::SlotPredicate> CollectSargablePredicates(
    const ExprRef& cond, const std::string& scan_ref, const ClassDef& cls) {
  std::vector<storage::SlotPredicate> preds;
  CollectRec(cond, scan_ref, cls, &preds);
  return preds;
}

}  // namespace exec
}  // namespace vodak
