// The shared sargable-predicate classifier: one recognizer for the
// compare shape both consumers act on — the VM's native kTest lowering
// (exec/vm_compile.cc) and zone-map segment pruning (storage layer).
// Keeping a single classifier is the invariant the EXPLAIN output
// relies on: a predicate the VM runs as a typed compare loop is
// exactly a predicate segment scans can refute from zone maps, so the
// two layers never drift apart on what "sargable" means.
#ifndef VODAK_EXEC_SARGABLE_H_
#define VODAK_EXEC_SARGABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "schema/catalog.h"
#include "storage/segment_store.h"

namespace vodak {
namespace exec {

/// One recognized compare leaf: a total-order compare
/// (ExprEvaluator::IsLowerableCompare) with exactly one constant side.
/// `op` is the operator as written; `const_lhs` records which side the
/// constant was on so consumers can either preserve the written form
/// (the VM's kTest instruction does) or normalize it.
struct SargableCompare {
  ExprRef operand;   // the non-constant side (kVar, property hop, ...)
  ExprRef constant;  // kConst
  BinOp op = BinOp::kEq;
  bool const_lhs = false;
};

/// Classifies `e` as a sargable compare; nullopt when the shape is
/// anything else (two constants, no constant, non-total-order op).
std::optional<SargableCompare> ClassifySargableCompare(const ExprRef& e);

/// The compare with the column moved to the left-hand side:
/// `5 < p.x` normalizes to `p.x > 5`.
BinOp NormalizeCompareToLhs(BinOp op, bool const_lhs);

/// Extracts the zone-map-prunable conjuncts of a filter condition over
/// scan variable `scan_ref`: AND-conjuncts (top-level kAnd trees only
/// — OR/NOT subtrees are skipped, conservatively) whose leaves are
/// sargable compares of one property hop off `scan_ref` against a
/// constant, resolved to property slots through `cls`. Every returned
/// predicate is normalized column-on-LHS, the form
/// storage::ZoneRefutes prices.
std::vector<storage::SlotPredicate> CollectSargablePredicates(
    const ExprRef& cond, const std::string& scan_ref, const ClassDef& cls);

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_SARGABLE_H_
