#include "exec/shared_scan.h"

#include <utility>

namespace vodak {
namespace exec {

void SharedScan::InitExtent(std::shared_ptr<const std::vector<Oid>> extent,
                            size_t morsel_size) {
  extent_ = std::move(extent);
  total_ = extent_->size();
  morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  morsel_count_ = (total_ + morsel_size_ - 1) / morsel_size_;
}

void SharedScan::InitElements(ValueSet elements, size_t morsel_size) {
  elements_ = std::move(elements);
  total_ = elements_.size();
  morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  morsel_count_ = (total_ + morsel_size_ - 1) / morsel_size_;
}

std::shared_ptr<SharedScanManager::Slot> SharedScanManager::SlotFor(
    const std::string& key) {
  MutexLock lock(mu_);
  std::shared_ptr<Slot>& slot = slots_[key];
  if (slot == nullptr) slot = std::make_shared<Slot>();
  return slot;
}

bool SharedScanManager::HasSource(const std::string& key) const {
  MutexLock lock(mu_);
  return slots_.find(key) != slots_.end();
}

std::vector<std::string> SharedScanManager::SourceKeys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) keys.push_back(key);
  return keys;
}

Result<SharedScanManager::Slot*> SharedScanManager::EnsureExtentSlot(
    uint32_t class_id) {
  std::shared_ptr<Slot> slot = SlotFor(ExtentKey(class_id));
  std::call_once(slot->once, [&] {
    // Materialize at the manager's pinned snapshot: writer batches that
    // commit while this generation drains do not change what any
    // attached consumer sees.
    auto extent = store_->Extent(class_id, snapshot_);
    if (!extent.ok()) {
      slot->status = extent.status();
      return;
    }
    auto shared = std::make_shared<const std::vector<Oid>>(
        std::move(extent).value());
    slot->scan.InitExtent(shared, morsel_size_);
    // Seed the column cache with the extent we just paid for, so the
    // first property read of this class fills without a second pass.
    auto locals = std::make_shared<std::vector<uint32_t>>();
    locals->reserve(shared->size());
    for (const Oid& oid : *shared) locals->push_back(oid.local);
    cache_.SeedLocals(class_id, snapshot_, std::move(locals));
    materialized_.fetch_add(1, std::memory_order_relaxed);
  });
  VODAK_RETURN_IF_ERROR(slot->status);
  return slot.get();
}

Result<std::shared_ptr<const std::vector<Oid>>>
SharedScanManager::SharedExtent(uint32_t class_id) {
  VODAK_ASSIGN_OR_RETURN(Slot * slot, EnsureExtentSlot(class_id));
  return slot->scan.extent();
}

Result<SharedScanConsumer> SharedScanManager::AttachExtent(
    uint32_t class_id) {
  VODAK_ASSIGN_OR_RETURN(Slot * slot, EnsureExtentSlot(class_id));
  consumers_.fetch_add(1, std::memory_order_relaxed);
  return SharedScanConsumer(&slot->scan);
}

Result<SharedScanConsumer> SharedScanManager::AttachSource(
    const std::string& key,
    const std::function<Result<Value>()>& materialize) {
  std::shared_ptr<Slot> slot = SlotFor(ExprKey(key));
  std::call_once(slot->once, [&] {
    auto set = materialize();
    if (!set.ok()) {
      slot->status = set.status();
      return;
    }
    ValueSet elements;
    if (set.value().is_set()) {
      elements = set.value().AsSet();
    } else if (!set.value().is_null()) {
      slot->status = Status::ExecError(
          "shared scan source evaluated to non-set " +
          set.value().ToString());
      return;
    }
    slot->scan.InitElements(std::move(elements), morsel_size_);
    materialized_.fetch_add(1, std::memory_order_relaxed);
  });
  VODAK_RETURN_IF_ERROR(slot->status);
  consumers_.fetch_add(1, std::memory_order_relaxed);
  return SharedScanConsumer(&slot->scan);
}

}  // namespace exec
}  // namespace vodak
