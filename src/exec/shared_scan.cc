#include "exec/shared_scan.h"

#include <utility>

namespace vodak {
namespace exec {

void SharedScan::InitExtent(std::shared_ptr<const std::vector<Oid>> extent,
                            size_t morsel_size) {
  extent_ = std::move(extent);
  total_ = extent_->size();
  morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  morsel_count_ = (total_ + morsel_size_ - 1) / morsel_size_;
}

void SharedScan::InitElements(ValueSet elements, size_t morsel_size) {
  elements_ = std::move(elements);
  total_ = elements_.size();
  morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  morsel_count_ = (total_ + morsel_size_ - 1) / morsel_size_;
}

namespace {

// Per-morsel zone maps for a segment-backed ring: morsel boundaries are
// fixed by the ring (morsel_size), segment boundaries by the ingester
// (rows_per_segment), so a morsel's bounds are the merge of the zones
// of every segment overlapping its row range. Merging widens (min of
// mins / max of maxes under Value::Compare), which keeps the pruning
// rule sound: a morsel's merged zone bounds every row the morsel holds.
std::vector<std::vector<storage::ZoneMap>> MorselZonesFor(
    const storage::SegmentVersion& version, const SharedScan& scan) {
  std::vector<std::vector<storage::ZoneMap>> zones(scan.morsel_count());
  for (size_t m = 0; m < scan.morsel_count(); ++m) {
    const Morsel morsel = scan.MorselAt(m);
    std::vector<storage::ZoneMap> merged;
    bool first_overlap = true;
    for (const storage::Segment& seg : version.segments) {
      const size_t seg_begin = seg.first_row;
      const size_t seg_end = seg.first_row + seg.row_count;
      if (seg_end <= morsel.begin || seg_begin >= morsel.end) continue;
      if (first_overlap) {
        merged = seg.zones;
        first_overlap = false;
        continue;
      }
      // A slot tracked in one overlapping segment but not another has
      // no morsel-wide bound: invalid poisons the merge.
      if (seg.zones.size() < merged.size()) merged.resize(seg.zones.size());
      for (size_t s = 0; s < merged.size(); ++s) {
        storage::ZoneMap& z = merged[s];
        const storage::ZoneMap& o = seg.zones[s];
        if (!z.valid) continue;
        if (!o.valid) {
          z.valid = false;
          continue;
        }
        if (Value::Compare(o.min, z.min) < 0) z.min = o.min;
        if (Value::Compare(o.max, z.max) > 0) z.max = o.max;
        z.null_count += o.null_count;
      }
    }
    zones[m] = std::move(merged);
  }
  return zones;
}

}  // namespace

std::shared_ptr<SharedScanManager::Slot> SharedScanManager::SlotFor(
    const std::string& key) {
  MutexLock lock(mu_);
  std::shared_ptr<Slot>& slot = slots_[key];
  if (slot == nullptr) slot = std::make_shared<Slot>();
  return slot;
}

bool SharedScanManager::HasSource(const std::string& key) const {
  MutexLock lock(mu_);
  return slots_.find(key) != slots_.end();
}

std::vector<std::string> SharedScanManager::SourceKeys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) keys.push_back(key);
  return keys;
}

Result<SharedScanManager::Slot*> SharedScanManager::EnsureExtentSlot(
    uint32_t class_id) {
  std::shared_ptr<Slot> slot = SlotFor(ExtentKey(class_id));
  std::call_once(slot->once, [&] {
    // Materialize at the manager's pinned snapshot: writer batches that
    // commit while this generation drains do not change what any
    // attached consumer sees.
    const storage::SegmentVersionRef version =
        segments_ == nullptr ? nullptr
                             : segments_->VersionAt(class_id, snapshot_);
    std::shared_ptr<const std::vector<Oid>> shared;
    if (version != nullptr) {
      // Segment-backed: stream the ring's rows through the pager
      // segment by segment instead of copying the store's extent.
      auto rows = std::make_shared<std::vector<Oid>>();
      rows->reserve(version->total_rows);
      for (const storage::Segment& seg : version->segments) {
        auto locals = segments_->ReadLocals(seg);
        if (!locals.ok()) {
          slot->status = locals.status();
          return;
        }
        for (uint32_t local : locals.value()) {
          rows->push_back(Oid(class_id, local));
        }
      }
      shared = std::move(rows);
    } else {
      auto extent = store_->Extent(class_id, snapshot_);
      if (!extent.ok()) {
        slot->status = extent.status();
        return;
      }
      shared = std::make_shared<const std::vector<Oid>>(
          std::move(extent).value());
    }
    slot->scan.InitExtent(shared, morsel_size_);
    if (version != nullptr) {
      slot->scan.SetMorselZones(MorselZonesFor(*version, slot->scan));
    }
    // Seed the column cache with the materialization we just paid for,
    // so the first property read of this class fills without a second
    // extent pass (and without copying the Oids into a locals index).
    cache_.SeedExtent(class_id, snapshot_, shared);
    materialized_.fetch_add(1, std::memory_order_relaxed);
  });
  VODAK_RETURN_IF_ERROR(slot->status);
  return slot.get();
}

Result<std::shared_ptr<const std::vector<Oid>>>
SharedScanManager::SharedExtent(uint32_t class_id) {
  VODAK_ASSIGN_OR_RETURN(Slot * slot, EnsureExtentSlot(class_id));
  return slot->scan.extent();
}

Result<SharedScanConsumer> SharedScanManager::AttachExtent(
    uint32_t class_id) {
  VODAK_ASSIGN_OR_RETURN(Slot * slot, EnsureExtentSlot(class_id));
  consumers_.fetch_add(1, std::memory_order_relaxed);
  return SharedScanConsumer(&slot->scan);
}

Result<SharedScanConsumer> SharedScanManager::AttachSource(
    const std::string& key,
    const std::function<Result<Value>()>& materialize) {
  std::shared_ptr<Slot> slot = SlotFor(ExprKey(key));
  std::call_once(slot->once, [&] {
    auto set = materialize();
    if (!set.ok()) {
      slot->status = set.status();
      return;
    }
    ValueSet elements;
    if (set.value().is_set()) {
      elements = set.value().AsSet();
    } else if (!set.value().is_null()) {
      slot->status = Status::ExecError(
          "shared scan source evaluated to non-set " +
          set.value().ToString());
      return;
    }
    slot->scan.InitElements(std::move(elements), morsel_size_);
    materialized_.fetch_add(1, std::memory_order_relaxed);
  });
  VODAK_RETURN_IF_ERROR(slot->status);
  consumers_.fetch_add(1, std::memory_order_relaxed);
  return SharedScanConsumer(&slot->scan);
}

}  // namespace exec
}  // namespace vodak
