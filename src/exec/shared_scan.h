// Shared scans: one extent pass fanned out to many concurrent queries
// (docs/ARCHITECTURE.md §"Shared scans"). The inverse of the morsel
// pipeline — MorselSource partitions one scan across the workers of
// one query; a SharedScan broadcasts one scan to every attached query.
#ifndef VODAK_EXEC_SHARED_SCAN_H_
#define VODAK_EXEC_SHARED_SCAN_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/morsel_source.h"
#include "objstore/property_cache.h"
#include "storage/segment_store.h"
#include "types/value.h"

namespace vodak {
namespace exec {

/// One shared scan: a source (class extent or method-scan result)
/// materialized exactly once, split into fixed-boundary morsels, plus
/// the batch fan-out clock. Unlike MorselSource — whose atomic cursor
/// *partitions* the morsels among one query's workers — a SharedScan
/// hands **every** morsel to **every** attached consumer exactly once:
/// a consumer walks the morsel ring from its attach position, so a
/// late-arriving query joins the scan wherever it currently is and
/// circles back for the morsels it missed.
///
/// Configured single-threaded by the manager's materialization
/// (call_once); afterwards only the relaxed clock mutates.
class SharedScan {
 public:
  SharedScan() = default;
  SharedScan(const SharedScan&) = delete;
  SharedScan& operator=(const SharedScan&) = delete;

  void InitExtent(std::shared_ptr<const std::vector<Oid>> extent,
                  size_t morsel_size);
  void InitElements(ValueSet elements, size_t morsel_size);

  size_t total() const { return total_; }
  size_t morsel_count() const { return morsel_count_; }
  /// Fixed morsel boundaries: morsel i covers
  /// [i * morsel_size, min((i+1) * morsel_size, total)).
  Morsel MorselAt(size_t index) const {
    Morsel m;
    m.begin = index * morsel_size_;
    m.end = std::min(m.begin + morsel_size_, total_);
    return m;
  }
  /// The i-th scan row (an Oid value for extents, the materialized
  /// element otherwise).
  Value ValueAt(size_t i) const {
    return extent_ != nullptr ? Value::OfOid((*extent_)[i])
                              : elements_[i];
  }

  bool is_extent() const { return extent_ != nullptr; }
  const std::shared_ptr<const std::vector<Oid>>& extent() const {
    return extent_;
  }

  /// Per-morsel per-slot zone maps, set when the extent materialized
  /// from the segment store (empty otherwise). The ring is shared by
  /// queries with *different* predicates, so the scan only carries the
  /// bounds; each consumer's SharedBatchSource evaluates its own
  /// query's sargable predicates against them and skips refuted
  /// morsels privately.
  void SetMorselZones(std::vector<std::vector<storage::ZoneMap>> zones) {
    morsel_zones_ = std::move(zones);
  }
  /// Zones of morsel `index`, or null when none are known.
  const std::vector<storage::ZoneMap>* MorselZones(size_t index) const {
    return index < morsel_zones_.size() ? &morsel_zones_[index] : nullptr;
  }

  /// Where a consumer attaching *now* starts its ring walk: the morsel
  /// the group most recently claimed. Purely a locality hint — a late
  /// attacher rides along with the in-flight scan and wraps around for
  /// the prefix it missed; exactly-once per consumer holds for any
  /// start.
  size_t AttachStart() const {
    return morsel_count_ == 0
               ? 0
               : clock_.load(std::memory_order_relaxed) % morsel_count_;
  }
  void NoteClaim(size_t morsel_index) {
    clock_.store(morsel_index + 1, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const std::vector<Oid>> extent_;
  ValueSet elements_;
  std::vector<std::vector<storage::ZoneMap>> morsel_zones_;
  size_t total_ = 0;
  size_t morsel_size_ = kDefaultMorselSize;
  size_t morsel_count_ = 0;
  std::atomic<size_t> clock_{0};
};

/// One query's pass over a shared scan. Each consumer sees every morsel
/// of the scan exactly once, in ring order from its attach position.
/// Not thread-safe (a consumer belongs to one query's drain); distinct
/// consumers of one scan are independent.
class SharedScanConsumer {
 public:
  SharedScanConsumer() = default;
  explicit SharedScanConsumer(SharedScan* scan)
      : scan_(scan), start_(scan->AttachStart()) {}

  bool attached() const { return scan_ != nullptr; }
  const SharedScan& scan() const { return *scan_; }

  /// Claims this consumer's next morsel; false once it has seen the
  /// whole ring. `index` (optional) reports the ring position, the key
  /// into the scan's per-morsel zone maps.
  bool Next(Morsel* morsel, size_t* index = nullptr) {
    if (scan_ == nullptr || consumed_ >= scan_->morsel_count()) {
      return false;
    }
    const size_t at = (start_ + consumed_) % scan_->morsel_count();
    ++consumed_;
    scan_->NoteClaim(at);
    *morsel = scan_->MorselAt(at);
    if (index != nullptr) *index = at;
    return true;
  }

 private:
  SharedScan* scan_ = nullptr;
  size_t start_ = 0;
  size_t consumed_ = 0;
};

/// Registry of the shared scans of one concurrent query batch, keyed on
/// the scan source: a class extent (`extent:<class_id>`) or a closed
/// method-scan expression (`expr:<expr string>`). The first attach (or
/// SharedExtent call) materializes the source — one store Extent() /
/// one method dispatch for the whole batch — under a per-slot
/// once_flag; every query thereafter attaches a consumer to the same
/// materialization. The manager also owns the batch's
/// PropertyColumnCache, so attached queries share column reads as well
/// as the scan pass.
///
/// Lifetime: created per ExecuteConcurrent call (or per
/// RunNaiveConcurrent batch / generation drain); queries must not
/// outlive the manager.
///
/// Version-aware: a manager is constructed against one snapshot epoch
/// (the epoch its batch or generation pinned at admission) and
/// materializes every extent, and seeds every cache column, at that
/// epoch — so a generation drains against its pinned epoch no matter
/// how many writer batches commit mid-drain, and a manager built after
/// a commit reads entirely fresh state. The default (kEpochLatest)
/// resolves per store call, which is only safe for the read-only
/// single-batch uses that predate the write path.
class SharedScanManager {
 public:
  /// `segments` (optional) backs extent materialization with the paged
  /// segment store: extents whose snapshot a SegmentVersion covers are
  /// read segment-by-segment through the pager, and the ring carries
  /// per-morsel zone maps so consumers can skip refuted morsels.
  explicit SharedScanManager(ObjectStore* store,
                             size_t morsel_size = kDefaultMorselSize,
                             Epoch snapshot = kEpochLatest,
                             const storage::SegmentStore* segments = nullptr)
      : store_(store),
        morsel_size_(morsel_size == 0 ? 1 : morsel_size),
        snapshot_(snapshot),
        segments_(segments),
        cache_(store) {}
  SharedScanManager(const SharedScanManager&) = delete;
  SharedScanManager& operator=(const SharedScanManager&) = delete;

  /// The materialize-once extent of `class_id` (one store Extent()
  /// call per class per manager). Shared with the naive interpreter's
  /// concurrent runs, which want the extent itself rather than a
  /// morsel ring.
  Result<std::shared_ptr<const std::vector<Oid>>> SharedExtent(
      uint32_t class_id) EXCLUDES(mu_);

  /// Attaches a consumer to the shared scan over `class_id`'s extent.
  Result<SharedScanConsumer> AttachExtent(uint32_t class_id)
      EXCLUDES(mu_);

  /// Attaches a consumer to the shared scan over the set produced by
  /// `materialize` (a closed method-scan parameter); `key` identifies
  /// the source (the expression's string form). `materialize` runs
  /// once per key, on the first attacher.
  Result<SharedScanConsumer> AttachSource(
      const std::string& key,
      const std::function<Result<Value>()>& materialize) EXCLUDES(mu_);

  /// The batch's cross-query property-column cache.
  PropertyColumnCache* property_cache() { return &cache_; }

  /// The epoch every source of this manager materializes at.
  Epoch snapshot() const { return snapshot_; }

  /// The segment store backing extent materialization (null: extents
  /// read from the in-memory store).
  const storage::SegmentStore* segments() const { return segments_; }

  /// Distinct sources materialized so far (== scan passes paid).
  size_t materialized_scans() const {
    return materialized_.load(std::memory_order_relaxed);
  }

  /// Consumers attached so far across all slots (== leaf passes the
  /// manager served; materialized_scans() of them were paid for).
  size_t consumers_attached() const {
    return consumers_.load(std::memory_order_relaxed);
  }

  /// Canonical slot keys, shared with the service's admission policy:
  /// a plan's scan-leaf keys are computed with these so "does the
  /// in-flight generation already cover this query's sources?" is a
  /// string-set intersection against SourceKeys().
  static std::string ExtentKey(uint32_t class_id) {
    return "extent:" + std::to_string(class_id);
  }
  static std::string ExprKey(const std::string& expr) {
    return "expr:" + expr;
  }

  /// True when a slot for `key` exists (some query already asked for
  /// the source — it is materialized or being materialized right now).
  bool HasSource(const std::string& key) const EXCLUDES(mu_);

  /// Snapshot of the slot keys known to this manager.
  std::vector<std::string> SourceKeys() const EXCLUDES(mu_);

 private:
  struct Slot {
    std::once_flag once;
    Status status = Status::OK();
    SharedScan scan;
  };

  std::shared_ptr<Slot> SlotFor(const std::string& key) EXCLUDES(mu_);
  Result<Slot*> EnsureExtentSlot(uint32_t class_id) EXCLUDES(mu_);

  ObjectStore* store_;
  size_t morsel_size_;
  Epoch snapshot_;
  const storage::SegmentStore* segments_;
  PropertyColumnCache cache_;
  /// Guards the slot map only; a Slot's contents are published by its
  /// own once_flag (call_once is the synchronization), not by mu_.
  /// Mutable: the const observers HasSource/SourceKeys lock it too.
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_ GUARDED_BY(mu_);
  std::atomic<size_t> materialized_{0};
  std::atomic<size_t> consumers_{0};
};

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_SHARED_SCAN_H_
