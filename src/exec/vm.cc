#include "exec/vm.h"

#include <utility>

#include "exec/cancellation.h"

namespace vodak {
namespace exec {

namespace {

/// Comparison verdict from a three-way compare result — the tail half
/// of ExprEvaluator::CompareHolds, split out so the typed kTest loop
/// can feed it an int compare without paying Value::Compare.
bool CmpHolds(BinOp op, int c) {
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    default:
      return c >= 0;  // kGe
  }
}

}  // namespace

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kColumn:
      return "OP_Column";
    case OpCode::kEval:
      return "OP_Eval";
    case OpCode::kTest:
      return "OP_Test";
    case OpCode::kTestExpr:
      return "OP_TestExpr";
    case OpCode::kLogic:
      return "OP_Logic";
    case OpCode::kFilter:
      return "OP_Filter";
    case OpCode::kProject:
      return "OP_Project";
    case OpCode::kResultRow:
      return "OP_ResultRow";
    case OpCode::kHalt:
      return "OP_Halt";
  }
  return "OP_?";
}

std::string VmInstr::ToString(
    const std::vector<std::string>* reg_names) const {
  auto reg = [reg_names](int idx) {
    std::string s = "r" + std::to_string(idx);
    if (reg_names != nullptr && idx >= 0 &&
        static_cast<size_t>(idx) < reg_names->size()) {
      s += "(" + (*reg_names)[idx] + ")";
    }
    return s;
  };
  std::string out = OpCodeName(op);
  switch (op) {
    case OpCode::kColumn:
      out += " " + reg(dst);
      break;
    case OpCode::kEval:
      out += " " + reg(dst) + " := " + expr->ToString();
      break;
    case OpCode::kTest:
      out += " f" + std::to_string(dst) + " := ";
      if (const_lhs) {
        out += imm.ToString() + " " + std::string(BinOpName(cmp)) + " " +
               reg(src_a);
      } else {
        out += reg(src_a) + " " + std::string(BinOpName(cmp)) + " " +
               imm.ToString();
      }
      break;
    case OpCode::kTestExpr:
      out += " f" + std::to_string(dst) + " := " + expr->ToString();
      break;
    case OpCode::kLogic:
      if (negate) {
        out += " f" + std::to_string(dst) + " := NOT f" +
               std::to_string(src_a);
      } else {
        out += " f" + std::to_string(dst) + " := f" +
               std::to_string(src_a) + " " + std::string(BinOpName(cmp)) +
               " f" + std::to_string(src_b);
      }
      break;
    case OpCode::kFilter:
      out += " f" + std::to_string(src_a);
      break;
    case OpCode::kProject:
    case OpCode::kResultRow:
    case OpCode::kHalt:
      break;
  }
  return out;
}

std::string VmProgram::ToString() const {
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    out += std::to_string(i) + ": " + code[i].ToString(&reg_names) + "\n";
  }
  return out;
}

VmExec::VmExec(const ExecContext& ctx, VmProgram program,
               BatchSourcePtr source)
    : PhysOperator(program.out_refs),
      evaluator_(ctx.catalog, ctx.store, ctx.methods, ctx.property_cache,
                 ctx.snapshot_epoch),
      program_(std::move(program)),
      source_(std::move(source)),
      cancel_(ctx.cancel),
      deadline_(ctx.deadline) {
  arena_.Configure(program_.flag_slots, program_.scratch_slots);
}

Status VmExec::Open() {
  seen_.clear();
  arena_.ResetForQuery();
  row_buf_.Reset(0);
  row_pos_ = 0;
  return source_->Open();
}

void VmExec::Close() {
  source_->Close();
  seen_.clear();
  row_buf_.Reset(0);
}

BatchEnv VmExec::RegEnv() const {
  BatchEnv env{&program_.reg_names, &regs_.columns(), regs_.num_rows()};
  regs_.ExportSelectionTo(&env);
  return env;
}

size_t VmExec::Emit(RowBatch* out) {
  const size_t out_cols = program_.out_regs.size();
  if (!program_.project_dedup) {
    // Map-style hand-off: registers move into the output columns and
    // the register file's selection transplants (the registers are
    // rebuilt from the next scan batch anyway).
    out->Reset(out_cols);
    for (size_t c = 0; c < out_cols; ++c) {
      out->column(c) = std::move(regs_.column(program_.out_regs[c]));
    }
    out->set_num_rows(regs_.num_rows());
    if (regs_.has_selection()) {
      out->SetSelection(regs_.TakeSelection());
    }
    return out->active_rows();
  }
  // ProjectDedup parity: gather the projected registers of every live
  // row, keep first occurrences across the whole drain, emit dense.
  out->Reset(out_cols);
  size_t out_rows = 0;
  for (size_t i = 0; i < regs_.active_rows(); ++i) {
    const size_t r = regs_.RowAt(i);
    projected_.resize(out_cols);
    for (size_t c = 0; c < out_cols; ++c) {
      projected_[c] = regs_.column(program_.out_regs[c])[r];
    }
    if (seen_.insert(projected_).second) {
      out->AppendRow(projected_);
      ++out_rows;
    }
  }
  return out_rows;
}

Result<bool> VmExec::NextBatch(RowBatch* batch) {
  for (;;) {
    // One cancellation check per scan batch, like every scan leaf.
    VODAK_RETURN_IF_ERROR(CheckQueryAlive(cancel_, deadline_));
    VODAK_ASSIGN_OR_RETURN(bool more, source_->NextBatch(&scan_batch_));
    if (!more) return false;
    // One fused dispatch covers the whole compiled chain for this
    // batch — the observable ci.sh --vm gates against the tree's
    // per-operator hand-off count.
    VmStats::vm_dispatches.fetch_add(1, std::memory_order_relaxed);
    const size_t n = scan_batch_.num_rows();
    regs_.Reset(program_.reg_names.size());
    regs_.set_num_rows(n);

    bool survived = true;
    size_t emitted = 0;
    for (const VmInstr& in : program_.code) {
      switch (in.op) {
        case OpCode::kColumn:
          regs_.column(in.dst) = std::move(scan_batch_.column(0));
          break;
        case OpCode::kEval: {
          BatchEnv env = RegEnv();
          VODAK_ASSIGN_OR_RETURN(ValueColumn computed,
                                 evaluator_.EvalBatch(in.expr, env));
          if (regs_.has_selection()) {
            // Map scatter semantics: one computed value per live row,
            // written back to its physical position; unselected slots
            // stay NIL and are never read.
            ValueColumn& scattered =
                arena_.PrepareScratch(in.scratch, n);
            for (size_t i = 0; i < regs_.active_rows(); ++i) {
              scattered[regs_.RowAt(i)] = std::move(computed[i]);
            }
            regs_.column(in.dst).swap(scattered);
          } else {
            regs_.column(in.dst) = std::move(computed);
          }
          break;
        }
        case OpCode::kTest: {
          const ValueColumn& col = regs_.column(in.src_a);
          const size_t active = regs_.active_rows();
          std::vector<char>& flags = arena_.PrepareFlags(in.dst, active);
          if (in.imm.is_int()) {
            // Typed loop for the dominant shape (INT immediate): an
            // INT row value skips Value::Compare's variant dispatch;
            // anything else (NIL, REAL, ...) takes the generic compare
            // per row, so the result is bit-identical to the slow loop.
            const int64_t imm = in.imm.AsInt();
            for (size_t i = 0; i < active; ++i) {
              const Value& v = col[regs_.RowAt(i)];
              if (v.is_int()) {
                const int64_t x = v.AsInt();
                int c = x < imm ? -1 : (x > imm ? 1 : 0);
                if (in.const_lhs) c = -c;
                flags[i] = CmpHolds(in.cmp, c);
              } else {
                flags[i] =
                    in.const_lhs
                        ? ExprEvaluator::CompareHolds(in.cmp, in.imm, v)
                        : ExprEvaluator::CompareHolds(in.cmp, v, in.imm);
              }
            }
            break;
          }
          for (size_t i = 0; i < active; ++i) {
            const Value& v = col[regs_.RowAt(i)];
            flags[i] =
                in.const_lhs
                    ? ExprEvaluator::CompareHolds(in.cmp, in.imm, v)
                    : ExprEvaluator::CompareHolds(in.cmp, v, in.imm);
          }
          break;
        }
        case OpCode::kTestExpr: {
          BatchEnv env = RegEnv();
          std::vector<char>& flags =
              arena_.PrepareFlags(in.dst, regs_.active_rows());
          VODAK_RETURN_IF_ERROR(
              evaluator_.EvalPredicateBatch(in.expr, env, &flags));
          break;
        }
        case OpCode::kLogic: {
          const std::vector<char>& a = arena_.Flags(in.src_a);
          std::vector<char>& out = arena_.PrepareFlags(in.dst, a.size());
          if (in.negate) {
            for (size_t i = 0; i < a.size(); ++i) out[i] = !a[i];
          } else if (in.cmp == BinOp::kAnd) {
            const std::vector<char>& b = arena_.Flags(in.src_b);
            for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
          } else {
            const std::vector<char>& b = arena_.Flags(in.src_b);
            for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] || b[i];
          }
          break;
        }
        case OpCode::kFilter:
          if (regs_.IntersectSelection(arena_.Flags(in.src_a)) == 0) {
            survived = false;
          }
          break;
        case OpCode::kProject:
          break;
        case OpCode::kResultRow:
          emitted = Emit(batch);
          break;
        case OpCode::kHalt:
          break;
      }
      if (!survived) break;
    }
    // The never-empty invariant: a batch whose rows were all filtered
    // out (or all deduped away) is abandoned, not returned.
    if (!survived || emitted == 0) continue;
    rows_produced_ += emitted;
    return true;
  }
}

Result<bool> VmExec::Next(Row* row) {
  // Row-mode shim (the engine only drives the VM batch-wise; this
  // keeps the PhysOperator contract whole): drain own batches through
  // a private compacted buffer.
  while (row_pos_ >= row_buf_.num_rows()) {
    VODAK_ASSIGN_OR_RETURN(bool more, NextBatch(&row_buf_));
    if (!more) return false;
    row_buf_.Compact();
    row_pos_ = 0;
  }
  row_buf_.CopyRowTo(row_pos_++, row);
  return true;
}

}  // namespace exec
}  // namespace vodak
