// Compiled query execution: a register bytecode VM over RowBatch
// columns. TryCompileVm lowers an eligible filter→map→project logical
// chain into one VmProgram — a flat instruction list over a register
// file of value columns — and VmExec runs the whole program once per
// scan batch: one fused dispatch where the operator tree pays one
// virtual NextBatch hand-off per operator per batch. Ineligible plans
// (joins, flatten, set ops, method scans without batch bodies) stay on
// the operator tree. Opcode semantics, the eligibility rule, arena
// lifetime and the epoch contract are documented in
// docs/ARCHITECTURE.md §"Compiled execution — the batch VM".
#ifndef VODAK_EXEC_VM_H_
#define VODAK_EXEC_VM_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/vm_stats.h"
#include "exec/physical.h"
#include "exec/row_hash.h"
#include "expr/expr_eval.h"

namespace vodak {
namespace exec {

/// The VM's instruction set (the OP_Column / OP_Test / OP_Logic /
/// OP_Project / OP_ResultRow design of SNIPPETS 2-3, specialized to
/// batches): every instruction operates on whole columns / flag
/// vectors, so one program run processes one scan batch end to end.
enum class OpCode : uint8_t {
  /// Bind the scan source's column into register `dst`.
  kColumn,
  /// reg[dst] := expr evaluated over the live rows of the register
  /// file, scattered back to physical row positions (Map semantics:
  /// unselected slots stay NIL, never read).
  kEval,
  /// flag[dst] := reg[src_a] <cmp> imm per live row (or imm <cmp>
  /// reg[src_a] with const_lhs), via the same total-order
  /// ExprEvaluator::CompareHolds the operator tree's fused filter path
  /// uses — bit-identical selection semantics by construction.
  kTest,
  /// flag[dst] := predicate expression over the live rows, through
  /// ExprEvaluator::EvalPredicateBatch (the generic fallback for any
  /// condition the native kTest/kLogic lowering does not cover).
  kTestExpr,
  /// flag[dst] := flag[src_a] AND/OR flag[src_b], or NOT flag[src_a]
  /// when src_b < 0. Only emitted over error-free total-order compare
  /// operands, where eager evaluation equals the tree's masked
  /// short-circuit.
  kLogic,
  /// Narrow the register file's selection to flag[src_a] survivors
  /// (RowBatch::IntersectSelection: marking, no value moves). Zero
  /// survivors abandon the batch and fetch the next one.
  kFilter,
  /// Declares the output gather (which registers feed which output
  /// column, and whether project-dedup applies). Placement marker:
  /// the mapping lives in VmProgram.
  kProject,
  /// Emit the batch: move register columns (or gather+dedup projected
  /// rows) into the output RowBatch.
  kResultRow,
  /// End of program.
  kHalt,
};

const char* OpCodeName(OpCode op);

/// One VM instruction. Operand meaning per opcode is documented on
/// OpCode; unused fields stay at their defaults.
struct VmInstr {
  OpCode op = OpCode::kHalt;
  int dst = -1;
  int src_a = -1;
  int src_b = -1;
  /// kTest: the comparison; kLogic: kAnd / kOr.
  BinOp cmp = BinOp::kEq;
  /// kLogic with src_b < 0: flag[dst] := NOT flag[src_a].
  bool negate = false;
  /// kTest: the constant sits on the left of the comparison.
  bool const_lhs = false;
  /// kTest: the comparison constant.
  Value imm;
  /// kEval / kTestExpr: the expression to evaluate.
  ExprRef expr;
  /// kEval: arena scratch-column slot for the physical scatter.
  int scratch = -1;

  /// Disassembly; with `reg_names` each register prints as
  /// `r<idx>(<name>)` so EXPLAIN output ties back to plan references.
  std::string ToString(
      const std::vector<std::string>* reg_names = nullptr) const;
};

/// A compiled query: the instruction list plus the register and output
/// layout. reg_names[i] is the reference bound to register i (register
/// 0 is always the scan reference); out_regs[c] is the register whose
/// column becomes output column c (named out_refs[c]).
struct VmProgram {
  std::vector<VmInstr> code;
  std::vector<std::string> reg_names;
  std::vector<int> out_regs;
  std::vector<std::string> out_refs;
  /// Root was a logical project: gather + set-semantics dedup on emit.
  bool project_dedup = false;
  size_t flag_slots = 0;
  size_t scratch_slots = 0;
  /// One-line compilation summary for EXPLAIN.
  std::string summary;

  std::string ToString() const;
};

/// Per-query allocation arena: the VM's working buffers (predicate
/// flag vectors, physical scatter columns) live here and are *reused
/// across batches* — after the first batch warms the capacities, the
/// steady-state batch loop allocates nothing (VmStats counts every
/// capacity growth, and bench_vm / ci.sh --vm gate it at zero).
/// ResetForQuery() between queries keeps the capacities and clears the
/// contents.
class QueryArena {
 public:
  /// The flag vector for slot `slot`, resized to `n` entries (contents
  /// unspecified; every consumer overwrites all n).
  std::vector<char>& PrepareFlags(size_t slot, size_t n) {
    std::vector<char>& buf = flags_[slot];
    NoteGrowth(n > buf.capacity() ? (n - buf.capacity()) : 0);
    buf.resize(n);
    return buf;
  }
  std::vector<char>& Flags(size_t slot) { return flags_[slot]; }

  /// The scratch column for slot `slot`, cleared and resized to `n`
  /// NIL values (the Map scatter target: unselected slots stay NIL).
  ValueColumn& PrepareScratch(size_t slot, size_t n) {
    ValueColumn& buf = scratch_[slot];
    NoteGrowth(n > buf.capacity() ? (n - buf.capacity()) * sizeof(Value)
                                  : 0);
    buf.clear();
    buf.resize(n);
    return buf;
  }

  void Configure(size_t flag_slots, size_t scratch_slots) {
    flags_.resize(flag_slots);
    scratch_.resize(scratch_slots);
  }

  /// Per-query reset: contents dropped, capacities retained.
  void ResetForQuery() {
    for (auto& f : flags_) f.clear();
    for (auto& s : scratch_) s.clear();
    VmStats::arena_resets.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bytes currently retained across all buffers.
  size_t RetainedBytes() const {
    size_t bytes = 0;
    for (const auto& f : flags_) bytes += f.capacity();
    for (const auto& s : scratch_) bytes += s.capacity() * sizeof(Value);
    return bytes;
  }

 private:
  void NoteGrowth(size_t bytes) {
    if (bytes == 0) return;
    VmStats::arena_allocations.fetch_add(1, std::memory_order_relaxed);
    VmStats::arena_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::vector<std::vector<char>> flags_;
  std::vector<ValueColumn> scratch_;
};

/// The VM execution operator: a PhysOperator so the engine drives it
/// through the same ExecuteColumn drain as any tree — but internally it
/// runs the whole compiled chain per scan batch in one dispatch.
/// Density contract (operator-contract table, docs/ARCHITECTURE.md
/// §"Selection vectors"): consumes dense scan batches, emits selected
/// batches (filters mark survivors in the register file's selection)
/// or dense ones (project-dedup gathers). Reads resolve at the
/// ExecContext's pinned snapshot epoch exactly like every tree
/// operator: the scan source and the embedded evaluator are both
/// constructed against ExecContext::snapshot_epoch.  [vm-entry]
class VmExec final : public PhysOperator {
 public:
  VmExec(const ExecContext& ctx, VmProgram program,
         BatchSourcePtr source);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  Result<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  std::string name() const override { return "VmExec"; }
  std::string params() const override {
    // Same uniform source annotation the tree's ScanOp prints: the VM
    // wraps a BatchSource leaf, and EXPLAIN must say which kind.
    return program_.summary + " " + source_->annotation();
  }
  const std::vector<const PhysOperator*> children() const override {
    return {};
  }

  const VmProgram& program() const { return program_; }
  const QueryArena& arena() const { return arena_; }

 private:
  /// Registers viewed as a batch environment over the live rows.
  BatchEnv RegEnv() const;
  /// kResultRow: move/gather the register file into `out`. Returns the
  /// emitted live-row count (0 with project-dedup when every projected
  /// row was already seen).
  size_t Emit(RowBatch* out);

  ExprEvaluator evaluator_;
  VmProgram program_;
  BatchSourcePtr source_;
  const CancellationToken* cancel_;
  Deadline deadline_;
  QueryArena arena_;
  /// The register file: column i is register i, physical row positions
  /// shared with the scan batch; filters narrow its selection.
  RowBatch regs_;
  RowBatch scan_batch_;
  /// Project-dedup state (ProjectDedup parity: one running set per
  /// Open..Close drain).
  std::unordered_set<Row, RowHash, RowEq> seen_;
  Row projected_;
  /// Row-mode shim: drains own NextBatch through a private buffer.
  RowBatch row_buf_;
  size_t row_pos_ = 0;
};

/// The compiler's verdict on one plan. `op` is null when the operator
/// tree should run (ineligible shape, or the cost model kept the
/// tree); `annotation` is the EXPLAIN line reporting the choice either
/// way (newline-terminated).
struct VmChoice {
  PhysOpPtr op;
  std::string annotation;
  bool compiled = false;
};

/// Attempts to lower `plan` (a Get/ExprSource leaf under any number of
/// Select/Map operators and an optional Project root) into a VM
/// program. The batch-aware cost model decides VM vs operator tree —
/// the VM wins exactly when fusion removes hand-offs (≥ 2 chained
/// operators); `force` skips the cost gate (RunOptions vm=kForce) but
/// never the eligibility rule. Shared-scan batches always keep the
/// operator tree (their leaves attach to the fan-out ring).
Result<VmChoice> TryCompileVm(const algebra::LogicalRef& plan,
                              const ExecContext& ctx, bool force);

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_VM_H_
