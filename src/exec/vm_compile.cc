// The VM compiler: lowers an eligible logical chain (Get/ExprSource
// leaf → Select/Map* → optional Project root) into a VmProgram, and
// lets the batch-aware cost model pick VM vs operator-tree execution.
// Parity is by construction: generic expressions run through the very
// same ExprEvaluator entry points the tree operators call, and the
// native kTest/kLogic lowering is restricted to total-order compares
// (ExprEvaluator::IsLowerableCompare) whose eager evaluation is
// observationally identical to the tree's masked short-circuit.
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/sargable.h"
#include "exec/vm.h"
#include "optimizer/cost_model.h"

namespace vodak {
namespace exec {

namespace {

using algebra::LogicalNode;
using algebra::LogicalOp;
using algebra::LogicalRef;

/// Cost figure for EXPLAIN annotations: "%g", not std::to_string's
/// fixed six decimals ("2352" rather than "2352.000000").
std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", cost);
  return buf;
}

/// The analyzed chain, leaf upward.
struct ChainInfo {
  const LogicalNode* leaf = nullptr;
  /// Select/Map nodes in leaf-to-root order.
  std::vector<const LogicalNode*> ops;
  const LogicalNode* project = nullptr;
};

/// Walks the plan from the root; returns an ineligibility reason, or
/// nullopt with `info` filled.
std::optional<std::string> AnalyzeChain(const LogicalRef& plan,
                                        const ExecContext& ctx,
                                        ChainInfo* info) {
  const LogicalNode* node = plan.get();
  if (node->op() == LogicalOp::kProject) {
    info->project = node;
    node = node->input(0).get();
  }
  std::vector<const LogicalNode*> root_to_leaf;
  for (;;) {
    switch (node->op()) {
      case LogicalOp::kSelect:
      case LogicalOp::kMap:
        root_to_leaf.push_back(node);
        node = node->input(0).get();
        continue;
      case LogicalOp::kGet: {
        if (ctx.catalog->FindClass(node->class_name()) == nullptr) {
          return "unknown class '" + node->class_name() + "'";
        }
        info->leaf = node;
        break;
      }
      case LogicalOp::kExprSource: {
        // Method scans are eligible only with a set-at-a-time batch
        // body; scalar-only method scans keep the operator tree
        // (ISSUE rule: "method scans without batch bodies" fall back).
        const ExprRef& e = node->expr();
        if (e->kind() == ExprKind::kClassMethodCall) {
          const MethodRegistry::RegisteredMethod* m =
              ctx.methods->Find(e->name(), e->method(),
                                MethodLevel::kClassObject);
          if (m == nullptr || !m->impl.native_batch) {
            return "method scan " + e->name() + "->" + e->method() +
                   "() has no batch body";
          }
        } else if (e->kind() != ExprKind::kConst &&
                   e->kind() != ExprKind::kSetCtor) {
          return "unsupported scan expression " + e->ToString();
        }
        info->leaf = node;
        break;
      }
      case LogicalOp::kJoin:
      case LogicalOp::kNaturalJoin:
        return "joins are not fusible";
      case LogicalOp::kUnion:
      case LogicalOp::kDiff:
        return "set operators are not fusible";
      case LogicalOp::kFlat:
        return "flatten is not fusible";
      case LogicalOp::kProject:
        return "project below the chain root";
      case LogicalOp::kGroupRef:
        return "group placeholder in executable plan";
    }
    break;
  }
  info->ops.assign(root_to_leaf.rbegin(), root_to_leaf.rend());
  return std::nullopt;
}

/// Compiler scratch state while lowering one chain.
struct Lowering {
  VmProgram program;
  int FindReg(const std::string& name) const {
    for (size_t i = 0; i < program.reg_names.size(); ++i) {
      if (program.reg_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  int NewFlag() { return static_cast<int>(program.flag_slots++); }
  int NewScratch() { return static_cast<int>(program.scratch_slots++); }
  /// Temporary registers for natively lowered property operands. The
  /// register is *named by its expression* ('$' keeps the name out of
  /// the VQL identifier space), so FindReg doubles as common-
  /// subexpression elimination: a predicate stack testing the same
  /// property repeatedly — the shape derived-predicate rewrites emit —
  /// materializes the column once and every later compare reuses the
  /// register, where the operator tree re-reads the store per filter.
  int NewTempReg(const std::string& key) {
    program.reg_names.push_back(key);
    return static_cast<int>(program.reg_names.size()) - 1;
  }
};

/// Tries to lower a predicate natively into kTest/kLogic flags.
/// Returns the flag slot, or -1 when the shape is outside the native
/// subset — the caller then emits one kTestExpr for the whole
/// condition (exact EvalPredicateBatch semantics).
///
/// Native subset: AND/OR/NOT trees whose leaves are total-order
/// compares of (a) a register variable or (b) a property hop off the
/// scan register against a constant. Both operand kinds are pure and
/// never error (property reads on live extent OIDs at the pinned epoch
/// yield a value or NIL; Value::Compare is total), so eager evaluation
/// of both logic operands is observationally identical to the tree's
/// masked short-circuit — the condition the lowering must preserve.
int TryLowerNative(const ExprRef& e, Lowering* lower, bool leaf_is_get) {
  if (e->kind() == ExprKind::kUnary && e->un_op() == UnOp::kNot) {
    const int operand = TryLowerNative(e->operand(), lower, leaf_is_get);
    if (operand < 0) return -1;
    VmInstr in;
    in.op = OpCode::kLogic;
    in.dst = lower->NewFlag();
    in.src_a = operand;
    in.negate = true;
    lower->program.code.push_back(std::move(in));
    return lower->program.code.back().dst;
  }
  if (e->kind() != ExprKind::kBinary) return -1;
  if (e->bin_op() == BinOp::kAnd || e->bin_op() == BinOp::kOr) {
    const int lhs = TryLowerNative(e->lhs(), lower, leaf_is_get);
    if (lhs < 0) return -1;
    const int rhs = TryLowerNative(e->rhs(), lower, leaf_is_get);
    if (rhs < 0) return -1;
    VmInstr in;
    in.op = OpCode::kLogic;
    in.dst = lower->NewFlag();
    in.src_a = lhs;
    in.src_b = rhs;
    in.cmp = e->bin_op();
    lower->program.code.push_back(std::move(in));
    return lower->program.code.back().dst;
  }
  // Leaf shape: the shared sargable classifier (exec/sargable.h) —
  // the same recognizer zone-map pruning uses, so what lowers to a
  // typed compare loop is exactly what segment scans can refute.
  const std::optional<SargableCompare> cmp = ClassifySargableCompare(e);
  if (!cmp) return -1;
  const ExprRef& operand = cmp->operand;
  const ExprRef& constant = cmp->constant;
  const bool const_lhs = cmp->const_lhs;

  int reg = -1;
  if (operand->kind() == ExprKind::kVar) {
    reg = lower->FindReg(operand->var_name());
  } else if (leaf_is_get && operand->kind() == ExprKind::kProperty &&
             operand->base()->kind() == ExprKind::kVar &&
             lower->FindReg(operand->base()->var_name()) == 0) {
    // One property hop off the scan OID: materialize it into a temp
    // register once, then test natively. Reuse is sound because later
    // predicates only ever *narrow* the selection: every row a later
    // kTest reads was live (and therefore written) at kEval time.
    const std::string key = "$" + operand->ToString();
    reg = lower->FindReg(key);
    if (reg < 0) {
      reg = lower->NewTempReg(key);
      VmInstr eval;
      eval.op = OpCode::kEval;
      eval.dst = reg;
      eval.expr = operand;
      eval.scratch = lower->NewScratch();
      lower->program.code.push_back(std::move(eval));
    }
  }
  if (reg < 0) return -1;

  VmInstr in;
  in.op = OpCode::kTest;
  in.dst = lower->NewFlag();
  in.src_a = reg;
  in.cmp = e->bin_op();
  in.const_lhs = const_lhs;
  in.imm = constant->value();
  lower->program.code.push_back(std::move(in));
  return lower->program.code.back().dst;
}

/// Registers must cover the temp registers TryLowerNative adds, so a
/// failed native attempt must not leave half-emitted instructions:
/// lower into a scratch copy and commit only on success.
int LowerPredicate(const ExprRef& cond, Lowering* lower,
                   bool leaf_is_get) {
  Lowering attempt;
  attempt.program.reg_names = lower->program.reg_names;
  attempt.program.flag_slots = lower->program.flag_slots;
  attempt.program.scratch_slots = lower->program.scratch_slots;
  const int flag = TryLowerNative(cond, &attempt, leaf_is_get);
  if (flag >= 0) {
    for (auto& in : attempt.program.code) {
      lower->program.code.push_back(std::move(in));
    }
    lower->program.reg_names = std::move(attempt.program.reg_names);
    lower->program.flag_slots = attempt.program.flag_slots;
    lower->program.scratch_slots = attempt.program.scratch_slots;
    return flag;
  }
  VmInstr in;
  in.op = OpCode::kTestExpr;
  in.dst = lower->NewFlag();
  in.expr = cond;
  lower->program.code.push_back(std::move(in));
  return lower->program.code.back().dst;
}

std::vector<std::string> SchemaRefs(const LogicalNode* node) {
  std::vector<std::string> refs;
  refs.reserve(node->schema().size());
  for (const auto& [name, type] : node->schema()) refs.push_back(name);
  return refs;  // map order = sorted, matching RefsOf in physical.cc
}

}  // namespace

Result<VmChoice> TryCompileVm(const algebra::LogicalRef& plan,
                              const ExecContext& ctx, bool force) {
  VmChoice choice;
  auto fallback = [&choice](const std::string& reason) {
    VmStats::vm_fallbacks.fetch_add(1, std::memory_order_relaxed);
    choice.annotation = "[vm: fallback - " + reason + "]\n";
    return std::move(choice);
  };

  if (ctx.shared_scans != nullptr) {
    return fallback("shared-scan batch keeps the operator tree");
  }
  ChainInfo chain;
  if (auto reason = AnalyzeChain(plan, ctx, &chain)) {
    return fallback(*reason);
  }

  // The batch-aware cost decision: per batch, the tree pays one
  // virtual NextBatch hand-off per chained operator
  // (kBatchOverheadCost each) where the VM pays exactly one fused
  // dispatch. Fusion therefore wins whenever the chain has at least
  // two operators; a bare scan is a wash and keeps the tree.
  const size_t chain_ops =
      1 + chain.ops.size() + (chain.project != nullptr ? 1 : 0);
  double leaf_rows = opt::CostModel::kAssumedBatchRows;
  if (chain.leaf->op() == LogicalOp::kGet) {
    opt::CostModel cost(ctx.catalog, ctx.store, ctx.methods);
    // Segment pruning feedback: a zone-map-skipping leaf emits only
    // the surviving fraction, so the fusion gate prices fewer batches.
    cost.SetSegmentStore(ctx.segments);
    leaf_rows = cost.ExtentCardinality(chain.leaf->class_name()) *
                cost.SegmentSurvivalRate();
  }
  const double batches = opt::CostModel::BatchCount(leaf_rows);
  const double tree_cost =
      opt::CostModel::kBatchOverheadCost * batches * chain_ops;
  const double vm_cost = opt::CostModel::kBatchOverheadCost * batches;
  if (!force && !(vm_cost < tree_cost)) {
    return fallback("single-operator plan, no fusion win (tree " +
                    FormatCost(tree_cost) + " <= vm " +
                    FormatCost(vm_cost) + ")");
  }

  Lowering lower;
  lower.program.reg_names.push_back(chain.leaf->ref());
  {
    VmInstr in;
    in.op = OpCode::kColumn;
    in.dst = 0;
    lower.program.code.push_back(std::move(in));
  }
  const bool leaf_is_get = chain.leaf->op() == LogicalOp::kGet;
  for (const LogicalNode* node : chain.ops) {
    if (node->op() == LogicalOp::kSelect) {
      const int flag = LowerPredicate(node->expr(), &lower, leaf_is_get);
      VmInstr in;
      in.op = OpCode::kFilter;
      in.src_a = flag;
      lower.program.code.push_back(std::move(in));
    } else {  // kMap
      lower.program.reg_names.push_back(node->ref());
      VmInstr in;
      in.op = OpCode::kEval;
      in.dst = static_cast<int>(lower.program.reg_names.size()) - 1;
      in.expr = node->expr();
      in.scratch = lower.NewScratch();
      lower.program.code.push_back(std::move(in));
    }
  }

  if (chain.project != nullptr) {
    lower.program.project_dedup = true;
    lower.program.out_refs = chain.project->projection();
    VmInstr in;
    in.op = OpCode::kProject;
    lower.program.code.push_back(std::move(in));
  } else {
    const LogicalNode* root =
        chain.ops.empty() ? chain.leaf : chain.ops.back();
    lower.program.out_refs = SchemaRefs(root);
  }
  for (const std::string& ref : lower.program.out_refs) {
    const int reg = lower.FindReg(ref);
    if (reg < 0) {
      return fallback("output reference '" + ref +
                      "' not produced by the chain");
    }
    lower.program.out_regs.push_back(reg);
  }
  {
    VmInstr in;
    in.op = OpCode::kResultRow;
    lower.program.code.push_back(std::move(in));
    VmInstr halt;
    halt.op = OpCode::kHalt;
    lower.program.code.push_back(std::move(halt));
  }
  lower.program.summary =
      "fused " + std::to_string(chain_ops) + "-operator chain: " +
      std::to_string(lower.program.code.size()) + " ops over " +
      std::to_string(lower.program.reg_names.size()) + " registers";

  // The chain's sargable conjuncts, through the same classifier that
  // just lowered the typed compare loops: a segment-backed leaf skips
  // the segments those compares refute, so the VM never even decodes
  // rows its own filter instructions would drop.
  std::vector<storage::SlotPredicate> leaf_preds;
  if (chain.leaf->op() == LogicalOp::kGet) {
    const ClassDef* cls = ctx.catalog->FindClass(chain.leaf->class_name());
    if (cls != nullptr) {
      for (const LogicalNode* node : chain.ops) {
        if (node->op() != LogicalOp::kSelect) continue;
        std::vector<storage::SlotPredicate> got = CollectSargablePredicates(
            node->expr(), chain.leaf->ref(), *cls);
        leaf_preds.insert(leaf_preds.end(), got.begin(), got.end());
      }
    }
  }
  VODAK_ASSIGN_OR_RETURN(BatchSourcePtr source,
                         MakeLeafBatchSource(*chain.leaf, ctx, &leaf_preds));
  choice.annotation = "[vm: compiled - " + lower.program.summary +
                      "; tree cost " + FormatCost(tree_cost) +
                      " > vm " + FormatCost(vm_cost) + "]\n";
  choice.compiled = true;
  choice.op = PhysOpPtr(
      new VmExec(ctx, std::move(lower.program), std::move(source)));
  VmStats::vm_compiled.fetch_add(1, std::memory_order_relaxed);
  return choice;
}

}  // namespace exec
}  // namespace vodak
