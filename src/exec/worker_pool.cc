#include "exec/worker_pool.h"

namespace vodak {
namespace exec {

WorkerPool::WorkerPool(size_t parallelism) {
  parallelism = ResolveThreads(parallelism);
  const size_t background = parallelism > 1 ? parallelism - 1 : 0;
  threads_.reserve(background);
  for (size_t i = 0; i < background; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::RunClaimedTasks() {
  for (;;) {
    UniqueLock lock(mu_);
    if (job_ == nullptr || next_task_ >= total_tasks_) return;
    const size_t index = next_task_++;
    const std::function<void(size_t)>* task = job_;
    // The claim is bookkeeping; the task itself runs unlocked so lanes
    // overlap their work (and tasks may block without starving peers).
    lock.unlock();
    (*task)(index);
    lock.lock();
    if (++done_tasks_ == total_tasks_) done_cv_.notify_all();
  }
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    {
      UniqueLock lock(mu_);
      while (!HasClaimableTaskOrStop()) work_cv_.wait(lock);
      if (stop_) return;
    }
    RunClaimedTasks();
  }
}

void WorkerPool::ParallelRun(size_t n,
                             const std::function<void(size_t)>& task) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }
  MutexLock run_lock(run_mu_);
  {
    MutexLock lock(mu_);
    job_ = &task;
    next_task_ = 0;
    total_tasks_ = n;
    done_tasks_ = 0;
  }
  work_cv_.notify_all();
  RunClaimedTasks();
  UniqueLock lock(mu_);
  while (done_tasks_ != total_tasks_) done_cv_.wait(lock);
  job_ = nullptr;
}

}  // namespace exec
}  // namespace vodak
