// Fixed worker pool behind the morsel-driven drivers
// (docs/ARCHITECTURE.md §"Morsel-driven parallelism"). Locking
// discipline is a compile-time contract: every shared field is
// GUARDED_BY its mutex and the clang CI legs build with
// -Werror=thread-safety (docs/ARCHITECTURE.md §"Static analysis &
// concurrency contracts").
#ifndef VODAK_EXEC_WORKER_POOL_H_
#define VODAK_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace vodak {
namespace exec {

/// 0 → hardware concurrency (itself guarded: a libc that reports 0
/// resolves to 1), otherwise `threads` itself. This is the single
/// resolution point for every thread-count knob — the engine's
/// RunOptions/SubmitOptions, the interpreter's Options, the parallel
/// drivers, the query service's lanes and
/// the WorkerPool constructor all route through it, so no call site
/// carries its own hardware_concurrency guard.
inline size_t ResolveThreads(size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A small fixed pool of worker threads for morsel-driven execution.
///
/// The pool provides one primitive, ParallelRun(n, task): run task(i)
/// for every i in [0, n), with the calling thread participating
/// alongside the pooled threads, and return once all n tasks finished.
/// Tasks are claimed from a shared counter, so n may exceed the pool
/// size (excess tasks run as threads free up) and a pool of parallelism
/// 1 degenerates to a plain serial loop on the caller.
///
/// The pool is reusable across queries; threads park on a condition
/// variable between runs. ParallelRun is serialized internally, so
/// concurrent callers are safe but do not overlap their work.
class WorkerPool {
 public:
  /// Creates a pool with `parallelism` total lanes: the caller of
  /// ParallelRun plus (parallelism - 1) background threads. The count
  /// goes through ResolveThreads, so 0 means hardware concurrency here
  /// too rather than a degenerate single-lane pool.
  explicit WorkerPool(size_t parallelism);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Total parallel lanes (background threads + the calling thread).
  size_t parallelism() const { return threads_.size() + 1; }

  /// Runs task(0) .. task(n-1) to completion across the pool and the
  /// calling thread. Tasks must not call ParallelRun on the same pool.
  void ParallelRun(size_t n, const std::function<void(size_t)>& task)
      EXCLUDES(mu_, run_mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// Claims and runs tasks of the current job until none remain.
  void RunClaimedTasks() EXCLUDES(mu_);
  /// The park/wake predicate; reads the job state, so the caller (the
  /// wait loop) must hold mu_.
  bool HasClaimableTaskOrStop() const REQUIRES(mu_) {
    return stop_ || (job_ != nullptr && next_task_ < total_tasks_);
  }

  /// Immutable after the constructor returns (joined in ~WorkerPool).
  std::vector<std::thread> threads_;

  /// Guards the per-job dispatch state below. Acquired by every lane
  /// only for claim/complete bookkeeping — never held across task().
  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  /// Serializes whole ParallelRun calls; guards no fields (the job
  /// state belongs to mu_) but makes overlapping runs impossible.
  Mutex run_mu_ ACQUIRED_BEFORE(mu_);  // lint: no-guarded-fields(serializes ParallelRun; protects a phase, not fields)
  const std::function<void(size_t)>* job_ GUARDED_BY(mu_) = nullptr;
  size_t next_task_ GUARDED_BY(mu_) = 0;
  size_t total_tasks_ GUARDED_BY(mu_) = 0;
  size_t done_tasks_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace exec
}  // namespace vodak

#endif  // VODAK_EXEC_WORKER_POOL_H_
