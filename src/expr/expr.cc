#include "expr/expr.h"

#include <algorithm>

#include "common/string_util.h"

namespace vodak {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kIsIn:
      return "IS-IN";
    case BinOp::kIsSubset:
      return "IS-SUBSET";
    case BinOp::kUnion:
      return "UNION";
    case BinOp::kIntersect:
      return "INTERSECTION";
    case BinOp::kDiff:
      return "DIFFERENCE";
  }
  return "?";
}

bool IsComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kIsIn:
    case BinOp::kIsSubset:
      return true;
    default:
      return false;
  }
}

bool IsSetOp(BinOp op) {
  return op == BinOp::kUnion || op == BinOp::kIntersect ||
         op == BinOp::kDiff;
}

ExprRef Expr::Const(Value v) {
  auto* e = new Expr(ExprKind::kConst);
  e->value_ = std::move(v);
  return ExprRef(e);
}

ExprRef Expr::Var(std::string name) {
  auto* e = new Expr(ExprKind::kVar);
  e->name_ = std::move(name);
  return ExprRef(e);
}

ExprRef Expr::Property(ExprRef base, std::string prop) {
  auto* e = new Expr(ExprKind::kProperty);
  e->base_ = std::move(base);
  e->name_ = std::move(prop);
  return ExprRef(e);
}

ExprRef Expr::Path(std::string var, std::vector<std::string> props) {
  ExprRef e = Var(std::move(var));
  for (std::string& p : props) e = Property(e, std::move(p));
  return e;
}

ExprRef Expr::MethodCall(ExprRef base, std::string method,
                         std::vector<ExprRef> args) {
  auto* e = new Expr(ExprKind::kMethodCall);
  e->base_ = std::move(base);
  e->name_ = std::move(method);
  e->args_ = std::move(args);
  return ExprRef(e);
}

ExprRef Expr::ClassMethodCall(std::string class_name, std::string method,
                              std::vector<ExprRef> args) {
  auto* e = new Expr(ExprKind::kClassMethodCall);
  e->name_ = std::move(class_name);
  e->args_ = std::move(args);
  // Reuse fields_ slot for the method name? Keep it simple: store the
  // method name in a dedicated arg-0-like member: we use rhs_ as holder of
  // a Var carrying the method name to avoid an extra field.
  e->rhs_ = Var(std::move(method));
  return ExprRef(e);
}

ExprRef Expr::Binary(BinOp op, ExprRef lhs, ExprRef rhs) {
  auto* e = new Expr(ExprKind::kBinary);
  e->bin_op_ = op;
  e->base_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return ExprRef(e);
}

ExprRef Expr::Unary(UnOp op, ExprRef operand) {
  auto* e = new Expr(ExprKind::kUnary);
  e->un_op_ = op;
  e->base_ = std::move(operand);
  return ExprRef(e);
}

ExprRef Expr::TupleCtor(
    std::vector<std::pair<std::string, ExprRef>> fields) {
  auto* e = new Expr(ExprKind::kTupleCtor);
  e->fields_ = std::move(fields);
  return ExprRef(e);
}

ExprRef Expr::SetCtor(std::vector<ExprRef> elements) {
  auto* e = new Expr(ExprKind::kSetCtor);
  e->args_ = std::move(elements);
  return ExprRef(e);
}

const Value& Expr::value() const {
  VODAK_DCHECK(kind_ == ExprKind::kConst);
  return value_;
}

const std::string& Expr::var_name() const {
  VODAK_DCHECK(kind_ == ExprKind::kVar);
  return name_;
}

const ExprRef& Expr::base() const { return base_; }

const std::string& Expr::name() const { return name_; }

const std::string& Expr::method() const {
  if (kind_ == ExprKind::kMethodCall) return name_;
  VODAK_DCHECK(kind_ == ExprKind::kClassMethodCall);
  return rhs_->name_;
}

const std::vector<ExprRef>& Expr::args() const { return args_; }

BinOp Expr::bin_op() const {
  VODAK_DCHECK(kind_ == ExprKind::kBinary);
  return bin_op_;
}

UnOp Expr::un_op() const {
  VODAK_DCHECK(kind_ == ExprKind::kUnary);
  return un_op_;
}

const ExprRef& Expr::lhs() const {
  VODAK_DCHECK(kind_ == ExprKind::kBinary);
  return base_;
}

const ExprRef& Expr::rhs() const {
  VODAK_DCHECK(kind_ == ExprKind::kBinary);
  return rhs_;
}

const ExprRef& Expr::operand() const {
  VODAK_DCHECK(kind_ == ExprKind::kUnary);
  return base_;
}

const std::vector<std::pair<std::string, ExprRef>>& Expr::fields() const {
  VODAK_DCHECK(kind_ == ExprKind::kTupleCtor);
  return fields_;
}

bool Expr::Equals(const ExprRef& a, const ExprRef& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case ExprKind::kConst:
      return a->value_ == b->value_;
    case ExprKind::kVar:
      return a->name_ == b->name_;
    case ExprKind::kProperty:
      return a->name_ == b->name_ && Equals(a->base_, b->base_);
    case ExprKind::kMethodCall: {
      if (a->name_ != b->name_ || !Equals(a->base_, b->base_)) return false;
      if (a->args_.size() != b->args_.size()) return false;
      for (size_t i = 0; i < a->args_.size(); ++i) {
        if (!Equals(a->args_[i], b->args_[i])) return false;
      }
      return true;
    }
    case ExprKind::kClassMethodCall: {
      if (a->name_ != b->name_ || a->method() != b->method()) return false;
      if (a->args_.size() != b->args_.size()) return false;
      for (size_t i = 0; i < a->args_.size(); ++i) {
        if (!Equals(a->args_[i], b->args_[i])) return false;
      }
      return true;
    }
    case ExprKind::kBinary:
      return a->bin_op_ == b->bin_op_ && Equals(a->base_, b->base_) &&
             Equals(a->rhs_, b->rhs_);
    case ExprKind::kUnary:
      return a->un_op_ == b->un_op_ && Equals(a->base_, b->base_);
    case ExprKind::kTupleCtor: {
      if (a->fields_.size() != b->fields_.size()) return false;
      for (size_t i = 0; i < a->fields_.size(); ++i) {
        if (a->fields_[i].first != b->fields_[i].first) return false;
        if (!Equals(a->fields_[i].second, b->fields_[i].second))
          return false;
      }
      return true;
    }
    case ExprKind::kSetCtor: {
      if (a->args_.size() != b->args_.size()) return false;
      for (size_t i = 0; i < a->args_.size(); ++i) {
        if (!Equals(a->args_[i], b->args_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

uint64_t Expr::Hash() const {
  uint64_t h = HashCombine(0x51ed270b, static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ExprKind::kConst:
      return HashCombine(h, value_.Hash());
    case ExprKind::kVar:
      return HashCombine(h, HashBytes(name_.data(), name_.size()));
    case ExprKind::kProperty:
      h = HashCombine(h, HashBytes(name_.data(), name_.size()));
      return HashCombine(h, base_->Hash());
    case ExprKind::kMethodCall:
      h = HashCombine(h, HashBytes(name_.data(), name_.size()));
      h = HashCombine(h, base_->Hash());
      for (const auto& arg : args_) h = HashCombine(h, arg->Hash());
      return h;
    case ExprKind::kClassMethodCall:
      h = HashCombine(h, HashBytes(name_.data(), name_.size()));
      h = HashCombine(h, HashBytes(method().data(), method().size()));
      for (const auto& arg : args_) h = HashCombine(h, arg->Hash());
      return h;
    case ExprKind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(bin_op_));
      h = HashCombine(h, base_->Hash());
      return HashCombine(h, rhs_->Hash());
    case ExprKind::kUnary:
      h = HashCombine(h, static_cast<uint64_t>(un_op_));
      return HashCombine(h, base_->Hash());
    case ExprKind::kTupleCtor:
      for (const auto& [n, e] : fields_) {
        h = HashCombine(h, HashBytes(n.data(), n.size()));
        h = HashCombine(h, e->Hash());
      }
      return h;
    case ExprKind::kSetCtor:
      for (const auto& e : args_) h = HashCombine(h, e->Hash());
      return h;
  }
  return h;
}

void Expr::CollectFreeVars(std::vector<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kConst:
      return;
    case ExprKind::kVar:
      if (std::find(out->begin(), out->end(), name_) == out->end()) {
        out->push_back(name_);
      }
      return;
    case ExprKind::kProperty:
    case ExprKind::kUnary:
      base_->CollectFreeVars(out);
      return;
    case ExprKind::kMethodCall:
      base_->CollectFreeVars(out);
      for (const auto& arg : args_) arg->CollectFreeVars(out);
      return;
    case ExprKind::kClassMethodCall:
      for (const auto& arg : args_) arg->CollectFreeVars(out);
      return;
    case ExprKind::kBinary:
      base_->CollectFreeVars(out);
      rhs_->CollectFreeVars(out);
      return;
    case ExprKind::kTupleCtor:
      for (const auto& [n, e] : fields_) e->CollectFreeVars(out);
      return;
    case ExprKind::kSetCtor:
      for (const auto& e : args_) e->CollectFreeVars(out);
      return;
  }
}

std::vector<std::string> Expr::FreeVars() const {
  std::vector<std::string> out;
  CollectFreeVars(&out);
  return out;
}

bool Expr::UsesVar(const std::string& name) const {
  std::vector<std::string> vars = FreeVars();
  return std::find(vars.begin(), vars.end(), name) != vars.end();
}

ExprRef Expr::SubstituteVar(const ExprRef& e, const std::string& from,
                            const ExprRef& to) {
  return SubstituteVars(e, {{from, to}});
}

ExprRef Expr::SubstituteVars(
    const ExprRef& e, const std::map<std::string, ExprRef>& mapping) {
  switch (e->kind_) {
    case ExprKind::kConst:
      return e;
    case ExprKind::kVar: {
      auto it = mapping.find(e->name_);
      return it == mapping.end() ? e : it->second;
    }
    case ExprKind::kProperty:
      return Property(SubstituteVars(e->base_, mapping), e->name_);
    case ExprKind::kMethodCall: {
      std::vector<ExprRef> args;
      args.reserve(e->args_.size());
      for (const auto& arg : e->args_) {
        args.push_back(SubstituteVars(arg, mapping));
      }
      return MethodCall(SubstituteVars(e->base_, mapping), e->name_,
                        std::move(args));
    }
    case ExprKind::kClassMethodCall: {
      std::vector<ExprRef> args;
      args.reserve(e->args_.size());
      for (const auto& arg : e->args_) {
        args.push_back(SubstituteVars(arg, mapping));
      }
      return ClassMethodCall(e->name_, e->method(), std::move(args));
    }
    case ExprKind::kBinary:
      return Binary(e->bin_op_, SubstituteVars(e->base_, mapping),
                    SubstituteVars(e->rhs_, mapping));
    case ExprKind::kUnary:
      return Unary(e->un_op_, SubstituteVars(e->base_, mapping));
    case ExprKind::kTupleCtor: {
      std::vector<std::pair<std::string, ExprRef>> fields;
      fields.reserve(e->fields_.size());
      for (const auto& [n, f] : e->fields_) {
        fields.emplace_back(n, SubstituteVars(f, mapping));
      }
      return TupleCtor(std::move(fields));
    }
    case ExprKind::kSetCtor: {
      std::vector<ExprRef> elems;
      elems.reserve(e->args_.size());
      for (const auto& el : e->args_) {
        elems.push_back(SubstituteVars(el, mapping));
      }
      return SetCtor(std::move(elems));
    }
  }
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_.ToString();
    case ExprKind::kVar:
      return name_;
    case ExprKind::kProperty:
      return base_->ToString() + "." + name_;
    case ExprKind::kMethodCall: {
      std::string out = base_->ToString() + "->" + name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) out += ", ";
        out += args_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kClassMethodCall: {
      std::string out = name_ + "->" + method() + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) out += ", ";
        out += args_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBinary: {
      return "(" + base_->ToString() + " " + BinOpName(bin_op_) + " " +
             rhs_->ToString() + ")";
    }
    case ExprKind::kUnary:
      return un_op_ == UnOp::kNot ? "NOT " + base_->ToString()
                                  : "-" + base_->ToString();
    case ExprKind::kTupleCtor: {
      std::string out = "[";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ", ";
        out += fields_[i].first + ": " + fields_[i].second->ToString();
      }
      return out + "]";
    }
    case ExprKind::kSetCtor: {
      std::string out = "{";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) out += ", ";
        out += args_[i]->ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

bool Expr::IsPath() const {
  const Expr* cur = this;
  while (cur->kind_ == ExprKind::kProperty) cur = cur->base_.get();
  return cur->kind_ == ExprKind::kVar;
}

void Expr::DecomposePath(std::string* var,
                         std::vector<std::string>* props) const {
  VODAK_DCHECK(IsPath());
  std::vector<std::string> reversed;
  const Expr* cur = this;
  while (cur->kind_ == ExprKind::kProperty) {
    reversed.push_back(cur->name_);
    cur = cur->base_.get();
  }
  *var = cur->name_;
  props->assign(reversed.rbegin(), reversed.rend());
}

}  // namespace vodak
