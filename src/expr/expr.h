#ifndef VODAK_EXPR_EXPR_H_
#define VODAK_EXPR_EXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace vodak {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Binary operators of VQL: comparison predicates on built-in datatypes
/// (the θ of the restricted algebra), boolean connectives, arithmetic and
/// the set predicates IS-IN / IS-SUBSET (§2.2, §6.1).
enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIsIn,
  kIsSubset,
  kUnion,      ///< set union (used by rewritten plans)
  kIntersect,  ///< set intersection (PQ in §2.3 uses INTERSECTION)
  kDiff,       ///< set difference
};

enum class UnOp { kNot, kNeg };

/// Expression node kinds. Paths are chains of kProperty; method calls on
/// instances are kMethodCall with a receiver; class-object method calls
/// (e.g. `Document→select_by_index(s)`) are kClassMethodCall.
enum class ExprKind {
  kConst,            ///< literal Value
  kVar,              ///< query variable / algebra reference
  kProperty,         ///< base.prop — also "property applied to a set"
  kMethodCall,       ///< base→m(args)
  kClassMethodCall,  ///< Class→m(args)
  kBinary,
  kUnary,
  kTupleCtor,        ///< [name: expr, ...]
  kSetCtor,          ///< {expr, ...}
};

/// Immutable expression tree with structural equality, hashing,
/// substitution and printing. Shared between the VQL front end (S8), the
/// query algebra operator parameters (S10) and the semantic knowledge
/// specifications (S12), exactly as one IR serves all three levels in the
/// paper.
class Expr {
 public:
  static ExprRef Const(Value v);
  static ExprRef Var(std::string name);
  static ExprRef Property(ExprRef base, std::string prop);
  /// Convenience: Var(base).p1.p2...pn
  static ExprRef Path(std::string var, std::vector<std::string> props);
  static ExprRef MethodCall(ExprRef base, std::string method,
                            std::vector<ExprRef> args);
  static ExprRef ClassMethodCall(std::string class_name, std::string method,
                                 std::vector<ExprRef> args);
  static ExprRef Binary(BinOp op, ExprRef lhs, ExprRef rhs);
  static ExprRef Unary(UnOp op, ExprRef operand);
  static ExprRef TupleCtor(
      std::vector<std::pair<std::string, ExprRef>> fields);
  static ExprRef SetCtor(std::vector<ExprRef> elements);

  ExprKind kind() const { return kind_; }

  // Accessors (DCHECKed by kind).
  const Value& value() const;             ///< kConst
  const std::string& var_name() const;    ///< kVar
  const ExprRef& base() const;            ///< kProperty / kMethodCall
  const std::string& name() const;        ///< property / method / class name
  const std::string& method() const;      ///< kMethodCall / kClassMethodCall
  const std::vector<ExprRef>& args() const;
  BinOp bin_op() const;
  UnOp un_op() const;
  const ExprRef& lhs() const;
  const ExprRef& rhs() const;
  const ExprRef& operand() const;
  const std::vector<std::pair<std::string, ExprRef>>& fields() const;

  /// Structural equality.
  static bool Equals(const ExprRef& a, const ExprRef& b);
  uint64_t Hash() const;

  /// All free variables, in first-occurrence order.
  std::vector<std::string> FreeVars() const;
  bool UsesVar(const std::string& name) const;

  /// Returns a copy with every kVar named `from` replaced by `to`.
  static ExprRef SubstituteVar(const ExprRef& e, const std::string& from,
                               const ExprRef& to);
  /// Simultaneous substitution of several variables.
  static ExprRef SubstituteVars(
      const ExprRef& e, const std::map<std::string, ExprRef>& mapping);

  /// VQL-flavoured rendering: `p→sameDocument(q)`, `d.title == 'X'`.
  std::string ToString() const;

  /// True when this is a pure path expression var.p1...pn.
  bool IsPath() const;
  /// Decomposes a path into (var, props); requires IsPath().
  void DecomposePath(std::string* var,
                     std::vector<std::string>* props) const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  void CollectFreeVars(std::vector<std::string>* out) const;

  ExprKind kind_;
  Value value_;
  std::string name_;   // var / property / method / class name
  ExprRef base_;       // receiver or lhs/operand
  ExprRef rhs_;
  std::vector<ExprRef> args_;
  std::vector<std::pair<std::string, ExprRef>> fields_;
  BinOp bin_op_ = BinOp::kEq;
  UnOp un_op_ = UnOp::kNot;
};

/// Printable operator token, e.g. "==", "IS-IN".
const char* BinOpName(BinOp op);
/// True for ==, !=, <, <=, >, >=, IS-IN, IS-SUBSET: the θ operators the
/// restricted algebra admits in select/join parameters.
bool IsComparisonOp(BinOp op);
bool IsSetOp(BinOp op);

}  // namespace vodak

#endif  // VODAK_EXPR_EXPR_H_
