#include "expr/expr_eval.h"

namespace vodak {

namespace {

bool BothNumeric(const Value& a, const Value& b) {
  return a.is_numeric() && b.is_numeric();
}

Result<Value> Arith(BinOp op, const Value& a, const Value& b) {
  if (!BothNumeric(a, b)) {
    return Status::TypeError(std::string("arithmetic ") + BinOpName(op) +
                             " on non-numeric operands " + a.ToString() +
                             ", " + b.ToString());
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case BinOp::kAdd:
        return Value::Int(x + y);
      case BinOp::kSub:
        return Value::Int(x - y);
      case BinOp::kMul:
        return Value::Int(x * y);
      case BinOp::kDiv:
        if (y == 0) return Status::ExecError("integer division by zero");
        return Value::Int(x / y);
      default:
        break;
    }
  }
  double x = a.AsNumeric(), y = b.AsNumeric();
  switch (op) {
    case BinOp::kAdd:
      return Value::Real(x + y);
    case BinOp::kSub:
      return Value::Real(x - y);
    case BinOp::kMul:
      return Value::Real(x * y);
    case BinOp::kDiv:
      if (y == 0.0) return Status::ExecError("division by zero");
      return Value::Real(x / y);
    default:
      break;
  }
  return Status::Internal("unreachable arithmetic op");
}

}  // namespace

Result<Value> ExprEvaluator::ApplyBinary(BinOp op, const Value& lhs,
                                         const Value& rhs) {
  switch (op) {
    case BinOp::kEq:
      return Value::Bool(Value::Compare(lhs, rhs) == 0);
    case BinOp::kNe:
      return Value::Bool(Value::Compare(lhs, rhs) != 0);
    case BinOp::kLt:
      return Value::Bool(Value::Compare(lhs, rhs) < 0);
    case BinOp::kLe:
      return Value::Bool(Value::Compare(lhs, rhs) <= 0);
    case BinOp::kGt:
      return Value::Bool(Value::Compare(lhs, rhs) > 0);
    case BinOp::kGe:
      return Value::Bool(Value::Compare(lhs, rhs) >= 0);
    case BinOp::kAnd:
    case BinOp::kOr: {
      if (!lhs.is_bool() || !rhs.is_bool()) {
        return Status::TypeError(std::string(BinOpName(op)) +
                                 " on non-boolean operands");
      }
      return Value::Bool(op == BinOp::kAnd
                             ? (lhs.AsBool() && rhs.AsBool())
                             : (lhs.AsBool() || rhs.AsBool()));
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
      return Arith(op, lhs, rhs);
    case BinOp::kIsIn: {
      if (rhs.is_null()) return Value::Bool(false);
      if (!rhs.is_set() && !rhs.is_array()) {
        return Status::TypeError("IS-IN right operand is not a set: " +
                                 rhs.ToString());
      }
      return Value::Bool(rhs.Contains(lhs));
    }
    case BinOp::kIsSubset: {
      if (!lhs.is_set() || !rhs.is_set()) {
        return Status::TypeError("IS-SUBSET operands must be sets");
      }
      return Value::Bool(SetIsSubset(lhs, rhs));
    }
    case BinOp::kUnion:
    case BinOp::kIntersect:
    case BinOp::kDiff: {
      if (!lhs.is_set() || !rhs.is_set()) {
        return Status::TypeError(std::string(BinOpName(op)) +
                                 " operands must be sets: " +
                                 lhs.ToString() + ", " + rhs.ToString());
      }
      if (op == BinOp::kUnion) return SetUnion(lhs, rhs);
      if (op == BinOp::kIntersect) return SetIntersect(lhs, rhs);
      return SetDifference(lhs, rhs);
    }
  }
  return Status::Internal("unreachable binary op");
}

Result<Value> ExprEvaluator::EvalProperty(const Value& base,
                                          const std::string& prop) const {
  if (base.is_null()) return Value::Null();
  if (base.is_oid()) {
    if (base.AsOid().IsNull()) return Value::Null();
    return ReadPropertyByName(*catalog_, *store_, base.AsOid(), prop,
                              snapshot_);
  }
  if (base.is_tuple()) return base.GetField(prop);
  if (base.is_set()) {
    // Set-lifted access (§2.3): union of member results.
    std::vector<Value> collected;
    for (const Value& member : base.AsSet()) {
      VODAK_ASSIGN_OR_RETURN(Value v, EvalProperty(member, prop));
      if (v.is_set()) {
        for (const Value& inner : v.AsSet()) collected.push_back(inner);
      } else if (!v.is_null()) {
        collected.push_back(std::move(v));
      }
    }
    return Value::Set(std::move(collected));
  }
  return Status::TypeError("property '" + prop +
                           "' accessed on non-object value " +
                           base.ToString());
}

Result<Value> ExprEvaluator::EvalMethod(
    const Value& base, const std::string& method,
    const std::vector<Value>& args) const {
  if (base.is_null()) return Value::Null();
  if (base.is_oid()) {
    if (base.AsOid().IsNull()) return Value::Null();
    MethodCallContext ctx{catalog_, store_, methods_, 0, snapshot_};
    return methods_->InvokeInstance(ctx, base.AsOid(), method, args);
  }
  if (base.is_set()) {
    // Set-lifted invocation, mirroring set-lifted property access.
    std::vector<Value> collected;
    for (const Value& member : base.AsSet()) {
      VODAK_ASSIGN_OR_RETURN(Value v, EvalMethod(member, method, args));
      if (v.is_set()) {
        for (const Value& inner : v.AsSet()) collected.push_back(inner);
      } else if (!v.is_null()) {
        collected.push_back(std::move(v));
      }
    }
    return Value::Set(std::move(collected));
  }
  return Status::TypeError("method '" + method +
                           "' invoked on non-object value " +
                           base.ToString());
}

Result<Value> ExprEvaluator::Eval(const ExprRef& e, const Env& env) const {
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->value();
    case ExprKind::kVar: {
      auto it = env.find(e->var_name());
      if (it == env.end()) {
        return Status::BindError("unbound variable '" + e->var_name() +
                                 "'");
      }
      return it->second;
    }
    case ExprKind::kProperty: {
      VODAK_ASSIGN_OR_RETURN(Value base, Eval(e->base(), env));
      return EvalProperty(base, e->name());
    }
    case ExprKind::kMethodCall: {
      VODAK_ASSIGN_OR_RETURN(Value base, Eval(e->base(), env));
      std::vector<Value> args;
      args.reserve(e->args().size());
      for (const auto& arg : e->args()) {
        VODAK_ASSIGN_OR_RETURN(Value v, Eval(arg, env));
        args.push_back(std::move(v));
      }
      return EvalMethod(base, e->method(), args);
    }
    case ExprKind::kClassMethodCall: {
      std::vector<Value> args;
      args.reserve(e->args().size());
      for (const auto& arg : e->args()) {
        VODAK_ASSIGN_OR_RETURN(Value v, Eval(arg, env));
        args.push_back(std::move(v));
      }
      MethodCallContext ctx{catalog_, store_, methods_, 0, snapshot_};
      return methods_->InvokeClass(ctx, e->name(), e->method(), args);
    }
    case ExprKind::kBinary: {
      // Short-circuit AND / OR.
      if (e->bin_op() == BinOp::kAnd || e->bin_op() == BinOp::kOr) {
        VODAK_ASSIGN_OR_RETURN(Value lhs, Eval(e->lhs(), env));
        if (!lhs.is_bool()) {
          return Status::TypeError("boolean connective on non-boolean " +
                                   lhs.ToString());
        }
        if (e->bin_op() == BinOp::kAnd && !lhs.AsBool()) {
          return Value::Bool(false);
        }
        if (e->bin_op() == BinOp::kOr && lhs.AsBool()) {
          return Value::Bool(true);
        }
        VODAK_ASSIGN_OR_RETURN(Value rhs, Eval(e->rhs(), env));
        if (!rhs.is_bool()) {
          return Status::TypeError("boolean connective on non-boolean " +
                                   rhs.ToString());
        }
        return rhs;
      }
      VODAK_ASSIGN_OR_RETURN(Value lhs, Eval(e->lhs(), env));
      VODAK_ASSIGN_OR_RETURN(Value rhs, Eval(e->rhs(), env));
      return ApplyBinary(e->bin_op(), lhs, rhs);
    }
    case ExprKind::kUnary: {
      VODAK_ASSIGN_OR_RETURN(Value v, Eval(e->operand(), env));
      if (e->un_op() == UnOp::kNot) {
        if (!v.is_bool()) {
          return Status::TypeError("NOT on non-boolean " + v.ToString());
        }
        return Value::Bool(!v.AsBool());
      }
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_real()) return Value::Real(-v.AsReal());
      return Status::TypeError("negation of non-numeric " + v.ToString());
    }
    case ExprKind::kTupleCtor: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(e->fields().size());
      for (const auto& [name, fe] : e->fields()) {
        VODAK_ASSIGN_OR_RETURN(Value v, Eval(fe, env));
        fields.emplace_back(name, std::move(v));
      }
      return Value::Tuple(std::move(fields));
    }
    case ExprKind::kSetCtor: {
      std::vector<Value> elems;
      elems.reserve(e->args().size());
      for (const auto& el : e->args()) {
        VODAK_ASSIGN_OR_RETURN(Value v, Eval(el, env));
        elems.push_back(std::move(v));
      }
      return Value::Set(std::move(elems));
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> ExprEvaluator::EvalPredicate(const ExprRef& e,
                                          const Env& env) const {
  VODAK_ASSIGN_OR_RETURN(Value v, Eval(e, env));
  if (v.is_null()) return false;  // NIL predicate result counts as FALSE
  if (!v.is_bool()) {
    return Status::TypeError("condition evaluated to non-boolean " +
                             v.ToString());
  }
  return v.AsBool();
}

}  // namespace vodak
