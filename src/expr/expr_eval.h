#ifndef VODAK_EXPR_EXPR_EVAL_H_
#define VODAK_EXPR_EXPR_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "methods/method_registry.h"

namespace vodak {

class PropertyColumnCache;

/// Variable bindings for one evaluation (query variable -> value).
using Env = std::map<std::string, Value>;

// ValueColumn — one value per row of a batch, the unit of batched
// evaluation — lives in methods/method_registry.h, shared with the
// set-at-a-time method ABI.

/// Batch variable bindings: a non-owning view mapping reference names to
/// value columns of a common length. names and columns are parallel.
///
/// An optional *selection view* (docs/ARCHITECTURE.md §"Selection
/// vectors"): when `sel` is non-null the environment denotes only the
/// `sel_count` physical rows sel[0..sel_count), in ascending order, and
/// the batch entry points return one result per *selected* row.
/// Unselected rows are semantically absent — they are never evaluated,
/// can never error, and can never reach a method body.
struct BatchEnv {
  const std::vector<std::string>* names = nullptr;
  const std::vector<ValueColumn>* columns = nullptr;
  /// Physical rows held by the columns.
  size_t num_rows = 0;
  /// Optional selection: ascending physical row indices, each <
  /// num_rows. Null means dense (every row live).
  const uint32_t* sel = nullptr;
  size_t sel_count = 0;

  /// Rows the environment denotes (selection count, or num_rows when
  /// dense).
  size_t active_rows() const { return sel != nullptr ? sel_count : num_rows; }
  /// Physical index of the i-th denoted row.
  size_t RowAt(size_t i) const {
    return sel != nullptr ? static_cast<size_t>(sel[i]) : i;
  }

  const ValueColumn* Find(const std::string& name) const {
    for (size_t i = 0; i < names->size(); ++i) {
      if ((*names)[i] == name) return &(*columns)[i];
    }
    return nullptr;
  }
};

/// Evaluates expressions against the database. This single definition of
/// expression semantics is shared by the naive VQL interpreter (the
/// ground truth in correctness tests) and by the physical operators, so a
/// plan rewrite can never silently change what an expression means.
///
/// Set-lifted access follows §2.3 of the paper: for a set-valued base,
/// `S.prop` and `S→m()` denote the union of the member results ("the
/// system-defined methods which perform the access to the property are
/// invoked for all objects in the set").
class ExprEvaluator {
 public:
  /// `property_cache` (optional) routes the *batched* property-column
  /// reads through a shared read-through cache — the shared-scan
  /// pipeline's cross-query column sharing (docs/ARCHITECTURE.md
  /// §"Shared scans"). The scalar Eval path always reads the store
  /// directly, so the row-mode oracle stays cache-independent.
  /// `snapshot` is the epoch every store read resolves at — the query's
  /// pinned snapshot; the kEpochLatest default keeps read-only callers
  /// (tests, loaders) on live state.
  ExprEvaluator(const Catalog* catalog, ObjectStore* store,
                MethodRegistry* methods,
                PropertyColumnCache* property_cache = nullptr,
                Epoch snapshot = kEpochLatest)
      : catalog_(catalog),
        store_(store),
        methods_(methods),
        property_cache_(property_cache),
        snapshot_(snapshot) {}

  Result<Value> Eval(const ExprRef& e, const Env& env) const;

  /// Evaluates a condition to a boolean (error if non-boolean result).
  Result<bool> EvalPredicate(const ExprRef& e, const Env& env) const;

  /// Batched evaluation: one result value per *active* row of `env`
  /// (every row when dense, the selected rows under a selection view).
  /// Semantically identical to calling Eval row by row over the denoted
  /// rows (AND/OR keep their per-row short-circuit via masked evaluation
  /// of the right operand), but amortizes environment setup and
  /// property-slot resolution across the batch. This is the entry point
  /// the vectorized physical operators and the batched naive evaluators
  /// share. Under a selection the needed variable columns are gathered
  /// once into a dense sub-batch, so unselected rows are physically
  /// absent from all downstream evaluation (including method dispatch).
  Result<ValueColumn> EvalBatch(const ExprRef& e,
                                const BatchEnv& env) const;

  /// Batched EvalPredicate: keep[i] records whether the i-th *active*
  /// row satisfies the condition (NIL counts as FALSE). `keep` is
  /// resized to env.active_rows(); under a selection view keep[i]
  /// refers to physical row env.RowAt(i) — the shape
  /// RowBatch::IntersectSelection consumes directly.
  Status EvalPredicateBatch(const ExprRef& e, const BatchEnv& env,
                            std::vector<char>* keep) const;

  /// Evaluates a closed (variable-free) expression — a method-scan
  /// parameter like `Paragraph->retrieve_by_string('s')` — through the
  /// batched entry point (a one-row, zero-column environment), so
  /// external method dispatch is uniformly set-at-a-time even for the
  /// scan leaves. Semantically identical to Eval(e, {}).
  Result<Value> EvalClosed(const ExprRef& e) const;

  const Catalog* catalog() const { return catalog_; }
  ObjectStore* store() const { return store_; }
  MethodRegistry* methods() const { return methods_; }
  Epoch snapshot() const { return snapshot_; }

  /// A copy of this evaluator reading at `snapshot` instead. Members
  /// are raw pointers, so the copy is free; the interpreter uses this
  /// to re-aim its const evaluator at a query's pinned epoch.
  ExprEvaluator WithSnapshot(Epoch snapshot) const {
    return ExprEvaluator(catalog_, store_, methods_, property_cache_,
                         snapshot);
  }

  /// Applies a binary operator to already-evaluated operands. Exposed so
  /// physical operators can evaluate restricted-algebra θ parameters
  /// without building expression trees.
  static Result<Value> ApplyBinary(BinOp op, const Value& lhs,
                                   const Value& rhs);

  /// True for the total-order comparison operators (==, !=, <, <=, >,
  /// >=) — the operators whose evaluation reduces to Value::Compare,
  /// never errors, and never yields NIL. These are the compares the
  /// batch fast paths (EvalPredicateBatch's fused loop, the VM's
  /// native kTest lowering) may evaluate eagerly without changing
  /// masked short-circuit semantics.
  static bool IsLowerableCompare(BinOp op);

  /// Whether `lhs <op> rhs` holds under the engine's total order —
  /// exactly ApplyBinary's semantics for the IsLowerableCompare subset
  /// (both reduce to Value::Compare), exposed as a bool so fused
  /// per-row loops skip Value boxing.
  static bool CompareHolds(BinOp op, const Value& lhs, const Value& rhs);

 private:
  Result<Value> EvalProperty(const Value& base,
                             const std::string& prop) const;
  Result<Value> EvalMethod(const Value& base, const std::string& method,
                           const std::vector<Value>& args) const;

  /// Column-wise property access with the (class, property) -> slot
  /// resolution cached across consecutive rows of the same class.
  Result<ValueColumn> EvalPropertyColumn(const ValueColumn& base,
                                         const std::string& prop) const;

  /// Column-wise instance-method invocation: contiguous runs of plain
  /// Oid receivers go through MethodRegistry::InvokeInstanceBatch (the
  /// set-at-a-time ABI); NULL receivers yield NIL and set-valued
  /// receivers take the scalar set-lifting path, all in row order.
  Result<ValueColumn> EvalMethodColumn(
      const ValueColumn& base, const std::string& method,
      const std::vector<ValueColumn>& args) const;

  /// Resolves a batch operand to a column: bare variables borrow the
  /// environment's column (no batch-sized copy); anything else is
  /// evaluated into `*storage` and that is returned.
  Result<const ValueColumn*> ResolveOperandColumn(
      const ExprRef& e, const BatchEnv& env, ValueColumn* storage) const;

  const Catalog* catalog_;
  ObjectStore* store_;
  MethodRegistry* methods_;
  PropertyColumnCache* property_cache_;
  Epoch snapshot_;
};

}  // namespace vodak

#endif  // VODAK_EXPR_EXPR_EVAL_H_
