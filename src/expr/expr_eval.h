#ifndef VODAK_EXPR_EXPR_EVAL_H_
#define VODAK_EXPR_EXPR_EVAL_H_

#include <map>
#include <string>

#include "expr/expr.h"
#include "methods/method_registry.h"

namespace vodak {

/// Variable bindings for one evaluation (query variable -> value).
using Env = std::map<std::string, Value>;

/// Evaluates expressions against the database. This single definition of
/// expression semantics is shared by the naive VQL interpreter (the
/// ground truth in correctness tests) and by the physical operators, so a
/// plan rewrite can never silently change what an expression means.
///
/// Set-lifted access follows §2.3 of the paper: for a set-valued base,
/// `S.prop` and `S→m()` denote the union of the member results ("the
/// system-defined methods which perform the access to the property are
/// invoked for all objects in the set").
class ExprEvaluator {
 public:
  ExprEvaluator(const Catalog* catalog, ObjectStore* store,
                MethodRegistry* methods)
      : catalog_(catalog), store_(store), methods_(methods) {}

  Result<Value> Eval(const ExprRef& e, const Env& env) const;

  /// Evaluates a condition to a boolean (error if non-boolean result).
  Result<bool> EvalPredicate(const ExprRef& e, const Env& env) const;

  const Catalog* catalog() const { return catalog_; }
  ObjectStore* store() const { return store_; }
  MethodRegistry* methods() const { return methods_; }

  /// Applies a binary operator to already-evaluated operands. Exposed so
  /// physical operators can evaluate restricted-algebra θ parameters
  /// without building expression trees.
  static Result<Value> ApplyBinary(BinOp op, const Value& lhs,
                                   const Value& rhs);

 private:
  Result<Value> EvalProperty(const Value& base,
                             const std::string& prop) const;
  Result<Value> EvalMethod(const Value& base, const std::string& method,
                           const std::vector<Value>& args) const;

  const Catalog* catalog_;
  ObjectStore* store_;
  MethodRegistry* methods_;
};

}  // namespace vodak

#endif  // VODAK_EXPR_EXPR_EVAL_H_
