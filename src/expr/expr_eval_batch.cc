// Batched (column-at-a-time) expression evaluation. Semantics are
// defined by the row-at-a-time ExprEvaluator::Eval; this translation
// unit only changes the evaluation *shape*: variables bind to whole
// columns, property slots are resolved once per class instead of once
// per row, and AND/OR evaluate their right operand under a mask so the
// per-row short-circuit behavior (including which rows may error) is
// preserved exactly.
#include "expr/expr_eval.h"

#include <algorithm>

#include "common/copy_stats.h"
#include "objstore/property_cache.h"

namespace vodak {

namespace {

/// Free variables of an expression, in first-occurrence order.
void CollectVars(const ExprRef& e, std::vector<std::string>* out) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return;
    case ExprKind::kVar:
      if (std::find(out->begin(), out->end(), e->var_name()) ==
          out->end()) {
        out->push_back(e->var_name());
      }
      return;
    case ExprKind::kProperty:
      CollectVars(e->base(), out);
      return;
    case ExprKind::kMethodCall:
      CollectVars(e->base(), out);
      for (const auto& arg : e->args()) CollectVars(arg, out);
      return;
    case ExprKind::kClassMethodCall:
      for (const auto& arg : e->args()) CollectVars(arg, out);
      return;
    case ExprKind::kBinary:
      CollectVars(e->lhs(), out);
      CollectVars(e->rhs(), out);
      return;
    case ExprKind::kUnary:
      CollectVars(e->operand(), out);
      return;
    case ExprKind::kTupleCtor:
      for (const auto& [name, fe] : e->fields()) CollectVars(fe, out);
      return;
    case ExprKind::kSetCtor:
      for (const auto& el : e->args()) CollectVars(el, out);
      return;
  }
}

/// Gathers a subset of the rows of `env` into owned dense columns, so a
/// sub-expression can be evaluated only where it is actually needed.
/// Only the columns bound to `needed` variables are copied; the rest of
/// the environment is invisible to the sub-expression anyway. Copies
/// are counted into BatchCopyStats::gather_copies.
struct GatheredBatch {
  std::vector<std::string> names;
  std::vector<ValueColumn> columns;
  std::vector<size_t> row_index;  // position of each gathered row in env

  /// Mask form (AND/OR short-circuit): the rows of a *dense* env with
  /// mask[i] != 0.
  GatheredBatch(const BatchEnv& env, const std::vector<char>& mask,
                const std::vector<std::string>& needed) {
    for (size_t i = 0; i < env.num_rows; ++i) {
      if (mask[i]) row_index.push_back(i);
    }
    Gather(env, needed);
  }

  /// Selection form: the rows denoted by env's selection view, in
  /// order. The gathered batch is how unselected rows stay physically
  /// absent from every downstream evaluation (and from method bodies).
  GatheredBatch(const BatchEnv& env,
                const std::vector<std::string>& needed) {
    row_index.reserve(env.sel_count);
    for (size_t i = 0; i < env.sel_count; ++i) {
      row_index.push_back(env.RowAt(i));
    }
    Gather(env, needed);
  }

  BatchEnv View() const {
    return BatchEnv{&names, &columns, row_index.size()};
  }

 private:
  void Gather(const BatchEnv& env, const std::vector<std::string>& needed) {
    for (size_t c = 0; c < env.names->size(); ++c) {
      if (std::find(needed.begin(), needed.end(), (*env.names)[c]) ==
          needed.end()) {
        continue;
      }
      names.push_back((*env.names)[c]);
      ValueColumn col;
      col.reserve(row_index.size());
      for (size_t i : row_index) col.push_back((*env.columns)[c][i]);
      columns.push_back(std::move(col));
    }
    const uint64_t copied =
        static_cast<uint64_t>(row_index.size()) * columns.size();
    if (copied != 0) {
      BatchCopyStats::gather_copies.fetch_add(copied,
                                              std::memory_order_relaxed);
    }
  }
};

Status NonBooleanConnective(const Value& v) {
  return Status::TypeError("boolean connective on non-boolean " +
                           v.ToString());
}

}  // namespace

Result<const ValueColumn*> ExprEvaluator::ResolveOperandColumn(
    const ExprRef& e, const BatchEnv& env, ValueColumn* storage) const {
  if (e->kind() == ExprKind::kVar) {
    const ValueColumn* col = env.Find(e->var_name());
    if (col == nullptr) {
      return Status::BindError("unbound variable '" + e->var_name() +
                               "'");
    }
    return col;
  }
  VODAK_ASSIGN_OR_RETURN(*storage, EvalBatch(e, env));
  return static_cast<const ValueColumn*>(storage);
}

Result<ValueColumn> ExprEvaluator::EvalPropertyColumn(
    const ValueColumn& base, const std::string& prop) const {
  ValueColumn out;
  out.reserve(base.size());
  // Consecutive oids of the same class are read as one store column:
  // the name -> slot resolution and the store-side class/slot checks
  // happen once per run instead of once per row.
  std::vector<uint32_t> run;
  uint32_t run_class = 0;
  const PropertyDef* run_prop = nullptr;
  auto flush_run = [&]() -> Status {
    if (run.empty()) return Status::OK();
    // Range-scoped read: one atomic stats bump for the whole run, so
    // parallel morsel workers don't contend per row on the counter.
    // With a shared property cache installed (the shared-scan
    // pipeline), the run is served from the cross-query column
    // snapshot instead — the store pays one full-column read per
    // (class, slot) however many queries ask.
    if (property_cache_ != nullptr) {
      VODAK_RETURN_IF_ERROR(property_cache_->ReadColumn(
          run_class, run_prop->slot, run, 0, run.size(), &out, snapshot_));
    } else {
      VODAK_RETURN_IF_ERROR(store_->GetPropertyColumn(
          run_class, run_prop->slot, run, 0, run.size(), &out, snapshot_));
    }
    run.clear();
    return Status::OK();
  };
  for (const Value& v : base) {
    if (v.is_oid() && !v.AsOid().IsNull()) {
      Oid oid = v.AsOid();
      if (run_prop == nullptr || oid.class_id != run_class) {
        VODAK_RETURN_IF_ERROR(flush_run());
        const ClassDef* cls = catalog_->FindClassById(oid.class_id);
        if (cls == nullptr) {
          return Status::NotFound("oid " + oid.ToString() +
                                  " refers to unknown class");
        }
        run_prop = cls->FindProperty(prop);
        if (run_prop == nullptr) {
          return Status::NotFound("class '" + cls->name() +
                                  "' has no property '" + prop + "'");
        }
        run_class = oid.class_id;
      }
      run.push_back(oid.local);
    } else {
      VODAK_RETURN_IF_ERROR(flush_run());
      VODAK_ASSIGN_OR_RETURN(Value pv, EvalProperty(v, prop));
      out.push_back(std::move(pv));
    }
  }
  VODAK_RETURN_IF_ERROR(flush_run());
  return out;
}

Result<ValueColumn> ExprEvaluator::EvalMethodColumn(
    const ValueColumn& base, const std::string& method,
    const std::vector<ValueColumn>& args) const {
  const size_t n = base.size();
  ValueColumn out;
  out.reserve(n);
  MethodCallContext ctx{catalog_, store_, methods_, 0, snapshot_};
  // Contiguous runs of plain Oid receivers are dispatched through the
  // set-at-a-time ABI; NULL receivers yield NIL without a dispatch (they
  // are exactly the rows a row-at-a-time evaluation would have skipped),
  // and set-valued receivers take the scalar set-lifting path. Runs keep
  // row order, so results and first-error behavior match the row loop.
  ValueColumn run_selves;
  std::vector<ValueColumn> run_args(args.size());
  auto flush_run = [&]() -> Status {
    if (run_selves.empty()) return Status::OK();
    VODAK_RETURN_IF_ERROR(methods_->InvokeInstanceBatch(
        ctx, run_selves, method, run_args, &out));
    run_selves.clear();
    for (ValueColumn& col : run_args) col.clear();
    return Status::OK();
  };
  std::vector<Value> scalar_args(args.size());
  for (size_t i = 0; i < n; ++i) {
    const Value& self = base[i];
    if (self.is_oid() || self.is_null()) {
      run_selves.push_back(self);
      for (size_t a = 0; a < args.size(); ++a) {
        run_args[a].push_back(args[a][i]);
      }
      continue;
    }
    VODAK_RETURN_IF_ERROR(flush_run());
    for (size_t a = 0; a < args.size(); ++a) scalar_args[a] = args[a][i];
    VODAK_ASSIGN_OR_RETURN(Value v, EvalMethod(self, method, scalar_args));
    out.push_back(std::move(v));
  }
  VODAK_RETURN_IF_ERROR(flush_run());
  return out;
}

Result<Value> ExprEvaluator::EvalClosed(const ExprRef& e) const {
  static const std::vector<std::string> kNoNames;
  static const std::vector<ValueColumn> kNoColumns;
  VODAK_ASSIGN_OR_RETURN(
      ValueColumn col, EvalBatch(e, BatchEnv{&kNoNames, &kNoColumns, 1}));
  return std::move(col[0]);
}

Result<ValueColumn> ExprEvaluator::EvalBatch(const ExprRef& e,
                                             const BatchEnv& env) const {
  if (env.sel != nullptr) {
    // Selection view: gather the needed variable bindings through the
    // selection into a dense sub-batch and evaluate that. Only the
    // columns the expression actually references are copied, and the
    // unselected rows are physically absent from everything below —
    // including method dispatch, which is how the batch method ABI's
    // "masked rows never reach a body" contract extends to selection
    // vectors.
    std::vector<std::string> needed;
    CollectVars(e, &needed);
    GatheredBatch gathered(env, needed);
    return EvalBatch(e, gathered.View());
  }
  const size_t n = env.num_rows;
  switch (e->kind()) {
    case ExprKind::kConst:
      return ValueColumn(n, e->value());
    case ExprKind::kVar: {
      const ValueColumn* col = env.Find(e->var_name());
      if (col == nullptr) {
        return Status::BindError("unbound variable '" + e->var_name() +
                                 "'");
      }
      return *col;
    }
    case ExprKind::kProperty: {
      // Variable bases read the bound column in place, skipping a
      // batch-sized copy on the commonest access shape (`p.prop`).
      if (e->base()->kind() == ExprKind::kVar) {
        const ValueColumn* col = env.Find(e->base()->var_name());
        if (col == nullptr) {
          return Status::BindError("unbound variable '" +
                                   e->base()->var_name() + "'");
        }
        return EvalPropertyColumn(*col, e->name());
      }
      VODAK_ASSIGN_OR_RETURN(ValueColumn base, EvalBatch(e->base(), env));
      return EvalPropertyColumn(base, e->name());
    }
    case ExprKind::kMethodCall: {
      VODAK_ASSIGN_OR_RETURN(ValueColumn base, EvalBatch(e->base(), env));
      std::vector<ValueColumn> arg_cols;
      arg_cols.reserve(e->args().size());
      for (const auto& arg : e->args()) {
        VODAK_ASSIGN_OR_RETURN(ValueColumn col, EvalBatch(arg, env));
        arg_cols.push_back(std::move(col));
      }
      return EvalMethodColumn(base, e->method(), arg_cols);
    }
    case ExprKind::kClassMethodCall: {
      std::vector<ValueColumn> arg_cols;
      arg_cols.reserve(e->args().size());
      for (const auto& arg : e->args()) {
        VODAK_ASSIGN_OR_RETURN(ValueColumn col, EvalBatch(arg, env));
        arg_cols.push_back(std::move(col));
      }
      // One set-at-a-time dispatch for the whole batch: a native batch
      // implementation typically dedups repeated argument rows (the
      // common constant-argument shape) into a single external probe.
      ValueColumn out;
      out.reserve(n);
      MethodCallContext ctx{catalog_, store_, methods_, 0, snapshot_};
      VODAK_RETURN_IF_ERROR(methods_->InvokeClassBatch(
          ctx, e->name(), e->method(), n, arg_cols, &out));
      return out;
    }
    case ExprKind::kBinary: {
      if (e->bin_op() == BinOp::kAnd || e->bin_op() == BinOp::kOr) {
        const bool is_and = e->bin_op() == BinOp::kAnd;
        VODAK_ASSIGN_OR_RETURN(ValueColumn lhs, EvalBatch(e->lhs(), env));
        // Rows whose left operand decides the connective keep the
        // short-circuit result; only the undecided rows may evaluate
        // (and thus may error on) the right operand.
        std::vector<char> need_rhs(n, 0);
        size_t pending = 0;
        for (size_t i = 0; i < n; ++i) {
          if (!lhs[i].is_bool()) return NonBooleanConnective(lhs[i]);
          if (lhs[i].AsBool() == is_and) {
            need_rhs[i] = 1;
            ++pending;
          }
        }
        ValueColumn out = std::move(lhs);
        if (pending == 0) return out;
        if (pending == n) {
          // Every row needs the right operand: evaluate it against the
          // full environment, skipping the gather copy entirely.
          VODAK_ASSIGN_OR_RETURN(ValueColumn rhs,
                                 EvalBatch(e->rhs(), env));
          for (size_t i = 0; i < n; ++i) {
            if (!rhs[i].is_bool()) return NonBooleanConnective(rhs[i]);
            out[i] = rhs[i];
          }
          return out;
        }
        std::vector<std::string> rhs_vars;
        CollectVars(e->rhs(), &rhs_vars);
        GatheredBatch gathered(env, need_rhs, rhs_vars);
        VODAK_ASSIGN_OR_RETURN(ValueColumn rhs,
                               EvalBatch(e->rhs(), gathered.View()));
        for (size_t g = 0; g < rhs.size(); ++g) {
          if (!rhs[g].is_bool()) return NonBooleanConnective(rhs[g]);
          out[gathered.row_index[g]] = rhs[g];
        }
        return out;
      }
      // Constant operands apply as scalars instead of materializing a
      // batch-sized constant column (`p.number >= 1` is the hot shape),
      // and bare-variable operands borrow the bound column in place.
      if (e->rhs()->kind() == ExprKind::kConst) {
        ValueColumn storage;
        VODAK_ASSIGN_OR_RETURN(const ValueColumn* lhs,
                               ResolveOperandColumn(e->lhs(), env,
                                                    &storage));
        const Value& rhs = e->rhs()->value();
        ValueColumn out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          VODAK_ASSIGN_OR_RETURN(
              Value v, ApplyBinary(e->bin_op(), (*lhs)[i], rhs));
          out.push_back(std::move(v));
        }
        return out;
      }
      if (e->lhs()->kind() == ExprKind::kConst) {
        const Value& lhs = e->lhs()->value();
        ValueColumn storage;
        VODAK_ASSIGN_OR_RETURN(const ValueColumn* rhs,
                               ResolveOperandColumn(e->rhs(), env,
                                                    &storage));
        ValueColumn out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          VODAK_ASSIGN_OR_RETURN(
              Value v, ApplyBinary(e->bin_op(), lhs, (*rhs)[i]));
          out.push_back(std::move(v));
        }
        return out;
      }
      ValueColumn lhs_storage;
      ValueColumn rhs_storage;
      VODAK_ASSIGN_OR_RETURN(const ValueColumn* lhs,
                             ResolveOperandColumn(e->lhs(), env,
                                                  &lhs_storage));
      VODAK_ASSIGN_OR_RETURN(const ValueColumn* rhs,
                             ResolveOperandColumn(e->rhs(), env,
                                                  &rhs_storage));
      ValueColumn out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VODAK_ASSIGN_OR_RETURN(
            Value v, ApplyBinary(e->bin_op(), (*lhs)[i], (*rhs)[i]));
        out.push_back(std::move(v));
      }
      return out;
    }
    case ExprKind::kUnary: {
      VODAK_ASSIGN_OR_RETURN(ValueColumn operand,
                             EvalBatch(e->operand(), env));
      ValueColumn out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = operand[i];
        if (e->un_op() == UnOp::kNot) {
          if (!v.is_bool()) {
            return Status::TypeError("NOT on non-boolean " + v.ToString());
          }
          out.push_back(Value::Bool(!v.AsBool()));
        } else if (v.is_int()) {
          out.push_back(Value::Int(-v.AsInt()));
        } else if (v.is_real()) {
          out.push_back(Value::Real(-v.AsReal()));
        } else {
          return Status::TypeError("negation of non-numeric " +
                                   v.ToString());
        }
      }
      return out;
    }
    case ExprKind::kTupleCtor: {
      std::vector<ValueColumn> field_cols;
      field_cols.reserve(e->fields().size());
      for (const auto& [name, fe] : e->fields()) {
        VODAK_ASSIGN_OR_RETURN(ValueColumn col, EvalBatch(fe, env));
        field_cols.push_back(std::move(col));
      }
      ValueColumn out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ValueTuple fields;
        fields.reserve(field_cols.size());
        for (size_t f = 0; f < field_cols.size(); ++f) {
          fields.emplace_back(e->fields()[f].first, field_cols[f][i]);
        }
        out.push_back(Value::Tuple(std::move(fields)));
      }
      return out;
    }
    case ExprKind::kSetCtor: {
      std::vector<ValueColumn> elem_cols;
      elem_cols.reserve(e->args().size());
      for (const auto& el : e->args()) {
        VODAK_ASSIGN_OR_RETURN(ValueColumn col, EvalBatch(el, env));
        elem_cols.push_back(std::move(col));
      }
      ValueColumn out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::vector<Value> elems;
        elems.reserve(elem_cols.size());
        for (const auto& col : elem_cols) elems.push_back(col[i]);
        out.push_back(Value::Set(std::move(elems)));
      }
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

/// The six total-order comparisons. Deliberately narrower than
/// IsComparisonOp, which also covers IS-IN / IS-SUBSET — those have
/// set-membership semantics (and can error), not Compare semantics.
bool ExprEvaluator::IsLowerableCompare(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

bool ExprEvaluator::CompareHolds(BinOp op, const Value& lhs,
                                 const Value& rhs) {
  int c = Value::Compare(lhs, rhs);
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    default:
      return c >= 0;  // kGe
  }
}

Status ExprEvaluator::EvalPredicateBatch(const ExprRef& e,
                                         const BatchEnv& env,
                                         std::vector<char>* keep) const {
  const size_t active = env.active_rows();
  // Fused fast path for `<expr> <cmp> <const>` selections: compare the
  // evaluated column against the scalar directly instead of
  // materializing a boolean column. Ordering comparisons are total
  // (ApplyBinary never errors on them), so semantics are unchanged.
  // Under a selection view a bare-variable operand borrows the bound
  // *physical* column and is read through RowAt — a selection chain of
  // variable comparisons evaluates with zero value copies.
  if (e->kind() == ExprKind::kBinary &&
      IsLowerableCompare(e->bin_op()) &&
      (e->lhs()->kind() == ExprKind::kConst ||
       e->rhs()->kind() == ExprKind::kConst)) {
    const bool const_lhs = e->lhs()->kind() == ExprKind::kConst;
    const Value& scalar =
        const_lhs ? e->lhs()->value() : e->rhs()->value();
    const ExprRef& operand = const_lhs ? e->rhs() : e->lhs();
    // A borrowed variable column stays physical-length (index through
    // RowAt); an evaluated operand comes back dense over the active
    // rows (index directly).
    const bool physical = operand->kind() == ExprKind::kVar;
    ValueColumn storage;
    VODAK_ASSIGN_OR_RETURN(
        const ValueColumn* col,
        ResolveOperandColumn(operand, env, &storage));
    keep->resize(active);
    for (size_t i = 0; i < active; ++i) {
      const Value& v = (*col)[physical ? env.RowAt(i) : i];
      (*keep)[i] = const_lhs ? CompareHolds(e->bin_op(), scalar, v)
                             : CompareHolds(e->bin_op(), v, scalar);
    }
    return Status::OK();
  }
  VODAK_ASSIGN_OR_RETURN(ValueColumn vals, EvalBatch(e, env));
  keep->assign(active, 0);
  for (size_t i = 0; i < active; ++i) {
    const Value& v = vals[i];
    if (v.is_null()) continue;  // NIL predicate result counts as FALSE
    if (!v.is_bool()) {
      return Status::TypeError("condition evaluated to non-boolean " +
                               v.ToString());
    }
    (*keep)[i] = v.AsBool();
  }
  return Status::OK();
}

}  // namespace vodak
