#include "extindex/inverted_index.h"

#include <algorithm>

#include "common/string_util.h"

namespace vodak {

void InvertedTextIndex::Add(Oid owner, std::string_view text) {
  std::vector<std::string> tokens = TokenizeWords(text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (std::string& token : tokens) {
    postings_[std::move(token)].push_back(owner);
  }
  ++indexed_count_;
}

std::vector<Oid> InvertedTextIndex::Search(std::string_view query) const {
  search_count_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> tokens = TokenizeWords(query);
  if (tokens.empty()) return {};
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());

  // Intersect postings, cheapest list first.
  std::sort(tokens.begin(), tokens.end(),
            [this](const std::string& a, const std::string& b) {
              return DocumentFrequency(a) < DocumentFrequency(b);
            });
  std::vector<Oid> result;
  bool first = true;
  for (const std::string& token : tokens) {
    auto it = postings_.find(token);
    if (it == postings_.end()) return {};
    postings_scanned_.fetch_add(it->second.size(),
                               std::memory_order_relaxed);
    if (first) {
      result = it->second;
      first = false;
      continue;
    }
    std::vector<Oid> next;
    std::set_intersection(result.begin(), result.end(), it->second.begin(),
                          it->second.end(), std::back_inserter(next));
    result = std::move(next);
    if (result.empty()) return result;
  }
  return result;
}

std::vector<std::string> InvertedTextIndex::QueryTokens(
    std::string_view query) {
  return TokenizeWords(query);
}

bool InvertedTextIndex::MatchesTokens(
    std::string_view text, const std::vector<std::string>& query_tokens) {
  if (query_tokens.empty()) return false;
  std::vector<std::string> text_tokens = TokenizeWords(text);
  std::sort(text_tokens.begin(), text_tokens.end());
  for (const std::string& token : query_tokens) {
    if (!std::binary_search(text_tokens.begin(), text_tokens.end(),
                            token)) {
      return false;
    }
  }
  return true;
}

bool InvertedTextIndex::MatchesText(std::string_view text,
                                    std::string_view query) {
  return MatchesTokens(text, QueryTokens(query));
}

uint64_t InvertedTextIndex::DocumentFrequency(
    const std::string& word) const {
  auto it = postings_.find(word);
  return it == postings_.end() ? 0 : it->second.size();
}

void OrderedAttributeIndex::Insert(const std::string& key, Oid oid) {
  auto& bucket = entries_[key];
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), oid), oid);
  ++entry_count_;
}

std::vector<Oid> OrderedAttributeIndex::Lookup(
    const std::string& key) const {
  lookup_count_.fetch_add(1, std::memory_order_relaxed);
  auto it = entries_.find(key);
  return it == entries_.end() ? std::vector<Oid>{} : it->second;
}

std::vector<Oid> OrderedAttributeIndex::LookupRange(
    const std::string& lo, const std::string& hi) const {
  lookup_count_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Oid> out;
  for (auto it = entries_.lower_bound(lo);
       it != entries_.end() && it->first <= hi; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vodak
