#ifndef VODAK_EXTINDEX_INVERTED_INDEX_H_
#define VODAK_EXTINDEX_INVERTED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "types/oid.h"

namespace vodak {

/// Substitute for the paper's external IR engine (DESIGN.md S6).
///
/// `Paragraph→retrieve_by_string(s)` is backed by `Search`, a set-at-a-time
/// postings intersection; the per-object `p→contains_string(s)` method is
/// backed by `MatchesText`, a full re-tokenization of the paragraph body.
/// Both use the same word-AND semantics (every query token occurs as a
/// token of the content), which is what makes equivalence E5 *exact* —
/// the property tests rely on this.
///
/// The cost asymmetry is the one the paper postulates for external
/// operations: Search is ~O(total postings of the query terms) while
/// scanning with MatchesText is O(total corpus text).
class InvertedTextIndex {
 public:
  InvertedTextIndex() = default;
  InvertedTextIndex(const InvertedTextIndex&) = delete;
  InvertedTextIndex& operator=(const InvertedTextIndex&) = delete;

  /// Indexes `text` under `owner`. Owners must be added at most once.
  void Add(Oid owner, std::string_view text);

  /// All owners whose text contains every token of `query`, sorted by Oid.
  /// Counts one search in the stats.
  std::vector<Oid> Search(std::string_view query) const;

  /// Word-AND containment test against raw `text` (not the index); the
  /// shared semantics for `contains_string`.
  static bool MatchesText(std::string_view text, std::string_view query);

  /// Tokenization half of MatchesText, split out so a set-at-a-time
  /// `contains_string` dispatch tokenizes the query once per batch
  /// instead of once per row.
  static std::vector<std::string> QueryTokens(std::string_view query);

  /// Matching half of MatchesText against pre-tokenized query tokens.
  /// MatchesText(text, q) == MatchesTokens(text, QueryTokens(q)) for a
  /// non-empty token list; an empty list means "no match" (MatchesText
  /// returns false for token-free queries).
  static bool MatchesTokens(std::string_view text,
                            const std::vector<std::string>& query_tokens);

  /// Document frequency of `word` (selectivity statistic for the cost
  /// model: the optimizer estimates |retrieve_by_string(s)| ≈ df).
  uint64_t DocumentFrequency(const std::string& word) const;

  uint64_t indexed_count() const { return indexed_count_; }
  uint64_t search_count() const {
    return search_count_.load(std::memory_order_relaxed);
  }
  uint64_t postings_scanned() const {
    return postings_scanned_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    search_count_.store(0, std::memory_order_relaxed);
    postings_scanned_.store(0, std::memory_order_relaxed);
  }

 private:
  /// word -> sorted postings list.
  std::map<std::string, std::vector<Oid>> postings_;
  uint64_t indexed_count_ = 0;
  // Relaxed atomics: searches run from parallel morsel workers.
  mutable std::atomic<uint64_t> search_count_{0};
  mutable std::atomic<uint64_t> postings_scanned_{0};
};

/// Ordered secondary index on a single attribute value, the substitute
/// for the user-defined index behind `Document→select_by_index(t)`
/// (§2.1). Point and range lookups are O(log n + hits).
class OrderedAttributeIndex {
 public:
  OrderedAttributeIndex() = default;

  void Insert(const std::string& key, Oid oid);

  /// All objects with exactly this key, sorted by Oid.
  std::vector<Oid> Lookup(const std::string& key) const;

  /// All objects with key in [lo, hi], sorted by Oid.
  std::vector<Oid> LookupRange(const std::string& lo,
                               const std::string& hi) const;

  uint64_t entry_count() const { return entry_count_; }
  uint64_t lookup_count() const {
    return lookup_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    lookup_count_.store(0, std::memory_order_relaxed);
  }

  /// Number of distinct keys (cost-model statistic).
  uint64_t distinct_keys() const { return entries_.size(); }

 private:
  std::map<std::string, std::vector<Oid>> entries_;
  uint64_t entry_count_ = 0;
  mutable std::atomic<uint64_t> lookup_count_{0};
};

}  // namespace vodak

#endif  // VODAK_EXTINDEX_INVERTED_INDEX_H_
