#include "methods/method_registry.h"

namespace vodak {

namespace {
constexpr int kMaxMethodDepth = 64;
}  // namespace

Result<Value> ReadPropertyByName(const Catalog& catalog,
                                 const ObjectStore& store, Oid oid,
                                 const std::string& property, Epoch at) {
  const ClassDef* cls = catalog.FindClassById(oid.class_id);
  if (cls == nullptr) {
    return Status::NotFound("oid " + oid.ToString() +
                            " refers to unknown class");
  }
  const PropertyDef* prop = cls->FindProperty(property);
  if (prop == nullptr) {
    return Status::NotFound("class '" + cls->name() +
                            "' has no property '" + property + "'");
  }
  return store.GetProperty(oid, prop->slot, at);
}

Status MethodRegistry::Register(const std::string& class_name,
                                MethodSig sig, MethodImpl impl,
                                MethodCost cost) {
  Key key{class_name, sig.name, sig.level};
  if (methods_.count(key) > 0) {
    return Status::AlreadyExists("method implementation '" + class_name +
                                 "::" + sig.name + "'");
  }
  RegisteredMethod method;
  method.sig = std::move(sig);
  method.impl = std::move(impl);
  method.cost = cost;
  methods_.emplace(std::move(key), std::move(method));
  return Status::OK();
}

Status MethodRegistry::InstallQueryThunk(const std::string& class_name,
                                         const std::string& method,
                                         MethodLevel level, NativeFn thunk) {
  auto it = methods_.find(Key{class_name, method, level});
  if (it == methods_.end()) {
    return Status::NotFound("method '" + class_name + "::" + method + "'");
  }
  if (it->second.impl.kind != MethodImplKind::kQueryDefined) {
    return Status::InvalidArgument("method '" + class_name + "::" + method +
                                   "' is not query-defined");
  }
  it->second.impl.native = std::move(thunk);
  return Status::OK();
}

const MethodRegistry::RegisteredMethod* MethodRegistry::Find(
    const std::string& class_name, const std::string& method,
    MethodLevel level) const {
  auto it = methods_.find(Key{class_name, method, level});
  return it == methods_.end() ? nullptr : &it->second;
}

const MethodRegistry::RegisteredMethod* MethodRegistry::FindAny(
    const std::string& method, MethodLevel level) const {
  for (const auto& [key, reg] : methods_) {
    if (key.method == method && key.level == level) return &reg;
  }
  return nullptr;
}

Status MethodRegistry::SetCost(const std::string& class_name,
                               const std::string& method, MethodLevel level,
                               MethodCost cost) {
  auto it = methods_.find(Key{class_name, method, level});
  if (it == methods_.end()) {
    return Status::NotFound("method '" + class_name + "::" + method + "'");
  }
  it->second.cost = cost;
  return Status::OK();
}

Result<Value> MethodRegistry::EvalPath(
    MethodCallContext& ctx, const std::vector<std::string>& path,
    Oid self) const {
  Value current = Value::OfOid(self);
  for (const std::string& step : path) {
    if (!current.is_oid()) {
      return Status::ExecError("path method step '" + step +
                               "' applied to non-object value " +
                               current.ToString());
    }
    if (current.AsOid().IsNull()) return Value::Null();
    VODAK_ASSIGN_OR_RETURN(
        current,
        ReadPropertyByName(*ctx.catalog, *ctx.store, current.AsOid(), step,
                           ctx.snapshot_epoch));
  }
  return current;
}

Result<Value> MethodRegistry::Dispatch(MethodCallContext& ctx,
                                       const RegisteredMethod& method,
                                       const Value& self,
                                       const std::vector<Value>& args) const {
  if (ctx.depth > kMaxMethodDepth) {
    return Status::ExecError("method recursion limit exceeded in '" +
                             method.sig.name + "'");
  }
  method.invocations.fetch_add(1, std::memory_order_relaxed);
  total_invocations_.fetch_add(1, std::memory_order_relaxed);
  switch (method.impl.kind) {
    case MethodImplKind::kPath:
      if (!self.is_oid()) {
        return Status::ExecError("path method '" + method.sig.name +
                                 "' needs an object receiver");
      }
      return EvalPath(ctx, method.impl.path, self.AsOid());
    case MethodImplKind::kNative:
    case MethodImplKind::kQueryDefined:
      if (!method.impl.native) {
        return Status::Internal("method '" + method.sig.name +
                                "' has no runnable implementation");
      }
      return method.impl.native(ctx, self, args);
  }
  return Status::Internal("unreachable method dispatch");
}

Status MethodRegistry::DispatchRun(MethodCallContext& ctx,
                                   const RegisteredMethod& reg,
                                   const ValueColumn& selves,
                                   const std::vector<ValueColumn>& args,
                                   size_t begin, size_t end,
                                   ValueColumn* out) const {
  const size_t n = end - begin;
  if (n == 0) return Status::OK();
  if (reg.impl.native_batch) {
    if (ctx.depth > kMaxMethodDepth) {
      return Status::ExecError("method recursion limit exceeded in '" +
                               reg.sig.name + "'");
    }
    // One set-at-a-time invocation for the whole run: the counter
    // asymmetry vs the scalar row loop (1 vs n bumps) is the observable
    // amortization contract method_batch_test asserts.
    reg.invocations.fetch_add(1, std::memory_order_relaxed);
    total_invocations_.fetch_add(1, std::memory_order_relaxed);
    reg.batch_invocations.fetch_add(1, std::memory_order_relaxed);
    reg.batch_rows.fetch_add(n, std::memory_order_relaxed);
    if (begin == 0 && end == selves.size() &&
        (args.empty() || end == args[0].size())) {
      // Whole-batch run: hand the columns through without a gather copy.
      return reg.impl.native_batch(ctx, selves, n, args, out);
    }
    ValueColumn run_selves(selves.begin() + begin, selves.begin() + end);
    std::vector<ValueColumn> run_args;
    run_args.reserve(args.size());
    for (const ValueColumn& col : args) {
      run_args.emplace_back(col.begin() + begin, col.begin() + end);
    }
    return reg.impl.native_batch(ctx, run_selves, n, run_args, out);
  }
  // Scalar fallback: a plain row loop over the run, dispatching exactly
  // the rows present in the (already masked) batch and nothing else.
  std::vector<Value> row_args(args.size());
  for (size_t i = begin; i < end; ++i) {
    for (size_t a = 0; a < args.size(); ++a) row_args[a] = args[a][i];
    VODAK_ASSIGN_OR_RETURN(
        Value v, Dispatch(ctx, reg, selves.empty() ? Value::Null()
                                                   : selves[i],
                          row_args));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status MethodRegistry::InvokeInstanceBatch(
    MethodCallContext& ctx, const ValueColumn& selves,
    const std::string& method, const std::vector<ValueColumn>& args,
    ValueColumn* out) const {
  const size_t n = selves.size();
  for (const ValueColumn& col : args) {
    if (col.size() != n) {
      return Status::InvalidArgument(
          "batch method '" + method + "': argument column of " +
          std::to_string(col.size()) + " rows for " + std::to_string(n) +
          " receivers");
    }
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  // Rows are processed in order, as class-homogeneous runs, so the first
  // failing row surfaces its error before any later run is dispatched —
  // the same front-to-back error behavior as the scalar row loop.
  size_t run_begin = 0;
  uint32_t run_class = 0;
  const RegisteredMethod* run_reg = nullptr;
  auto flush_run = [&](size_t run_end) -> Status {
    if (run_reg == nullptr) return Status::OK();
    Status s = DispatchRun(inner, *run_reg, selves, args, run_begin,
                           run_end, out);
    run_reg = nullptr;
    return s;
  };
  for (size_t i = 0; i < n; ++i) {
    const Value& self = selves[i];
    // NULL receivers yield NIL without invoking the method: they are how
    // the callers' mask machinery marks rows a row-at-a-time evaluation
    // would have short-circuited past.
    if (self.is_null() || (self.is_oid() && self.AsOid().IsNull())) {
      VODAK_RETURN_IF_ERROR(flush_run(i));
      out->push_back(Value::Null());
      run_begin = i + 1;
      continue;
    }
    if (!self.is_oid()) {
      VODAK_RETURN_IF_ERROR(flush_run(i));
      return Status::TypeError("method '" + method +
                               "' invoked on non-object value " +
                               self.ToString());
    }
    if (run_reg != nullptr && self.AsOid().class_id == run_class) {
      continue;  // extends the current run
    }
    VODAK_RETURN_IF_ERROR(flush_run(i));
    const ClassDef* cls = ctx.catalog->FindClassById(self.AsOid().class_id);
    if (cls == nullptr) {
      return Status::NotFound("receiver " + self.AsOid().ToString() +
                              " has unknown class");
    }
    const RegisteredMethod* reg =
        Find(cls->name(), method, MethodLevel::kInstance);
    if (reg == nullptr) {
      return Status::NotFound("class '" + cls->name() +
                              "' has no instance method '" + method + "'");
    }
    if (reg->sig.params.size() != args.size()) {
      return Status::InvalidArgument(
          "method '" + method + "' expects " +
          std::to_string(reg->sig.params.size()) + " arguments, got " +
          std::to_string(args.size()));
    }
    run_reg = reg;
    run_class = self.AsOid().class_id;
    run_begin = i;
  }
  return flush_run(n);
}

Status MethodRegistry::InvokeClassBatch(
    MethodCallContext& ctx, const std::string& class_name,
    const std::string& method, size_t num_rows,
    const std::vector<ValueColumn>& args, ValueColumn* out) const {
  // A zero-row batch dispatches nothing — not even the method lookup —
  // exactly like the row loop it replaces.
  if (num_rows == 0) return Status::OK();
  const RegisteredMethod* reg =
      Find(class_name, method, MethodLevel::kClassObject);
  if (reg == nullptr) {
    return Status::NotFound("class object '" + class_name +
                            "' has no method '" + method + "'");
  }
  if (reg->sig.params.size() != args.size()) {
    return Status::InvalidArgument(
        "method '" + method + "' expects " +
        std::to_string(reg->sig.params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  for (const ValueColumn& col : args) {
    if (col.size() != num_rows) {
      return Status::InvalidArgument(
          "batch method '" + method + "': argument column of " +
          std::to_string(col.size()) + " rows for " +
          std::to_string(num_rows) + " rows");
    }
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  static const ValueColumn kNoSelves;
  if (reg->impl.native_batch) {
    if (inner.depth > kMaxMethodDepth) {
      return Status::ExecError("method recursion limit exceeded in '" +
                               reg->sig.name + "'");
    }
    reg->invocations.fetch_add(1, std::memory_order_relaxed);
    total_invocations_.fetch_add(1, std::memory_order_relaxed);
    reg->batch_invocations.fetch_add(1, std::memory_order_relaxed);
    reg->batch_rows.fetch_add(num_rows, std::memory_order_relaxed);
    return reg->impl.native_batch(inner, kNoSelves, num_rows, args, out);
  }
  std::vector<Value> row_args(args.size());
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t a = 0; a < args.size(); ++a) row_args[a] = args[a][i];
    VODAK_ASSIGN_OR_RETURN(
        Value v, Dispatch(inner, *reg, Value::Null(), row_args));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Result<Value> MethodRegistry::InvokeInstance(
    MethodCallContext& ctx, Oid self, const std::string& method,
    const std::vector<Value>& args) const {
  const ClassDef* cls = ctx.catalog->FindClassById(self.class_id);
  if (cls == nullptr) {
    return Status::NotFound("receiver " + self.ToString() +
                            " has unknown class");
  }
  const RegisteredMethod* reg =
      Find(cls->name(), method, MethodLevel::kInstance);
  if (reg == nullptr) {
    return Status::NotFound("class '" + cls->name() +
                            "' has no instance method '" + method + "'");
  }
  if (reg->sig.params.size() != args.size()) {
    return Status::InvalidArgument(
        "method '" + method + "' expects " +
        std::to_string(reg->sig.params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  return Dispatch(inner, *reg, Value::OfOid(self), args);
}

Result<Value> MethodRegistry::InvokeClass(
    MethodCallContext& ctx, const std::string& class_name,
    const std::string& method, const std::vector<Value>& args) const {
  const RegisteredMethod* reg =
      Find(class_name, method, MethodLevel::kClassObject);
  if (reg == nullptr) {
    return Status::NotFound("class object '" + class_name +
                            "' has no method '" + method + "'");
  }
  if (reg->sig.params.size() != args.size()) {
    return Status::InvalidArgument(
        "method '" + method + "' expects " +
        std::to_string(reg->sig.params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  return Dispatch(inner, *reg, Value::Null(), args);
}

uint64_t MethodRegistry::invocation_count(const std::string& class_name,
                                          const std::string& method,
                                          MethodLevel level) const {
  const RegisteredMethod* reg = Find(class_name, method, level);
  return reg == nullptr
             ? 0
             : reg->invocations.load(std::memory_order_relaxed);
}

uint64_t MethodRegistry::batch_invocation_count(
    const std::string& class_name, const std::string& method,
    MethodLevel level) const {
  const RegisteredMethod* reg = Find(class_name, method, level);
  return reg == nullptr
             ? 0
             : reg->batch_invocations.load(std::memory_order_relaxed);
}

uint64_t MethodRegistry::batch_row_count(const std::string& class_name,
                                         const std::string& method,
                                         MethodLevel level) const {
  const RegisteredMethod* reg = Find(class_name, method, level);
  return reg == nullptr
             ? 0
             : reg->batch_rows.load(std::memory_order_relaxed);
}

void MethodRegistry::ResetCounters() {
  // Relaxed, like every bump of these counters: the reset runs while
  // no query is in flight, and an implicit assignment would pay a
  // seq_cst fence for ordering nobody reads.
  for (auto& [key, method] : methods_) {
    method.invocations.store(0, std::memory_order_relaxed);
    method.batch_invocations.store(0, std::memory_order_relaxed);
    method.batch_rows.store(0, std::memory_order_relaxed);
  }
  total_invocations_.store(0, std::memory_order_relaxed);
}

}  // namespace vodak
