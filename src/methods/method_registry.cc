#include "methods/method_registry.h"

namespace vodak {

namespace {
constexpr int kMaxMethodDepth = 64;
}  // namespace

Result<Value> ReadPropertyByName(const Catalog& catalog,
                                 const ObjectStore& store, Oid oid,
                                 const std::string& property) {
  const ClassDef* cls = catalog.FindClassById(oid.class_id);
  if (cls == nullptr) {
    return Status::NotFound("oid " + oid.ToString() +
                            " refers to unknown class");
  }
  const PropertyDef* prop = cls->FindProperty(property);
  if (prop == nullptr) {
    return Status::NotFound("class '" + cls->name() +
                            "' has no property '" + property + "'");
  }
  return store.GetProperty(oid, prop->slot);
}

Status MethodRegistry::Register(const std::string& class_name,
                                MethodSig sig, MethodImpl impl,
                                MethodCost cost) {
  Key key{class_name, sig.name, sig.level};
  if (methods_.count(key) > 0) {
    return Status::AlreadyExists("method implementation '" + class_name +
                                 "::" + sig.name + "'");
  }
  RegisteredMethod method;
  method.sig = std::move(sig);
  method.impl = std::move(impl);
  method.cost = cost;
  methods_.emplace(std::move(key), std::move(method));
  return Status::OK();
}

Status MethodRegistry::InstallQueryThunk(const std::string& class_name,
                                         const std::string& method,
                                         MethodLevel level, NativeFn thunk) {
  auto it = methods_.find(Key{class_name, method, level});
  if (it == methods_.end()) {
    return Status::NotFound("method '" + class_name + "::" + method + "'");
  }
  if (it->second.impl.kind != MethodImplKind::kQueryDefined) {
    return Status::InvalidArgument("method '" + class_name + "::" + method +
                                   "' is not query-defined");
  }
  it->second.impl.native = std::move(thunk);
  return Status::OK();
}

const MethodRegistry::RegisteredMethod* MethodRegistry::Find(
    const std::string& class_name, const std::string& method,
    MethodLevel level) const {
  auto it = methods_.find(Key{class_name, method, level});
  return it == methods_.end() ? nullptr : &it->second;
}

const MethodRegistry::RegisteredMethod* MethodRegistry::FindAny(
    const std::string& method, MethodLevel level) const {
  for (const auto& [key, reg] : methods_) {
    if (key.method == method && key.level == level) return &reg;
  }
  return nullptr;
}

Status MethodRegistry::SetCost(const std::string& class_name,
                               const std::string& method, MethodLevel level,
                               MethodCost cost) {
  auto it = methods_.find(Key{class_name, method, level});
  if (it == methods_.end()) {
    return Status::NotFound("method '" + class_name + "::" + method + "'");
  }
  it->second.cost = cost;
  return Status::OK();
}

Result<Value> MethodRegistry::EvalPath(
    MethodCallContext& ctx, const std::vector<std::string>& path,
    Oid self) const {
  Value current = Value::OfOid(self);
  for (const std::string& step : path) {
    if (!current.is_oid()) {
      return Status::ExecError("path method step '" + step +
                               "' applied to non-object value " +
                               current.ToString());
    }
    if (current.AsOid().IsNull()) return Value::Null();
    VODAK_ASSIGN_OR_RETURN(
        current,
        ReadPropertyByName(*ctx.catalog, *ctx.store, current.AsOid(), step));
  }
  return current;
}

Result<Value> MethodRegistry::Dispatch(MethodCallContext& ctx,
                                       const RegisteredMethod& method,
                                       const Value& self,
                                       const std::vector<Value>& args) const {
  if (ctx.depth > kMaxMethodDepth) {
    return Status::ExecError("method recursion limit exceeded in '" +
                             method.sig.name + "'");
  }
  method.invocations.fetch_add(1, std::memory_order_relaxed);
  total_invocations_.fetch_add(1, std::memory_order_relaxed);
  switch (method.impl.kind) {
    case MethodImplKind::kPath:
      if (!self.is_oid()) {
        return Status::ExecError("path method '" + method.sig.name +
                                 "' needs an object receiver");
      }
      return EvalPath(ctx, method.impl.path, self.AsOid());
    case MethodImplKind::kNative:
    case MethodImplKind::kQueryDefined:
      if (!method.impl.native) {
        return Status::Internal("method '" + method.sig.name +
                                "' has no runnable implementation");
      }
      return method.impl.native(ctx, self, args);
  }
  return Status::Internal("unreachable method dispatch");
}

Result<Value> MethodRegistry::InvokeInstance(
    MethodCallContext& ctx, Oid self, const std::string& method,
    const std::vector<Value>& args) const {
  const ClassDef* cls = ctx.catalog->FindClassById(self.class_id);
  if (cls == nullptr) {
    return Status::NotFound("receiver " + self.ToString() +
                            " has unknown class");
  }
  const RegisteredMethod* reg =
      Find(cls->name(), method, MethodLevel::kInstance);
  if (reg == nullptr) {
    return Status::NotFound("class '" + cls->name() +
                            "' has no instance method '" + method + "'");
  }
  if (reg->sig.params.size() != args.size()) {
    return Status::InvalidArgument(
        "method '" + method + "' expects " +
        std::to_string(reg->sig.params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  return Dispatch(inner, *reg, Value::OfOid(self), args);
}

Result<Value> MethodRegistry::InvokeClass(
    MethodCallContext& ctx, const std::string& class_name,
    const std::string& method, const std::vector<Value>& args) const {
  const RegisteredMethod* reg =
      Find(class_name, method, MethodLevel::kClassObject);
  if (reg == nullptr) {
    return Status::NotFound("class object '" + class_name +
                            "' has no method '" + method + "'");
  }
  if (reg->sig.params.size() != args.size()) {
    return Status::InvalidArgument(
        "method '" + method + "' expects " +
        std::to_string(reg->sig.params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  MethodCallContext inner = ctx;
  ++inner.depth;
  return Dispatch(inner, *reg, Value::Null(), args);
}

uint64_t MethodRegistry::invocation_count(const std::string& class_name,
                                          const std::string& method,
                                          MethodLevel level) const {
  const RegisteredMethod* reg = Find(class_name, method, level);
  return reg == nullptr
             ? 0
             : reg->invocations.load(std::memory_order_relaxed);
}

void MethodRegistry::ResetCounters() {
  for (auto& [key, method] : methods_) method.invocations = 0;
  total_invocations_ = 0;
}

}  // namespace vodak
