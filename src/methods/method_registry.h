// Method registry: implementation dispatch for instance/class-object
// methods, including the set-at-a-time (batch) method ABI. The ABI and
// its masking rules are documented in docs/ARCHITECTURE.md §"The batch
// method ABI".
#ifndef VODAK_METHODS_METHOD_REGISTRY_H_
#define VODAK_METHODS_METHOD_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "objstore/object_store.h"
#include "schema/catalog.h"
#include "types/value.h"

namespace vodak {

class MethodRegistry;

/// One value per row of a batch. This is the unit of set-at-a-time
/// method dispatch and of batched expression evaluation (expr/expr_eval.h
/// builds its batch environments from these columns).
using ValueColumn = std::vector<Value>;

/// Everything a method body may touch. Native method implementations
/// receive this so that internally-encoded methods (like
/// `Paragraph::document`) can read properties and invoke other methods,
/// while external methods typically capture their own state (an index)
/// in the closure instead.
struct MethodCallContext {
  const Catalog* catalog = nullptr;
  ObjectStore* store = nullptr;
  MethodRegistry* methods = nullptr;
  /// Recursion guard for method bodies calling methods.
  int depth = 0;
  /// Epoch every store read inside the method resolves at — inherited
  /// from the calling query's pinned snapshot (trailing field so the
  /// existing {catalog, store, methods, depth} brace-inits default it).
  Epoch snapshot_epoch = kEpochLatest;
};

/// A native method body. `self` is the receiver instance Oid for
/// instance methods and the null Value for class-object methods.
using NativeFn = std::function<Result<Value>(
    MethodCallContext&, const Value& self, const std::vector<Value>& args)>;

/// A native set-at-a-time method body: one dispatch evaluates the method
/// for a whole batch of rows, so an external implementation can amortize
/// its fixed work (index probes, argument tokenization, property-column
/// reads, stats bumps) across the batch.
///
/// Contract (see docs/ARCHITECTURE.md):
///  - Instance methods: `selves` holds `num_rows` receiver Oid values —
///    never NULL and all of the same class (the registry splits
///    heterogeneous batches into class-homogeneous runs and strips NULL
///    receivers before dispatch, so masked rows can never reach a body).
///    Rows masked out upstream — by an AND/OR short-circuit or by a
///    RowBatch selection vector — are physically absent from the
///    columns a body receives: the batched evaluator gathers only the
///    live rows into the dense batch it dispatches (docs/ARCHITECTURE.md
///    §"Selection vectors"), so a body never needs to (and cannot)
///    check a selection itself.
///  - Class-object methods: `selves` is empty; `num_rows` gives the
///    batch size.
///  - `args[a][i]` is argument `a` of row `i`; arity is pre-checked.
///  - The body must append exactly `num_rows` results to `*out`, row i's
///    result at position out-size-on-entry + i, and must fail (return a
///    non-OK Status) exactly when the scalar form would fail on at least
///    one row of the batch.
using NativeBatchFn = std::function<Status(
    MethodCallContext&, const ValueColumn& selves, size_t num_rows,
    const std::vector<ValueColumn>& args, ValueColumn* out)>;

/// The paper's implementation dimension (§2.1): internally encoded
/// (kPath covers the `RETURN section.document` style; kNative with
/// `is_external=false` covers other internal code), externally
/// implemented (kNative with `is_external=true`), and methods whose body
/// is a declarative query (§5.1 "methods may incorporate queries").
enum class MethodImplKind { kNative, kPath, kQueryDefined };

/// Implementation payload of a registered method.
struct MethodImpl {
  MethodImplKind kind = MethodImplKind::kNative;
  NativeFn native;
  /// Optional set-at-a-time implementation. When present, the batch
  /// entry points dispatch whole (masked, class-homogeneous) batches to
  /// it; when absent they fall back to a row loop over `native`/`path`.
  NativeBatchFn native_batch;
  /// For kPath: the property chain, e.g. {"section", "document"}.
  std::vector<std::string> path;
  /// For kQueryDefined: the VQL text (documentation / rule derivation);
  /// the runnable thunk is installed into `native` by the engine.
  std::string query_text;
  /// Marks the §2.1 external-implementation category (IR functions etc.).
  bool is_external = false;
};

/// Optimizer-facing cost annotations (§2.3: "attributes are assumed to be
/// obtained at uniform access cost. This is not true for methods").
struct MethodCost {
  /// Abstract cost units of the *marginal* per-row work of one
  /// invocation (property read = 1.0). For methods without a batch
  /// implementation this is the whole per-call cost, exactly as before
  /// the set-at-a-time ABI.
  double per_call = 1.0;
  /// For boolean methods: fraction of receivers evaluating to TRUE.
  double selectivity = 0.5;
  /// For set-valued methods: expected result cardinality.
  double fanout = 1.0;
  /// Fixed per-dispatch setup cost that a batch implementation pays once
  /// per batch and amortizes across its rows (index probe, query
  /// tokenization, property-slot resolution). 0 for scalar-only methods;
  /// the cost model divides it by the assumed batch size when pricing
  /// per-row method calls under the batch ABI.
  double batch_setup = 0.0;
};

/// Registry of method implementations and runtime statistics, keyed by
/// (class name, level, method name). The registry performs dispatch and
/// counts invocations; counters feed the benchmark harness.
class MethodRegistry {
 public:
  struct RegisteredMethod {
    MethodSig sig;
    MethodImpl impl;
    MethodCost cost;
    /// Dispatches of the implementation. A scalar dispatch counts 1 per
    /// row; a native batch dispatch counts 1 per *batch* — that is the
    /// observable amortization the method_batch_test counters assert.
    /// Relaxed atomic: dispatch is counted from parallel morsel workers.
    mutable std::atomic<uint64_t> invocations{0};
    /// Set-at-a-time dispatches (one per batch handed to native_batch).
    mutable std::atomic<uint64_t> batch_invocations{0};
    /// Rows evaluated through native_batch dispatches.
    mutable std::atomic<uint64_t> batch_rows{0};

    RegisteredMethod() = default;
    // Moved once at registration time (atomics are not movable).
    RegisteredMethod(RegisteredMethod&& other) noexcept
        : sig(std::move(other.sig)),
          impl(std::move(other.impl)),
          cost(other.cost),
          invocations(
              other.invocations.load(std::memory_order_relaxed)),
          batch_invocations(
              other.batch_invocations.load(std::memory_order_relaxed)),
          batch_rows(other.batch_rows.load(std::memory_order_relaxed)) {}
  };

  MethodRegistry() = default;
  MethodRegistry(const MethodRegistry&) = delete;
  MethodRegistry& operator=(const MethodRegistry&) = delete;

  /// Registers an implementation for a method already declared in the
  /// catalog class `class_name`.
  Status Register(const std::string& class_name, MethodSig sig,
                  MethodImpl impl, MethodCost cost = MethodCost{});

  /// Replaces the runnable thunk of a query-defined method (installed by
  /// the engine once the interpreter exists).
  Status InstallQueryThunk(const std::string& class_name,
                           const std::string& method, MethodLevel level,
                           NativeFn thunk);

  const RegisteredMethod* Find(const std::string& class_name,
                               const std::string& method,
                               MethodLevel level) const;

  /// Replaces the cost annotation of a registered method. Called after
  /// data load to calibrate the optimizer's statistics to the corpus.
  Status SetCost(const std::string& class_name, const std::string& method,
                 MethodLevel level, MethodCost cost);

  /// First registered method with this name at this level, regardless of
  /// class. Used by the cost model when the receiver class cannot be
  /// inferred from an expression alone.
  const RegisteredMethod* FindAny(const std::string& method,
                                  MethodLevel level) const;

  /// Dispatches an instance method on receiver `self`.
  Result<Value> InvokeInstance(MethodCallContext& ctx, Oid self,
                               const std::string& method,
                               const std::vector<Value>& args) const;

  /// Dispatches a class-object (OWNTYPE) method.
  Result<Value> InvokeClass(MethodCallContext& ctx,
                            const std::string& class_name,
                            const std::string& method,
                            const std::vector<Value>& args) const;

  /// Set-at-a-time dispatch of an instance method: appends one result
  /// per row of `selves` to `*out`, in row order, semantically identical
  /// to calling InvokeInstance row by row except that rows whose
  /// receiver is NULL (the null Value or a null Oid) yield NIL *without
  /// invoking the method* — the callers' mask/short-circuit machinery
  /// (expr/expr_eval_batch.cc) represents masked-out rows that way.
  /// `args` holds one column per declared parameter, each selves.size()
  /// rows long. Consecutive same-class receivers with a native_batch
  /// implementation are dispatched as one batch; everything else falls
  /// back to a per-row scalar dispatch that preserves today's semantics
  /// (and per-row invocation counts) exactly.
  Status InvokeInstanceBatch(MethodCallContext& ctx,
                             const ValueColumn& selves,
                             const std::string& method,
                             const std::vector<ValueColumn>& args,
                             ValueColumn* out) const;

  /// Set-at-a-time dispatch of a class-object method over `num_rows`
  /// rows of argument columns. A native_batch implementation receives
  /// the whole batch at once (and typically dedups repeated argument
  /// rows into one external probe); otherwise each row is dispatched
  /// through the scalar implementation.
  Status InvokeClassBatch(MethodCallContext& ctx,
                          const std::string& class_name,
                          const std::string& method, size_t num_rows,
                          const std::vector<ValueColumn>& args,
                          ValueColumn* out) const;

  uint64_t invocation_count(const std::string& class_name,
                            const std::string& method,
                            MethodLevel level) const;
  /// Set-at-a-time dispatches (batches handed to a native_batch body).
  uint64_t batch_invocation_count(const std::string& class_name,
                                  const std::string& method,
                                  MethodLevel level) const;
  /// Rows evaluated through native_batch dispatches.
  uint64_t batch_row_count(const std::string& class_name,
                           const std::string& method,
                           MethodLevel level) const;
  void ResetCounters();

  /// Total method invocations since construction/reset.
  uint64_t total_invocations() const {
    return total_invocations_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::string class_name;
    std::string method;
    MethodLevel level;
    bool operator<(const Key& o) const {
      if (class_name != o.class_name) return class_name < o.class_name;
      if (method != o.method) return method < o.method;
      return level < o.level;
    }
  };

  Result<Value> Dispatch(MethodCallContext& ctx,
                         const RegisteredMethod& method, const Value& self,
                         const std::vector<Value>& args) const;

  /// One class-homogeneous run of a batch dispatch: rows [begin, end) of
  /// selves/args all have class `reg`. Uses native_batch when available,
  /// otherwise the scalar row loop.
  Status DispatchRun(MethodCallContext& ctx, const RegisteredMethod& reg,
                     const ValueColumn& selves,
                     const std::vector<ValueColumn>& args, size_t begin,
                     size_t end, ValueColumn* out) const;

  Result<Value> EvalPath(MethodCallContext& ctx,
                         const std::vector<std::string>& path,
                         Oid self) const;

  std::map<Key, RegisteredMethod> methods_;
  mutable std::atomic<uint64_t> total_invocations_{0};
};

/// Resolves a property of `oid` by name through the catalog and reads it
/// from the store at epoch `at`. Shared helper for path methods, the
/// interpreter and the physical operators.
Result<Value> ReadPropertyByName(const Catalog& catalog,
                                 const ObjectStore& store, Oid oid,
                                 const std::string& property,
                                 Epoch at = kEpochLatest);

}  // namespace vodak

#endif  // VODAK_METHODS_METHOD_REGISTRY_H_
