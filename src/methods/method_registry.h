#ifndef VODAK_METHODS_METHOD_REGISTRY_H_
#define VODAK_METHODS_METHOD_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "objstore/object_store.h"
#include "schema/catalog.h"
#include "types/value.h"

namespace vodak {

class MethodRegistry;

/// Everything a method body may touch. Native method implementations
/// receive this so that internally-encoded methods (like
/// `Paragraph::document`) can read properties and invoke other methods,
/// while external methods typically capture their own state (an index)
/// in the closure instead.
struct MethodCallContext {
  const Catalog* catalog = nullptr;
  ObjectStore* store = nullptr;
  MethodRegistry* methods = nullptr;
  /// Recursion guard for method bodies calling methods.
  int depth = 0;
};

/// A native method body. `self` is the receiver instance Oid for
/// instance methods and the null Value for class-object methods.
using NativeFn = std::function<Result<Value>(
    MethodCallContext&, const Value& self, const std::vector<Value>& args)>;

/// The paper's implementation dimension (§2.1): internally encoded
/// (kPath covers the `RETURN section.document` style; kNative with
/// `is_external=false` covers other internal code), externally
/// implemented (kNative with `is_external=true`), and methods whose body
/// is a declarative query (§5.1 "methods may incorporate queries").
enum class MethodImplKind { kNative, kPath, kQueryDefined };

/// Implementation payload of a registered method.
struct MethodImpl {
  MethodImplKind kind = MethodImplKind::kNative;
  NativeFn native;
  /// For kPath: the property chain, e.g. {"section", "document"}.
  std::vector<std::string> path;
  /// For kQueryDefined: the VQL text (documentation / rule derivation);
  /// the runnable thunk is installed into `native` by the engine.
  std::string query_text;
  /// Marks the §2.1 external-implementation category (IR functions etc.).
  bool is_external = false;
};

/// Optimizer-facing cost annotations (§2.3: "attributes are assumed to be
/// obtained at uniform access cost. This is not true for methods").
struct MethodCost {
  /// Abstract cost units per invocation (property read = 1.0).
  double per_call = 1.0;
  /// For boolean methods: fraction of receivers evaluating to TRUE.
  double selectivity = 0.5;
  /// For set-valued methods: expected result cardinality.
  double fanout = 1.0;
};

/// Registry of method implementations and runtime statistics, keyed by
/// (class name, level, method name). The registry performs dispatch and
/// counts invocations; counters feed the benchmark harness.
class MethodRegistry {
 public:
  struct RegisteredMethod {
    MethodSig sig;
    MethodImpl impl;
    MethodCost cost;
    /// Relaxed atomic: dispatch is counted from parallel morsel workers.
    mutable std::atomic<uint64_t> invocations{0};

    RegisteredMethod() = default;
    // Moved once at registration time (atomics are not movable).
    RegisteredMethod(RegisteredMethod&& other) noexcept
        : sig(std::move(other.sig)),
          impl(std::move(other.impl)),
          cost(other.cost),
          invocations(
              other.invocations.load(std::memory_order_relaxed)) {}
  };

  MethodRegistry() = default;
  MethodRegistry(const MethodRegistry&) = delete;
  MethodRegistry& operator=(const MethodRegistry&) = delete;

  /// Registers an implementation for a method already declared in the
  /// catalog class `class_name`.
  Status Register(const std::string& class_name, MethodSig sig,
                  MethodImpl impl, MethodCost cost = MethodCost{});

  /// Replaces the runnable thunk of a query-defined method (installed by
  /// the engine once the interpreter exists).
  Status InstallQueryThunk(const std::string& class_name,
                           const std::string& method, MethodLevel level,
                           NativeFn thunk);

  const RegisteredMethod* Find(const std::string& class_name,
                               const std::string& method,
                               MethodLevel level) const;

  /// Replaces the cost annotation of a registered method. Called after
  /// data load to calibrate the optimizer's statistics to the corpus.
  Status SetCost(const std::string& class_name, const std::string& method,
                 MethodLevel level, MethodCost cost);

  /// First registered method with this name at this level, regardless of
  /// class. Used by the cost model when the receiver class cannot be
  /// inferred from an expression alone.
  const RegisteredMethod* FindAny(const std::string& method,
                                  MethodLevel level) const;

  /// Dispatches an instance method on receiver `self`.
  Result<Value> InvokeInstance(MethodCallContext& ctx, Oid self,
                               const std::string& method,
                               const std::vector<Value>& args) const;

  /// Dispatches a class-object (OWNTYPE) method.
  Result<Value> InvokeClass(MethodCallContext& ctx,
                            const std::string& class_name,
                            const std::string& method,
                            const std::vector<Value>& args) const;

  uint64_t invocation_count(const std::string& class_name,
                            const std::string& method,
                            MethodLevel level) const;
  void ResetCounters();

  /// Total method invocations since construction/reset.
  uint64_t total_invocations() const {
    return total_invocations_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::string class_name;
    std::string method;
    MethodLevel level;
    bool operator<(const Key& o) const {
      if (class_name != o.class_name) return class_name < o.class_name;
      if (method != o.method) return method < o.method;
      return level < o.level;
    }
  };

  Result<Value> Dispatch(MethodCallContext& ctx,
                         const RegisteredMethod& method, const Value& self,
                         const std::vector<Value>& args) const;

  Result<Value> EvalPath(MethodCallContext& ctx,
                         const std::vector<std::string>& path,
                         Oid self) const;

  std::map<Key, RegisteredMethod> methods_;
  mutable std::atomic<uint64_t> total_invocations_{0};
};

/// Resolves a property of `oid` by name through the catalog and reads it
/// from the store. Shared helper for path methods, the interpreter and
/// the physical operators.
Result<Value> ReadPropertyByName(const Catalog& catalog,
                                 const ObjectStore& store, Oid oid,
                                 const std::string& property);

}  // namespace vodak

#endif  // VODAK_METHODS_METHOD_REGISTRY_H_
