// The global epoch counter's value type, shared by every layer that
// pins or resolves snapshots (docs/ARCHITECTURE.md §"Writes, epochs &
// snapshot isolation"). Lives in its own header so expr/exec/engine
// code can name an Epoch without pulling in the whole object store.
#ifndef VODAK_OBJSTORE_EPOCH_H_
#define VODAK_OBJSTORE_EPOCH_H_

#include <cstdint>

namespace vodak {

/// Monotone commit stamp. Epoch 0 is the empty store; every committed
/// mutation batch bumps it by one. A version chain entry covers the
/// half-open epoch interval [begin, end).
using Epoch = uint64_t;

/// Sentinel passed to read APIs meaning "resolve to the newest
/// committed epoch at the moment the read takes the store lock", and
/// used as the `end` stamp of a chain's current (unsuperseded) version.
inline constexpr Epoch kEpochLatest = ~static_cast<Epoch>(0);

}  // namespace vodak

#endif  // VODAK_OBJSTORE_EPOCH_H_
