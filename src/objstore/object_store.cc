#include "objstore/object_store.h"

#include <chrono>

namespace vodak {

ObjectStore::~ObjectStore() { StopBackgroundReclaim(); }

uint32_t ObjectStore::RegisterClass(std::string debug_name,
                                    uint32_t slot_count) {
  WriterLock lock(data_mu_);
  ClassStorage storage;
  storage.debug_name = std::move(debug_name);
  storage.slot_count = slot_count;
  classes_.push_back(std::move(storage));
  return static_cast<uint32_t>(classes_.size());
}

uint32_t ObjectStore::class_count() const {
  SharedLock lock(data_mu_);
  return static_cast<uint32_t>(classes_.size());
}

const ObjectStore::ClassStorage* ObjectStore::FindClass(
    uint32_t class_id) const {
  if (class_id == 0 || class_id > classes_.size()) return nullptr;
  return &classes_[class_id - 1];
}

ObjectStore::ClassStorage* ObjectStore::FindClassMutable(uint32_t class_id) {
  if (class_id == 0 || class_id > classes_.size()) return nullptr;
  return &classes_[class_id - 1];
}

const ObjectStore::Version* ObjectStore::VisibleVersion(const Instance& inst,
                                                        Epoch at) {
  // Reverse scan: chains are short (reclaim trims them) and the newest
  // entry is the common hit for latest-epoch reads.
  for (auto it = inst.versions.rbegin(); it != inst.versions.rend(); ++it) {
    if (it->begin <= at) {
      return it->end > at ? &*it : nullptr;
    }
  }
  return nullptr;
}

bool ObjectStore::AnyPins() const {
  MutexLock lock(pin_mu_);
  return !pins_.empty();
}

Status ObjectStore::CheckOid(Oid oid, uint32_t slot, const char* op,
                             Epoch at) const {
  const ClassStorage* cls = FindClass(oid.class_id);
  if (cls == nullptr) {
    return Status::NotFound(std::string(op) + ": unknown class in oid " +
                            oid.ToString());
  }
  if (oid.local == 0 || oid.local > cls->instances.size()) {
    return Status::NotFound(std::string(op) + ": dangling oid " +
                            oid.ToString());
  }
  const Version* v = VisibleVersion(cls->instances[oid.local - 1], at);
  if (v == nullptr || !v->live) {
    return Status::NotFound(std::string(op) + ": dangling oid " +
                            oid.ToString());
  }
  if (slot >= cls->slot_count) {
    return Status::InvalidArgument(std::string(op) + ": slot " +
                                   std::to_string(slot) +
                                   " out of range for class '" +
                                   cls->debug_name + "'");
  }
  return Status::OK();
}

Result<Oid> ObjectStore::CreateObject(uint32_t class_id) {
  WriterLock lock(data_mu_);
  ClassStorage* cls = FindClassMutable(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  Version v;
  v.live = true;
  v.slots.assign(cls->slot_count, Value::Null());
  if (AnyPins()) {
    // Readers hold snapshots: stamp the new object with a fresh epoch so
    // no pinned reader's extent grows underneath it.
    const Epoch commit = epoch_.load(std::memory_order_acquire) + 1;
    v.begin = commit;
    stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
    stats_.epochs_committed.fetch_add(1, std::memory_order_relaxed);
    epoch_.store(commit, std::memory_order_release);
  } else {
    // Bulk-load fast path: no reader can observe an intermediate state,
    // so the object appears at the current epoch without a bump and
    // without version churn.
    v.begin = epoch_.load(std::memory_order_acquire);
  }
  Instance inst;
  inst.versions.push_back(std::move(v));
  cls->instances.push_back(std::move(inst));
  ++cls->live_count;
  stats_.objects_created.fetch_add(1, std::memory_order_relaxed);
  // local ids start at 1 so that Oid{0,0} stays the NIL reference.
  return Oid(class_id, static_cast<uint32_t>(cls->instances.size()));
}

ObjectStore::Version* ObjectStore::MutableVersionAt(Instance* inst,
                                                    Epoch commit) {
  Version& head = inst->versions.back();
  if (head.begin == commit) {
    // Already copied for this commit (second touch within one batch):
    // compose in place — the batch is atomic, intermediate states are
    // never visible.
    return &head;
  }
  Version next = head;  // copy-on-write
  next.begin = commit;
  next.end = kEpochLatest;
  head.end = commit;
  inst->versions.push_back(std::move(next));
  stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
  return &inst->versions.back();
}

Status ObjectStore::DeleteObject(Oid oid) {
  WriterLock lock(data_mu_);
  VODAK_RETURN_IF_ERROR(
      CheckOid(oid, /*slot=*/0, "delete", ResolveEpoch(kEpochLatest)));
  Instance& inst = classes_[oid.class_id - 1].instances[oid.local - 1];
  if (AnyPins()) {
    const Epoch commit = epoch_.load(std::memory_order_acquire) + 1;
    Version tomb;
    tomb.begin = commit;
    tomb.live = false;
    inst.versions.back().end = commit;
    inst.versions.push_back(std::move(tomb));
    stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
    stats_.epochs_committed.fetch_add(1, std::memory_order_relaxed);
    epoch_.store(commit, std::memory_order_release);
  } else {
    Version& head = inst.versions.back();
    head.live = false;
    head.slots.clear();
  }
  --classes_[oid.class_id - 1].live_count;
  stats_.objects_deleted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool ObjectStore::Exists(Oid oid, Epoch at) const {
  SharedLock lock(data_mu_);
  const ClassStorage* cls = FindClass(oid.class_id);
  if (cls == nullptr) return false;
  if (oid.local == 0 || oid.local > cls->instances.size()) return false;
  const Version* v =
      VisibleVersion(cls->instances[oid.local - 1], ResolveEpoch(at));
  return v != nullptr && v->live;
}

Result<Value> ObjectStore::GetProperty(Oid oid, uint32_t slot,
                                       Epoch at) const {
  SharedLock lock(data_mu_);
  const Epoch epoch = ResolveEpoch(at);
  VODAK_RETURN_IF_ERROR(CheckOid(oid, slot, "get", epoch));
  // Relaxed: per-row reads happen from parallel workers; a seq_cst RMW
  // here would ping-pong the stats cache line across cores.
  stats_.property_reads.fetch_add(1, std::memory_order_relaxed);
  if (at != kEpochLatest) {
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  }
  return VisibleVersion(classes_[oid.class_id - 1].instances[oid.local - 1],
                        epoch)
      ->slots[slot];
}

Status ObjectStore::GetPropertyColumn(uint32_t class_id, uint32_t slot,
                                      const std::vector<uint32_t>& locals,
                                      std::vector<Value>* out,
                                      Epoch at) const {
  return GetPropertyColumn(class_id, slot, locals, 0, locals.size(), out, at);
}

Status ObjectStore::GetPropertyColumn(uint32_t class_id, uint32_t slot,
                                      const std::vector<uint32_t>& locals,
                                      size_t begin, size_t end,
                                      std::vector<Value>* out,
                                      Epoch at) const {
  SharedLock lock(data_mu_);
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("get: unknown class id " +
                            std::to_string(class_id));
  }
  if (slot >= cls->slot_count) {
    return Status::InvalidArgument(
        "get: slot " + std::to_string(slot) +
        " out of range for class '" + cls->debug_name + "'");
  }
  if (begin > end || end > locals.size()) {
    return Status::InvalidArgument(
        "get: column range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") out of bounds for " +
        std::to_string(locals.size()) + " locals");
  }
  const Epoch epoch = ResolveEpoch(at);
  size_t emitted = 0;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t local = locals[i];
    const Version* v =
        (local == 0 || local > cls->instances.size())
            ? nullptr
            : VisibleVersion(cls->instances[local - 1], epoch);
    if (v == nullptr || !v->live) {
      // Counted per object, like GetProperty: charge what was read
      // before the dangling reference stopped the column.
      stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
      return Status::NotFound("get: dangling oid " +
                              Oid(class_id, local).ToString());
    }
    out->push_back(v->slots[slot]);
    ++emitted;
  }
  stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
  if (at != kEpochLatest) {
    stats_.snapshot_reads.fetch_add(emitted, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ObjectStore::GetPropertyColumn(uint32_t class_id, uint32_t slot,
                                      const std::vector<Oid>& oids,
                                      size_t begin, size_t end,
                                      std::vector<Value>* out,
                                      Epoch at) const {
  SharedLock lock(data_mu_);
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("get: unknown class id " +
                            std::to_string(class_id));
  }
  if (slot >= cls->slot_count) {
    return Status::InvalidArgument(
        "get: slot " + std::to_string(slot) +
        " out of range for class '" + cls->debug_name + "'");
  }
  if (begin > end || end > oids.size()) {
    return Status::InvalidArgument(
        "get: column range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") out of bounds for " +
        std::to_string(oids.size()) + " oids");
  }
  const Epoch epoch = ResolveEpoch(at);
  size_t emitted = 0;
  for (size_t i = begin; i < end; ++i) {
    const Oid oid = oids[i];
    const Version* v =
        (oid.class_id != class_id || oid.local == 0 ||
         oid.local > cls->instances.size())
            ? nullptr
            : VisibleVersion(cls->instances[oid.local - 1], epoch);
    if (v == nullptr || !v->live) {
      // Counted per object, like GetProperty: charge what was read
      // before the dangling reference stopped the column.
      stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
      return Status::NotFound("get: dangling oid " + oid.ToString());
    }
    out->push_back(v->slots[slot]);
    ++emitted;
  }
  stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
  if (at != kEpochLatest) {
    stats_.snapshot_reads.fetch_add(emitted, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ObjectStore::SetProperty(Oid oid, uint32_t slot, Value value) {
  WriterLock lock(data_mu_);
  VODAK_RETURN_IF_ERROR(
      CheckOid(oid, slot, "set", ResolveEpoch(kEpochLatest)));
  stats_.property_writes.fetch_add(1, std::memory_order_relaxed);
  Instance& inst = classes_[oid.class_id - 1].instances[oid.local - 1];
  if (AnyPins()) {
    const Epoch commit = epoch_.load(std::memory_order_acquire) + 1;
    MutableVersionAt(&inst, commit)->slots[slot] = std::move(value);
    stats_.epochs_committed.fetch_add(1, std::memory_order_relaxed);
    epoch_.store(commit, std::memory_order_release);
  } else {
    inst.versions.back().slots[slot] = std::move(value);
  }
  return Status::OK();
}

Result<std::vector<Oid>> ObjectStore::Extent(uint32_t class_id,
                                             Epoch at) const {
  SharedLock lock(data_mu_);
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  stats_.extent_scans.fetch_add(1, std::memory_order_relaxed);
  if (at != kEpochLatest) {
    stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  }
  const Epoch epoch = ResolveEpoch(at);
  std::vector<Oid> out;
  out.reserve(cls->live_count);
  for (uint32_t i = 0; i < cls->instances.size(); ++i) {
    const Version* v = VisibleVersion(cls->instances[i], epoch);
    if (v != nullptr && v->live) out.emplace_back(class_id, i + 1);
  }
  return out;
}

Result<uint64_t> ObjectStore::ExtentSize(uint32_t class_id, Epoch at) const {
  SharedLock lock(data_mu_);
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  if (at == kEpochLatest) return cls->live_count;
  const Epoch epoch = ResolveEpoch(at);
  uint64_t count = 0;
  for (const Instance& inst : cls->instances) {
    const Version* v = VisibleVersion(inst, epoch);
    if (v != nullptr && v->live) ++count;
  }
  return count;
}

Result<MutationResult> ObjectStore::Apply(const std::vector<Mutation>& batch) {
  WriterLock lock(data_mu_);
  const Epoch pre = epoch_.load(std::memory_order_acquire);

  // Validate everything against the pre-batch state before touching
  // anything: a batch commits atomically or not at all. Track per-oid
  // deletes so a later mutation of a within-batch-deleted oid is
  // rejected here rather than corrupting a tombstone mid-apply.
  std::map<std::pair<uint32_t, uint32_t>, bool> dead_in_batch;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Mutation& m = batch[i];
    const std::string where = "mutation #" + std::to_string(i);
    switch (m.kind) {
      case Mutation::Kind::kInsert: {
        const ClassStorage* cls = FindClass(m.class_id);
        if (cls == nullptr) {
          return Status::NotFound(where + ": unknown class id " +
                                  std::to_string(m.class_id));
        }
        for (const auto& [slot, value] : m.sets) {
          if (slot >= cls->slot_count) {
            return Status::InvalidArgument(
                where + ": slot " + std::to_string(slot) +
                " out of range for class '" + cls->debug_name + "'");
          }
        }
        break;
      }
      case Mutation::Kind::kUpdate:
      case Mutation::Kind::kDelete: {
        const auto key = std::make_pair(m.oid.class_id, m.oid.local);
        if (dead_in_batch.count(key) != 0) {
          return Status::InvalidArgument(
              where + ": oid " + m.oid.ToString() +
              " already deleted earlier in this batch");
        }
        Status check = CheckOid(m.oid, /*slot=*/0,
                                m.kind == Mutation::Kind::kUpdate
                                    ? "update"
                                    : "delete",
                                pre);
        if (!check.ok()) {
          return Status(check.code(), where + ": " + check.message());
        }
        const ClassStorage* cls = FindClass(m.oid.class_id);
        for (const auto& [slot, value] : m.sets) {
          if (slot >= cls->slot_count) {
            return Status::InvalidArgument(
                where + ": slot " + std::to_string(slot) +
                " out of range for class '" + cls->debug_name + "'");
          }
        }
        if (m.kind == Mutation::Kind::kDelete) dead_in_batch[key] = true;
        break;
      }
    }
  }

  MutationResult result;
  if (batch.empty()) {
    result.epoch = pre;
    return result;
  }

  const Epoch commit = pre + 1;
  result.epoch = commit;
  for (const Mutation& m : batch) {
    switch (m.kind) {
      case Mutation::Kind::kInsert: {
        ClassStorage* cls = FindClassMutable(m.class_id);
        Version v;
        v.begin = commit;
        v.live = true;
        v.slots.assign(cls->slot_count, Value::Null());
        for (const auto& [slot, value] : m.sets) v.slots[slot] = value;
        Instance inst;
        inst.versions.push_back(std::move(v));
        cls->instances.push_back(std::move(inst));
        ++cls->live_count;
        result.created.emplace_back(
            m.class_id, static_cast<uint32_t>(cls->instances.size()));
        stats_.objects_created.fetch_add(1, std::memory_order_relaxed);
        stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
        stats_.property_writes.fetch_add(m.sets.size(),
                                         std::memory_order_relaxed);
        break;
      }
      case Mutation::Kind::kUpdate: {
        Instance& inst =
            classes_[m.oid.class_id - 1].instances[m.oid.local - 1];
        Version* v = MutableVersionAt(&inst, commit);
        for (const auto& [slot, value] : m.sets) v->slots[slot] = value;
        ++result.updated;
        stats_.property_writes.fetch_add(m.sets.size(),
                                         std::memory_order_relaxed);
        break;
      }
      case Mutation::Kind::kDelete: {
        Instance& inst =
            classes_[m.oid.class_id - 1].instances[m.oid.local - 1];
        Version& head = inst.versions.back();
        if (head.begin == commit) {
          // Inserted or updated earlier in this same batch: the batch is
          // atomic, so the intermediate version collapses into the
          // tombstone.
          head.live = false;
          head.slots.clear();
        } else {
          Version tomb;
          tomb.begin = commit;
          tomb.live = false;
          head.end = commit;
          inst.versions.push_back(std::move(tomb));
          stats_.versions_created.fetch_add(1, std::memory_order_relaxed);
        }
        --classes_[m.oid.class_id - 1].live_count;
        ++result.deleted;
        stats_.objects_deleted.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }

  stats_.epochs_committed.fetch_add(1, std::memory_order_relaxed);
  // Release-publish last: a PinEpoch that reads `commit` is guaranteed
  // to see every version this batch wrote.
  epoch_.store(commit, std::memory_order_release);
  return result;
}

Epoch ObjectStore::PinEpoch() {
  MutexLock lock(pin_mu_);
  // Acquire pairs with the release store in Apply: reading epoch C here
  // means every version of commit C is visible to this reader.
  const Epoch epoch = epoch_.load(std::memory_order_acquire);
  pins_[epoch] += 1;
  return epoch;
}

void ObjectStore::UnpinEpoch(Epoch epoch) {
  bool moved = false;
  {
    MutexLock lock(pin_mu_);
    auto it = pins_.find(epoch);
    if (it == pins_.end()) return;  // defensive: unmatched unpin
    if (--it->second == 0) {
      const bool was_oldest = it == pins_.begin();
      pins_.erase(it);
      if (was_oldest) {
        horizon_moved_ = true;
        moved = true;
      }
    }
  }
  if (moved) reclaim_cv_.notify_all();
}

Epoch ObjectStore::MinPinnedEpoch() const {
  MutexLock lock(pin_mu_);
  if (pins_.empty()) return epoch_.load(std::memory_order_acquire);
  return pins_.begin()->first;
}

size_t ObjectStore::Reclaim() {
  WriterLock lock(data_mu_);
  // data_mu_ before pin_mu_ (the store-wide order); with data_mu_ held
  // exclusively the horizon cannot advance past us mid-sweep: PinEpoch
  // only pins the current epoch, and every version we free is already
  // invisible at >= horizon.
  const Epoch horizon = MinPinnedEpoch();
  size_t freed = 0;
  for (ClassStorage& cls : classes_) {
    for (Instance& inst : cls.instances) {
      auto& versions = inst.versions;
      if (versions.size() <= 1) continue;
      size_t kept = 0;
      for (size_t i = 0; i < versions.size(); ++i) {
        // A version with end <= horizon is superseded at every epoch a
        // pinned or future reader can resolve: drop it. The current
        // version (end == kEpochLatest) always survives.
        if (versions[i].end != kEpochLatest && versions[i].end <= horizon) {
          ++freed;
          continue;
        }
        if (kept != i) versions[kept] = std::move(versions[i]);
        ++kept;
      }
      versions.resize(kept);
    }
  }
  stats_.versions_reclaimed.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void ObjectStore::StartBackgroundReclaim() {
  {
    MutexLock lock(pin_mu_);
    if (reclaim_running_) return;
    reclaim_running_ = true;
    stop_reclaim_ = false;
    horizon_moved_ = false;
  }
  reclaim_thread_ = std::thread([this] { ReclaimLoop(); });
}

void ObjectStore::StopBackgroundReclaim() {
  {
    MutexLock lock(pin_mu_);
    if (!reclaim_running_) return;
    stop_reclaim_ = true;
  }
  reclaim_cv_.notify_all();
  reclaim_thread_.join();
  MutexLock lock(pin_mu_);
  reclaim_running_ = false;
  stop_reclaim_ = false;
}

void ObjectStore::ReclaimLoop() {
  for (;;) {
    {
      UniqueLock lock(pin_mu_);
      if (!stop_reclaim_ && !horizon_moved_) {
        // Timed wait doubles as the periodic backstop: even without an
        // unpin signal the loop sweeps every ~50ms.
        reclaim_cv_.wait_for(lock, std::chrono::milliseconds(50));
      }
      if (stop_reclaim_) return;
      horizon_moved_ = false;
    }
    Reclaim();
  }
}

}  // namespace vodak
