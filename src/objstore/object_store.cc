#include "objstore/object_store.h"

namespace vodak {

uint32_t ObjectStore::RegisterClass(std::string debug_name,
                                    uint32_t slot_count) {
  ClassStorage storage;
  storage.debug_name = std::move(debug_name);
  storage.slot_count = slot_count;
  classes_.push_back(std::move(storage));
  return static_cast<uint32_t>(classes_.size());
}

const ObjectStore::ClassStorage* ObjectStore::FindClass(
    uint32_t class_id) const {
  if (class_id == 0 || class_id > classes_.size()) return nullptr;
  return &classes_[class_id - 1];
}

Result<Oid> ObjectStore::CreateObject(uint32_t class_id) {
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  auto& storage = classes_[class_id - 1];
  Instance inst;
  inst.live = true;
  inst.slots.assign(storage.slot_count, Value::Null());
  storage.instances.push_back(std::move(inst));
  ++storage.live_count;
  stats_.objects_created.fetch_add(1, std::memory_order_relaxed);
  // local ids start at 1 so that Oid{0,0} stays the NIL reference.
  return Oid(class_id, static_cast<uint32_t>(storage.instances.size()));
}

Status ObjectStore::DeleteObject(Oid oid) {
  VODAK_RETURN_IF_ERROR(CheckOid(oid, /*slot=*/0, "delete"));
  auto& inst = classes_[oid.class_id - 1].instances[oid.local - 1];
  inst.live = false;
  inst.slots.clear();
  --classes_[oid.class_id - 1].live_count;
  stats_.objects_deleted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool ObjectStore::Exists(Oid oid) const {
  const ClassStorage* cls = FindClass(oid.class_id);
  if (cls == nullptr) return false;
  if (oid.local == 0 || oid.local > cls->instances.size()) return false;
  return cls->instances[oid.local - 1].live;
}

Status ObjectStore::CheckOid(Oid oid, uint32_t slot, const char* op) const {
  const ClassStorage* cls = FindClass(oid.class_id);
  if (cls == nullptr) {
    return Status::NotFound(std::string(op) + ": unknown class in oid " +
                            oid.ToString());
  }
  if (oid.local == 0 || oid.local > cls->instances.size() ||
      !cls->instances[oid.local - 1].live) {
    return Status::NotFound(std::string(op) + ": dangling oid " +
                            oid.ToString());
  }
  if (slot >= cls->slot_count) {
    return Status::InvalidArgument(std::string(op) + ": slot " +
                                   std::to_string(slot) +
                                   " out of range for class '" +
                                   cls->debug_name + "'");
  }
  return Status::OK();
}

Result<Value> ObjectStore::GetProperty(Oid oid, uint32_t slot) const {
  VODAK_RETURN_IF_ERROR(CheckOid(oid, slot, "get"));
  // Relaxed: per-row reads happen from parallel workers; a seq_cst RMW
  // here would ping-pong the stats cache line across cores.
  stats_.property_reads.fetch_add(1, std::memory_order_relaxed);
  return classes_[oid.class_id - 1].instances[oid.local - 1].slots[slot];
}

Status ObjectStore::GetPropertyColumn(uint32_t class_id, uint32_t slot,
                                      const std::vector<uint32_t>& locals,
                                      std::vector<Value>* out) const {
  return GetPropertyColumn(class_id, slot, locals, 0, locals.size(), out);
}

Status ObjectStore::GetPropertyColumn(uint32_t class_id, uint32_t slot,
                                      const std::vector<uint32_t>& locals,
                                      size_t begin, size_t end,
                                      std::vector<Value>* out) const {
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("get: unknown class id " +
                            std::to_string(class_id));
  }
  if (slot >= cls->slot_count) {
    return Status::InvalidArgument(
        "get: slot " + std::to_string(slot) +
        " out of range for class '" + cls->debug_name + "'");
  }
  if (begin > end || end > locals.size()) {
    return Status::InvalidArgument(
        "get: column range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") out of bounds for " +
        std::to_string(locals.size()) + " locals");
  }
  size_t emitted = 0;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t local = locals[i];
    if (local == 0 || local > cls->instances.size() ||
        !cls->instances[local - 1].live) {
      // Counted per object, like GetProperty: charge what was read
      // before the dangling reference stopped the column.
      stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
      return Status::NotFound("get: dangling oid " +
                              Oid(class_id, local).ToString());
    }
    out->push_back(cls->instances[local - 1].slots[slot]);
    ++emitted;
  }
  stats_.property_reads.fetch_add(emitted, std::memory_order_relaxed);
  return Status::OK();
}

Status ObjectStore::SetProperty(Oid oid, uint32_t slot, Value value) {
  VODAK_RETURN_IF_ERROR(CheckOid(oid, slot, "set"));
  stats_.property_writes.fetch_add(1, std::memory_order_relaxed);
  classes_[oid.class_id - 1].instances[oid.local - 1].slots[slot] =
      std::move(value);
  return Status::OK();
}

Result<std::vector<Oid>> ObjectStore::Extent(uint32_t class_id) const {
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  stats_.extent_scans.fetch_add(1, std::memory_order_relaxed);
  std::vector<Oid> out;
  out.reserve(cls->live_count);
  for (uint32_t i = 0; i < cls->instances.size(); ++i) {
    if (cls->instances[i].live) out.emplace_back(class_id, i + 1);
  }
  return out;
}

Result<uint64_t> ObjectStore::ExtentSize(uint32_t class_id) const {
  const ClassStorage* cls = FindClass(class_id);
  if (cls == nullptr) {
    return Status::NotFound("unknown class id " + std::to_string(class_id));
  }
  return cls->live_count;
}

}  // namespace vodak
