#ifndef VODAK_OBJSTORE_OBJECT_STORE_H_
#define VODAK_OBJSTORE_OBJECT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "objstore/epoch.h"
#include "types/oid.h"
#include "types/value.h"

namespace vodak {

/// Counters exposed by the store. Benchmarks and the cost-model
/// calibration read these to *measure* property accesses and extent scans
/// instead of guessing, which is how we validate the paper's claims about
/// access cost asymmetry between attributes and methods. Relaxed atomics:
/// morsel-driven workers read properties concurrently, and counting must
/// never race (column reads bump property_reads once per column, so the
/// hot path pays one fetch_add per batch, not per row).
struct StoreStats {
  std::atomic<uint64_t> property_reads{0};
  std::atomic<uint64_t> property_writes{0};
  std::atomic<uint64_t> objects_created{0};
  std::atomic<uint64_t> objects_deleted{0};
  std::atomic<uint64_t> extent_scans{0};
  /// Reads resolved at an explicitly pinned epoch (not kEpochLatest):
  /// the count of work actually served from a snapshot, which is what
  /// the mixed read/write bench gates on.
  std::atomic<uint64_t> snapshot_reads{0};
  /// Version records appended by the copy-on-write path (Apply, or a
  /// legacy write forced to version because readers hold pins).
  std::atomic<uint64_t> versions_created{0};
  /// Superseded versions freed by Reclaim().
  std::atomic<uint64_t> versions_reclaimed{0};
  /// Epoch bumps committed (one per Apply batch, not per mutation).
  std::atomic<uint64_t> epochs_committed{0};

  /// Relaxed, like every bump: resets run while no query is in flight,
  /// and an implicit assignment would pay a seq_cst fence for ordering
  /// nobody reads (scripts/lint.py rejects implicit-order atomic ops).
  void Reset() {
    property_reads.store(0, std::memory_order_relaxed);
    property_writes.store(0, std::memory_order_relaxed);
    objects_created.store(0, std::memory_order_relaxed);
    objects_deleted.store(0, std::memory_order_relaxed);
    extent_scans.store(0, std::memory_order_relaxed);
    snapshot_reads.store(0, std::memory_order_relaxed);
    versions_created.store(0, std::memory_order_relaxed);
    versions_reclaimed.store(0, std::memory_order_relaxed);
    epochs_committed.store(0, std::memory_order_relaxed);
  }
};

/// One write in a batch handed to ObjectStore::Apply. The whole batch
/// commits atomically under a single epoch bump; every mutation is
/// validated against the pre-batch state before any of them applies.
struct Mutation {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  /// kInsert: the class to instantiate.
  uint32_t class_id = 0;
  /// kUpdate / kDelete: the target instance.
  Oid oid;
  /// kInsert / kUpdate: (slot, value) assignments.
  std::vector<std::pair<uint32_t, Value>> sets;

  static Mutation Insert(uint32_t class_id,
                         std::vector<std::pair<uint32_t, Value>> sets = {}) {
    Mutation m;
    m.kind = Kind::kInsert;
    m.class_id = class_id;
    m.sets = std::move(sets);
    return m;
  }
  static Mutation Update(Oid oid,
                         std::vector<std::pair<uint32_t, Value>> sets) {
    Mutation m;
    m.kind = Kind::kUpdate;
    m.oid = oid;
    m.sets = std::move(sets);
    return m;
  }
  static Mutation Delete(Oid oid) {
    Mutation m;
    m.kind = Kind::kDelete;
    m.oid = oid;
    return m;
  }
};

/// What a committed Apply batch did, and the epoch it committed as.
struct MutationResult {
  Epoch epoch = 0;
  std::vector<Oid> created;  // one Oid per kInsert, in batch order
  uint64_t updated = 0;
  uint64_t deleted = 0;
};

/// In-memory object store: the VODAK-kernel substitute (DESIGN.md S3),
/// now multi-version (docs/ARCHITECTURE.md §"Writes, epochs & snapshot
/// isolation").
///
/// A class is registered with a number of property slots; instances are
/// version chains of Value-slot rows addressed by Oid {class_id, local}.
/// Each chain entry covers the half-open epoch interval [begin, end):
/// a read at epoch E sees the entry with begin <= E < end, and sees the
/// object at all only if that entry is live (deletes append a dead
/// tombstone entry rather than reclaiming the local id, so Oids stay
/// stable). Writers commit through Apply() under the exclusive side of
/// a reader/writer lock and bump the global epoch once per batch;
/// readers pin an epoch (PinEpoch/UnpinEpoch, or the EpochPin RAII
/// helper) and pass it to every read, so a query observes one
/// consistent snapshot no matter how many batches commit while it
/// drains. Reclaim() — callable directly or via the opt-in background
/// thread — frees superseded versions no pinned (or future) reader can
/// ever see.
///
/// The single-object CreateObject/SetProperty/DeleteObject calls remain
/// for loaders and tests; while no reader holds a pin they mutate in
/// place without versioning or an epoch bump (bulk load stays cheap),
/// and the moment any pin exists they switch to the same copy-on-write
/// path as Apply.
class ObjectStore {
 public:
  ObjectStore() = default;
  ~ObjectStore();
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Registers storage for a class; returns its class id (>= 1).
  uint32_t RegisterClass(std::string debug_name, uint32_t slot_count);

  uint32_t class_count() const;

  /// Creates an instance with all slots NULL.
  Result<Oid> CreateObject(uint32_t class_id);

  /// Tombstones an object; its Oid becomes invalid at later epochs.
  Status DeleteObject(Oid oid);

  bool Exists(Oid oid, Epoch at = kEpochLatest) const;

  Result<Value> GetProperty(Oid oid, uint32_t slot,
                            Epoch at = kEpochLatest) const;
  Status SetProperty(Oid oid, uint32_t slot, Value value);

  /// Batched property read for the vectorized executor: appends the
  /// value of `slot` for instance `local` of `class_id`, for every local
  /// in `locals`, to `out` (in order). Resolves the class storage and
  /// checks the slot once for the whole column instead of once per
  /// object. Counts locals.size() property reads.
  Status GetPropertyColumn(uint32_t class_id, uint32_t slot,
                           const std::vector<uint32_t>& locals,
                           std::vector<Value>* out,
                           Epoch at = kEpochLatest) const;

  /// Range-scoped variant reading locals[begin, end): parallel morsel
  /// workers can share one locals vector and each read a disjoint slice
  /// without coordination — each slice takes the reader side of the
  /// store lock and resolves against the same epoch, and the stats
  /// counter is bumped once, atomically, for the whole slice.
  Status GetPropertyColumn(uint32_t class_id, uint32_t slot,
                           const std::vector<uint32_t>& locals,
                           size_t begin, size_t end,
                           std::vector<Value>* out,
                           Epoch at = kEpochLatest) const;

  /// Oid-vector variant of the range-scoped column read, for callers
  /// that already hold a materialized extent (shared-scan seeds, the
  /// segment ingester): reads oids[begin, end) directly, so no caller
  /// ever copies an extent into a separate locals index vector just to
  /// satisfy the column API. Every oid must belong to `class_id`.
  Status GetPropertyColumn(uint32_t class_id, uint32_t slot,
                           const std::vector<Oid>& oids,
                           size_t begin, size_t end,
                           std::vector<Value>* out,
                           Epoch at = kEpochLatest) const;

  /// Instances of a class visible at `at`, in creation order. Counts as
  /// one extent scan in the stats.
  Result<std::vector<Oid>> Extent(uint32_t class_id,
                                  Epoch at = kEpochLatest) const;

  /// Number of visible instances (cardinality statistic for the
  /// optimizer; at the latest epoch this is O(1) off the maintained
  /// live count, at a pinned epoch it scans the chains).
  Result<uint64_t> ExtentSize(uint32_t class_id,
                              Epoch at = kEpochLatest) const;

  /// Commits a batch of mutations atomically under one epoch bump.
  /// Every mutation is validated against the pre-batch state first; on
  /// any validation error nothing applies and the epoch does not move.
  /// Mutations read the pre-batch snapshot (an update of an oid
  /// inserted by the same batch is rejected), except that repeated
  /// updates of one oid within a batch compose in order.
  Result<MutationResult> Apply(const std::vector<Mutation>& batch)
      EXCLUDES(data_mu_);

  /// The newest committed epoch.
  Epoch CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Registers a reader at the current epoch and returns it; every
  /// version visible at that epoch is kept alive until the matching
  /// UnpinEpoch. Pins nest and are cheap (a map bump under a mutex).
  Epoch PinEpoch() EXCLUDES(pin_mu_);
  void UnpinEpoch(Epoch epoch) EXCLUDES(pin_mu_);
  /// Oldest pinned epoch, or the current epoch when nothing is pinned —
  /// the reclaim horizon.
  Epoch MinPinnedEpoch() const EXCLUDES(pin_mu_);

  /// Frees version-chain entries superseded at or before the reclaim
  /// horizon (entry.end <= MinPinnedEpoch()): no pinned reader can see
  /// them, and future readers pin epochs >= the horizon. Returns the
  /// number of versions freed.
  size_t Reclaim() EXCLUDES(data_mu_);

  /// Opt-in background reclaim: a thread that runs Reclaim() whenever a
  /// pin release may have advanced the horizon (and periodically as a
  /// backstop). Not started by default so deterministic tests control
  /// reclaim timing themselves.
  void StartBackgroundReclaim();
  void StopBackgroundReclaim();

  const StoreStats& stats() const { return stats_; }
  StoreStats* mutable_stats() { return &stats_; }

 private:
  /// One copy-on-write entry of an instance's chain, visible at epochs
  /// in [begin, end). `live == false` is a delete tombstone.
  struct Version {
    Epoch begin = 0;
    Epoch end = kEpochLatest;
    bool live = false;
    std::vector<Value> slots;
  };
  struct Instance {
    /// Ascending by begin; the last entry is the current one
    /// (end == kEpochLatest).
    std::vector<Version> versions;
  };
  struct ClassStorage {
    std::string debug_name;
    uint32_t slot_count = 0;
    uint64_t live_count = 0;  // at the latest epoch
    std::vector<Instance> instances;
  };

  static const Version* VisibleVersion(const Instance& inst, Epoch at);

  /// Resolves kEpochLatest to the current epoch. Callers hold at least
  /// the shared side of data_mu_, under which epoch_ cannot advance
  /// (stores happen only under the exclusive side).
  Epoch ResolveEpoch(Epoch at) const {
    return at == kEpochLatest ? epoch_.load(std::memory_order_acquire) : at;
  }

  Status CheckOid(Oid oid, uint32_t slot, const char* op, Epoch at) const
      REQUIRES_SHARED(data_mu_);
  const ClassStorage* FindClass(uint32_t class_id) const
      REQUIRES_SHARED(data_mu_);
  ClassStorage* FindClassMutable(uint32_t class_id) REQUIRES(data_mu_);

  /// True when any reader holds a pin — the trigger that flips the
  /// legacy single-object writes from in-place to copy-on-write. Called
  /// with data_mu_ held exclusively, which makes the check race-free: a
  /// reader pinning after it returns false cannot complete any read
  /// before this writer finishes (reads take data_mu_ shared), so that
  /// reader observes the fully applied in-place write — a valid
  /// serialization with the writer first.
  bool AnyPins() const EXCLUDES(pin_mu_);

  /// Appends (or in-place-extends, when the chain head already carries
  /// epoch `commit`) a copy-on-write successor of inst's current
  /// version and returns it.
  Version* MutableVersionAt(Instance* inst, Epoch commit)
      REQUIRES(data_mu_);

  void ReclaimLoop();

  /// Reader/writer lock over all chain + class storage. Readers resolve
  /// their epoch and walk chains under the shared side; Apply and the
  /// legacy writes hold the exclusive side. Acquired before pin_mu_
  /// everywhere both are held (Apply/Reclaim take data_mu_ then consult
  /// the pin table).
  mutable SharedMutex data_mu_ ACQUIRED_BEFORE(pin_mu_);
  std::vector<ClassStorage> classes_ GUARDED_BY(data_mu_);

  /// Newest committed epoch. Stored (release) only under the exclusive
  /// side of data_mu_, as the last step of a commit; loaded (acquire)
  /// without data_mu_ by PinEpoch/CurrentEpoch, so a pinner that reads
  /// epoch C also sees every version the C commit published.
  std::atomic<Epoch> epoch_{0};

  mutable Mutex pin_mu_;
  /// epoch -> number of pins at that epoch.
  std::map<Epoch, uint32_t> pins_ GUARDED_BY(pin_mu_);
  bool reclaim_running_ GUARDED_BY(pin_mu_) = false;
  bool stop_reclaim_ GUARDED_BY(pin_mu_) = false;
  /// Set by UnpinEpoch when a pin count hits zero: the horizon may have
  /// advanced, wake the reclaim thread.
  bool horizon_moved_ GUARDED_BY(pin_mu_) = false;
  std::condition_variable_any reclaim_cv_;
  std::thread reclaim_thread_;

  mutable StoreStats stats_;
};

/// RAII pin: pins the store's current epoch for this scope.
class EpochPin {
 public:
  explicit EpochPin(ObjectStore* store)
      : store_(store), epoch_(store->PinEpoch()) {}
  ~EpochPin() {
    if (store_ != nullptr) store_->UnpinEpoch(epoch_);
  }
  EpochPin(EpochPin&& other) noexcept
      : store_(other.store_), epoch_(other.epoch_) {
    other.store_ = nullptr;
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  EpochPin& operator=(EpochPin&&) = delete;

  Epoch epoch() const { return epoch_; }

 private:
  ObjectStore* store_;
  Epoch epoch_;
};

}  // namespace vodak

#endif  // VODAK_OBJSTORE_OBJECT_STORE_H_
