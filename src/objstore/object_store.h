#ifndef VODAK_OBJSTORE_OBJECT_STORE_H_
#define VODAK_OBJSTORE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/oid.h"
#include "types/value.h"

namespace vodak {

/// Counters exposed by the store. Benchmarks and the cost-model
/// calibration read these to *measure* property accesses and extent scans
/// instead of guessing, which is how we validate the paper's claims about
/// access cost asymmetry between attributes and methods. Relaxed atomics:
/// morsel-driven workers read properties concurrently, and counting must
/// never race (column reads bump property_reads once per column, so the
/// hot path pays one fetch_add per batch, not per row).
struct StoreStats {
  std::atomic<uint64_t> property_reads{0};
  std::atomic<uint64_t> property_writes{0};
  std::atomic<uint64_t> objects_created{0};
  std::atomic<uint64_t> objects_deleted{0};
  std::atomic<uint64_t> extent_scans{0};

  /// Relaxed, like every bump: resets run while no query is in flight,
  /// and an implicit assignment would pay a seq_cst fence for ordering
  /// nobody reads (scripts/lint.py rejects implicit-order atomic ops).
  void Reset() {
    property_reads.store(0, std::memory_order_relaxed);
    property_writes.store(0, std::memory_order_relaxed);
    objects_created.store(0, std::memory_order_relaxed);
    objects_deleted.store(0, std::memory_order_relaxed);
    extent_scans.store(0, std::memory_order_relaxed);
  }
};

/// In-memory object store: the VODAK-kernel substitute (DESIGN.md S3).
///
/// A class is registered with a number of property slots; instances are
/// rows of Value slots addressed by Oid {class_id, local}. Extents are
/// maintained per class with tombstoned deletion so Oids stay stable.
/// The store knows nothing about property *names* or methods — the schema
/// catalog (S4) maps names to slots, keeping this layer reusable.
class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Registers storage for a class; returns its class id (>= 1).
  uint32_t RegisterClass(std::string debug_name, uint32_t slot_count);

  uint32_t class_count() const {
    return static_cast<uint32_t>(classes_.size());
  }

  /// Creates an instance with all slots NULL.
  Result<Oid> CreateObject(uint32_t class_id);

  /// Tombstones an object; its Oid becomes invalid.
  Status DeleteObject(Oid oid);

  bool Exists(Oid oid) const;

  Result<Value> GetProperty(Oid oid, uint32_t slot) const;
  Status SetProperty(Oid oid, uint32_t slot, Value value);

  /// Batched property read for the vectorized executor: appends the
  /// value of `slot` for instance `local` of `class_id`, for every local
  /// in `locals`, to `out` (in order). Resolves the class storage and
  /// checks the slot once for the whole column instead of once per
  /// object. Counts locals.size() property reads.
  Status GetPropertyColumn(uint32_t class_id, uint32_t slot,
                           const std::vector<uint32_t>& locals,
                           std::vector<Value>* out) const;

  /// Range-scoped variant reading locals[begin, end): parallel morsel
  /// workers can share one locals vector and each read a disjoint slice
  /// without coordination — the store is read-only during query
  /// execution and the stats counter is bumped once, atomically, for
  /// the whole slice.
  Status GetPropertyColumn(uint32_t class_id, uint32_t slot,
                           const std::vector<uint32_t>& locals,
                           size_t begin, size_t end,
                           std::vector<Value>* out) const;

  /// Live instances of a class, in creation order. Counts as one extent
  /// scan in the stats.
  Result<std::vector<Oid>> Extent(uint32_t class_id) const;

  /// Number of live instances (cardinality statistic for the optimizer).
  Result<uint64_t> ExtentSize(uint32_t class_id) const;

  const StoreStats& stats() const { return stats_; }
  StoreStats* mutable_stats() { return &stats_; }

 private:
  struct Instance {
    bool live = false;
    std::vector<Value> slots;
  };
  struct ClassStorage {
    std::string debug_name;
    uint32_t slot_count = 0;
    uint64_t live_count = 0;
    std::vector<Instance> instances;
  };

  Status CheckOid(Oid oid, uint32_t slot, const char* op) const;
  const ClassStorage* FindClass(uint32_t class_id) const;

  std::vector<ClassStorage> classes_;  // index = class_id - 1
  mutable StoreStats stats_;
};

}  // namespace vodak

#endif  // VODAK_OBJSTORE_OBJECT_STORE_H_
