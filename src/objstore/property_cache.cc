#include "objstore/property_cache.h"

#include <algorithm>
#include <utility>

namespace vodak {

void PropertyColumnCache::SeedExtent(
    uint32_t class_id, Epoch at,
    std::shared_ptr<const std::vector<Oid>> extent) {
  MutexLock lock(mu_);
  std::shared_ptr<const std::vector<Oid>>& entry = seeded_[{class_id, at}];
  if (entry == nullptr) entry = std::move(extent);  // first seed wins
}

std::shared_ptr<PropertyColumnCache::Column> PropertyColumnCache::EntryFor(
    uint32_t class_id, uint32_t slot, Epoch at) {
  MutexLock lock(mu_);
  std::shared_ptr<Column>& entry = columns_[{class_id, slot, at}];
  if (entry == nullptr) entry = std::make_shared<Column>();
  return entry;
}

std::shared_ptr<const std::vector<Oid>> PropertyColumnCache::SeededExtent(
    uint32_t class_id, Epoch at) {
  MutexLock lock(mu_);
  auto it = seeded_.find({class_id, at});
  return it == seeded_.end() ? nullptr : it->second;
}

Status PropertyColumnCache::ReadColumn(uint32_t class_id, uint32_t slot,
                                       const std::vector<uint32_t>& locals,
                                       size_t begin, size_t end,
                                       std::vector<Value>* out, Epoch at) {
  std::shared_ptr<const std::vector<Oid>> all = SeededExtent(class_id, at);
  if (all == nullptr) {
    // (class, epoch) not covered by the shared scan: read through with
    // the store's own range call at the same epoch. Caching here would
    // cost an extent pass plus a full-column read the private baseline
    // never pays.
    fallback_rows_.fetch_add(end - begin, std::memory_order_relaxed);
    return store_->GetPropertyColumn(class_id, slot, locals, begin, end,
                                     out, at);
  }
  std::shared_ptr<Column> entry = EntryFor(class_id, slot, at);
  std::call_once(entry->once, [&] {
    std::vector<Value> values;
    entry->status = store_->GetPropertyColumn(class_id, slot, *all,
                                              0, all->size(), &values, at);
    if (!entry->status.ok()) return;
    uint32_t max_local = 0;
    for (const Oid& oid : *all) max_local = std::max(max_local, oid.local);
    entry->by_local.assign(all->empty() ? 0 : max_local + 1, Value::Null());
    entry->present.assign(entry->by_local.size(), 0);
    for (size_t i = 0; i < all->size(); ++i) {
      entry->by_local[(*all)[i].local] = std::move(values[i]);
      entry->present[(*all)[i].local] = 1;
    }
    fills_.fetch_add(1, std::memory_order_relaxed);
  });
  VODAK_RETURN_IF_ERROR(entry->status);

  uint64_t hits = 0;
  uint64_t fallbacks = 0;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t local = locals[i];
    if (local < entry->present.size() && entry->present[local]) {
      out->push_back(entry->by_local[local]);
      ++hits;
      continue;
    }
    // Outside the snapshot's fill (created after it within the same
    // epoch, or an error class): read through at the same epoch so the
    // cache can only be cold, never wrong.
    VODAK_ASSIGN_OR_RETURN(
        Value v, store_->GetProperty(Oid(class_id, local), slot, at));
    out->push_back(std::move(v));
    ++fallbacks;
  }
  if (hits != 0) hit_rows_.fetch_add(hits, std::memory_order_relaxed);
  if (fallbacks != 0) {
    fallback_rows_.fetch_add(fallbacks, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace vodak
