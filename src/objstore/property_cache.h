// Cross-query property-column cache behind the shared-scan pipeline
// (docs/ARCHITECTURE.md §"Shared scans"). One store column read per
// (class, slot) serves every attached query.
#ifndef VODAK_OBJSTORE_PROPERTY_CACHE_H_
#define VODAK_OBJSTORE_PROPERTY_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "objstore/object_store.h"

namespace vodak {

/// Read-through cache of whole property columns, shared by the queries
/// attached to one SharedScanManager. For a class whose extent the
/// shared scan materialized (registered via SeedLocals), the first
/// read of a (class, slot) pair materializes the full column with a
/// single ObjectStore::GetPropertyColumn call; every later read — from
/// any query, on any worker — is served from the snapshot without
/// touching the store, which is what drops a K-query batch's
/// property-read stats from ~K× the extent size to ~1×.
///
/// Unseeded classes (touched only through path reads, never
/// leaf-scanned by the batch) read straight through to the store: a
/// full-column fill there would cost an extent pass plus an
/// extent-sized read the private baseline never pays, so the cache
/// only ever *removes* store work relative to the baseline.
///
/// The snapshot is taken at first touch and assumes what query
/// execution already assumes everywhere else: the store is read-only
/// while queries run. Locals outside the snapshot (objects created
/// after the fill) fall back to per-object store reads, so the cache
/// is never wrong, only cold.
///
/// Thread-safe: entries are created under a mutex and filled under a
/// per-entry once_flag (the SharedJoinBuild idiom), so concurrent
/// first readers block on one fill instead of racing.
class PropertyColumnCache {
 public:
  explicit PropertyColumnCache(ObjectStore* store) : store_(store) {}
  PropertyColumnCache(const PropertyColumnCache&) = delete;
  PropertyColumnCache& operator=(const PropertyColumnCache&) = delete;

  /// Registers the live locals of a class (the shared scan's
  /// already-materialized extent) as eligible for full-column caching.
  /// Only seeded classes are cached; see the class comment.
  void SeedLocals(uint32_t class_id,
                  std::shared_ptr<const std::vector<uint32_t>> locals)
      EXCLUDES(mu_);

  /// Appends the value of `slot` for every local in locals[begin, end)
  /// to `out`, in order — the contract of the range-scoped
  /// ObjectStore::GetPropertyColumn — served from the cached column
  /// for seeded classes, straight from the store otherwise.
  Status ReadColumn(uint32_t class_id, uint32_t slot,
                    const std::vector<uint32_t>& locals, size_t begin,
                    size_t end, std::vector<Value>* out) EXCLUDES(mu_);

  /// Full-column store reads performed (one per distinct (class, slot)
  /// touched).
  uint64_t fill_count() const {
    return fills_.load(std::memory_order_relaxed);
  }
  /// Rows served from the snapshot without a store read.
  uint64_t hit_rows() const {
    return hit_rows_.load(std::memory_order_relaxed);
  }
  /// Rows outside the snapshot, read through to the store.
  uint64_t fallback_rows() const {
    return fallback_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Column {
    std::once_flag once;
    Status status = Status::OK();
    /// Snapshot indexed by local id; `present[local]` distinguishes a
    /// cached NULL from a local outside the snapshot.
    std::vector<Value> by_local;
    std::vector<char> present;
  };

  std::shared_ptr<Column> EntryFor(uint32_t class_id, uint32_t slot)
      EXCLUDES(mu_);
  /// The seeded locals of `class_id`, or null when the class is not
  /// covered by the shared scan (read-through case).
  std::shared_ptr<const std::vector<uint32_t>> SeededLocals(
      uint32_t class_id) EXCLUDES(mu_);

  ObjectStore* store_;
  /// Guards the entry maps only; a Column's payload is published by
  /// its own once_flag (call_once is the synchronization), not by mu_.
  Mutex mu_;
  std::map<std::pair<uint32_t, uint32_t>, std::shared_ptr<Column>> columns_
      GUARDED_BY(mu_);
  std::map<uint32_t, std::shared_ptr<const std::vector<uint32_t>>> seeded_
      GUARDED_BY(mu_);
  std::atomic<uint64_t> fills_{0};
  std::atomic<uint64_t> hit_rows_{0};
  std::atomic<uint64_t> fallback_rows_{0};
};

}  // namespace vodak

#endif  // VODAK_OBJSTORE_PROPERTY_CACHE_H_
