// Cross-query property-column cache behind the shared-scan pipeline
// (docs/ARCHITECTURE.md §"Shared scans"). One store column read per
// (class, slot) serves every attached query.
#ifndef VODAK_OBJSTORE_PROPERTY_CACHE_H_
#define VODAK_OBJSTORE_PROPERTY_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "objstore/epoch.h"
#include "objstore/object_store.h"

namespace vodak {

/// Read-through cache of whole property columns, shared by the queries
/// attached to one SharedScanManager. For a class whose extent the
/// shared scan materialized (registered via SeedExtent), the first
/// read of a (class, slot) pair materializes the full column with a
/// single ObjectStore::GetPropertyColumn call; every later read — from
/// any query, on any worker — is served from the snapshot without
/// touching the store, which is what drops a K-query batch's
/// property-read stats from ~K× the extent size to ~1×.
///
/// Unseeded classes (touched only through path reads, never
/// leaf-scanned by the batch) read straight through to the store: a
/// full-column fill there would cost an extent pass plus an
/// extent-sized read the private baseline never pays, so the cache
/// only ever *removes* store work relative to the baseline.
///
/// Version-aware: every entry is keyed by (class, slot, epoch) and
/// filled from the store *at that epoch*, so a cache shared by queries
/// pinned to different snapshots never mixes their views — a write
/// that bumps the epoch makes later generations read fresh entries
/// while draining generations keep serving their pinned ones.
/// Invalidation is versioned, never absent: stale entries aren't
/// purged, they simply stop being keyed-to, and they vanish with the
/// manager that owns the cache. Locals outside a fill's snapshot
/// (objects created after it within the same epoch, e.g. by the
/// in-place bulk-load path) fall back to per-object store reads at the
/// same epoch, so the cache is never wrong, only cold.
///
/// Thread-safe: entries are created under a mutex and filled under a
/// per-entry once_flag (the SharedJoinBuild idiom), so concurrent
/// first readers block on one fill instead of racing.
class PropertyColumnCache {
 public:
  explicit PropertyColumnCache(ObjectStore* store) : store_(store) {}
  PropertyColumnCache(const PropertyColumnCache&) = delete;
  PropertyColumnCache& operator=(const PropertyColumnCache&) = delete;

  /// Registers the extent of a class visible at `at` (the shared
  /// scan's already-materialized extent at its pinned epoch) as
  /// eligible for full-column caching at that epoch. Takes the Oid
  /// vector the seeder already holds — the fill reads columns through
  /// the Oid-vector GetPropertyColumn overload, so seeding shares the
  /// materialization instead of copying it into a locals index. Only
  /// seeded (class, epoch) pairs are cached; see the class comment.
  void SeedExtent(uint32_t class_id, Epoch at,
                  std::shared_ptr<const std::vector<Oid>> extent)
      EXCLUDES(mu_);

  /// Appends the value of `slot` at epoch `at` for every local in
  /// locals[begin, end) to `out`, in order — the contract of the
  /// range-scoped ObjectStore::GetPropertyColumn — served from the
  /// cached column for seeded (class, epoch) pairs, straight from the
  /// store otherwise.
  Status ReadColumn(uint32_t class_id, uint32_t slot,
                    const std::vector<uint32_t>& locals, size_t begin,
                    size_t end, std::vector<Value>* out,
                    Epoch at = kEpochLatest) EXCLUDES(mu_);

  /// Full-column store reads performed (one per distinct (class, slot)
  /// touched).
  uint64_t fill_count() const {
    return fills_.load(std::memory_order_relaxed);
  }
  /// Rows served from the snapshot without a store read.
  uint64_t hit_rows() const {
    return hit_rows_.load(std::memory_order_relaxed);
  }
  /// Rows outside the snapshot, read through to the store.
  uint64_t fallback_rows() const {
    return fallback_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Column {
    std::once_flag once;
    Status status = Status::OK();
    /// Snapshot indexed by local id; `present[local]` distinguishes a
    /// cached NULL from a local outside the snapshot.
    std::vector<Value> by_local;
    std::vector<char> present;
  };

  std::shared_ptr<Column> EntryFor(uint32_t class_id, uint32_t slot,
                                   Epoch at) EXCLUDES(mu_);
  /// The seeded extent of `class_id` at `at`, or null when that
  /// (class, epoch) pair is not covered by a shared scan (read-through
  /// case).
  std::shared_ptr<const std::vector<Oid>> SeededExtent(
      uint32_t class_id, Epoch at) EXCLUDES(mu_);

  ObjectStore* store_;
  /// Guards the entry maps only; a Column's payload is published by
  /// its own once_flag (call_once is the synchronization), not by mu_.
  Mutex mu_;
  /// Keyed (class, slot, epoch): entries for different snapshots
  /// coexist, which is the whole invalidation story.
  std::map<std::tuple<uint32_t, uint32_t, Epoch>, std::shared_ptr<Column>>
      columns_ GUARDED_BY(mu_);
  std::map<std::pair<uint32_t, Epoch>,
           std::shared_ptr<const std::vector<Oid>>>
      seeded_ GUARDED_BY(mu_);
  std::atomic<uint64_t> fills_{0};
  std::atomic<uint64_t> hit_rows_{0};
  std::atomic<uint64_t> fallback_rows_{0};
};

}  // namespace vodak

#endif  // VODAK_OBJSTORE_PROPERTY_CACHE_H_
