#include <algorithm>

#include "optimizer/rule.h"

namespace vodak {
namespace opt {

using algebra::AlgebraContext;
using algebra::LogicalNode;
using algebra::LogicalOp;
using algebra::LogicalRef;

namespace {

/// All free variables of `expr` are references of `node`'s schema.
bool CoveredBy(const ExprRef& expr, const LogicalRef& node) {
  for (const std::string& var : expr->FreeVars()) {
    if (!node->HasRef(var)) return false;
  }
  return true;
}

bool IsTrueConst(const ExprRef& e) {
  return e->kind() == ExprKind::kConst && e->value().is_bool() &&
         e->value().AsBool();
}

/// select<c1 AND c2>(X) ⟷ select<c1>(select<c2>(X)), splitting
/// direction. Together with commute + merge this realizes predicate
/// reordering ("interchangeability of selections", §6.1) and exposes
/// conjuncts to the knowledge-derived rules.
class SelectSplitAnd : public TransformationRule {
 public:
  std::string name() const override { return "select-split-and"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern =
        Pattern::Op(LogicalOp::kSelect, {Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const ExprRef& cond = binding->expr();
    if (cond->kind() != ExprKind::kBinary ||
        cond->bin_op() != BinOp::kAnd) {
      return Status::OK();
    }
    VODAK_ASSIGN_OR_RETURN(LogicalRef inner,
                           ctx.Select(cond->rhs(), binding->input(0)));
    VODAK_ASSIGN_OR_RETURN(LogicalRef outer,
                           ctx.Select(cond->lhs(), std::move(inner)));
    out->push_back(std::move(outer));
    return Status::OK();
  }
};

/// select<c1>(select<c2>(X)) → select<c1 AND c2>(X).
class SelectMergeAnd : public TransformationRule {
 public:
  std::string name() const override { return "select-merge-and"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kSelect,
        {Pattern::Op(LogicalOp::kSelect, {Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    ExprRef merged = Expr::Binary(BinOp::kAnd, binding->expr(),
                                  binding->input(0)->expr());
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.Select(std::move(merged), binding->input(0)->input(0)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// select<c1>(select<c2>(X)) → select<c2>(select<c1>(X)). The
/// cost-relevant freedom for expensive method predicates ([14] in §2.3).
class SelectCommute : public TransformationRule {
 public:
  std::string name() const override { return "select-commute"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kSelect,
        {Pattern::Op(LogicalOp::kSelect, {Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef inner,
        ctx.Select(binding->expr(), binding->input(0)->input(0)));
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef outer,
        ctx.Select(binding->input(0)->expr(), std::move(inner)));
    out->push_back(std::move(outer));
    return Status::OK();
  }
};

/// select<c>(join<p>(A, B)) → join<p>(select<c>(A), B) when c only uses
/// references of A (and the mirrored form for B): selection pushdown.
class SelectPushIntoJoin : public TransformationRule {
 public:
  std::string name() const override { return "select-push-into-join"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kSelect,
        {Pattern::Op(LogicalOp::kJoin, {Pattern::Any(), Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const ExprRef& cond = binding->expr();
    const LogicalRef& join = binding->input(0);
    if (CoveredBy(cond, join->input(0))) {
      VODAK_ASSIGN_OR_RETURN(LogicalRef pushed,
                             ctx.Select(cond, join->input(0)));
      VODAK_ASSIGN_OR_RETURN(
          LogicalRef result,
          ctx.Join(join->expr(), std::move(pushed), join->input(1)));
      out->push_back(std::move(result));
    }
    if (CoveredBy(cond, join->input(1))) {
      VODAK_ASSIGN_OR_RETURN(LogicalRef pushed,
                             ctx.Select(cond, join->input(1)));
      VODAK_ASSIGN_OR_RETURN(
          LogicalRef result,
          ctx.Join(join->expr(), join->input(0), std::move(pushed)));
      out->push_back(std::move(result));
    }
    return Status::OK();
  }
};

/// join<p>(select<c>(A), B) → select<c>(join<p>(A, B)): pull a selection
/// back above a join (inverse of pushdown; gives exploration symmetry).
class SelectPullFromJoin : public TransformationRule {
 public:
  std::string name() const override { return "select-pull-from-join"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kJoin,
        {Pattern::Op(LogicalOp::kSelect, {Pattern::Any()}),
         Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& sel = binding->input(0);
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef join,
        ctx.Join(binding->expr(), sel->input(0), binding->input(1)));
    VODAK_ASSIGN_OR_RETURN(LogicalRef result,
                           ctx.Select(sel->expr(), std::move(join)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// select<c>(join<TRUE>(A, B)) → join<c>(A, B) when c spans both inputs,
/// and join<p≠TRUE>(A, B) → select<p>(join<TRUE>(A, B)) as the reverse.
class SelectJoinCondExchange : public TransformationRule {
 public:
  std::string name() const override { return "select-join-exchange"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kSelect,
        {Pattern::Op(LogicalOp::kJoin, {Pattern::Any(), Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& join = binding->input(0);
    if (!IsTrueConst(join->expr())) return Status::OK();
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.Join(binding->expr(), join->input(0), join->input(1)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

class JoinCondToSelect : public TransformationRule {
 public:
  std::string name() const override { return "join-cond-to-select"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kJoin, {Pattern::Any(), Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    if (IsTrueConst(binding->expr())) return Status::OK();
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef cross,
        ctx.Join(Expr::Const(Value::Bool(true)), binding->input(0),
                 binding->input(1)));
    VODAK_ASSIGN_OR_RETURN(LogicalRef result,
                           ctx.Select(binding->expr(), std::move(cross)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// join<p>(A, B) → join<p>(B, A).
class JoinCommute : public TransformationRule {
 public:
  std::string name() const override { return "join-commute"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kJoin, {Pattern::Any(), Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.Join(binding->expr(), binding->input(1), binding->input(0)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// join<TRUE>(join<TRUE>(A, B), C) → join<TRUE>(A, join<TRUE>(B, C)).
class JoinAssociate : public TransformationRule {
 public:
  std::string name() const override { return "join-associate"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kJoin,
        {Pattern::Op(LogicalOp::kJoin, {Pattern::Any(), Pattern::Any()}),
         Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    if (!IsTrueConst(binding->expr()) ||
        !IsTrueConst(binding->input(0)->expr())) {
      return Status::OK();
    }
    ExprRef true_cond = Expr::Const(Value::Bool(true));
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef right,
        ctx.Join(true_cond, binding->input(0)->input(1),
                 binding->input(1)));
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.Join(true_cond, binding->input(0)->input(0),
                 std::move(right)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

class NaturalJoinCommute : public TransformationRule {
 public:
  std::string name() const override { return "natural-join-commute"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kNaturalJoin, {Pattern::Any(), Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.NaturalJoin(binding->input(1), binding->input(0)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

class NaturalJoinAssociate : public TransformationRule {
 public:
  std::string name() const override { return "natural-join-associate"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kNaturalJoin,
        {Pattern::Op(LogicalOp::kNaturalJoin,
                     {Pattern::Any(), Pattern::Any()}),
         Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    auto right = ctx.NaturalJoin(binding->input(0)->input(1),
                                 binding->input(1));
    if (!right.ok()) return Status::OK();  // no shared refs: not valid
    auto result =
        ctx.NaturalJoin(binding->input(0)->input(0), right.value());
    if (!result.ok()) return Status::OK();
    // Associativity of natural join is only sound when no shared
    // reference is lost: require equal output schemas.
    if (result.value()->schema().size() != binding->schema().size()) {
      return Status::OK();
    }
    out->push_back(std::move(result).value());
    return Status::OK();
  }
};

/// select<a IS-IN E>(X) → natural_join(X, expr_source<a, E>) for a bare
/// reference `a` and a closed set expression E over the same class.
/// This is the "standard query transformation" the paper applies between
/// Q⁗ and PQ in §2.3, generalized: the membership condition becomes an
/// intersection with the materialized set.
class IsInToNaturalJoin : public TransformationRule {
 public:
  std::string name() const override { return "is-in-to-natural-join"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern =
        Pattern::Op(LogicalOp::kSelect, {Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const ExprRef& cond = binding->expr();
    if (cond->kind() != ExprKind::kBinary ||
        cond->bin_op() != BinOp::kIsIn ||
        cond->lhs()->kind() != ExprKind::kVar) {
      return Status::OK();
    }
    const std::string& ref = cond->lhs()->var_name();
    const LogicalRef& input = binding->input(0);
    if (!input->HasRef(ref)) return Status::OK();
    if (!cond->rhs()->FreeVars().empty()) return Status::OK();
    auto source = ctx.ExprSource(ref, cond->rhs());
    if (!source.ok()) return Status::OK();
    // Type soundness: the set's element class must match the reference's.
    std::string ref_class = input->RefClass(ref);
    std::string elem_class = source.value()->RefClass(ref);
    if (ref_class.empty() || ref_class != elem_class) return Status::OK();
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.NaturalJoin(input, std::move(source).value()));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// natural_join(X, expr_source<a, E>) → select<a IS-IN E>(X): the
/// reverse direction, re-opening plans for other rewrites.
class NaturalJoinToIsIn : public TransformationRule {
 public:
  std::string name() const override { return "natural-join-to-is-in"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kNaturalJoin,
        {Pattern::Any(), Pattern::Op(LogicalOp::kExprSource, {})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& source = binding->input(1);
    const LogicalRef& input = binding->input(0);
    if (!input->HasRef(source->ref())) return Status::OK();
    ExprRef cond = Expr::Binary(BinOp::kIsIn, Expr::Var(source->ref()),
                                source->expr());
    VODAK_ASSIGN_OR_RETURN(LogicalRef result,
                           ctx.Select(std::move(cond), input));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// natural_join(X, get<a, C>) → X when X already carries reference `a`
/// of class C: joining with the full extension adds nothing (referential
/// integrity of the store guarantees every C-reference is in the
/// extension). This is the step that erases the original get<p,
/// Paragraph> once the semantic rewrites have produced method sources.
class NaturalJoinGetElim : public TransformationRule {
 public:
  explicit NaturalJoinGetElim(bool get_on_right)
      : get_on_right_(get_on_right) {}
  std::string name() const override {
    return get_on_right_ ? "natural-join-get-elim-right"
                         : "natural-join-get-elim-left";
  }
  const Pattern& pattern() const override {
    static const Pattern kRight = Pattern::Op(
        LogicalOp::kNaturalJoin,
        {Pattern::Any(), Pattern::Op(LogicalOp::kGet, {})});
    static const Pattern kLeft = Pattern::Op(
        LogicalOp::kNaturalJoin,
        {Pattern::Op(LogicalOp::kGet, {}), Pattern::Any()});
    return get_on_right_ ? kRight : kLeft;
  }
  Status Apply(const AlgebraContext&, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& get = binding->input(get_on_right_ ? 1 : 0);
    const LogicalRef& other = binding->input(get_on_right_ ? 0 : 1);
    if (!other->HasRef(get->ref())) return Status::OK();
    if (other->RefClass(get->ref()) != get->class_name()) {
      return Status::OK();
    }
    // Only sound when the get contributes no additional references.
    if (binding->schema().size() != other->schema().size()) {
      return Status::OK();
    }
    out->push_back(other);  // a kGroupRef: the memo merges groups
    return Status::OK();
  }

 private:
  bool get_on_right_;
};

/// natural_join(select<c1>(A), select<c2>(A)) → select<c1>(select<c2>(A))
/// when both selections range over the same group with unchanged schema:
/// an intersection of two subsets of A is the conjunctive selection.
/// This is what turns the §4.2 implication's natural_join into a
/// predicate *ordering* opportunity (evaluate the cheap precomputed
/// membership test first, the expensive method on the survivors).
class NaturalJoinSelectsAbsorb : public TransformationRule {
 public:
  std::string name() const override {
    return "natural-join-selects-absorb";
  }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kNaturalJoin,
        {Pattern::Op(LogicalOp::kSelect, {Pattern::Any()}),
         Pattern::Op(LogicalOp::kSelect, {Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& left = binding->input(0);
    const LogicalRef& right = binding->input(1);
    const LogicalRef& left_in = left->input(0);
    const LogicalRef& right_in = right->input(0);
    if (left_in->op() != LogicalOp::kGroupRef ||
        right_in->op() != LogicalOp::kGroupRef ||
        left_in->group_id() != right_in->group_id()) {
      return Status::OK();
    }
    VODAK_ASSIGN_OR_RETURN(LogicalRef inner,
                           ctx.Select(right->expr(), left_in));
    VODAK_ASSIGN_OR_RETURN(LogicalRef outer,
                           ctx.Select(left->expr(), std::move(inner)));
    out->push_back(std::move(outer));
    return Status::OK();
  }
};

/// project<R>(map<a, e>(X)) → project<R>(X) when a ∉ R: dead derived
/// column elimination (map is side-effect-free by the §1 assumption).
class DeadMapElimination : public TransformationRule {
 public:
  std::string name() const override { return "dead-map-elimination"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kProject,
        {Pattern::Op(LogicalOp::kMap, {Pattern::Any()})});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    const LogicalRef& map = binding->input(0);
    const auto& projection = binding->projection();
    if (std::find(projection.begin(), projection.end(), map->ref()) !=
        projection.end()) {
      return Status::OK();
    }
    VODAK_ASSIGN_OR_RETURN(LogicalRef result,
                           ctx.Project(projection, map->input(0)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

/// union(A, B) → union(B, A).
class UnionCommute : public TransformationRule {
 public:
  std::string name() const override { return "union-commute"; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kUnion, {Pattern::Any(), Pattern::Any()});
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    VODAK_ASSIGN_OR_RETURN(
        LogicalRef result,
        ctx.Union(binding->input(1), binding->input(0)));
    out->push_back(std::move(result));
    return Status::OK();
  }
};

}  // namespace

std::vector<RulePtr> BuiltinRules() {
  std::vector<RulePtr> rules;
  rules.push_back(std::make_shared<SelectSplitAnd>());
  rules.push_back(std::make_shared<SelectCommute>());
  rules.push_back(std::make_shared<SelectPushIntoJoin>());
  rules.push_back(std::make_shared<SelectPullFromJoin>());
  rules.push_back(std::make_shared<SelectJoinCondExchange>());
  rules.push_back(std::make_shared<JoinCondToSelect>());
  rules.push_back(std::make_shared<JoinCommute>());
  rules.push_back(std::make_shared<JoinAssociate>());
  rules.push_back(std::make_shared<NaturalJoinCommute>());
  rules.push_back(std::make_shared<NaturalJoinAssociate>());
  // NaturalJoinToIsIn (the reverse of IsInToNaturalJoin) is
  // intentionally NOT part of the default set: it re-opens every
  // natural_join as a selection, which combined with the
  // knowledge-derived rewrites pumps the exploration space without
  // adding reachable winning plans. Volcano rule sets are curated the
  // same way; MakeNaturalJoinToIsInRule() exposes it for experiments.
  rules.push_back(std::make_shared<IsInToNaturalJoin>());
  rules.push_back(std::make_shared<NaturalJoinGetElim>(true));
  rules.push_back(std::make_shared<NaturalJoinGetElim>(false));
  rules.push_back(std::make_shared<NaturalJoinSelectsAbsorb>());
  rules.push_back(std::make_shared<DeadMapElimination>());
  rules.push_back(std::make_shared<UnionCommute>());
  return rules;
}

RulePtr MakeNaturalJoinToIsInRule() {
  return std::make_shared<NaturalJoinToIsIn>();
}

}  // namespace opt
}  // namespace vodak
