#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/segment_store.h"

namespace vodak {
namespace opt {

using algebra::LogicalNode;
using algebra::LogicalOp;

namespace {
constexpr double kOpCost = 0.1;        // built-in operator application
constexpr double kTupleEmitCost = 1.0; // producing one output tuple
constexpr double kHashCostFactor = 1.5;
constexpr double kDefaultSetFanout = 10.0;
constexpr double kDefaultEqSelectivity = 0.05;
constexpr double kDefaultRangeSelectivity = 0.3;
}  // namespace

double CostModel::BatchCount(double rows) {
  return std::max(1.0, std::ceil(rows / kAssumedBatchRows));
}

CostModel::CostModel(const Catalog* catalog, const ObjectStore* store,
                     const MethodRegistry* methods,
                     std::vector<MethodStatsProvider> providers)
    : catalog_(catalog),
      store_(store),
      methods_(methods),
      providers_(std::move(providers)) {}

double CostModel::SegmentSurvivalRate() const {
  return segments_ == nullptr ? 1.0 : segments_->SurvivalRate();
}

double CostModel::ExtentCardinality(const std::string& class_name) const {
  const ClassDef* cls = catalog_->FindClass(class_name);
  if (cls == nullptr) return 1.0;
  // Deliberately the latest epoch, not a query's pinned snapshot: a
  // cardinality statistic steers plan choice, it never touches result
  // correctness, and the live count is O(1) where a snapshot count
  // would walk every version chain at planning time.
  auto size = store_->ExtentSize(cls->class_id(), kEpochLatest);
  return size.ok() ? static_cast<double>(size.value()) : 1.0;
}

MethodStats CostModel::StatsForCall(const ExprRef& call) const {
  std::string class_name;
  std::string method;
  MethodLevel level;
  if (call->kind() == ExprKind::kClassMethodCall) {
    class_name = call->name();
    method = call->method();
    level = MethodLevel::kClassObject;
  } else {
    VODAK_DCHECK(call->kind() == ExprKind::kMethodCall);
    method = call->method();
    level = MethodLevel::kInstance;
  }
  for (const auto& provider : providers_) {
    auto stats = provider(class_name, method, level, call->args());
    if (stats.has_value()) return *stats;
  }
  const MethodRegistry::RegisteredMethod* reg =
      class_name.empty() ? methods_->FindAny(method, level)
                         : methods_->Find(class_name, method, level);
  if (reg == nullptr && !class_name.empty()) {
    reg = methods_->FindAny(method, level);
  }
  if (reg == nullptr) return MethodStats{};
  return MethodStats{reg->cost.per_call, reg->cost.selectivity,
                     reg->cost.fanout, reg->cost.batch_setup};
}

double CostModel::ExprCost(const ExprRef& expr) const {
  switch (expr->kind()) {
    case ExprKind::kConst:
    case ExprKind::kVar:
      return 0.0;
    case ExprKind::kProperty:
      // Set-lifted access costs one read per member (§2.3's D.sections).
      return ExprCost(expr->base()) + std::max(1.0, Fanout(expr->base()));
    case ExprKind::kMethodCall: {
      double cost = ExprCost(expr->base());
      for (const auto& arg : expr->args()) cost += ExprCost(arg);
      MethodStats stats = StatsForCall(expr);
      // Per-receiver price under the set-at-a-time ABI: the marginal
      // per-row work plus this row's share of the per-batch setup.
      double per_row =
          stats.per_call + stats.batch_setup / kAssumedBatchRows;
      return cost + per_row * std::max(1.0, Fanout(expr->base()));
    }
    case ExprKind::kClassMethodCall: {
      double cost = 0.0;
      for (const auto& arg : expr->args()) cost += ExprCost(arg);
      // One full dispatch: as a method-scan parameter the call runs once
      // per query, and inside a per-row predicate the constant-argument
      // batch implementations dedup it to one probe per batch anyway.
      MethodStats stats = StatsForCall(expr);
      return cost + stats.per_call + stats.batch_setup;
    }
    case ExprKind::kBinary:
      return ExprCost(expr->lhs()) + ExprCost(expr->rhs()) + kOpCost;
    case ExprKind::kUnary:
      return ExprCost(expr->operand()) + kOpCost;
    case ExprKind::kTupleCtor: {
      double cost = kOpCost;
      for (const auto& [name, fe] : expr->fields()) cost += ExprCost(fe);
      return cost;
    }
    case ExprKind::kSetCtor: {
      double cost = kOpCost;
      for (const auto& el : expr->args()) cost += ExprCost(el);
      return cost;
    }
  }
  return kOpCost;
}

double CostModel::Selectivity(const ExprRef& cond) const {
  switch (cond->kind()) {
    case ExprKind::kConst:
      if (cond->value().is_bool()) {
        return cond->value().AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kBinary: {
      BinOp op = cond->bin_op();
      if (op == BinOp::kAnd) {
        return Selectivity(cond->lhs()) * Selectivity(cond->rhs());
      }
      if (op == BinOp::kOr) {
        double a = Selectivity(cond->lhs());
        double b = Selectivity(cond->rhs());
        return a + b - a * b;
      }
      if (op == BinOp::kEq) {
        // A boolean method comparison `m(x) == TRUE` has the method's
        // selectivity.
        if (cond->lhs()->kind() == ExprKind::kMethodCall) {
          return StatsForCall(cond->lhs()).selectivity;
        }
        if (cond->rhs()->kind() == ExprKind::kMethodCall) {
          return StatsForCall(cond->rhs()).selectivity;
        }
        return kDefaultEqSelectivity;
      }
      if (op == BinOp::kNe) return 1.0 - kDefaultEqSelectivity;
      if (op == BinOp::kIsIn) {
        // |rhs| over the cardinality of the lhs domain when known.
        double fan = Fanout(cond->rhs());
        std::string cls;
        if (cond->lhs()->kind() == ExprKind::kProperty ||
            cond->lhs()->kind() == ExprKind::kVar) {
          // Domain estimate: total objects of any class is unknown here;
          // fall back to the largest extent as a conservative domain.
          double max_extent = 1.0;
          for (const auto& c : catalog_->classes()) {
            max_extent =
                std::max(max_extent, ExtentCardinality(c->name()));
          }
          return std::min(1.0, fan / max_extent);
        }
        return std::min(1.0, fan / 100.0);
      }
      if (op == BinOp::kIsSubset) return 0.2;
      return kDefaultRangeSelectivity;
    }
    case ExprKind::kUnary:
      if (cond->un_op() == UnOp::kNot) {
        return 1.0 - Selectivity(cond->operand());
      }
      return 0.5;
    case ExprKind::kMethodCall:
      return StatsForCall(cond).selectivity;
    default:
      return 0.5;
  }
}

double CostModel::Fanout(const ExprRef& expr) const {
  switch (expr->kind()) {
    case ExprKind::kConst:
      return expr->value().is_set()
                 ? static_cast<double>(expr->value().AsSet().size())
                 : 1.0;
    case ExprKind::kVar:
      return 1.0;
    case ExprKind::kProperty: {
      // Per-element fanout of a (possibly set-lifted) property access.
      double base = Fanout(expr->base());
      for (const auto& provider : providers_) {
        // The "$property" pseudo-class marks property (not method)
        // statistics queries so providers can tell the two apart.
        auto stats =
            provider("$property", expr->name(), MethodLevel::kInstance, {});
        if (stats.has_value()) return base * stats->fanout;
      }
      // No provider: consult the catalog for the property's declared
      // type — scalar properties have fanout 1, set-valued ones default
      // to kDefaultSetFanout.
      for (const auto& cls : catalog_->classes()) {
        const PropertyDef* prop = cls->FindProperty(expr->name());
        if (prop != nullptr) {
          return prop->type->kind() == TypeKind::kSet
                     ? base * kDefaultSetFanout
                     : base;
        }
      }
      return base;
    }
    case ExprKind::kMethodCall:
      return Fanout(expr->base()) * StatsForCall(expr).fanout;
    case ExprKind::kClassMethodCall:
      return StatsForCall(expr).fanout;
    case ExprKind::kBinary: {
      if (expr->bin_op() == BinOp::kUnion) {
        return Fanout(expr->lhs()) + Fanout(expr->rhs());
      }
      if (expr->bin_op() == BinOp::kIntersect) {
        return std::min(Fanout(expr->lhs()), Fanout(expr->rhs()));
      }
      if (expr->bin_op() == BinOp::kDiff) return Fanout(expr->lhs());
      return 1.0;
    }
    case ExprKind::kSetCtor:
      return static_cast<double>(expr->args().size());
    default:
      return 1.0;
  }
}

double CostModel::EstimateCardinality(
    const LogicalNode& node, const std::vector<double>& child_cards) const {
  switch (node.op()) {
    case LogicalOp::kGet:
      // Scaled by the segment store's observed zone-map survival rate:
      // with pruning history, a scan leaf is expected to emit only the
      // surviving fraction of the extent.
      return ExtentCardinality(node.class_name()) * SegmentSurvivalRate();
    case LogicalOp::kExprSource:
      return std::max(0.0, Fanout(node.expr()));
    case LogicalOp::kSelect:
      return child_cards[0] * Selectivity(node.expr());
    case LogicalOp::kJoin:
      return child_cards[0] * child_cards[1] * Selectivity(node.expr());
    case LogicalOp::kNaturalJoin:
      return 0.8 * std::min(child_cards[0], child_cards[1]);
    case LogicalOp::kUnion:
      return child_cards[0] + child_cards[1];
    case LogicalOp::kDiff:
      return child_cards[0];
    case LogicalOp::kMap:
      return child_cards[0];
    case LogicalOp::kFlat:
      return child_cards[0] * std::max(0.0, Fanout(node.expr()));
    case LogicalOp::kProject:
      return 0.9 * child_cards[0];
    case LogicalOp::kGroupRef:
      return 1.0;  // resolved by the memo, never asked directly
  }
  return 1.0;
}

double CostModel::LocalCost(const LogicalNode& node,
                            const std::vector<double>& child_cards) const {
  // Batch-aware operator pricing: per-row emit work priced by how the
  // batched operator emits (mark / scatter / dense build / row path),
  // plus kBatchOverheadCost per NextBatch call the operator makes over
  // its input (BatchCount of the consumed rows). See the class comment
  // and docs/ARCHITECTURE.md §"Cost model".
  switch (node.op()) {
    case LogicalOp::kGet: {
      // Column-at-a-time extent slicing: one emitted value per row plus
      // the per-batch fill overhead. Rows are survival-scaled like
      // EstimateCardinality — zone-map-skipped segments cost nothing.
      const double rows =
          ExtentCardinality(node.class_name()) * SegmentSurvivalRate();
      return kTupleEmitCost * rows + kBatchOverheadCost * BatchCount(rows);
    }
    case LogicalOp::kExprSource: {
      const double rows = std::max(0.0, Fanout(node.expr()));
      return ExprCost(node.expr()) + kTupleEmitCost * rows +
             kBatchOverheadCost * BatchCount(rows);
    }
    case LogicalOp::kSelect:
      // The production filter *marks* survivors (selection vector):
      // predicate evaluation per input row, a mark per surviving row,
      // no value moves. (The compacting baseline would pay
      // kCompactMoveCost per survivor per filter instead — priced out,
      // which is exactly why marking is the default.)
      return child_cards[0] * ExprCost(node.expr()) +
             child_cards[0] * Selectivity(node.expr()) * kMarkCostPerRow +
             kBatchOverheadCost * BatchCount(child_cards[0]);
    case LogicalOp::kJoin: {
      const ExprRef& cond = node.expr();
      // Hash join applies to bare-variable equality conditions; the
      // executor makes the same deterministic choice.
      bool hashable = cond->kind() == ExprKind::kBinary &&
                      cond->bin_op() == BinOp::kEq &&
                      cond->lhs()->kind() == ExprKind::kVar &&
                      cond->rhs()->kind() == ExprKind::kVar;
      if (hashable) {
        // Probe side probes per row through the selection view; the
        // build side is a density boundary — each build row is
        // compacted once into the table on top of its hash insert.
        return kHashCostFactor * (child_cards[0] + child_cards[1]) +
               kCompactMoveCost * child_cards[1] +
               kBatchOverheadCost *
                   (BatchCount(child_cards[0]) + BatchCount(child_cards[1]));
      }
      // Nested loop stays on the row path: per-pair pricing.
      double per_pair = cond->kind() == ExprKind::kConst
                            ? kOpCost
                            : ExprCost(cond) + kOpCost;
      return child_cards[0] * child_cards[1] * per_pair;
    }
    case LogicalOp::kNaturalJoin:
      return kHashCostFactor * (child_cards[0] + child_cards[1]) +
             kCompactMoveCost * child_cards[1] +
             kBatchOverheadCost *
                 (BatchCount(child_cards[0]) + BatchCount(child_cards[1]));
    case LogicalOp::kUnion:
    case LogicalOp::kDiff:
      // Row-path operators (default batch adapter): per-row pricing.
      return 1.2 * (child_cards[0] + child_cards[1]);
    case LogicalOp::kMap:
      // Scatter of the computed column + wholesale pass-through moves.
      return child_cards[0] * (ExprCost(node.expr()) + kOpCost) +
             kBatchOverheadCost * BatchCount(child_cards[0]);
    case LogicalOp::kFlat:
      return child_cards[0] * (ExprCost(node.expr()) + kOpCost) +
             child_cards[0] * std::max(0.0, Fanout(node.expr())) *
                 kTupleEmitCost +
             kBatchOverheadCost * BatchCount(child_cards[0]);
    case LogicalOp::kProject:
      // Dense by construction: hash + emit per live input row.
      return child_cards[0] * kTupleEmitCost +
             kBatchOverheadCost * BatchCount(child_cards[0]);
    case LogicalOp::kGroupRef:
      return 0.0;
  }
  return 0.0;
}

}  // namespace opt
}  // namespace vodak
