#ifndef VODAK_OPTIMIZER_COST_MODEL_H_
#define VODAK_OPTIMIZER_COST_MODEL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algebra/logical.h"
#include "methods/method_registry.h"

namespace vodak {

namespace storage {
class SegmentStore;
}  // namespace storage

namespace opt {

/// Argument-aware method statistics, e.g. the selectivity of
/// `contains_string('implementation')` derived from the inverted index's
/// document frequency. Providers are installed per schema (the paper's
/// per-schema optimizer generation, §7); the first provider returning a
/// value wins, the registry's static MethodCost annotation is the
/// fallback.
struct MethodStats {
  /// Marginal per-row cost of one invocation under the set-at-a-time
  /// ABI (the whole per-call cost for scalar-only methods).
  double per_call = 1.0;
  double selectivity = 0.5;
  double fanout = 1.0;
  /// Per-dispatch setup a batch implementation pays once per batch
  /// (index probe, tokenization); see MethodCost::batch_setup.
  double batch_setup = 0.0;
};

using MethodStatsProvider = std::function<std::optional<MethodStats>(
    const std::string& class_name, const std::string& method,
    MethodLevel level, const std::vector<ExprRef>& args)>;

/// The "simple cost model" of §7, with the §2.3 refinement the paper
/// demands: attribute access has uniform unit cost, while each method
/// carries its own per-call cost, selectivity and fanout. Costs are
/// abstract units (1.0 = one property read).
///
/// The model prices the *batched* executor: per-row instance-method
/// calls amortize their batch_setup over kAssumedBatchRows (the
/// executor's ~1024-row batches dedup/share the setup across rows),
/// while class-object calls are priced as one full dispatch — they are
/// either method-scan parameters (invoked once per query) or deduped to
/// one probe per batch by the constant-argument batch implementations.
///
/// Operator costs are split the same way (docs/ARCHITECTURE.md §"Cost
/// model"): each operator pays a per-batch term — kBatchOverheadCost
/// per NextBatch call it makes, i.e. per ceil(rows / kAssumedBatchRows)
/// — plus per-row emit work priced by *how* the batched operator
/// actually emits. A Filter marks survivors in the selection vector
/// (kMarkCostPerRow, far below a tuple emit; the compacting baseline
/// behind ExecContext::filter_compacts would instead pay
/// kCompactMoveCost per surviving row per filter — why it is the
/// baseline, not the production path). A hash-join build crosses a
/// density boundary, so its build rows pay one kCompactMoveCost on top
/// of the hash insert. Row-path operators (nested-loop join, set ops)
/// keep plain per-row pricing.
class CostModel {
 public:
  /// Rows the executor's NextBatch pipeline typically moves per batch
  /// (mirrors exec::kDefaultBatchSize without a layering dependency).
  static constexpr double kAssumedBatchRows = 1024.0;
  /// Fixed cost of one NextBatch call: virtual dispatch, batch reset,
  /// per-batch evaluator setup. Paid once per ~kAssumedBatchRows rows,
  /// not per row — the whole point of the vectorized pipeline.
  static constexpr double kBatchOverheadCost = 4.0;
  /// Marking one surviving row in a batch's selection vector (the
  /// production filter's per-row emit: no value moves).
  static constexpr double kMarkCostPerRow = 0.02;
  /// Moving one row's values across a density boundary (Compact() at
  /// the hash-join build / row hand-off; also what the compacting
  /// filter baseline pays per surviving row per filter).
  static constexpr double kCompactMoveCost = 0.5;

  /// NextBatch calls needed for `rows` output rows: ceil(rows /
  /// kAssumedBatchRows), at least 1 (every operator pays its end-of-
  /// stream call even when empty).
  static double BatchCount(double rows);
  CostModel(const Catalog* catalog, const ObjectStore* store,
            const MethodRegistry* methods,
            std::vector<MethodStatsProvider> providers = {});

  /// Attaches the paged segment store's pruning feedback: kGet leaves
  /// are priced by the observed zone-map survival rate — scanned /
  /// (scanned + skipped) over the store's history — so a workload
  /// whose predicates keep refuting segments teaches the model that
  /// scans under selective filters are cheap. Null (the default)
  /// prices full extents.
  void SetSegmentStore(const storage::SegmentStore* segments) {
    segments_ = segments;
  }

  /// The attached store's observed survival rate in (0, 1]; 1.0
  /// without a store or before any pruning history.
  double SegmentSurvivalRate() const;

  /// |extension(class)|.
  double ExtentCardinality(const std::string& class_name) const;

  /// Estimated output cardinality of `node` given child cardinalities.
  double EstimateCardinality(const algebra::LogicalNode& node,
                             const std::vector<double>& child_cards) const;

  /// Local processing cost of `node` (children already produced).
  double LocalCost(const algebra::LogicalNode& node,
                   const std::vector<double>& child_cards) const;

  /// Per-tuple evaluation cost of an expression: 1.0 per property hop,
  /// the method's per-call cost per method invocation, epsilon for
  /// built-in operators.
  double ExprCost(const ExprRef& expr) const;

  /// Selectivity of a boolean condition (product over conjuncts).
  double Selectivity(const ExprRef& cond) const;

  /// Expected cardinality of a set-valued expression (flat/expr_source).
  double Fanout(const ExprRef& expr) const;

  /// Statistics for one method call expression (kMethodCall or
  /// kClassMethodCall), consulting providers then the registry.
  MethodStats StatsForCall(const ExprRef& call) const;

 private:
  const Catalog* catalog_;
  const ObjectStore* store_;
  const MethodRegistry* methods_;
  const storage::SegmentStore* segments_ = nullptr;
  std::vector<MethodStatsProvider> providers_;
};

}  // namespace opt
}  // namespace vodak

#endif  // VODAK_OPTIMIZER_COST_MODEL_H_
