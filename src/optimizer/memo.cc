#include "optimizer/memo.h"

#include "common/string_util.h"

namespace vodak {
namespace opt {

using algebra::LogicalNode;
using algebra::LogicalOp;
using algebra::LogicalRef;

int Memo::Find(int group) const {
  int root = group;
  while (parent_[root] != root) root = parent_[root];
  return root;
}

size_t Memo::group_count() const {
  size_t n = 0;
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (parent_[i] == static_cast<int>(i)) ++n;
  }
  return n;
}

uint64_t Memo::ProtoKeyHash(const LogicalRef& proto,
                            const std::vector<int>& children) const {
  // The proto already embeds canonical GroupRef children, but we mix the
  // child ids explicitly for robustness.
  uint64_t h = proto->Hash();
  for (int c : children) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

Result<int> Memo::InsertRec(const LogicalRef& node) {
  if (node->op() == LogicalOp::kGroupRef) {
    if (node->group_id() < 0 ||
        node->group_id() >= static_cast<int>(groups_.size())) {
      return Status::Internal("dangling group reference ?G" +
                              std::to_string(node->group_id()));
    }
    return Find(node->group_id());
  }
  std::vector<int> children;
  std::vector<LogicalRef> child_refs;
  children.reserve(node->inputs().size());
  for (const auto& input : node->inputs()) {
    VODAK_ASSIGN_OR_RETURN(int g, InsertRec(input));
    children.push_back(g);
    child_refs.push_back(ctx_->GroupRef(g, groups_[g].schema));
  }
  LogicalRef proto;
  if (child_refs.empty()) {
    proto = node;
  } else {
    VODAK_ASSIGN_OR_RETURN(proto,
                           ctx_->WithInputs(*node, std::move(child_refs)));
  }
  VODAK_ASSIGN_OR_RETURN(int expr_id, AddExpr(proto, children, -1));
  return Find(exprs_[expr_id]->group);
}

Result<int> Memo::Insert(const LogicalRef& node) {
  return InsertRec(node);
}

Result<int> Memo::InsertIntoGroup(const LogicalRef& node,
                                  int target_group) {
  if (node->op() == LogicalOp::kGroupRef) {
    // The rule proved the whole expression equal to one of its input
    // groups (e.g. natural_join elimination): merge.
    int g = Find(node->group_id());
    int t = Find(target_group);
    if (g != t) MergeGroups(t, g);
    return -1;
  }
  std::vector<int> children;
  std::vector<LogicalRef> child_refs;
  for (const auto& input : node->inputs()) {
    VODAK_ASSIGN_OR_RETURN(int g, InsertRec(input));
    children.push_back(g);
    child_refs.push_back(ctx_->GroupRef(g, groups_[g].schema));
  }
  LogicalRef proto;
  if (child_refs.empty()) {
    proto = node;
  } else {
    VODAK_ASSIGN_OR_RETURN(proto,
                           ctx_->WithInputs(*node, std::move(child_refs)));
  }
  return AddExpr(proto, children, target_group);
}

Result<int> Memo::AddExpr(const LogicalRef& proto,
                          std::vector<int> children, int target_group) {
  for (int& c : children) c = Find(c);
  uint64_t key = ProtoKeyHash(proto, children);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    for (int candidate : it->second) {
      const MemoExpr& existing = *exprs_[candidate];
      if (existing.children == children &&
          LogicalNode::Equals(existing.proto, proto)) {
        if (target_group >= 0 &&
            Find(existing.group) != Find(target_group)) {
          MergeGroups(Find(target_group), Find(existing.group));
        }
        return candidate;
      }
    }
  }
  // Self-reference check: an expression may not live in a group it uses
  // as input (would make extraction cyclic).
  if (target_group >= 0) {
    for (int c : children) {
      if (c == Find(target_group)) {
        return Status::PlanError("rule produced self-referential plan");
      }
    }
  }

  auto memo_expr = std::make_unique<MemoExpr>();
  memo_expr->id = static_cast<int>(exprs_.size());
  memo_expr->proto = proto;
  memo_expr->children = std::move(children);
  if (target_group < 0) {
    Group group;
    group.id = static_cast<int>(groups_.size());
    group.schema = proto->schema();
    groups_.push_back(group);
    parent_.push_back(group.id);
    memo_expr->group = group.id;
  } else {
    memo_expr->group = Find(target_group);
  }
  groups_[memo_expr->group].exprs.push_back(memo_expr->id);
  dedup_[key].push_back(memo_expr->id);
  int id = memo_expr->id;
  for (int c : memo_expr->children) {
    groups_[c].parents.push_back(id);
  }
  int changed_group = memo_expr->group;
  exprs_.push_back(std::move(memo_expr));
  ++groups_[changed_group].version;
  if (group_changed_) group_changed_(changed_group);
  return id;
}

void Memo::MergeGroups(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  // Keep the smaller id as representative for stable output.
  if (b < a) std::swap(a, b);
  parent_[b] = a;
  for (int e : groups_[b].exprs) {
    exprs_[e]->group = a;
    groups_[a].exprs.push_back(e);
  }
  groups_[b].exprs.clear();
  groups_[a].parents.insert(groups_[a].parents.end(),
                            groups_[b].parents.begin(),
                            groups_[b].parents.end());
  groups_[b].parents.clear();
  // Costs are stale after a merge.
  groups_[a].best_known = false;
  if (!groups_[a].card_known && groups_[b].card_known) {
    groups_[a].cardinality = groups_[b].cardinality;
    groups_[a].card_known = true;
  }
  groups_[a].version += groups_[b].version + 1;
  // Retire expressions the merge made self-referential.
  for (int e : groups_[a].exprs) {
    if (exprs_[e]->dead) continue;
    for (int c : exprs_[e]->children) {
      if (Find(c) == a) {
        exprs_[e]->dead = true;
        break;
      }
    }
  }
  if (group_changed_) group_changed_(a);
}

Result<LogicalRef> Memo::Extract(
    int expr_id, const std::function<int(int)>& chooser) const {
  const MemoExpr& e = *exprs_[expr_id];
  std::vector<LogicalRef> child_plans;
  child_plans.reserve(e.children.size());
  for (int child_group : e.children) {
    int child_expr = chooser(Find(child_group));
    if (child_expr < 0) {
      return Status::PlanError("no plan chosen for group " +
                               std::to_string(Find(child_group)));
    }
    VODAK_ASSIGN_OR_RETURN(LogicalRef plan, Extract(child_expr, chooser));
    child_plans.push_back(std::move(plan));
  }
  if (child_plans.empty()) return e.proto;
  return ctx_->WithInputs(*e.proto, std::move(child_plans));
}

std::string Memo::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (parent_[g] != static_cast<int>(g) || groups_[g].exprs.empty()) {
      continue;
    }
    out += "group " + std::to_string(g) +
           " (card=" + std::to_string(groups_[g].cardinality) + "):\n";
    for (int e : groups_[g].exprs) {
      out += "  #" + std::to_string(e) + " " + exprs_[e]->proto->ToString() +
             "\n";
    }
  }
  return out;
}

}  // namespace opt
}  // namespace vodak
