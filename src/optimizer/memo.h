#ifndef VODAK_OPTIMIZER_MEMO_H_
#define VODAK_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical.h"
#include "common/result.h"

namespace vodak {
namespace opt {

/// One logical expression inside the memo: an operator whose inputs are
/// groups. `proto` is the node with kGroupRef children (the canonical
/// form used for duplicate detection).
struct MemoExpr {
  int id = -1;
  int group = -1;
  algebra::LogicalRef proto;
  std::vector<int> children;
  /// Bitmask of rules already applied to this expression (Volcano's
  /// protection against re-deriving; also realizes the paper's ⟶!).
  uint64_t applied_mask = 0;
  /// Sum of child-group versions when deep-pattern rules last fired;
  /// ~0 marks "never".
  uint64_t deep_seen_version = ~0ULL;
  /// Set when a group merge made this expression reference its own
  /// group (e.g. natural_join(X, get) ∈ X after get-elimination).
  /// Such tautological members are unusable in plans and poison
  /// exploration (unbounded join re-association), so the memo retires
  /// them.
  bool dead = false;
};

/// An equivalence class of logical expressions (Volcano group). Search
/// state (best cost/expression) is memoized here.
struct Group {
  int id = -1;
  algebra::RefSchema schema;
  std::vector<int> exprs;
  /// Expressions in *other* groups that use this group as an input.
  /// Deep-pattern rules on those parents must re-fire when this group
  /// gains members, so the exploration enqueues them on version bumps.
  std::vector<int> parents;
  /// Bumped whenever the group gains an expression or absorbs a merge.
  uint64_t version = 0;
  /// Estimated output cardinality (from the first inserted expression —
  /// a logical property shared by all members).
  double cardinality = 1.0;
  bool card_known = false;
  // FindBestPlan memoization.
  bool best_known = false;
  double best_cost = 0.0;
  int best_expr = -1;
};

/// The Volcano memo: equivalence classes of logical expressions with
/// structural duplicate detection. Inserting an expression that already
/// exists in another group merges the two groups (union-find), which is
/// how transformation chains like §2.3's Q→…→PQ end up proving all
/// intermediate forms equivalent.
class Memo {
 public:
  explicit Memo(const algebra::AlgebraContext* ctx) : ctx_(ctx) {}

  /// Copies a full logical tree into the memo; returns the root group.
  Result<int> Insert(const algebra::LogicalRef& node);

  /// Inserts `node` (whose leaves may be kGroupRef placeholders) as a
  /// member of group `target_group`; merges groups on duplicates.
  /// Returns the id of the (new or existing) expression, or -1 when the
  /// expression was already known in this group.
  Result<int> InsertIntoGroup(const algebra::LogicalRef& node,
                              int target_group);

  int Find(int group) const;  // union-find representative

  const Group& group(int id) const { return groups_[Find(id)]; }
  Group& group(int id) { return groups_[Find(id)]; }
  const MemoExpr& expr(int id) const { return *exprs_[id]; }
  MemoExpr& expr(int id) { return *exprs_[id]; }

  size_t group_count() const;
  size_t expr_count() const { return exprs_.size(); }

  /// Rebuilds a full logical tree from an expression, recursively taking
  /// each child group's `chooser(group)` expression.
  Result<algebra::LogicalRef> Extract(
      int expr_id, const std::function<int(int)>& chooser) const;

  /// Dump for the demonstrator / debugging: every group with its
  /// expressions.
  std::string ToString() const;

  /// Invoked with a group id whenever that group's version bumps (new
  /// member or merge); the exploration uses this to re-enqueue parents.
  void SetGroupChangedCallback(std::function<void(int)> callback) {
    group_changed_ = std::move(callback);
  }

 private:
  Result<int> InsertRec(const algebra::LogicalRef& node);
  Result<int> AddExpr(const algebra::LogicalRef& proto,
                      std::vector<int> children, int target_group);
  void MergeGroups(int a, int b);
  uint64_t ProtoKeyHash(const algebra::LogicalRef& proto,
                        const std::vector<int>& children) const;

  const algebra::AlgebraContext* ctx_;
  std::vector<Group> groups_;
  std::vector<int> parent_;  // union-find over groups
  std::vector<std::unique_ptr<MemoExpr>> exprs_;
  // canonical-form hash -> expr ids (collisions resolved by Equals).
  std::unordered_map<uint64_t, std::vector<int>> dedup_;
  std::function<void(int)> group_changed_;
};

}  // namespace opt
}  // namespace vodak

#endif  // VODAK_OPTIMIZER_MEMO_H_
