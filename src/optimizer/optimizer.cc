#include "optimizer/optimizer.h"
#include <iostream>

#include <deque>
#include <limits>

namespace vodak {
namespace opt {

using algebra::AlgebraContext;
using algebra::LogicalNode;
using algebra::LogicalOp;
using algebra::LogicalRef;

int Pattern::Depth() const {
  if (is_wildcard()) return 0;
  int depth = 0;
  for (const auto& child : children) depth = std::max(depth, child.Depth());
  return depth + 1;
}

Optimizer::Optimizer(const AlgebraContext* ctx, const CostModel* cost,
                     std::vector<RulePtr> rules, OptimizerOptions options)
    : ctx_(ctx),
      cost_(cost),
      rules_(std::move(rules)),
      options_(options) {
  VODAK_CHECK(rules_.size() <= 64)
      << "applied_mask is a 64-bit bitmap; got " << rules_.size()
      << " rules";
}

/// Internal exploration + search state for one Optimize call.
struct Optimizer::Search {
  Optimizer* self;
  Memo memo;
  size_t rule_applications = 0;  // productive (new-expression) rewrites
  size_t attempts = 0;           // all generated results incl. duplicates
  std::vector<TraceEntry> trace;
  std::vector<char> group_in_progress;

  explicit Search(Optimizer* owner) : self(owner), memo(owner->ctx_) {}

  /// Cardinality of a group, computed lazily from its first expression.
  double GroupCard(int gid) {
    Group& group = memo.group(gid);
    if (group.card_known) return group.cardinality;
    group.card_known = true;  // set first: guards against cycles
    group.cardinality = 1.0;
    for (int expr_id : group.exprs) {
      const MemoExpr& e = memo.expr(expr_id);
      if (e.dead) continue;
      std::vector<double> child_cards;
      child_cards.reserve(e.children.size());
      for (int c : e.children) child_cards.push_back(GroupCard(c));
      group.cardinality =
          self->cost_->EstimateCardinality(*e.proto, child_cards);
      break;
    }
    return group.cardinality;
  }

  /// Enumerates bindings of `pattern` rooted at memo expression
  /// `expr_id`; each binding is a tree with kGroupRef wildcard leaves.
  void Bindings(int expr_id, const Pattern& pattern,
                std::vector<LogicalRef>* out) {
    const MemoExpr& e = memo.expr(expr_id);
    if (pattern.is_wildcard()) {
      out->push_back(
          self->ctx_->GroupRef(memo.Find(e.group),
                               memo.group(e.group).schema));
      return;
    }
    if (pattern.any_operator) {
      out->push_back(e.proto);  // children are already group refs
      return;
    }
    if (e.proto->op() != *pattern.op) return;
    if (pattern.children.empty()) {
      out->push_back(e.proto);
      return;
    }
    if (pattern.children.size() != e.children.size()) return;
    // Cross product of child bindings.
    std::vector<std::vector<LogicalRef>> child_options(e.children.size());
    for (size_t i = 0; i < e.children.size(); ++i) {
      const Pattern& child_pattern = pattern.children[i];
      if (child_pattern.is_wildcard()) {
        child_options[i].push_back(self->ctx_->GroupRef(
            memo.Find(e.children[i]), memo.group(e.children[i]).schema));
        continue;
      }
      for (int child_expr : memo.group(e.children[i]).exprs) {
        if (memo.expr(child_expr).dead) continue;
        Bindings(child_expr, child_pattern, &child_options[i]);
      }
      if (child_options[i].empty()) return;
    }
    std::vector<size_t> idx(e.children.size(), 0);
    for (;;) {
      std::vector<LogicalRef> children;
      children.reserve(e.children.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        children.push_back(child_options[i][idx[i]]);
      }
      auto bound = self->ctx_->WithInputs(*e.proto, std::move(children));
      if (bound.ok()) out->push_back(std::move(bound).value());
      // Advance the odometer.
      size_t k = 0;
      for (; k < idx.size(); ++k) {
        if (++idx[k] < child_options[k].size()) break;
        idx[k] = 0;
      }
      if (k == idx.size()) break;
    }
  }

  std::deque<int> queue;
  std::vector<char> queued;

  void Enqueue(int expr_id) {
    if (expr_id >= static_cast<int>(queued.size())) {
      queued.resize(static_cast<size_t>(expr_id) + 64, 0);
    }
    if (queued[expr_id]) return;
    queued[expr_id] = 1;
    queue.push_back(expr_id);
  }

  uint64_t ChildVersionSum(const MemoExpr& e) {
    uint64_t sum = 0;
    for (int c : e.children) sum += memo.group(c).version;
    return sum;
  }

  /// Applies one rule to one expression; inserts the results.
  Status ApplyRule(int expr_id, size_t r) {
    const TransformationRule& rule = *self->rules_[r];
    uint64_t bit = 1ULL << r;
    std::vector<LogicalRef> bindings;
    Bindings(expr_id, rule.pattern(), &bindings);
    for (const LogicalRef& binding : bindings) {
      std::vector<LogicalRef> results;
      Status status = rule.Apply(*self->ctx_, binding, &results);
      if (!status.ok()) continue;  // rule declined this binding
      for (const LogicalRef& result : results) {
        ++attempts;
        size_t before_count = memo.expr_count();
        size_t before_groups = memo.group_count();
        int target = memo.Find(memo.expr(expr_id).group);
        auto inserted = memo.InsertIntoGroup(result, target);
        if (!inserted.ok()) continue;
        bool is_new = memo.expr_count() > before_count ||
                      memo.group_count() < before_groups;
        if (is_new) {
          ++rule_applications;
          if (inserted.value() >= 0 && rule.apply_once()) {
            memo.expr(inserted.value()).applied_mask |= bit;
          }
          // Enqueue every expression the insertion created — including
          // the ones InsertRec added for nested subtrees in fresh
          // groups, which would otherwise never be explored.
          for (size_t i = before_count; i < memo.expr_count(); ++i) {
            Enqueue(static_cast<int>(i));
          }
          if (self->options_.enable_trace) {
            trace.push_back(TraceEntry{rule.name(), binding->ToString(),
                                       result->ToString(), target});
          }
        }
      }
    }
    return Status::OK();
  }

  /// Exhaustive transformation closure (Volcano's exploration),
  /// worklist-driven. Rules whose pattern is one operator deep bind only
  /// the expression itself (inputs are whole groups), so they fire once
  /// per expression, guarded by applied_mask. Deeper patterns also
  /// enumerate child-group members, so their expressions re-fire
  /// whenever a child group gains members (group version bumps →
  /// parents re-enqueued via the memo callback). Duplicate detection
  /// plus the expression cap guarantee termination; apply-once rules
  /// (the paper's ⟶!) stay masked forever.
  Status Explore() {
    memo.SetGroupChangedCallback([this](int gid) {
      for (int parent : memo.group(gid).parents) Enqueue(parent);
      // Exprs inside the group may satisfy deep rules of new siblings'
      // parents only; members themselves need no re-fire (their own
      // bindings are unchanged) except through their parents above.
    });
    for (size_t i = 0; i < memo.expr_count(); ++i) {
      Enqueue(static_cast<int>(i));
    }
    while (!queue.empty()) {
      if (memo.expr_count() > self->options_.max_exprs) {
        if (self->options_.enable_trace) {
          std::cerr << memo.ToString();  // debugging aid on overflow
          for (const auto& t : trace) {
            std::cerr << "[" << t.rule << "] " << t.before << " => "
                      << t.after << "\n";
          }
        }
        return Status::PlanError(
            "optimizer memo exceeded max_exprs limit (" +
            std::to_string(self->options_.max_exprs) + ")");
      }
      if (attempts > self->options_.max_rule_applications) {
        return Status::PlanError(
            "optimizer exceeded rule application limit");
      }
      int expr_id = queue.front();
      queue.pop_front();
      queued[expr_id] = 0;
      if (memo.expr(expr_id).dead) continue;
      uint64_t child_version = ChildVersionSum(memo.expr(expr_id));
      bool deep_due =
          memo.expr(expr_id).deep_seen_version != child_version;
      for (size_t r = 0; r < self->rules_.size(); ++r) {
        const TransformationRule& rule = *self->rules_[r];
        uint64_t bit = 1ULL << r;
        bool deep = rule.pattern().Depth() >= 2;
        if (deep) {
          if (!deep_due &&
              (memo.expr(expr_id).applied_mask & bit)) {
            continue;
          }
        } else if (memo.expr(expr_id).applied_mask & bit) {
          continue;
        }
        memo.expr(expr_id).applied_mask |= bit;
        VODAK_RETURN_IF_ERROR(ApplyRule(expr_id, r));
      }
      memo.expr(expr_id).deep_seen_version = child_version;
    }
    memo.SetGroupChangedCallback(nullptr);
    return Status::OK();
  }

  /// Volcano FindBestPlan: memoized per group, with local pruning — an
  /// expression is abandoned as soon as its accumulated cost exceeds the
  /// best already found in the group.
  double FindBest(int gid) {
    gid = memo.Find(gid);
    Group& group = memo.group(gid);
    if (group.best_known) return group.best_cost;
    if (group_in_progress[gid]) {
      return std::numeric_limits<double>::infinity();  // cyclic candidate
    }
    group_in_progress[gid] = 1;
    double best = std::numeric_limits<double>::infinity();
    int best_expr = -1;
    for (int expr_id : group.exprs) {
      const MemoExpr& e = memo.expr(expr_id);
      if (e.dead) continue;
      std::vector<double> child_cards;
      child_cards.reserve(e.children.size());
      bool skip = false;
      for (int c : e.children) {
        if (memo.Find(c) == gid) {
          skip = true;  // self-referential after a merge
          break;
        }
        child_cards.push_back(GroupCard(c));
      }
      if (skip) continue;
      double cost = self->cost_->LocalCost(*e.proto, child_cards);
      if (cost >= best) continue;  // branch-and-bound: local bound
      for (int c : e.children) {
        cost += FindBest(c);
        if (cost >= best) break;
      }
      if (cost < best) {
        best = cost;
        best_expr = expr_id;
      }
    }
    group_in_progress[gid] = 0;
    group.best_known = true;
    group.best_cost = best;
    group.best_expr = best_expr;
    return best;
  }
};

double Optimizer::PlanCost(const LogicalRef& plan) const {
  std::vector<double> child_cards;
  double cost = 0.0;
  for (const auto& input : plan->inputs()) {
    cost += PlanCost(input);
  }
  std::function<double(const LogicalRef&)> card =
      [&](const LogicalRef& node) -> double {
    std::vector<double> cards;
    for (const auto& input : node->inputs()) cards.push_back(card(input));
    return cost_->EstimateCardinality(*node, cards);
  };
  for (const auto& input : plan->inputs()) {
    child_cards.push_back(card(input));
  }
  return cost + cost_->LocalCost(*plan, child_cards);
}

Result<OptimizeResult> Optimizer::Optimize(const LogicalRef& plan) {
  Search search(this);
  VODAK_ASSIGN_OR_RETURN(int root_group, search.memo.Insert(plan));
  VODAK_RETURN_IF_ERROR(search.Explore());

  // Group ids are bounded by the number of expressions ever inserted.
  search.group_in_progress.assign(search.memo.expr_count() + 16, 0);

  double best_cost = search.FindBest(root_group);
  const Group& root = search.memo.group(root_group);
  if (root.best_expr < 0) {
    return Status::PlanError("no plan found for root group");
  }
  auto chooser = [&search](int gid) {
    return search.memo.group(gid).best_expr;
  };
  VODAK_ASSIGN_OR_RETURN(LogicalRef best_plan,
                         search.memo.Extract(root.best_expr, chooser));

  OptimizeResult result;
  result.best_plan = std::move(best_plan);
  result.best_cost = best_cost;
  result.original_cost = PlanCost(plan);
  result.group_count = search.memo.group_count();
  result.expr_count = search.memo.expr_count();
  result.rule_applications = search.rule_applications;
  result.trace = std::move(search.trace);
  if (options_.enable_trace) {
    result.memo_dump = search.memo.ToString();
  }
  return result;
}

}  // namespace opt
}  // namespace vodak
