#ifndef VODAK_OPTIMIZER_OPTIMIZER_H_
#define VODAK_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/rule.h"

namespace vodak {
namespace opt {

struct OptimizerOptions {
  /// Hard cap on memo expressions — safety net against rule explosions.
  size_t max_exprs = 50000;
  size_t max_rule_applications = 500000;
  /// Record every rule application (the §7 demonstrator's storyboard).
  bool enable_trace = false;
};

/// One recorded rule application for the optimization trace.
struct TraceEntry {
  std::string rule;
  std::string before;
  std::string after;
  int group = -1;
};

struct OptimizeResult {
  algebra::LogicalRef best_plan;
  double best_cost = 0.0;
  double original_cost = 0.0;
  size_t group_count = 0;
  size_t expr_count = 0;
  size_t rule_applications = 0;
  std::vector<TraceEntry> trace;
  /// Memo dump (filled when tracing is enabled).
  std::string memo_dump;
};

/// The generated optimizer module: exhaustive application of the
/// transformation rules over a Volcano memo, followed by cost-based plan
/// extraction with per-group memoization and local branch-and-bound
/// pruning (§6.1). One Optimizer instance is generated per schema with
/// that schema's derived rules and statistics — see OptimizerGenerator
/// in semantics/.
class Optimizer {
 public:
  Optimizer(const algebra::AlgebraContext* ctx, const CostModel* cost,
            std::vector<RulePtr> rules, OptimizerOptions options = {});

  Result<OptimizeResult> Optimize(const algebra::LogicalRef& plan);

  /// Cost of a concrete plan tree under this optimizer's cost model
  /// (used to report the cost of the unoptimized plan).
  double PlanCost(const algebra::LogicalRef& plan) const;

  const std::vector<RulePtr>& rules() const { return rules_; }

 private:
  struct Search;

  const algebra::AlgebraContext* ctx_;
  const CostModel* cost_;
  std::vector<RulePtr> rules_;
  OptimizerOptions options_;
};

}  // namespace opt
}  // namespace vodak

#endif  // VODAK_OPTIMIZER_OPTIMIZER_H_
