#ifndef VODAK_OPTIMIZER_RULE_H_
#define VODAK_OPTIMIZER_RULE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/logical.h"

namespace vodak {
namespace opt {

/// Operator pattern for rule matching, the Volcano style (§6.1): patterns
/// name operators and input positions; a pattern node without an operator
/// is a wildcard that binds a whole memo group (`?A` / `?A1` in the
/// paper's rules). Contents of operator *arguments* (conditions,
/// expressions) are inspected in the rule's Apply — Volcano's "condition
/// code".
struct Pattern {
  std::optional<algebra::LogicalOp> op;
  std::vector<Pattern> children;
  /// Matches any single operator (inputs bound as groups). Used by the
  /// knowledge-derived parameter-rewrite rules, which apply to every
  /// operator carrying an expression argument.
  bool any_operator = false;

  /// Wildcard: matches any group.
  static Pattern Any() { return Pattern{}; }
  static Pattern Op(algebra::LogicalOp op, std::vector<Pattern> children) {
    return Pattern{op, std::move(children), false};
  }
  /// Any single operator node.
  static Pattern AnyOp() { return Pattern{std::nullopt, {}, true}; }

  bool is_wildcard() const { return !op.has_value() && !any_operator; }
  /// Number of operator levels (wildcard = 0).
  int Depth() const;
};

/// A transformation rule (§4.2 / §6.1): rewrites a logical expression
/// into equivalent logical expressions. Bidirectional equivalences are
/// registered as two rules. Rules derived from query≡method knowledge
/// behave like the paper's implementation rules: directional and flagged
/// apply-once (the paper's ⟶! marker) to prevent re-derivation loops.
class TransformationRule {
 public:
  virtual ~TransformationRule() = default;

  virtual std::string name() const = 0;
  virtual const Pattern& pattern() const = 0;
  /// The ⟶! marker: apply at most once per memo expression.
  virtual bool apply_once() const { return false; }

  /// `binding` is a tree matching pattern(): inner nodes are real
  /// operators, wildcard leaves are kGroupRef placeholders. Push zero or
  /// more equivalent trees (over the same placeholders) onto `out`.
  virtual Status Apply(const algebra::AlgebraContext& ctx,
                       const algebra::LogicalRef& binding,
                       std::vector<algebra::LogicalRef>* out) const = 0;
};

using RulePtr = std::shared_ptr<const TransformationRule>;

/// The built-in algebraic rule set: the "well-known rules from relational
/// query optimization" of §6.1 (join commutativity/associativity,
/// interchangeability of selection and join, selection splitting and
/// reordering) plus the rules connecting IS-IN conditions with
/// natural_join / expr_source that the paper uses as "standard query
/// transformations" in the Q⁗→PQ step of §2.3.
std::vector<RulePtr> BuiltinRules();

/// The reverse of the built-in is-in-to-natural-join rule. Not in the
/// default set (it pumps exploration); exposed for the optimizer-scaling
/// experiments and tests.
RulePtr MakeNaturalJoinToIsInRule();

}  // namespace opt
}  // namespace vodak

#endif  // VODAK_OPTIMIZER_RULE_H_
