#include "schema/catalog.h"

#include <memory>

namespace vodak {

Status ClassDef::AddProperty(std::string name, TypeRef type) {
  if (FindProperty(name) != nullptr) {
    return Status::AlreadyExists("property '" + name + "' in class '" +
                                 name_ + "'");
  }
  PropertyDef def;
  def.name = std::move(name);
  def.type = std::move(type);
  def.slot = static_cast<uint32_t>(properties_.size());
  properties_.push_back(std::move(def));
  return Status::OK();
}

Status ClassDef::AddMethod(MethodSig sig) {
  if (FindMethod(sig.name, sig.level) != nullptr) {
    return Status::AlreadyExists("method '" + sig.name + "' in class '" +
                                 name_ + "'");
  }
  if (sig.level == MethodLevel::kInstance) {
    instance_methods_.push_back(std::move(sig));
  } else {
    class_methods_.push_back(std::move(sig));
  }
  return Status::OK();
}

const PropertyDef* ClassDef::FindProperty(const std::string& name) const {
  for (const auto& p : properties_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const MethodSig* ClassDef::FindMethod(const std::string& name,
                                      MethodLevel level) const {
  const auto& methods = level == MethodLevel::kInstance ? instance_methods_
                                                        : class_methods_;
  for (const auto& m : methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string ClassDef::ToString() const {
  std::string out = "CLASS " + name_ + "\n";
  if (!class_methods_.empty()) {
    out += "  OWNTYPE OBJECTTYPE\n    METHODS:\n";
    for (const auto& m : class_methods_) {
      out += "      " + m.name + "(";
      for (size_t i = 0; i < m.params.size(); ++i) {
        if (i) out += ", ";
        out += m.params[i].first + ": " + m.params[i].second->ToString();
      }
      out += "): " + m.return_type->ToString() + ";\n";
    }
    out += "  END;\n";
  }
  out += "  INSTTYPE OBJECTTYPE\n";
  if (!properties_.empty()) {
    out += "    PROPERTIES:\n";
    for (const auto& p : properties_) {
      out += "      " + p.name + ": " + p.type->ToString() + ";\n";
    }
  }
  if (!instance_methods_.empty()) {
    out += "    METHODS:\n";
    for (const auto& m : instance_methods_) {
      out += "      " + m.name + "(";
      for (size_t i = 0; i < m.params.size(); ++i) {
        if (i) out += ", ";
        out += m.params[i].first + ": " + m.params[i].second->ToString();
      }
      out += "): " + m.return_type->ToString() + ";\n";
    }
  }
  out += "  END;\nEND;\n";
  return out;
}

Result<ClassDef*> Catalog::DefineClass(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("class '" + name + "'");
  }
  auto cls = std::make_unique<ClassDef>(
      name, static_cast<uint32_t>(classes_.size() + 1));
  ClassDef* ptr = cls.get();
  classes_.push_back(std::move(cls));
  by_name_[name] = ptr;
  return ptr;
}

const ClassDef* Catalog::FindClass(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

ClassDef* Catalog::FindClassMutable(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const ClassDef* Catalog::FindClassById(uint32_t class_id) const {
  if (class_id == 0 || class_id > classes_.size()) return nullptr;
  return classes_[class_id - 1].get();
}

}  // namespace vodak
