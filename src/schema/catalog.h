#ifndef VODAK_SCHEMA_CATALOG_H_
#define VODAK_SCHEMA_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/type.h"

namespace vodak {

/// Instance property (VML "PROPERTIES" section). The slot is the storage
/// index inside ObjectStore instances; it equals the declaration order.
struct PropertyDef {
  std::string name;
  TypeRef type;
  uint32_t slot = 0;
};

/// OWNTYPE methods belong to the class object (e.g.
/// `Document→select_by_index`), INSTTYPE methods to instances
/// (e.g. `p→contains_string`). This mirrors §2.1 of the paper.
enum class MethodLevel { kInstance, kClassObject };

/// Method signature as declared in the schema. Implementations live in
/// the MethodRegistry (S5); the catalog is pure metadata so that the
/// binder and the optimizer can reason about queries without touching
/// executable code — exactly the encapsulation the paper preserves
/// ("without revealing the real method implementation", §9).
struct MethodSig {
  std::string name;
  std::vector<std::pair<std::string, TypeRef>> params;
  TypeRef return_type;
  MethodLevel level = MethodLevel::kInstance;
};

/// A class definition: properties (instance state) plus instance-level and
/// class-object-level method signatures.
class ClassDef {
 public:
  ClassDef(std::string name, uint32_t class_id)
      : name_(std::move(name)), class_id_(class_id) {}

  const std::string& name() const { return name_; }
  uint32_t class_id() const { return class_id_; }

  Status AddProperty(std::string name, TypeRef type);
  Status AddMethod(MethodSig sig);

  const std::vector<PropertyDef>& properties() const { return properties_; }
  const std::vector<MethodSig>& instance_methods() const {
    return instance_methods_;
  }
  const std::vector<MethodSig>& class_methods() const {
    return class_methods_;
  }

  /// nullptr when absent.
  const PropertyDef* FindProperty(const std::string& name) const;
  const MethodSig* FindMethod(const std::string& name,
                              MethodLevel level) const;

  /// VML-flavoured rendering of the CLASS declaration (for EXPLAIN and
  /// docs).
  std::string ToString() const;

 private:
  std::string name_;
  uint32_t class_id_;
  std::vector<PropertyDef> properties_;
  std::vector<MethodSig> instance_methods_;
  std::vector<MethodSig> class_methods_;
};

/// The schema catalog: class name -> definition. Class ids are assigned
/// sequentially starting at 1, in definition order, matching the
/// registration order in ObjectStore.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<ClassDef*> DefineClass(const std::string& name);

  const ClassDef* FindClass(const std::string& name) const;
  ClassDef* FindClassMutable(const std::string& name);
  const ClassDef* FindClassById(uint32_t class_id) const;

  size_t class_count() const { return classes_.size(); }
  const std::vector<std::unique_ptr<ClassDef>>& classes() const {
    return classes_;
  }

 private:
  std::vector<std::unique_ptr<ClassDef>> classes_;
  std::map<std::string, ClassDef*> by_name_;
};

}  // namespace vodak

#endif  // VODAK_SCHEMA_CATALOG_H_
