#include "semantics/generator.h"

namespace vodak {
namespace semantics {

Result<GeneratedOptimizer> OptimizerGenerator::Generate(
    const KnowledgeBase* knowledge,
    std::vector<opt::MethodStatsProvider> providers,
    opt::OptimizerOptions options) const {
  GeneratedOptimizer generated;
  generated.algebra = std::make_unique<algebra::AlgebraContext>(catalog_);
  generated.cost = std::make_unique<opt::CostModel>(
      catalog_, store_, methods_, std::move(providers));

  std::vector<opt::RulePtr> rules = opt::BuiltinRules();
  if (knowledge != nullptr) {
    std::vector<opt::RulePtr> derived = knowledge->DeriveRules();
    rules.insert(rules.end(), derived.begin(), derived.end());
  }
  if (rules.size() > 64) {
    return Status::Unsupported(
        "optimizer supports at most 64 rules (builtin + derived), got " +
        std::to_string(rules.size()));
  }
  generated.optimizer = std::make_unique<opt::Optimizer>(
      generated.algebra.get(), generated.cost.get(), std::move(rules),
      options);
  return generated;
}

}  // namespace semantics
}  // namespace vodak
