#ifndef VODAK_SEMANTICS_GENERATOR_H_
#define VODAK_SEMANTICS_GENERATOR_H_

#include <memory>
#include <vector>

#include "optimizer/optimizer.h"
#include "semantics/knowledge.h"

namespace vodak {
namespace semantics {

/// A generated optimizer module bound to one schema: its algebra
/// factory, its cost model (with the schema's statistics providers) and
/// the rule-complete Optimizer instance.
struct GeneratedOptimizer {
  std::unique_ptr<algebra::AlgebraContext> algebra;
  std::unique_ptr<opt::CostModel> cost;
  std::unique_ptr<opt::Optimizer> optimizer;
};

/// The §7 mechanism: "We integrate schema-specific semantics in the
/// optimization process by mapping them to transformation and
/// implementation rules, adding these rules … to the predefined rules
/// and operators, and generating an individual optimizer module for each
/// schema." Generate() performs exactly that assembly.
class OptimizerGenerator {
 public:
  OptimizerGenerator(const Catalog* catalog, const ObjectStore* store,
                     const MethodRegistry* methods)
      : catalog_(catalog), store_(store), methods_(methods) {}

  /// Builds an optimizer module from the predefined rule set plus the
  /// rules derived from `knowledge` (pass nullptr for a semantics-free
  /// optimizer — the ablation baseline).
  Result<GeneratedOptimizer> Generate(
      const KnowledgeBase* knowledge,
      std::vector<opt::MethodStatsProvider> providers = {},
      opt::OptimizerOptions options = {}) const;

 private:
  const Catalog* catalog_;
  const ObjectStore* store_;
  const MethodRegistry* methods_;
};

}  // namespace semantics
}  // namespace vodak

#endif  // VODAK_SEMANTICS_GENERATOR_H_
