#include "semantics/knowledge.h"

#include <algorithm>

#include "algebra/translate.h"
#include "vql/binder.h"
#include "vql/parser.h"

namespace vodak {
namespace semantics {

using algebra::AlgebraContext;
using algebra::LogicalOp;
using algebra::LogicalRef;
using opt::Pattern;
using opt::TransformationRule;

const char* KnowledgeKindName(KnowledgeKind kind) {
  switch (kind) {
    case KnowledgeKind::kExprEquivalence:
      return "expression-equivalence";
    case KnowledgeKind::kCondEquivalence:
      return "condition-equivalence";
    case KnowledgeKind::kCondImplication:
      return "condition-implication";
    case KnowledgeKind::kQueryMethod:
      return "query-method-equivalence";
  }
  return "?";
}

std::string KnowledgeEntry::ToString() const {
  std::string out = name;
  out += " [";
  out += KnowledgeKindName(kind);
  out += "] FORALL ";
  out += var + " IN " + class_name + ": ";
  switch (kind) {
    case KnowledgeKind::kExprEquivalence:
      out += lhs->ToString() + " == " + rhs->ToString();
      break;
    case KnowledgeKind::kCondEquivalence:
      out += lhs->ToString() + " <=> " + rhs->ToString();
      break;
    case KnowledgeKind::kCondImplication:
      out += lhs->ToString() + " => " + rhs->ToString();
      break;
    case KnowledgeKind::kQueryMethod:
      out = name;
      out += " [";
      out += KnowledgeKindName(kind);
      out += "] ";
      out += rhs->ToString() + " == (" + query_text + ")";
      break;
  }
  return out;
}

namespace {

/// Operator kinds whose expression parameter the parameter-rewrite rules
/// touch (every operator with an expression argument).
bool HasExprParam(LogicalOp op) {
  switch (op) {
    case LogicalOp::kSelect:
    case LogicalOp::kJoin:
    case LogicalOp::kMap:
    case LogicalOp::kFlat:
    case LogicalOp::kExprSource:
      return true;
    default:
      return false;
  }
}

/// Rebuilds an operator identical to `node` but with `expr` as its
/// expression parameter.
Result<LogicalRef> WithExpr(const AlgebraContext& ctx,
                            const algebra::LogicalNode& node,
                            const ExprRef& expr) {
  switch (node.op()) {
    case LogicalOp::kSelect:
      return ctx.Select(expr, node.input(0));
    case LogicalOp::kJoin:
      return ctx.Join(expr, node.input(0), node.input(1));
    case LogicalOp::kMap:
      return ctx.Map(node.ref(), expr, node.input(0));
    case LogicalOp::kFlat:
      return ctx.Flat(node.ref(), expr, node.input(0));
    case LogicalOp::kExprSource:
      return ctx.ExprSource(node.ref(), expr);
    default:
      return Status::Internal("WithExpr on operator without parameter");
  }
}

algebra::RefSchema ScopeOf(const algebra::LogicalNode& node) {
  // The expression parameter of join sees both inputs; every other
  // parameterized operator sees its single input; expr_source is closed.
  if (node.op() == LogicalOp::kExprSource) return {};
  if (node.op() == LogicalOp::kJoin) return node.schema();
  return node.input(0)->schema();
}

/// A §4.2 equivalence lifted to a transformation rule: rewrites one
/// occurrence of the lhs pattern inside any operator's expression
/// parameter. Bidirectional equivalences are registered as two of these
/// (lhs→rhs and rhs→lhs).
class ParamRewriteRule : public TransformationRule {
 public:
  ParamRewriteRule(std::string name, ExprPattern pattern,
                   ExprRef replacement)
      : name_(std::move(name)),
        pattern_(std::move(pattern)),
        replacement_(std::move(replacement)) {}

  std::string name() const override { return name_; }
  const Pattern& pattern() const override {
    static const Pattern kPattern = Pattern::AnyOp();
    return kPattern;
  }
  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    if (!HasExprParam(binding->op())) return Status::OK();
    algebra::RefSchema scope = ScopeOf(*binding);
    std::vector<ExprRef> rewritten =
        RewriteOnce(pattern_, replacement_, binding->expr(), ctx, scope);
    for (const ExprRef& expr : rewritten) {
      auto rebuilt = WithExpr(ctx, *binding, expr);
      // Rewrites can produce expressions that do not type-check in this
      // operator's scope (e.g. a parameter bound to an unrelated ref);
      // those are silently skipped, the Volcano condition-code idiom.
      if (rebuilt.ok()) out->push_back(std::move(rebuilt).value());
    }
    return Status::OK();
  }

 private:
  std::string name_;
  ExprPattern pattern_;
  ExprRef replacement_;
};

/// §4.2 implication rule:
/// select<cond1>(?A) ⟶! natural_join(select<cond1>(?A),
///                                    select<cond2>(?A)).
/// The paper notes the natural_join "behaves like an intersection as the
/// set of references are the same for both operator arguments". Inside a
/// memo the literal form would make the result a member of its own
/// input group (self-reference), so we emit the equivalent intersection
/// directly: select<cond1>(select<cond2>(?A)). Selection commutation
/// then lets the cost model evaluate the implied (cheap, precomputed)
/// condition first — the §4.2 "precomputed information" payoff.
class ImplicationRule : public TransformationRule {
 public:
  ImplicationRule(std::string name, ExprPattern antecedent,
                  ExprRef consequent)
      : name_(std::move(name)),
        antecedent_(std::move(antecedent)),
        consequent_(std::move(consequent)) {}

  std::string name() const override { return name_; }
  const Pattern& pattern() const override {
    // Restricted to selections directly over a class extension:
    // selection commutation always exposes the antecedent at the base
    // and can re-lift the implied condition, so nothing is lost, while
    // firing inside arbitrary towers would re-derive the consequent for
    // every derived input group.
    static const Pattern kPattern = Pattern::Op(
        LogicalOp::kSelect, {Pattern::Op(LogicalOp::kGet, {})});
    return kPattern;
  }
  bool apply_once() const override { return true; }

  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    Bindings bindings;
    const LogicalRef& input = binding->input(0);
    if (!MatchWhole(antecedent_, binding->expr(), ctx, input->schema(),
                    &bindings)) {
      return Status::OK();
    }
    std::map<std::string, ExprRef> substitution(bindings.begin(),
                                                bindings.end());
    ExprRef cond2 = Expr::SubstituteVars(consequent_, substitution);
    auto sel2 = ctx.Select(cond2, input);
    if (!sel2.ok()) return Status::OK();
    auto tower = ctx.Select(binding->expr(), std::move(sel2).value());
    if (!tower.ok()) return Status::OK();
    out->push_back(std::move(tower).value());
    return Status::OK();
  }

 private:
  std::string name_;
  ExprPattern antecedent_;
  ExprRef consequent_;
};

/// §4.2 implementation rule derived from methcall ≡ query:
/// select<cond-instance>(?A) ⟶! natural_join(?A,
///     expr_source<r, methcall-instance>) where r is the reference the
/// query's range variable matched. With ?A = get<r, C> the built-in
/// natural-join-get-elim rule then reduces this to the bare method scan,
/// which is exactly the paper's `Aquery → methcall` (E5 in §2.3/§4.2).
class QueryMethodRule : public TransformationRule {
 public:
  QueryMethodRule(std::string name, ExprPattern where_pattern,
                  ExprRef methcall, std::string range_class)
      : name_(std::move(name)),
        where_(std::move(where_pattern)),
        methcall_(std::move(methcall)),
        range_class_(std::move(range_class)) {}

  std::string name() const override { return name_; }
  const Pattern& pattern() const override {
    static const Pattern kPattern =
        Pattern::Op(LogicalOp::kSelect, {Pattern::Any()});
    return kPattern;
  }
  bool apply_once() const override { return true; }

  Status Apply(const AlgebraContext& ctx, const LogicalRef& binding,
               std::vector<LogicalRef>* out) const override {
    Bindings bindings;
    const LogicalRef& input = binding->input(0);
    if (!MatchWhole(where_, binding->expr(), ctx, input->schema(),
                    &bindings)) {
      return Status::OK();
    }
    // The query's range variable must have matched a bare reference of
    // the range class (the method computes exactly that class's
    // qualifying instances).
    auto receiver = bindings.find(where_.receiver_var);
    if (receiver == bindings.end() ||
        receiver->second->kind() != ExprKind::kVar) {
      return Status::OK();
    }
    const std::string& ref = receiver->second->var_name();
    if (input->RefClass(ref) != range_class_) return Status::OK();
    std::map<std::string, ExprRef> substitution(bindings.begin(),
                                                bindings.end());
    ExprRef call = Expr::SubstituteVars(methcall_, substitution);
    if (!call->FreeVars().empty()) return Status::OK();
    auto source = ctx.ExprSource(ref, call);
    if (!source.ok()) return Status::OK();
    auto nj = ctx.NaturalJoin(input, std::move(source).value());
    if (!nj.ok()) return Status::OK();
    out->push_back(std::move(nj).value());
    return Status::OK();
  }

 private:
  std::string name_;
  ExprPattern where_;
  ExprRef methcall_;
  std::string range_class_;
};

}  // namespace

KnowledgeBase::KnowledgeBase(const Catalog* catalog) : catalog_(catalog) {}

Result<ExprRef> KnowledgeBase::BindSpec(const std::string& text,
                                        const std::string& var,
                                        const std::string& class_name,
                                        std::vector<std::string>* params,
                                        TypeRef* out_type) const {
  VODAK_ASSIGN_OR_RETURN(ExprRef parsed, vql::ParseExpr(text));
  // Scope: the ∀-variable with its class, all other free variables as
  // parameters of unconstrained type.
  std::map<std::string, TypeRef> scope;
  scope[var] = Type::OidOf(class_name);
  for (const std::string& free : parsed->FreeVars()) {
    if (free == var) continue;
    if (catalog_->FindClass(free) != nullptr) continue;  // class receiver
    scope[free] = Type::Any();
    if (std::find(params->begin(), params->end(), free) == params->end()) {
      params->push_back(free);
    }
  }
  vql::Binder binder(catalog_);
  return binder.BindExpr(parsed, scope, out_type);
}

Status KnowledgeBase::AddExprEquivalence(const std::string& name,
                                         const std::string& var,
                                         const std::string& class_name,
                                         const std::string& lhs_text,
                                         const std::string& rhs_text) {
  if (catalog_->FindClass(class_name) == nullptr) {
    return Status::BindError("knowledge " + name + ": unknown class '" +
                             class_name + "'");
  }
  KnowledgeEntry entry;
  entry.kind = KnowledgeKind::kExprEquivalence;
  entry.name = name;
  entry.var = var;
  entry.class_name = class_name;
  TypeRef lhs_type;
  TypeRef rhs_type;
  VODAK_ASSIGN_OR_RETURN(
      entry.lhs, BindSpec(lhs_text, var, class_name, &entry.params,
                          &lhs_type));
  VODAK_ASSIGN_OR_RETURN(
      entry.rhs, BindSpec(rhs_text, var, class_name, &entry.params,
                          &rhs_type));
  if (!lhs_type->Accepts(*rhs_type) && !rhs_type->Accepts(*lhs_type)) {
    return Status::TypeError("knowledge " + name +
                             ": sides have incompatible types " +
                             lhs_type->ToString() + " vs " +
                             rhs_type->ToString());
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status KnowledgeBase::AddCondEquivalence(const std::string& name,
                                         const std::string& var,
                                         const std::string& class_name,
                                         const std::string& lhs_text,
                                         const std::string& rhs_text) {
  if (catalog_->FindClass(class_name) == nullptr) {
    return Status::BindError("knowledge " + name + ": unknown class '" +
                             class_name + "'");
  }
  KnowledgeEntry entry;
  entry.kind = KnowledgeKind::kCondEquivalence;
  entry.name = name;
  entry.var = var;
  entry.class_name = class_name;
  TypeRef lhs_type;
  TypeRef rhs_type;
  VODAK_ASSIGN_OR_RETURN(
      entry.lhs, BindSpec(lhs_text, var, class_name, &entry.params,
                          &lhs_type));
  VODAK_ASSIGN_OR_RETURN(
      entry.rhs, BindSpec(rhs_text, var, class_name, &entry.params,
                          &rhs_type));
  for (const TypeRef* t : {&lhs_type, &rhs_type}) {
    if (!Type::Bool()->Accepts(**t)) {
      return Status::TypeError("knowledge " + name +
                               ": condition sides must be boolean");
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status KnowledgeBase::AddCondImplication(const std::string& name,
                                         const std::string& var,
                                         const std::string& class_name,
                                         const std::string& antecedent_text,
                                         const std::string& consequent_text) {
  if (catalog_->FindClass(class_name) == nullptr) {
    return Status::BindError("knowledge " + name + ": unknown class '" +
                             class_name + "'");
  }
  KnowledgeEntry entry;
  entry.kind = KnowledgeKind::kCondImplication;
  entry.name = name;
  entry.var = var;
  entry.class_name = class_name;
  TypeRef lhs_type;
  TypeRef rhs_type;
  VODAK_ASSIGN_OR_RETURN(
      entry.lhs, BindSpec(antecedent_text, var, class_name, &entry.params,
                          &lhs_type));
  VODAK_ASSIGN_OR_RETURN(
      entry.rhs, BindSpec(consequent_text, var, class_name, &entry.params,
                          &rhs_type));
  for (const TypeRef* t : {&lhs_type, &rhs_type}) {
    if (!Type::Bool()->Accepts(**t)) {
      return Status::TypeError("knowledge " + name +
                               ": implication sides must be boolean");
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status KnowledgeBase::AddQueryMethodEquivalence(
    const std::string& name, const std::string& query_text,
    const std::string& methcall_text,
    const std::vector<std::string>& params) {
  VODAK_ASSIGN_OR_RETURN(vql::Query query, vql::ParseQuery(query_text));
  std::map<std::string, TypeRef> extra_scope;
  for (const std::string& p : params) extra_scope[p] = Type::Any();
  vql::Binder binder(catalog_);
  VODAK_ASSIGN_OR_RETURN(vql::BoundQuery bound,
                         binder.Bind(query, extra_scope));
  // The supported query shape (the paper's E5 form): one extent range,
  // a WHERE condition, ACCESS of the bare range variable.
  if (bound.from.size() != 1 ||
      bound.from[0].kind != vql::RangeKind::kExtent) {
    return Status::Unsupported(
        "knowledge " + name +
        ": query must range over exactly one class extension");
  }
  if (bound.where == nullptr) {
    return Status::Unsupported("knowledge " + name +
                               ": query must have a WHERE condition");
  }
  if (bound.access->kind() != ExprKind::kVar ||
      bound.access->var_name() != bound.from[0].var) {
    return Status::Unsupported(
        "knowledge " + name +
        ": query must ACCESS its range variable directly");
  }
  KnowledgeEntry entry;
  entry.kind = KnowledgeKind::kQueryMethod;
  entry.name = name;
  entry.var = bound.from[0].var;
  entry.class_name = bound.from[0].class_name;
  entry.lhs = bound.where;
  entry.params = params;
  entry.query_text = query_text;
  TypeRef call_type;
  std::vector<std::string> call_params = params;
  VODAK_ASSIGN_OR_RETURN(
      entry.rhs, BindSpec(methcall_text, entry.var, entry.class_name,
                          &call_params, &call_type));
  if (entry.rhs->kind() != ExprKind::kClassMethodCall &&
      entry.rhs->kind() != ExprKind::kMethodCall) {
    return Status::Unsupported("knowledge " + name +
                               ": right-hand side must be a method call");
  }
  if (entry.rhs->UsesVar(entry.var)) {
    return Status::Unsupported("knowledge " + name +
                               ": method call must not use the range "
                               "variable");
  }
  if (call_type->kind() != TypeKind::kSet &&
      call_type->kind() != TypeKind::kAny) {
    return Status::TypeError("knowledge " + name +
                             ": method call must be set-valued");
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<opt::RulePtr> KnowledgeBase::DeriveRules() const {
  std::vector<opt::RulePtr> rules;
  for (const KnowledgeEntry& entry : entries_) {
    std::set<std::string> params(entry.params.begin(), entry.params.end());
    switch (entry.kind) {
      case KnowledgeKind::kExprEquivalence:
      case KnowledgeKind::kCondEquivalence: {
        ExprPattern forward{entry.lhs, entry.var, entry.class_name, params};
        ExprPattern backward{entry.rhs, entry.var, entry.class_name,
                             params};
        rules.push_back(std::make_shared<ParamRewriteRule>(
            entry.name + "-fwd", forward, entry.rhs));
        rules.push_back(std::make_shared<ParamRewriteRule>(
            entry.name + "-bwd", backward, entry.lhs));
        break;
      }
      case KnowledgeKind::kCondImplication: {
        ExprPattern antecedent{entry.lhs, entry.var, entry.class_name,
                               params};
        rules.push_back(std::make_shared<ImplicationRule>(
            entry.name + "-impl", antecedent, entry.rhs));
        break;
      }
      case KnowledgeKind::kQueryMethod: {
        ExprPattern where{entry.lhs, entry.var, entry.class_name, params};
        rules.push_back(std::make_shared<QueryMethodRule>(
            entry.name + "-impl-rule", where, entry.rhs,
            entry.class_name));
        break;
      }
    }
  }
  return rules;
}

std::string KnowledgeBase::ToString() const {
  std::string out;
  for (const KnowledgeEntry& entry : entries_) {
    out += entry.ToString() + "\n";
  }
  return out;
}

}  // namespace semantics
}  // namespace vodak
