#ifndef VODAK_SEMANTICS_KNOWLEDGE_H_
#define VODAK_SEMANTICS_KNOWLEDGE_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/rule.h"
#include "semantics/matcher.h"
#include "vql/ast.h"

namespace vodak {
namespace semantics {

/// The four kinds of schema-specific knowledge about methods of §4.2.
enum class KnowledgeKind {
  kExprEquivalence,   ///< ∀x∈C: expr1(x) ≡ expr2(x)
  kCondEquivalence,   ///< ∀x∈C: cond1(x) ⇔ cond2(x)
  kCondImplication,   ///< ∀x∈C: cond1(x) ⇒ cond2(x)
  kQueryMethod,       ///< method call ≡ ACCESS … FROM … WHERE …
};

const char* KnowledgeKindName(KnowledgeKind kind);

/// One registered piece of knowledge, in bound form.
struct KnowledgeEntry {
  KnowledgeKind kind;
  std::string name;       ///< e.g. "E1"
  std::string var;        ///< the ∀-variable
  std::string class_name; ///< its class
  ExprRef lhs;            ///< expr1 / cond1 / antecedent / where-cond
  ExprRef rhs;            ///< expr2 / cond2 / consequent / method call
  std::vector<std::string> params;  ///< free parameters (s, D, ...)
  /// kQueryMethod only: the equivalent query, bound.
  std::string query_text;

  std::string ToString() const;
};

/// Collects the schema designer's knowledge specifications (§5.2) and
/// derives optimizer rules from them (§4.2). Specifications are given in
/// VQL surface syntax and validated against the catalog at registration
/// — mis-typed knowledge is rejected, not silently miscompiled.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(const Catalog* catalog);

  /// ∀ var IN class: lhs ≡ rhs, e.g.
  /// AddExprEquivalence("E1", "p", "Paragraph",
  ///                    "p->document()", "p.section.document").
  /// Free variables other than `var` become rule parameters.
  Status AddExprEquivalence(const std::string& name, const std::string& var,
                            const std::string& class_name,
                            const std::string& lhs_text,
                            const std::string& rhs_text);

  /// ∀ var IN class: lhs ⇔ rhs (boolean), e.g. E3:
  /// AddCondEquivalence("E3", "p", "Paragraph",
  ///     "p.section.document IS-IN D", "p.section IS-IN D.sections").
  Status AddCondEquivalence(const std::string& name, const std::string& var,
                            const std::string& class_name,
                            const std::string& lhs_text,
                            const std::string& rhs_text);

  /// ∀ var IN class: antecedent ⇒ consequent, the apply-once (⟶!) rule
  /// of §4.2, e.g. the precomputed largeParagraphs example.
  Status AddCondImplication(const std::string& name, const std::string& var,
                            const std::string& class_name,
                            const std::string& antecedent_text,
                            const std::string& consequent_text);

  /// methcall ≡ query (§4.2 "Equivalences Between Queries and Method
  /// Calls"), e.g. E5:
  /// AddQueryMethodEquivalence("E5",
  ///     "ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
  ///     "Paragraph->retrieve_by_string(s)", {"s"}).
  /// The query must have a single extent range, a WHERE condition and
  /// the range variable as its ACCESS expression; this is the query
  /// shape the paper's implementation rules cover.
  Status AddQueryMethodEquivalence(const std::string& name,
                                   const std::string& query_text,
                                   const std::string& methcall_text,
                                   const std::vector<std::string>& params);

  const std::vector<KnowledgeEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Derives the optimizer rules (§4.2's lifting): equivalences become
  /// bidirectional parameter-rewrite rules, implications become
  /// apply-once natural_join introductions, query≡method entries become
  /// directional implementation rules producing expr_source operators.
  std::vector<opt::RulePtr> DeriveRules() const;

  /// Renders all registered knowledge (for DESIGN/demo output).
  std::string ToString() const;

 private:
  Result<ExprRef> BindSpec(const std::string& text, const std::string& var,
                           const std::string& class_name,
                           std::vector<std::string>* params,
                           TypeRef* out_type) const;

  const Catalog* catalog_;
  std::vector<KnowledgeEntry> entries_;
};

}  // namespace semantics
}  // namespace vodak

#endif  // VODAK_SEMANTICS_KNOWLEDGE_H_
