#include "semantics/matcher.h"

namespace vodak {
namespace semantics {

namespace {

/// The inferred type of `target` in `schema` is an object of
/// `class_name`.
bool HasClassType(const ExprRef& target, const std::string& class_name,
                  const algebra::AlgebraContext& ctx,
                  const algebra::RefSchema& schema) {
  TypeRef type;
  auto bound = ctx.BindInSchema(target, schema, &type);
  if (!bound.ok()) return false;
  return type->kind() == TypeKind::kOid && type->class_name() == class_name;
}

}  // namespace

bool MatchExpr(const ExprPattern& pattern, const ExprRef& pattern_node,
               const ExprRef& target, const algebra::AlgebraContext& ctx,
               const algebra::RefSchema& schema, Bindings* bindings) {
  // Pattern variables: receiver (class-typed) and parameters (free).
  if (pattern_node->kind() == ExprKind::kVar) {
    const std::string& name = pattern_node->var_name();
    bool is_receiver = name == pattern.receiver_var;
    bool is_param = pattern.param_vars.count(name) > 0;
    if (is_receiver || is_param) {
      auto it = bindings->find(name);
      if (it != bindings->end()) {
        return Expr::Equals(it->second, target);
      }
      if (is_receiver &&
          !HasClassType(target, pattern.receiver_class, ctx, schema)) {
        return false;
      }
      (*bindings)[name] = target;
      return true;
    }
    // A literal variable in the pattern matches only itself.
    return target->kind() == ExprKind::kVar &&
           target->var_name() == name;
  }

  if (pattern_node->kind() != target->kind()) return false;
  switch (pattern_node->kind()) {
    case ExprKind::kConst:
      return pattern_node->value() == target->value();
    case ExprKind::kVar:
      return true;  // handled above
    case ExprKind::kProperty:
      return pattern_node->name() == target->name() &&
             MatchExpr(pattern, pattern_node->base(), target->base(), ctx,
                       schema, bindings);
    case ExprKind::kMethodCall: {
      if (pattern_node->method() != target->method()) return false;
      if (pattern_node->args().size() != target->args().size()) {
        return false;
      }
      if (!MatchExpr(pattern, pattern_node->base(), target->base(), ctx,
                     schema, bindings)) {
        return false;
      }
      for (size_t i = 0; i < pattern_node->args().size(); ++i) {
        if (!MatchExpr(pattern, pattern_node->args()[i], target->args()[i],
                       ctx, schema, bindings)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kClassMethodCall: {
      if (pattern_node->name() != target->name() ||
          pattern_node->method() != target->method() ||
          pattern_node->args().size() != target->args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern_node->args().size(); ++i) {
        if (!MatchExpr(pattern, pattern_node->args()[i], target->args()[i],
                       ctx, schema, bindings)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kBinary:
      return pattern_node->bin_op() == target->bin_op() &&
             MatchExpr(pattern, pattern_node->lhs(), target->lhs(), ctx,
                       schema, bindings) &&
             MatchExpr(pattern, pattern_node->rhs(), target->rhs(), ctx,
                       schema, bindings);
    case ExprKind::kUnary:
      return pattern_node->un_op() == target->un_op() &&
             MatchExpr(pattern, pattern_node->operand(), target->operand(),
                       ctx, schema, bindings);
    case ExprKind::kTupleCtor: {
      if (pattern_node->fields().size() != target->fields().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern_node->fields().size(); ++i) {
        if (pattern_node->fields()[i].first != target->fields()[i].first) {
          return false;
        }
        if (!MatchExpr(pattern, pattern_node->fields()[i].second,
                       target->fields()[i].second, ctx, schema,
                       bindings)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kSetCtor: {
      if (pattern_node->args().size() != target->args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern_node->args().size(); ++i) {
        if (!MatchExpr(pattern, pattern_node->args()[i], target->args()[i],
                       ctx, schema, bindings)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchWhole(const ExprPattern& pattern, const ExprRef& target,
                const algebra::AlgebraContext& ctx,
                const algebra::RefSchema& schema, Bindings* bindings) {
  return MatchExpr(pattern, pattern.expr, target, ctx, schema, bindings);
}

namespace {

using Rebuild = std::function<ExprRef(ExprRef)>;

/// Recursion carrying a "rebuild the whole expression with this subtree
/// replaced" continuation.
void RewriteRec(const ExprPattern& pattern, const ExprRef& replacement,
                const ExprRef& node, const algebra::AlgebraContext& ctx,
                const algebra::RefSchema& schema, const Rebuild& rebuild,
                std::vector<ExprRef>* out) {
  Bindings bindings;
  if (MatchExpr(pattern, pattern.expr, node, ctx, schema, &bindings)) {
    std::map<std::string, ExprRef> substitution(bindings.begin(),
                                                bindings.end());
    out->push_back(
        rebuild(Expr::SubstituteVars(replacement, substitution)));
  }
  switch (node->kind()) {
    case ExprKind::kConst:
    case ExprKind::kVar:
      return;
    case ExprKind::kProperty:
      RewriteRec(pattern, replacement, node->base(), ctx, schema,
                 [&](ExprRef sub) {
                   return rebuild(
                       Expr::Property(std::move(sub), node->name()));
                 },
                 out);
      return;
    case ExprKind::kMethodCall: {
      RewriteRec(pattern, replacement, node->base(), ctx, schema,
                 [&](ExprRef sub) {
                   return rebuild(Expr::MethodCall(
                       std::move(sub), node->method(), node->args()));
                 },
                 out);
      for (size_t i = 0; i < node->args().size(); ++i) {
        RewriteRec(pattern, replacement, node->args()[i], ctx, schema,
                   [&, i](ExprRef sub) {
                     std::vector<ExprRef> args = node->args();
                     args[i] = std::move(sub);
                     return rebuild(Expr::MethodCall(
                         node->base(), node->method(), std::move(args)));
                   },
                   out);
      }
      return;
    }
    case ExprKind::kClassMethodCall: {
      for (size_t i = 0; i < node->args().size(); ++i) {
        RewriteRec(pattern, replacement, node->args()[i], ctx, schema,
                   [&, i](ExprRef sub) {
                     std::vector<ExprRef> args = node->args();
                     args[i] = std::move(sub);
                     return rebuild(Expr::ClassMethodCall(
                         node->name(), node->method(), std::move(args)));
                   },
                   out);
      }
      return;
    }
    case ExprKind::kBinary: {
      RewriteRec(pattern, replacement, node->lhs(), ctx, schema,
                 [&](ExprRef sub) {
                   return rebuild(Expr::Binary(node->bin_op(),
                                               std::move(sub),
                                               node->rhs()));
                 },
                 out);
      RewriteRec(pattern, replacement, node->rhs(), ctx, schema,
                 [&](ExprRef sub) {
                   return rebuild(Expr::Binary(node->bin_op(), node->lhs(),
                                               std::move(sub)));
                 },
                 out);
      return;
    }
    case ExprKind::kUnary:
      RewriteRec(pattern, replacement, node->operand(), ctx, schema,
                 [&](ExprRef sub) {
                   return rebuild(
                       Expr::Unary(node->un_op(), std::move(sub)));
                 },
                 out);
      return;
    case ExprKind::kTupleCtor: {
      for (size_t i = 0; i < node->fields().size(); ++i) {
        RewriteRec(pattern, replacement, node->fields()[i].second, ctx,
                   schema,
                   [&, i](ExprRef sub) {
                     auto fields = node->fields();
                     fields[i].second = std::move(sub);
                     return rebuild(Expr::TupleCtor(std::move(fields)));
                   },
                   out);
      }
      return;
    }
    case ExprKind::kSetCtor: {
      for (size_t i = 0; i < node->args().size(); ++i) {
        RewriteRec(pattern, replacement, node->args()[i], ctx, schema,
                   [&, i](ExprRef sub) {
                     std::vector<ExprRef> elems = node->args();
                     elems[i] = std::move(sub);
                     return rebuild(Expr::SetCtor(std::move(elems)));
                   },
                   out);
      }
      return;
    }
  }
}

}  // namespace

std::vector<ExprRef> RewriteOnce(const ExprPattern& pattern,
                                 const ExprRef& replacement,
                                 const ExprRef& expr,
                                 const algebra::AlgebraContext& ctx,
                                 const algebra::RefSchema& schema) {
  std::vector<ExprRef> out;
  RewriteRec(pattern, replacement, expr, ctx, schema,
             [](ExprRef e) { return e; }, &out);
  return out;
}

}  // namespace semantics
}  // namespace vodak
