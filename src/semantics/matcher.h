#ifndef VODAK_SEMANTICS_MATCHER_H_
#define VODAK_SEMANTICS_MATCHER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/logical.h"
#include "expr/expr.h"

namespace vodak {
namespace semantics {

/// A schema-specific expression pattern, the `expr1(x)` of a §4.2
/// knowledge specification. `receiver_var` is the universally
/// quantified variable (`∀x IN C`), which matches any subexpression of
/// type C; `param_vars` are the free parameters (`s` in E2, `D` in E3),
/// which match arbitrary subexpressions.
struct ExprPattern {
  ExprRef expr;
  std::string receiver_var;
  std::string receiver_class;
  std::set<std::string> param_vars;
};

using Bindings = std::map<std::string, ExprRef>;

/// Matches `target` against `pattern.expr`, extending `bindings`.
/// The receiver variable only binds to targets whose inferred type (in
/// `schema`) is an object of `pattern.receiver_class` — this realizes
/// the side condition `?A<?a1, C>` of the paper's rules. Pattern
/// variables bind consistently (same variable, same subexpression).
bool MatchExpr(const ExprPattern& pattern, const ExprRef& pattern_node,
               const ExprRef& target, const algebra::AlgebraContext& ctx,
               const algebra::RefSchema& schema, Bindings* bindings);

/// Every way of rewriting exactly one occurrence of `pattern` inside
/// `expr` by the instantiated `replacement` template. Each result is the
/// complete rewritten expression (unbound — callers re-bind through the
/// algebra factories).
std::vector<ExprRef> RewriteOnce(const ExprPattern& pattern,
                                 const ExprRef& replacement,
                                 const ExprRef& expr,
                                 const algebra::AlgebraContext& ctx,
                                 const algebra::RefSchema& schema);

/// Matches the whole of `target` (no traversal); on success fills
/// `bindings`.
bool MatchWhole(const ExprPattern& pattern, const ExprRef& target,
                const algebra::AlgebraContext& ctx,
                const algebra::RefSchema& schema, Bindings* bindings);

}  // namespace semantics
}  // namespace vodak

#endif  // VODAK_SEMANTICS_MATCHER_H_
