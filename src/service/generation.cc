#include "service/generation.h"

#include <algorithm>
#include <utility>

#include "exec/physical.h"
#include "exec/shared_scan.h"

namespace vodak {
namespace service {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void CollectScanKeys(const algebra::LogicalRef& node, const Catalog* catalog,
                     std::vector<std::string>* keys) {
  if (node == nullptr) return;
  if (node->op() == algebra::LogicalOp::kGet) {
    const ClassDef* cls = catalog->FindClass(node->class_name());
    if (cls != nullptr) {
      keys->push_back(exec::SharedScanManager::ExtentKey(cls->class_id()));
    }
  } else if (node->op() == algebra::LogicalOp::kExprSource &&
             node->expr() != nullptr) {
    keys->push_back(exec::SharedScanManager::ExprKey(node->expr()->ToString()));
  }
  for (const algebra::LogicalRef& input : node->inputs()) {
    CollectScanKeys(input, catalog, keys);
  }
}

}  // namespace

std::vector<std::string> PlanScanSourceKeys(const algebra::LogicalRef& plan,
                                            const Catalog* catalog) {
  std::vector<std::string> keys;
  CollectScanKeys(plan, catalog, &keys);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

GenerationScheduler::GenerationScheduler(engine::Database* db,
                                         SchedulerOptions options)
    : db_(db),
      options_(options),
      lanes_(exec::ResolveThreads(options.lanes)) {}

GenerationScheduler::~GenerationScheduler() { Stop(); }

void GenerationScheduler::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return;
    started_ = true;
  }
  executor_ = std::thread([this] { ExecutorLoop(); });
}

void GenerationScheduler::Stop() {
  std::deque<ServiceQuery> orphans;
  bool join = false;
  {
    MutexLock lock(mu_);
    if (!started_ || stopping_) {
      // Not started or a concurrent Stop already owns the join.
      join = false;
    } else {
      stopping_ = true;
      join = true;
      orphans.swap(forming_);
    }
    admit_cv_.notify_all();
    member_cv_.notify_all();
  }
  // Forming members never reached a drain; reject them outside the
  // lock. The in-flight generation (if any) drains naturally — its
  // workers pop the remaining queue, seal, and the executor exits.
  for (ServiceQuery& q : orphans) {
    QueryReply reply;
    reply.request_id = q.request_id;
    reply.status = Status::Cancelled("service stopping");
    reply.stats.plan_ms = q.plan_ms;
    reply.stats.queue_ms = MsSince(q.admitted_at);
    {
      MutexLock lock(mu_);
      CountOutcome(reply.status);
    }
    if (q.done) q.done(std::move(reply));
  }
  if (join && executor_.joinable()) executor_.join();
}

void GenerationScheduler::Admit(ServiceQuery query) {
  // Reject dead-on-arrival queries before they can touch a generation:
  // a cancelled or already-expired query must never attach to a shared
  // scan (it would claim ring morsels it then abandons).
  const Status alive =
      exec::CheckQueryAlive(query.cancel.get(), query.deadline);
  Status reject = alive;
  bool admitted = false;
  {
    MutexLock lock(mu_);
    if (!started_ || stopping_) {
      reject = Status::Cancelled("service stopping");
    } else if (alive.ok()) {
      admitted = true;
      totals_.queries_admitted++;
      if (!sealed_ && AttachLateProfitable(query)) {
        query.attached_late = true;
        totals_.late_attached++;
        // The attacher's sources join the in-flight set so a
        // same-shape follow-up can piggyback on its pass too.
        draining_keys_.insert(query.scan_keys.begin(),
                              query.scan_keys.end());
        queue_.push_back(std::move(query));
        member_cv_.notify_one();
      } else {
        forming_.push_back(std::move(query));
        admit_cv_.notify_one();
      }
    } else {
      CountOutcome(reject);
    }
  }
  if (admitted) return;
  QueryReply reply;
  reply.request_id = query.request_id;
  reply.status = std::move(reject);
  reply.stats.plan_ms = query.plan_ms;
  reply.stats.queue_ms = MsSince(query.admitted_at);
  if (query.done) query.done(std::move(reply));
}

bool GenerationScheduler::AttachLateProfitable(
    const ServiceQuery& query) const {
  if (!options_.shared_scan) return false;
  // Profitable: at least one of the member's scan sources is already
  // in flight, so attaching turns a whole private extent pass (rows ×
  // mark cost + batch overheads, in cost-model units) into a circle of
  // the existing ring at zero extra scan work.
  bool overlap = false;
  for (const std::string& key : query.scan_keys) {
    if (draining_keys_.count(key) != 0) {
      overlap = true;
      break;
    }
  }
  if (!overlap) return false;
  // Affordable: circling back for missed morsels costs up to about one
  // drain; require the deadline to hold attach_slack of the estimate.
  if (query.deadline.armed &&
      query.deadline.remaining_ms() <
          options_.attach_slack * est_drain_ms_) {
    return false;
  }
  return true;
}

void GenerationScheduler::ExecutorLoop() {
  // One pool for the scheduler's lifetime; ParallelRun runs lanes_
  // worker tasks with this thread participating.
  exec::WorkerPool* pool = db_->EnsurePool(lanes_);
  for (;;) {
    {
      UniqueLock lock(mu_);
      while (!FormingReadyOrStopping()) admit_cv_.wait(lock);
      if (forming_.empty()) break;  // stopping_ with nothing left
      // Promote forming → draining.
      queue_.swap(forming_);
      draining_keys_.clear();
      for (const ServiceQuery& q : queue_) {
        draining_keys_.insert(q.scan_keys.begin(), q.scan_keys.end());
      }
      in_flight_ = 0;
      sealed_ = false;
    }
    const uint64_t generation = db_->NextGenerationId();
    const auto drain_start = std::chrono::steady_clock::now();
    // The generation's shared scans and property cache live exactly as
    // long as its drain — and so does its epoch pin: every member
    // (including late attachers) reads the snapshot current when the
    // generation formed, no matter what commits while it drains.
    EpochPin pin(db_->store());
    exec::SharedScanManager manager(db_->store(), options_.morsel_size,
                                    pin.epoch(), db_->segment_store());
    const StoreStats& store_stats = db_->store()->stats();
    const uint64_t scans_before =
        store_stats.extent_scans.load(std::memory_order_relaxed);
    const uint64_t reads_before =
        store_stats.property_reads.load(std::memory_order_relaxed);
    pool->ParallelRun(lanes_, [this, &manager, generation](size_t) {
      GenerationWorker(&manager, generation);
    });
    const double observed = MsSince(drain_start);
    {
      MutexLock lock(mu_);
      totals_.generations++;
      totals_.extent_passes +=
          store_stats.extent_scans.load(std::memory_order_relaxed) -
          scans_before;
      totals_.property_reads +=  // lint: not-atomic
          store_stats.property_reads.load(std::memory_order_relaxed) -
          reads_before;
      draining_keys_.clear();
      sealed_ = true;
      // EWMA keeps the affordability estimate tracking the workload
      // without one outlier generation swinging it.
      est_drain_ms_ = 0.7 * est_drain_ms_ + 0.3 * observed;
    }
  }
}

void GenerationScheduler::GenerationWorker(exec::SharedScanManager* manager,
                                           uint64_t generation) {
  for (;;) {
    ServiceQuery query;
    {
      UniqueLock lock(mu_);
      while (!DrainHasWorkOrSealed()) member_cv_.wait(lock);
      if (queue_.empty()) return;  // sealed, drain out
      query = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    QueryReply reply = ExecuteMember(query, manager, generation);
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        // Last member out seals the generation: no more late attach,
        // sibling lanes parked on member_cv_ drain out.
        sealed_ = true;
        member_cv_.notify_all();
      }
      CountOutcome(reply.status);
    }
    if (query.done) query.done(std::move(reply));
  }
}

QueryReply GenerationScheduler::ExecuteMember(
    ServiceQuery& query, exec::SharedScanManager* manager,
    uint64_t generation) {
  QueryReply reply;
  reply.request_id = query.request_id;
  reply.stats.plan_ms = query.plan_ms;
  reply.stats.queue_ms = MsSince(query.admitted_at);
  reply.stats.generation_id = generation;
  reply.stats.attached_late = query.attached_late;
  reply.stats.snapshot_epoch = manager->snapshot();
  const auto drain_start = std::chrono::steady_clock::now();
  reply.status = [&]() -> Status {
    // A member cancelled or expired while waiting in the generation
    // queue never opens — it must not attach and claim ring morsels it
    // would abandon; its generation siblings drain on unaffected.
    VODAK_RETURN_IF_ERROR(
        exec::CheckQueryAlive(query.cancel.get(), query.deadline));
    exec::ExecContext ctx;
    ctx.catalog = db_->catalog();
    ctx.store = db_->store();
    ctx.methods = db_->methods();
    if (options_.shared_scan) {
      ctx.shared_scans = manager;
      ctx.property_cache = manager->property_cache();
    }
    ctx.cancel = query.cancel.get();
    ctx.deadline = query.deadline;
    ctx.snapshot_epoch = manager->snapshot();
    ctx.segments = db_->segment_store();
    VODAK_ASSIGN_OR_RETURN(exec::PhysOpPtr root,
                           exec::BuildPhysical(query.plan, ctx));
    VODAK_ASSIGN_OR_RETURN(
        reply.result, exec::ExecuteColumn(root.get(), query.result_ref,
                                          exec::ExecMode::kBatch));
    return Status::OK();
  }();
  reply.stats.drain_ms = MsSince(drain_start);
  return reply;
}

void GenerationScheduler::CountOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      totals_.queries_ok++;
      break;
    case StatusCode::kCancelled:
      totals_.queries_cancelled++;
      break;
    case StatusCode::kDeadlineExceeded:
      totals_.queries_expired++;
      break;
    default:
      totals_.queries_failed++;
      break;
  }
}

ServiceStats GenerationScheduler::stats() const {
  MutexLock lock(mu_);
  return totals_;
}

}  // namespace service
}  // namespace vodak
