// Shared-scan generation scheduler: the admission-control core of the
// query service, socket-free so tests can drive it directly
// (docs/ARCHITECTURE.md §"Query service & admission control").
//
// Arrivals are grouped into *generations*. One generation drains at a
// time on the session WorkerPool with one SharedScanManager, so its
// members pay ~1 extent pass and ~1 property-column read per source
// instead of one each. While a generation drains, new arrivals either
// attach late — when the admission policy says the in-flight pass is
// still profitable for them and their deadline affords circling the
// morsel ring back — or queue in the forming generation that starts
// the moment the drain seals.
//
// Locking discipline follows the PR 6 contracts: all shared state is
// GUARDED_BY(mu_), cv wait predicates are extracted REQUIRES(mu_)
// members, and reply callbacks always fire outside the lock.
#ifndef VODAK_SERVICE_GENERATION_H_
#define VODAK_SERVICE_GENERATION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/database.h"
#include "service/protocol.h"

namespace vodak {
namespace service {

/// What a query's completion callback receives.
struct QueryReply {
  std::string request_id;
  Status status;
  Value result;
  engine::QueryStats stats;
};

/// A planned query handed to the scheduler. Planning happened on the
/// caller's thread (the service's event loop) — the scheduler only
/// executes.
struct ServiceQuery {
  /// Client-chosen id, echoed in the reply.
  std::string request_id;
  algebra::LogicalRef plan;
  std::string result_ref;
  /// Owned here so a cancel arriving after the reply is a harmless
  /// trip of a token nobody reads anymore.
  std::shared_ptr<exec::CancellationToken> cancel;
  exec::Deadline deadline;
  double plan_ms = 0.0;
  std::chrono::steady_clock::time_point admitted_at;
  /// Shared-scan source keys of the plan's scan leaves
  /// (PlanScanSourceKeys); drives the late-attach overlap test.
  std::vector<std::string> scan_keys;
  bool attached_late = false;
  /// Fired exactly once with the query's outcome, never under mu_.
  std::function<void(QueryReply)> done;
};

struct SchedulerOptions {
  /// Worker lanes per generation drain; 0 = hardware concurrency.
  size_t lanes = 0;
  size_t morsel_size = exec::kDefaultMorselSize;
  /// False drains every member with private cursors — the measurable
  /// baseline the service benchmark compares against.
  bool shared_scan = true;
  /// Late attach requires deadline slack of at least this multiple of
  /// the drain-time estimate (EWMA over sealed generations).
  double attach_slack = 2.0;
};

/// The generation state machine. Thread-compatible construction, then
/// Start() spawns the executor thread and Admit() is safe from any
/// thread. Stop() rejects the forming generation, lets the in-flight
/// one drain, and joins.
class GenerationScheduler {
 public:
  GenerationScheduler(engine::Database* db, SchedulerOptions options = {});
  GenerationScheduler(const GenerationScheduler&) = delete;
  GenerationScheduler& operator=(const GenerationScheduler&) = delete;
  ~GenerationScheduler();

  void Start() EXCLUDES(mu_);
  void Stop() EXCLUDES(mu_);

  /// Admits one planned query. Already-cancelled or already-expired
  /// queries are rejected here — before they could attach to a shared
  /// scan or claim ring morsels — with their terminal status; their
  /// `done` fires before Admit returns, outside the lock. Otherwise
  /// the query late-attaches to the draining generation when
  /// profitable, else joins the forming one.
  void Admit(ServiceQuery query) EXCLUDES(mu_);

  ServiceStats stats() const EXCLUDES(mu_);

 private:
  /// Promotes forming → draining, runs the drain on the pool, seals.
  void ExecutorLoop() EXCLUDES(mu_);
  /// One lane of a drain: pops members until the generation seals.
  void GenerationWorker(exec::SharedScanManager* manager,
                        uint64_t generation) EXCLUDES(mu_);
  /// Executes one member against the generation's manager. No locks.
  QueryReply ExecuteMember(ServiceQuery& query,
                           exec::SharedScanManager* manager,
                           uint64_t generation);

  /// The admission policy for arrivals while a generation drains:
  /// profitable (the member's scan leaves overlap sources the drain
  /// already has in flight, so attaching saves whole private passes at
  /// the cost of circling the ring for missed morsels) AND affordable
  /// (the member's deadline leaves at least attach_slack × the
  /// drain-time estimate).
  bool AttachLateProfitable(const ServiceQuery& query) const REQUIRES(mu_);

  /// Executor wake predicate: a generation is forming or we're done.
  bool FormingReadyOrStopping() const REQUIRES(mu_) {
    return stopping_ || !forming_.empty();
  }
  /// Worker wake predicate: a member to pop or the generation sealed.
  bool DrainHasWorkOrSealed() const REQUIRES(mu_) {
    return !queue_.empty() || sealed_;
  }
  /// Buckets a terminal status into the ok/cancelled/expired/failed
  /// counters.
  void CountOutcome(const Status& status) REQUIRES(mu_);

  engine::Database* const db_;
  const SchedulerOptions options_;
  const size_t lanes_;

  std::thread executor_;

  mutable Mutex mu_;
  /// Executor parks here for the next forming generation.
  std::condition_variable_any admit_cv_;
  /// Drain workers park here for members (late attachers) or the seal.
  std::condition_variable_any member_cv_;
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// The forming generation: members waiting for the next drain.
  std::deque<ServiceQuery> forming_ GUARDED_BY(mu_);

  // One generation drains at a time, so the draining state lives flat
  // on the scheduler where the analysis can see its guard — there is
  // never a second instance to confuse it with.
  /// Members of the draining generation not yet picked up by a lane.
  std::deque<ServiceQuery> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  /// True between generations (and initially): late attach impossible,
  /// workers drain out. The last finishing lane seals.
  bool sealed_ GUARDED_BY(mu_) = true;
  /// Shared-scan source keys the draining generation has in flight.
  std::set<std::string> draining_keys_ GUARDED_BY(mu_);
  /// EWMA of observed generation drain times, the cost model's
  /// circle-back affordability estimate. Seeded at 1ms: optimistic, so
  /// early arrivals attach and the estimate learns from real drains.
  double est_drain_ms_ GUARDED_BY(mu_) = 1.0;
  ServiceStats totals_ GUARDED_BY(mu_);
};

/// Shared-scan source keys of a plan's scan leaves: ExtentKey(class_id)
/// for every kGet (classes unknown to `catalog` are skipped — binding
/// would have failed anyway), ExprKey(expr) for every kExprSource.
/// Sorted and deduplicated.
std::vector<std::string> PlanScanSourceKeys(const algebra::LogicalRef& plan,
                                            const Catalog* catalog);

}  // namespace service
}  // namespace vodak

#endif  // VODAK_SERVICE_GENERATION_H_
