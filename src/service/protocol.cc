#include "service/protocol.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace vodak {
namespace service {

namespace {

/// Splits on single spaces; VQL text (the tail of a Q line) is never
/// split because callers stop tokenizing after the fixed prefix.
std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool ParseDouble(const std::string& s, double* out) {
  char extra = 0;
  return std::sscanf(s.c_str(), "%lf%c", out, &extra) == 1;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  char extra = 0;
  unsigned long long v = 0;
  if (std::sscanf(s.c_str(), "%llu%c", &v, &extra) != 1) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Parses one `key=value` token against an expected key.
bool TakeField(const std::string& token, const char* key,
               std::string* value) {
  const std::string prefix = std::string(key) + "=";
  if (token.compare(0, prefix.size(), prefix) != 0) return false;
  *value = token.substr(prefix.size());
  return true;
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  if (line.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  Request req;
  switch (line[0]) {
    case 'S': {
      if (line.size() > 1 && line.find_first_not_of(" \t", 1) !=
                                 std::string::npos) {
        return Status::InvalidArgument("S takes no arguments");
      }
      req.kind = Request::Kind::kStats;
      return req;
    }
    case 'C': {
      auto tokens = SplitTokens(line);
      if (tokens.size() != 2) {
        return Status::InvalidArgument("expected: C <id>");
      }
      req.kind = Request::Kind::kCancel;
      req.id = tokens[1];
      return req;
    }
    case 'Q': {
      // Q <id> <deadline_ms> <vql...> — tokenize only the fixed
      // three-token prefix, the remainder is the VQL text verbatim.
      size_t pos = 1;
      auto next_token = [&](std::string* out) {
        while (pos < line.size() && line[pos] == ' ') ++pos;
        const size_t start = pos;
        while (pos < line.size() && line[pos] != ' ') ++pos;
        *out = line.substr(start, pos - start);
        return !out->empty();
      };
      std::string deadline_tok;
      if (!next_token(&req.id) || !next_token(&deadline_tok)) {
        return Status::InvalidArgument(
            "expected: Q <id> <deadline_ms> <vql>");
      }
      if (!ParseDouble(deadline_tok, &req.deadline_ms) ||
          req.deadline_ms < 0) {
        return Status::InvalidArgument("bad deadline_ms: " + deadline_tok);
      }
      while (pos < line.size() && line[pos] == ' ') ++pos;
      req.vql = line.substr(pos);
      if (req.vql.empty()) {
        return Status::InvalidArgument("empty query text");
      }
      req.kind = Request::Kind::kQuery;
      return req;
    }
    default:
      return Status::InvalidArgument("unknown request kind: " +
                                     line.substr(0, 1));
  }
}

std::string StatusToken(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    default:
      return std::string("ERROR:") + StatusCodeName(status.code());
  }
}

uint64_t ResultDigest(const Value& value) {
  constexpr uint64_t kBasis = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  auto mix = [](uint64_t h, const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= kPrime;
    }
    // Separator byte so {"ab","c"} and {"a","bc"} digest differently.
    h ^= 0x1f;
    h *= kPrime;
    return h;
  };
  uint64_t h = kBasis;
  if (value.is_set()) {
    // Sets are canonical (sorted, deduplicated), so element order is
    // deterministic across threads and runs.
    for (const Value& v : value.AsSet()) h = mix(h, v.ToString());
  } else {
    h = mix(h, value.ToString());
  }
  return h;
}

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string FormatReplyLine(const std::string& id, const Status& status,
                            const Value* result,
                            const engine::QueryStats& stats) {
  std::string line = "R " + id + " " + StatusToken(status);
  if (status.ok()) {
    const size_t rows =
        (result != nullptr && result->is_set()) ? result->AsSet().size()
                                                : 1;
    const uint64_t digest =
        result != nullptr ? ResultDigest(*result) : 0;
    line += " rows=" + std::to_string(rows);
    line += " hash=" + DigestHex(digest);
  }
  line += " gen=" + std::to_string(stats.generation_id);
  line += std::string(" late=") + (stats.attached_late ? "1" : "0");
  line += " queue_ms=" + FormatMs(stats.queue_ms);
  line += " plan_ms=" + FormatMs(stats.plan_ms);
  line += " drain_ms=" + FormatMs(stats.drain_ms);
  if (!status.ok()) {
    // msg= is the final field: the message may contain spaces.
    line += " msg=" + status.message();
  }
  return line;
}

Result<Reply> ParseReplyLine(const std::string& line) {
  auto tokens = SplitTokens(line);
  if (tokens.size() < 3 || tokens[0] != "R") {
    return Status::InvalidArgument("not a reply line: " + line);
  }
  Reply reply;
  reply.id = tokens[1];
  reply.status = tokens[2];
  size_t i = 3;
  std::string v;
  if (reply.ok()) {
    if (i + 1 >= tokens.size() || !TakeField(tokens[i], "rows", &v) ||
        !ParseU64(v, &reply.rows) ||
        !TakeField(tokens[i + 1], "hash", &reply.hash)) {
      return Status::InvalidArgument("bad OK reply fields: " + line);
    }
    i += 2;
  }
  uint64_t late = 0;
  const bool stats_ok =
      i + 5 <= tokens.size() && TakeField(tokens[i], "gen", &v) &&
      ParseU64(v, &reply.stats.generation_id) &&
      TakeField(tokens[i + 1], "late", &v) && ParseU64(v, &late) &&
      TakeField(tokens[i + 2], "queue_ms", &v) &&
      ParseDouble(v, &reply.stats.queue_ms) &&
      TakeField(tokens[i + 3], "plan_ms", &v) &&
      ParseDouble(v, &reply.stats.plan_ms) &&
      TakeField(tokens[i + 4], "drain_ms", &v) &&
      ParseDouble(v, &reply.stats.drain_ms);
  if (!stats_ok) {
    return Status::InvalidArgument("bad reply stats fields: " + line);
  }
  reply.stats.attached_late = late != 0;
  if (!reply.ok()) {
    const size_t msg_pos = line.find(" msg=");
    if (msg_pos != std::string::npos) {
      reply.message = line.substr(msg_pos + 5);
    }
  }
  return reply;
}

std::string FormatStatsLine(const ServiceStats& stats) {
  std::string line = "T";
  line += " queries=" + std::to_string(stats.queries_admitted);
  line += " ok=" + std::to_string(stats.queries_ok);
  line += " cancelled=" + std::to_string(stats.queries_cancelled);
  line += " expired=" + std::to_string(stats.queries_expired);
  line += " failed=" + std::to_string(stats.queries_failed);
  line += " generations=" + std::to_string(stats.generations);
  line += " late=" + std::to_string(stats.late_attached);
  line += " extent_passes=" + std::to_string(stats.extent_passes);
  line += " property_reads=" + std::to_string(stats.property_reads);  // lint: not-atomic
  return line;
}

Result<ServiceStats> ParseStatsLine(const std::string& line) {
  auto tokens = SplitTokens(line);
  if (tokens.size() != 10 || tokens[0] != "T") {
    return Status::InvalidArgument("not a stats line: " + line);
  }
  ServiceStats stats;
  struct FieldSlot {
    const char* key;
    uint64_t* slot;
  };
  const FieldSlot fields[] = {
      {"queries", &stats.queries_admitted},
      {"ok", &stats.queries_ok},
      {"cancelled", &stats.queries_cancelled},
      {"expired", &stats.queries_expired},
      {"failed", &stats.queries_failed},
      {"generations", &stats.generations},
      {"late", &stats.late_attached},
      {"extent_passes", &stats.extent_passes},
      {"property_reads", &stats.property_reads},
  };
  for (size_t i = 0; i < 9; ++i) {
    std::string v;
    if (!TakeField(tokens[i + 1], fields[i].key, &v) ||
        !ParseU64(v, fields[i].slot)) {
      return Status::InvalidArgument("bad stats field: " + tokens[i + 1]);
    }
  }
  return stats;
}

}  // namespace service
}  // namespace vodak
