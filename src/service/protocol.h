// Wire protocol of the query service: newline-framed text lines over a
// TCP stream, one request or reply per line (docs/ARCHITECTURE.md
// §"Query service & admission control"). Kept dependency-free on the
// socket layer so the same parse/format code serves the service, the
// load-harness clients in bench/bench_service.cpp and the tests.
//
// Requests:
//   Q <id> <deadline_ms> <vql...>   submit; <id> is a client-chosen
//                                   token (no whitespace), deadline_ms
//                                   0 means none, measured from receipt
//   C <id>                          cancel the in-flight query <id>
//   S                               service stats snapshot
// Replies:
//   R <id> OK rows=<n> hash=<16 hex> gen=<g> late=<0|1>
//       queue_ms=<f> plan_ms=<f> drain_ms=<f>
//   R <id> CANCELLED|DEADLINE_EXCEEDED|ERROR:<Code> gen=... late=...
//       queue_ms=... plan_ms=... drain_ms=... msg=<rest of line>
//   T queries=... ok=... cancelled=... expired=... failed=...
//       generations=... late=... extent_passes=... property_reads=...
//   E <message>                     protocol-level error (malformed
//                                   line, duplicate in-flight id)
#ifndef VODAK_SERVICE_PROTOCOL_H_
#define VODAK_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "engine/query_api.h"
#include "types/value.h"

namespace vodak {
namespace service {

/// One parsed request line.
struct Request {
  enum class Kind { kQuery, kCancel, kStats };
  Kind kind = Kind::kQuery;
  /// Client-chosen request token (kQuery / kCancel).
  std::string id;
  /// kQuery: deadline in milliseconds from receipt; 0 means none.
  double deadline_ms = 0.0;
  /// kQuery: the VQL text (the rest of the line).
  std::string vql;
};

Result<Request> ParseRequestLine(const std::string& line);

/// One parsed reply line (the client half, used by the load harness
/// and the tests).
struct Reply {
  std::string id;
  /// "OK", "CANCELLED", "DEADLINE_EXCEEDED" or "ERROR:<Code>".
  std::string status;
  uint64_t rows = 0;
  /// 16-hex-digit ResultDigest (OK replies only).
  std::string hash;
  engine::QueryStats stats;
  std::string message;

  bool ok() const { return status == "OK"; }
};

Result<Reply> ParseReplyLine(const std::string& line);

/// Service-level counters, reported by the `S` command. Admission
/// counts queries that entered a generation; rejected arrivals land
/// directly in cancelled/expired/failed.
struct ServiceStats {
  uint64_t queries_admitted = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_cancelled = 0;
  uint64_t queries_expired = 0;
  uint64_t queries_failed = 0;
  uint64_t generations = 0;
  uint64_t late_attached = 0;
  /// Store-counter deltas accumulated over all generation drains.
  uint64_t extent_passes = 0;
  uint64_t property_reads = 0;  // lint: not-atomic
};

/// Formats / parses the `T ...` stats line.
std::string FormatStatsLine(const ServiceStats& stats);
Result<ServiceStats> ParseStatsLine(const std::string& line);

/// Status → wire token: OK / CANCELLED / DEADLINE_EXCEEDED /
/// ERROR:<CodeName>. The two terminal per-query outcomes get their own
/// tokens so clients can tell a trip deadline from a server fault.
std::string StatusToken(const Status& status);

/// Order-independent 64-bit FNV-1a digest of a result value set.
/// Value sets are canonical (sorted, deduplicated) and ToString is
/// deterministic, so equal results digest equally on any thread of any
/// run — the wire-size-friendly correctness check the load harness
/// compares against the row-mode oracle.
uint64_t ResultDigest(const Value& value);

/// `hash=` rendering of a digest: exactly 16 lowercase hex digits.
std::string DigestHex(uint64_t digest);

/// Formats one `R ...` reply line (no trailing newline). `result` may
/// be null for non-OK statuses.
std::string FormatReplyLine(const std::string& id, const Status& status,
                            const Value* result,
                            const engine::QueryStats& stats);

}  // namespace service
}  // namespace vodak

#endif  // VODAK_SERVICE_PROTOCOL_H_
