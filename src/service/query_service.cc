#include "service/query_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace vodak {
namespace service {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

QueryService::QueryService(engine::Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      scheduler_(db, [&] {
        SchedulerOptions s;
        s.lanes = options.lanes;
        s.morsel_size = options.morsel_size;
        s.shared_scan = options.shared_scan;
        s.attach_slack = options.attach_slack;
        return s;
      }()) {}

QueryService::~QueryService() { Stop(); }

Status QueryService::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, options_.listen_backlog) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  VODAK_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  VODAK_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  VODAK_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));

  scheduler_.Start();
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void QueryService::Stop() {
  if (listen_fd_ < 0) return;  // never started (or already stopped)
  // Scheduler first: the loop keeps running while the in-flight
  // generation drains, so its final replies still reach clients.
  scheduler_.Stop();
  running_.store(false, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    // Best-effort wake; a full pipe means a wake is already pending.
    (void)!write(wake_write_fd_, &byte, 1);
  }
  if (loop_.joinable()) loop_.join();
  for (auto& [fd, conn] : conns_) close(fd);
  conns_.clear();
  conn_fds_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void QueryService::PostReply(PendingReply reply) {
  {
    MutexLock lock(out_mu_);
    outbox_.push_back(std::move(reply));
  }
  const char byte = 1;
  (void)!write(wake_write_fd_, &byte, 1);
}

void QueryService::DrainOutbox() {
  std::vector<PendingReply> replies;
  {
    MutexLock lock(out_mu_);
    replies.swap(outbox_);
  }
  for (PendingReply& reply : replies) {
    auto it = conn_fds_.find(reply.conn_id);
    if (it == conn_fds_.end()) continue;  // client disconnected
    auto conn_it = conns_.find(it->second);
    if (conn_it == conns_.end()) continue;
    Connection& conn = *conn_it->second;
    conn.inflight.erase(reply.request_id);
    QueueReply(conn, reply.line);
  }
}

void QueryService::QueueReply(Connection& conn, const std::string& line) {
  conn.outbuf += line;
  conn.outbuf += '\n';
}

void QueryService::CloseConnection(Connection& conn) {
  // Disconnect cancels the client's in-flight queries: nobody is left
  // to read their results, so let their lanes free up within a batch.
  for (auto& [id, token] : conn.inflight) token->Cancel();
  conn_fds_.erase(conn.id);
  close(conn.fd);
}

void QueryService::HandleLine(Connection& conn, const std::string& line) {
  if (line.empty()) return;
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    QueueReply(conn, "E " + parsed.status().message());
    return;
  }
  Request& req = parsed.value();
  switch (req.kind) {
    case Request::Kind::kStats:
      QueueReply(conn, FormatStatsLine(scheduler_.stats()));
      return;
    case Request::Kind::kCancel: {
      // Fire-and-forget; an unknown or already-finished id is a no-op
      // (its reply may already be in flight).
      auto it = conn.inflight.find(req.id);
      if (it != conn.inflight.end()) it->second->Cancel();
      return;
    }
    case Request::Kind::kQuery:
      break;
  }
  if (conn.inflight.count(req.id) != 0) {
    QueueReply(conn, "E duplicate in-flight request id: " + req.id);
    return;
  }
  const auto arrival = std::chrono::steady_clock::now();
  ServiceQuery query;
  query.request_id = req.id;
  query.cancel = std::make_shared<exec::CancellationToken>();
  query.deadline = req.deadline_ms > 0
                       ? exec::Deadline::After(req.deadline_ms)
                       : exec::Deadline::None();
  // Planning runs here, serialized on the event thread — the optimizer
  // module is not built for concurrent Optimize calls, and a plan
  // error can answer immediately without touching the scheduler.
  auto prepared =
      db_->Prepare(req.vql, {/*optimize=*/options_.optimize,
                             /*trace=*/false});
  query.plan_ms = MsBetween(arrival, std::chrono::steady_clock::now());
  if (!prepared.ok()) {
    engine::QueryStats stats;
    stats.plan_ms = query.plan_ms;
    QueueReply(conn, FormatReplyLine(req.id, prepared.status(),
                                     /*result=*/nullptr, stats));
    return;
  }
  query.plan = prepared.value().planned.chosen_plan;
  query.result_ref = prepared.value().result_ref;
  query.scan_keys = PlanScanSourceKeys(query.plan, db_->catalog());
  query.admitted_at = std::chrono::steady_clock::now();
  conn.inflight[req.id] = query.cancel;
  const uint64_t conn_id = conn.id;
  query.done = [this, conn_id](QueryReply reply) {
    PendingReply pending;
    pending.conn_id = conn_id;
    pending.request_id = reply.request_id;
    pending.line =
        FormatReplyLine(reply.request_id, reply.status,
                        reply.status.ok() ? &reply.result : nullptr,
                        reply.stats);
    PostReply(std::move(pending));
  };
  scheduler_.Admit(std::move(query));
}

void QueryService::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<int> doomed;
  char buf[4096];
  // Armed at the first shutdown observation: pending replies get a
  // bounded flush window, so a client that stopped reading cannot
  // hang Stop() on its full socket buffer.
  std::chrono::steady_clock::time_point flush_deadline;
  bool flushing = false;
  for (;;) {
    const bool running = running_.load(std::memory_order_acquire);
    // Keep looping while replies are still pending flush on shutdown.
    if (!running) {
      if (!flushing) {
        flushing = true;
        flush_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
      }
      bool pending = false;
      {
        MutexLock lock(out_mu_);
        pending = !outbox_.empty();
      }
      if (!pending) {
        for (auto& [fd, conn] : conns_) {
          if (!conn->outbuf.empty()) pending = true;
        }
      }
      if (!pending || std::chrono::steady_clock::now() >= flush_deadline) {
        return;
      }
    }

    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    // 200ms tick bounds shutdown latency even if a wake byte is lost.
    (void)poll(fds.data(), fds.size(), 200);

    if (fds[1].revents & POLLIN) {
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    DrainOutbox();

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd).ok()) {
          close(fd);
          continue;
        }
        auto conn = std::make_unique<Connection>();
        conn->id = ++next_conn_id_;
        conn->fd = fd;
        conn_fds_[conn->id] = fd;
        conns_[fd] = std::move(conn);
      }
    }

    doomed.clear();
    for (size_t i = 2; i < fds.size(); ++i) {
      auto conn_it = conns_.find(fds[i].fd);
      if (conn_it == conns_.end()) continue;
      Connection& conn = *conn_it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        doomed.push_back(conn.fd);
        continue;
      }
      if (fds[i].revents & POLLIN) {
        bool eof = false;
        for (;;) {
          const ssize_t n = read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.inbuf.append(buf, static_cast<size_t>(n));
          } else if (n == 0) {
            eof = true;
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK) eof = true;
            break;
          }
        }
        size_t start = 0;
        for (;;) {
          const size_t nl = conn.inbuf.find('\n', start);
          if (nl == std::string::npos) break;
          std::string line = conn.inbuf.substr(start, nl - start);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          HandleLine(conn, line);
          start = nl + 1;
        }
        conn.inbuf.erase(0, start);
        if (eof) {
          doomed.push_back(conn.fd);
          continue;
        }
      }
      if (!conn.outbuf.empty()) {
        const ssize_t n = send(conn.fd, conn.outbuf.data(),
                               conn.outbuf.size(), MSG_NOSIGNAL);
        if (n > 0) {
          conn.outbuf.erase(0, static_cast<size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          doomed.push_back(conn.fd);
        }
      }
    }
    for (int fd : doomed) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      CloseConnection(*it->second);
      conns_.erase(it);
    }
  }
}

}  // namespace service
}  // namespace vodak
