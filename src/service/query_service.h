// The query service front-end: a long-running loopback TCP endpoint
// accepting a stream of VQL queries in the newline-framed protocol of
// service/protocol.h, admitting them into shared-scan generations
// (service/generation.h) and streaming replies back as members
// complete (docs/ARCHITECTURE.md §"Query service & admission
// control"). Plain poll(2) over nonblocking sockets — no event-loop
// dependency.
//
// Threading model: one event-loop thread owns all sockets and all
// connection state (no mutex needed there — documented per field);
// generation workers hand finished replies over through a mutex-backed
// outbox drained by the loop, woken through a self-pipe. Planning runs
// on the event-loop thread: the optimizer module is not built for
// concurrent Optimize calls, and serializing it there keeps the
// scheduler purely an executor.
#ifndef VODAK_SERVICE_QUERY_SERVICE_H_
#define VODAK_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/database.h"
#include "service/generation.h"
#include "service/protocol.h"

namespace vodak {
namespace service {

struct ServiceOptions {
  /// 0 binds an ephemeral port; read the bound one back via port().
  uint16_t port = 0;
  /// Worker lanes per generation drain; 0 = hardware concurrency.
  size_t lanes = 0;
  size_t morsel_size = exec::kDefaultMorselSize;
  /// False drains with private cursors (the benchmark baseline).
  bool shared_scan = true;
  /// Late-attach deadline slack (SchedulerOptions::attach_slack).
  double attach_slack = 2.0;
  /// Run the generated optimizer on every query. Off by default: the
  /// service is usable on a session without GenerateOptimizer().
  bool optimize = false;
  int listen_backlog = 16;
};

/// The service. Start() binds, spawns the scheduler's executor and the
/// event loop; Stop() drains the in-flight generation, flushes its
/// replies and tears the sockets down. One Start/Stop cycle per
/// instance.
class QueryService {
 public:
  explicit QueryService(engine::Database* db, ServiceOptions options = {});
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  Status Start();
  void Stop();

  /// The bound (possibly ephemeral) port; valid after Start().
  uint16_t port() const { return port_; }

  ServiceStats stats() const { return scheduler_.stats(); }

 private:
  /// One client connection. Owned and touched exclusively by the
  /// event-loop thread — never lock-protected by design.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    /// Bytes received but not yet newline-terminated.
    std::string inbuf;
    /// Formatted reply bytes not yet accepted by the socket.
    std::string outbuf;
    /// In-flight queries by request id; the target of `C <id>` and of
    /// the cancel-on-disconnect sweep.
    std::map<std::string, std::shared_ptr<exec::CancellationToken>> inflight;
  };

  /// A finished query's formatted reply, posted by a generation worker
  /// for the loop to route to its connection (which may be gone).
  struct PendingReply {
    uint64_t conn_id = 0;
    std::string request_id;
    std::string line;
  };

  void EventLoop();
  /// Handles one complete request line from `conn` (loop thread).
  void HandleLine(Connection& conn, const std::string& line);
  /// Queues `line` (no newline) for `conn` and arms POLLOUT via the
  /// next poll rebuild (loop thread).
  void QueueReply(Connection& conn, const std::string& line);
  /// Worker-side: posts a finished reply and wakes the loop.
  void PostReply(PendingReply reply) EXCLUDES(out_mu_);
  /// Loop-side: drains the outbox into connection buffers.
  void DrainOutbox() EXCLUDES(out_mu_);
  void CloseConnection(Connection& conn);

  engine::Database* const db_;
  const ServiceOptions options_;
  GenerationScheduler scheduler_;

  int listen_fd_ = -1;
  /// Self-pipe: workers write one byte to wake the loop out of poll.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  /// Loop shutdown flag. Release/acquire pairs Stop()'s state writes
  /// with the loop's final iteration.
  std::atomic<bool> running_{false};
  std::thread loop_;

  // Event-loop-thread-only state; no guard by design (single owner).
  std::map<int, std::unique_ptr<Connection>> conns_;
  /// conn id → fd, for reply routing after the fd may have been
  /// reused; erased together with conns_.
  std::map<uint64_t, int> conn_fds_;
  uint64_t next_conn_id_ = 0;

  /// The worker → loop mailbox.
  Mutex out_mu_;
  std::vector<PendingReply> outbox_ GUARDED_BY(out_mu_);
};

}  // namespace service
}  // namespace vodak

#endif  // VODAK_SERVICE_QUERY_SERVICE_H_
