#include "storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vodak {
namespace storage {

PinnedPage::~PinnedPage() {
  if (pager_ != nullptr) pager_->Unpin(frame_);
}

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    if (pager_ != nullptr) pager_->Unpin(frame_);
    pager_ = other.pager_;
    frame_ = other.frame_;
    data_ = other.data_;
    page_id_ = other.page_id_;
    other.pager_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

uint8_t* PinnedPage::mutable_data() {
  // Mark dirty eagerly: the frame cannot be evicted while this pin is
  // held, so the flag is stable until an eviction after unpin writes
  // the mutation back.
  pager_->MarkDirty(frame_);
  return const_cast<uint8_t*>(data_);
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           PagerOptions options) {
  if (options.page_size == 0 || options.cache_pages == 0) {
    return Status::InvalidArgument("pager: page_size and cache_pages must be > 0");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("pager: open('" + path +
                            "') failed: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("pager: fstat failed: " + err);
  }
  const uint64_t file_pages =
      (static_cast<uint64_t>(st.st_size) + options.page_size - 1) /
      options.page_size;
  return std::unique_ptr<Pager>(new Pager(fd, options, file_pages));
}

Pager::Pager(int fd, PagerOptions options, uint64_t file_pages)
    : options_(options), fd_(fd) {
  MutexLock lock(mu_);
  frames_.resize(options_.cache_pages);
  for (Frame& f : frames_) f.bytes.resize(options_.page_size);
  page_extent_ = file_pages;
}

Pager::~Pager() {
  (void)Flush();
  ::close(fd_);
}

uint64_t Pager::page_count() const {
  MutexLock lock(mu_);
  return page_extent_;
}

uint64_t Pager::Allocate(uint64_t pages) {
  MutexLock lock(mu_);
  const uint64_t first = page_extent_;
  page_extent_ += pages;
  return first;
}

Status Pager::ReadPage(uint64_t page_id, uint8_t* out) {
  const size_t n = options_.page_size;
  const off_t off = static_cast<off_t>(page_id * n);
  size_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::pread(fd_, out + done, n - done, off + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pager: pread failed: ") +
                              std::strerror(errno));
    }
    if (got == 0) {
      // Past EOF: freshly allocated page, reads as zeros.
      std::memset(out + done, 0, n - done);
      return Status::OK();
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status Pager::WritePage(uint64_t page_id, const uint8_t* data) {
  const size_t n = options_.page_size;
  const off_t off = static_cast<off_t>(page_id * n);
  size_t done = 0;
  while (done < n) {
    const ssize_t put =
        ::pwrite(fd_, data + done, n - done, off + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pager: pwrite failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Result<size_t> Pager::AcquireFrame() {
  // First pass preference: an unmapped frame costs nothing to claim.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].mapped) return i;
  }
  // Clock second-chance over mapped frames: clear one referenced bit
  // per visit, evict the first unreferenced unpinned frame. Two full
  // sweeps guarantee termination when any frame is evictable (the
  // first sweep can at worst clear every referenced bit).
  for (size_t step = 0; step < frames_.size() * 2; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t at = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.pins > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      VODAK_RETURN_IF_ERROR(WritePage(f.page_id, f.bytes.data()));
      stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
      f.dirty = false;
    }
    page_table_.erase(f.page_id);
    f.mapped = false;
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    return at;
  }
  return Status::ExecError(
      "pager: buffer cache exhausted - all " +
      std::to_string(frames_.size()) +
      " frames pinned (raise cache_pages or drop pins)");
}

Result<PinnedPage> Pager::Pin(uint64_t page_id) {
  MutexLock lock(mu_);
  if (page_id >= page_extent_) {
    return Status::InvalidArgument("pager: pin of unallocated page " +
                                   std::to_string(page_id));
  }
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    f.pins++;
    f.referenced = true;
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return PinnedPage(this, it->second, f.bytes.data(), page_id);
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  VODAK_ASSIGN_OR_RETURN(size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  VODAK_RETURN_IF_ERROR(ReadPage(page_id, f.bytes.data()));
  f.page_id = page_id;
  f.mapped = true;
  f.dirty = false;
  f.referenced = true;
  f.pins = 1;
  page_table_[page_id] = idx;
  return PinnedPage(this, idx, f.bytes.data(), page_id);
}

void Pager::Unpin(size_t frame) {
  MutexLock lock(mu_);
  frames_[frame].pins--;
}

void Pager::MarkDirty(size_t frame) {
  MutexLock lock(mu_);
  frames_[frame].dirty = true;
}

Status Pager::Flush() {
  MutexLock lock(mu_);
  for (Frame& f : frames_) {
    if (f.mapped && f.dirty) {
      VODAK_RETURN_IF_ERROR(WritePage(f.page_id, f.bytes.data()));
      stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace vodak
