// The page layer under the segment files: a single data file sliced
// into fixed-size pages, fronted by a bounded buffer cache with
// clock (second-chance) replacement and pin/unpin RAII
// (docs/ARCHITECTURE.md §"Paged storage & segment skipping"). A pinned
// page is wired in memory — the clock hand skips it — so readers hold
// stable pointers across a batch without copying; eviction writes
// dirty frames back before reuse. Hit/miss/evict/writeback counters
// are the CI-gated signal for bench_storage (1-core container:
// counters, not wall clock, per BENCHMARKS.md policy).
#ifndef VODAK_STORAGE_PAGER_H_
#define VODAK_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace vodak {
namespace storage {

struct PagerOptions {
  /// Bytes per page. Segment column blobs span whole pages, so ~64 KiB
  /// keeps the directory small while a blob still streams in few pins.
  size_t page_size = 64 * 1024;
  /// Buffer-cache capacity in pages. The bench deliberately caps this
  /// far below the data size to make the replacement policy observable.
  size_t cache_pages = 64;
};

/// Relaxed counters: concurrent readers bump them under no lock beyond
/// the pager mutex they already hold for the frame table, and the
/// benches read them quiescently. Orders are spelled per the lint.py
/// atomics contract.
struct PagerStats {
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> writebacks{0};

  void Reset() {
    cache_hits.store(0, std::memory_order_relaxed);
    cache_misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    writebacks.store(0, std::memory_order_relaxed);
  }
};

class Pager;

/// RAII pin on one cached page. While alive, the frame cannot be
/// evicted and `data()` stays valid; `mutable_data()` additionally
/// marks the frame dirty so eviction (or Flush) writes it back.
/// Movable, not copyable; destruction unpins.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(Pager* pager, size_t frame, const uint8_t* data,
             uint64_t page_id)
      : pager_(pager), frame_(frame), data_(data), page_id_(page_id) {}
  ~PinnedPage();
  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return pager_ != nullptr; }
  uint64_t page_id() const { return page_id_; }
  const uint8_t* data() const { return data_; }
  /// Write access; marks the frame dirty.
  uint8_t* mutable_data();

 private:
  Pager* pager_ = nullptr;
  size_t frame_ = 0;
  const uint8_t* data_ = nullptr;
  uint64_t page_id_ = 0;
};

/// Fixed-size-page file manager with a bounded in-memory frame pool.
/// All frame-table state is guarded by one mutex; page I/O runs under
/// it too — the tradeoff is deliberate for the 1-core CI container
/// (no benefit from I/O/latch overlap) and keeps the eviction
/// invariant trivially race-free: a frame is either mapped and
/// possibly pinned, or free, never mid-transition.
class Pager {
 public:
  /// Opens (creating if absent) the page file at `path`.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             PagerOptions options);
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Pins page `page_id`, faulting it from the file on a cache miss
  /// (pages past EOF read as zeros — freshly allocated pages are
  /// materialized on first writeback). Errors when every frame is
  /// pinned: the cache budget is a hard cap, and a caller holding that
  /// many pins is a bug the Status surfaces instead of deadlocking.
  Result<PinnedPage> Pin(uint64_t page_id) EXCLUDES(mu_);

  /// Appends a fresh page to the file's logical extent and returns its
  /// id. The page's bytes materialize on first Pin + writeback.
  uint64_t Allocate(uint64_t pages = 1) EXCLUDES(mu_);

  /// Writes every dirty cached frame back to the file.
  Status Flush() EXCLUDES(mu_);

  size_t page_size() const { return options_.page_size; }
  uint64_t page_count() const EXCLUDES(mu_);
  const PagerStats& stats() const { return stats_; }
  PagerStats* mutable_stats() { return &stats_; }

 private:
  friend class PinnedPage;

  struct Frame {
    uint64_t page_id = 0;
    bool mapped = false;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
    uint32_t pins = 0;
    std::vector<uint8_t> bytes;
  };

  Pager(int fd, PagerOptions options, uint64_t file_pages);

  /// Finds a free frame, evicting an unpinned one if needed (dirty
  /// victims write back first). Returns the frame index or an error
  /// when every frame is pinned.
  Result<size_t> AcquireFrame() REQUIRES(mu_);
  Status ReadPage(uint64_t page_id, uint8_t* out) REQUIRES(mu_);
  Status WritePage(uint64_t page_id, const uint8_t* data) REQUIRES(mu_);
  void Unpin(size_t frame) EXCLUDES(mu_);
  void MarkDirty(size_t frame) EXCLUDES(mu_);

  const PagerOptions options_;
  const int fd_;

  mutable Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  /// page_id -> frame index for mapped frames.
  std::unordered_map<uint64_t, size_t> page_table_ GUARDED_BY(mu_);
  size_t clock_hand_ GUARDED_BY(mu_) = 0;
  /// Logical page extent (>= pages physically in the file).
  uint64_t page_extent_ GUARDED_BY(mu_) = 0;

  mutable PagerStats stats_;
};

}  // namespace storage
}  // namespace vodak

#endif  // VODAK_STORAGE_PAGER_H_
