#include "storage/segment_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "objstore/object_store.h"
#include "storage/value_serde.h"

namespace vodak {
namespace storage {

// The pruning rule (docs/ARCHITECTURE.md §"Paged storage & segment
// skipping"): min/max bound every row under Value::Compare — the same
// total order the executor's compare predicates reduce to — so a
// segment is skipped exactly when the bounds prove the compare false
// for every row. Null rows are inside the bounds (kNull orders below
// every other kind), which is what keeps e.g. `col < 5` sound on
// segments holding nulls: NULL < 5 holds under the total order, and a
// null-holding segment has min == NULL <= 5, so it is never refuted.
bool ZoneRefutes(const ZoneMap& zone, BinOp op, const Value& constant) {
  if (!zone.valid) return false;
  const int min_vs = Value::Compare(zone.min, constant);
  const int max_vs = Value::Compare(zone.max, constant);
  switch (op) {
    case BinOp::kEq:
      return min_vs > 0 || max_vs < 0;
    case BinOp::kNe:
      // Only refutable when every row equals the constant.
      return min_vs == 0 && max_vs == 0;
    case BinOp::kLt:
      return min_vs >= 0;
    case BinOp::kLe:
      return min_vs > 0;
    case BinOp::kGt:
      return max_vs <= 0;
    case BinOp::kGe:
      return max_vs < 0;
    default:
      return false;  // non-compare ops are never sargable
  }
}

bool ZonesRefute(const std::vector<ZoneMap>& zones,
                 const std::vector<SlotPredicate>& preds) {
  for (const SlotPredicate& p : preds) {
    if (p.slot < zones.size() &&
        ZoneRefutes(zones[p.slot], p.op, p.constant)) {
      return true;
    }
  }
  return false;
}

bool SegmentRefuted(const Segment& seg,
                    const std::vector<SlotPredicate>& preds) {
  return ZonesRefute(seg.zones, preds);
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const std::string& path, PagerOptions options) {
  VODAK_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                         Pager::Open(path, options));
  return std::unique_ptr<SegmentStore>(new SegmentStore(std::move(pager)));
}

Result<BlobRef> SegmentStore::WriteBlob(const std::string& bytes) {
  BlobRef ref;
  ref.byte_size = bytes.size();
  if (bytes.empty()) return ref;
  const size_t page_size = pager_->page_size();
  const uint64_t pages = (bytes.size() + page_size - 1) / page_size;
  ref.first_page = pager_->Allocate(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    VODAK_ASSIGN_OR_RETURN(PinnedPage page, pager_->Pin(ref.first_page + i));
    const size_t off = static_cast<size_t>(i) * page_size;
    const size_t n = std::min(page_size, bytes.size() - off);
    std::memcpy(page.mutable_data(), bytes.data() + off, n);
  }
  return ref;
}

Result<std::string> SegmentStore::ReadBlob(const BlobRef& ref) const {
  std::string bytes;
  bytes.reserve(ref.byte_size);
  const size_t page_size = pager_->page_size();
  const uint64_t pages = (ref.byte_size + page_size - 1) / page_size;
  for (uint64_t i = 0; i < pages; ++i) {
    VODAK_ASSIGN_OR_RETURN(PinnedPage page, pager_->Pin(ref.first_page + i));
    const size_t off = static_cast<size_t>(i) * page_size;
    const size_t n =
        std::min<size_t>(page_size, static_cast<size_t>(ref.byte_size) - off);
    bytes.append(reinterpret_cast<const char*>(page.data()), n);
  }
  return bytes;
}

Status SegmentStore::IngestClass(const ObjectStore& store, uint32_t class_id,
                                 uint32_t slot_count, Epoch at,
                                 const IngestOptions& options) {
  if (options.rows_per_segment == 0) {
    return Status::InvalidArgument("segment ingest: rows_per_segment == 0");
  }
  VODAK_ASSIGN_OR_RETURN(std::vector<Oid> extent, store.Extent(class_id, at));

  auto version = std::make_shared<SegmentVersion>();
  version->class_id = class_id;
  version->begin = at;
  version->total_rows = extent.size();

  std::vector<bool> tracked(slot_count, true);
  for (uint32_t slot : options.untracked_slots) {
    if (slot < slot_count) tracked[slot] = false;
  }

  const size_t step = options.rows_per_segment;
  for (size_t begin = 0; begin < extent.size(); begin += step) {
    const size_t end = std::min(extent.size(), begin + step);
    Segment seg;
    seg.first_row = begin;
    seg.row_count = static_cast<uint32_t>(end - begin);

    std::vector<uint32_t> locals;
    locals.reserve(seg.row_count);
    std::string bytes;
    bytes.reserve(seg.row_count * 4);
    for (size_t i = begin; i < end; ++i) {
      locals.push_back(extent[i].local);
      EncodeU32(extent[i].local, &bytes);
    }
    VODAK_ASSIGN_OR_RETURN(seg.locals, WriteBlob(bytes));

    seg.columns.resize(slot_count);
    seg.zones.resize(slot_count);
    std::vector<Value> values;
    for (uint32_t slot = 0; slot < slot_count; ++slot) {
      values.clear();
      VODAK_RETURN_IF_ERROR(store.GetPropertyColumn(class_id, slot, extent,
                                                    begin, end, &values, at));
      bytes.clear();
      ZoneMap& zone = seg.zones[slot];
      for (const Value& v : values) {
        EncodeValue(v, &bytes);
        if (tracked[slot]) {
          if (!zone.valid) {
            zone.valid = true;
            zone.min = v;
            zone.max = v;
          } else {
            if (Value::Compare(v, zone.min) < 0) zone.min = v;
            if (Value::Compare(v, zone.max) > 0) zone.max = v;
          }
          if (v.is_null()) zone.null_count++;
        }
      }
      VODAK_ASSIGN_OR_RETURN(seg.columns[slot], WriteBlob(bytes));
    }
    version->segments.push_back(std::move(seg));
  }
  VODAK_RETURN_IF_ERROR(pager_->Flush());

  MutexLock lock(mu_);
  std::vector<SegmentVersionRef>& chain = directory_[class_id];
  if (!chain.empty() && chain.back()->end == kEpochLatest) {
    // Re-ingest supersedes the open version from `at` on.
    auto closed = std::make_shared<SegmentVersion>(*chain.back());
    closed->end = at;
    chain.back() = std::move(closed);
  }
  chain.push_back(std::move(version));
  return Status::OK();
}

void SegmentStore::CloseVersions(uint32_t class_id, Epoch end_epoch) {
  MutexLock lock(mu_);
  auto it = directory_.find(class_id);
  if (it == directory_.end() || it->second.empty()) return;
  const SegmentVersionRef& open = it->second.back();
  if (open->end != kEpochLatest || open->begin >= end_epoch) return;
  auto closed = std::make_shared<SegmentVersion>(*open);
  closed->end = end_epoch;
  it->second.back() = std::move(closed);
}

SegmentVersionRef SegmentStore::VersionAt(uint32_t class_id,
                                          Epoch at) const {
  MutexLock lock(mu_);
  auto it = directory_.find(class_id);
  if (it == directory_.end()) return nullptr;
  const std::vector<SegmentVersionRef>& chain = it->second;
  if (at == kEpochLatest) {
    if (!chain.empty() && chain.back()->end == kEpochLatest) {
      return chain.back();
    }
    return nullptr;
  }
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if ((*rit)->begin <= at && at < (*rit)->end) return *rit;
  }
  return nullptr;
}

Result<std::vector<uint32_t>> SegmentStore::ReadLocals(
    const Segment& seg) const {
  VODAK_ASSIGN_OR_RETURN(std::string bytes, ReadBlob(seg.locals));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t pos = 0;
  std::vector<uint32_t> locals;
  locals.reserve(seg.row_count);
  for (uint32_t i = 0; i < seg.row_count; ++i) {
    VODAK_ASSIGN_OR_RETURN(uint32_t local,
                           DecodeU32(data, bytes.size(), &pos));
    locals.push_back(local);
  }
  return locals;
}

Status SegmentStore::ReadColumn(const Segment& seg, uint32_t slot,
                                std::vector<Value>* out) const {
  if (slot >= seg.columns.size()) {
    return Status::InvalidArgument("segment read: slot " +
                                   std::to_string(slot) + " out of range");
  }
  VODAK_ASSIGN_OR_RETURN(std::string bytes, ReadBlob(seg.columns[slot]));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t pos = 0;
  out->reserve(out->size() + seg.row_count);
  for (uint32_t i = 0; i < seg.row_count; ++i) {
    VODAK_ASSIGN_OR_RETURN(Value v, DecodeValue(data, bytes.size(), &pos));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

double SegmentStore::SurvivalRate() const {
  const uint64_t scanned =
      stats_.segments_scanned.load(std::memory_order_relaxed);
  const uint64_t skipped =
      stats_.segments_skipped.load(std::memory_order_relaxed);
  const uint64_t total = scanned + skipped;
  if (total == 0) return 1.0;
  // Clamp away from zero: a fully-refuted history must not price
  // future scans at literally nothing.
  return std::max(0.01, static_cast<double>(scanned) /
                            static_cast<double>(total));
}

}  // namespace storage
}  // namespace vodak
