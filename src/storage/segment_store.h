// Paged columnar segments with zone maps (docs/ARCHITECTURE.md
// §"Paged storage & segment skipping"). A class extent ingests into
// fixed-row-count column segments serialized through the Pager: per
// segment, the OID column (u32 locals) plus one value blob per
// property slot, and a per-slot zone map (min/max under the
// Value::Compare total order, null count). Zone maps let scans refute
// whole segments against sargable predicates without touching a page.
//
// Versioning mirrors MVCC: each ingest produces a SegmentVersion
// stamped [begin, end) in epochs. A write commit closes the open
// version (end = commit epoch), so snapshot readers pinned below the
// commit keep the segment path while later readers fall back to the
// in-memory extent until the class is re-ingested. Segment data is
// immutable once written — reclaim never touches it, and pinned pages
// only protect buffer-cache frames, not versions.
#ifndef VODAK_STORAGE_SEGMENT_STORE_H_
#define VODAK_STORAGE_SEGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "expr/expr.h"
#include "objstore/epoch.h"
#include "storage/pager.h"
#include "types/value.h"

namespace vodak {

class ObjectStore;

namespace storage {

/// Per-slot min/max summary of one segment. min/max are taken over ALL
/// rows under the Value::Compare total order — nulls included, so an
/// all-null segment has min == max == NULL. That convention is what
/// makes pruning sound against the executor's compare semantics:
/// filters reduce `col op const` to Value::Compare (kNull orders below
/// every other kind and never errors), so the zone bounds bound every
/// row's compare result, null rows included.
struct ZoneMap {
  /// False for untracked slots: an invalid zone never refutes.
  bool valid = false;
  Value min;
  Value max;
  uint64_t null_count = 0;
};

/// One normalized sargable conjunct, `slot op constant` with the
/// column on the left (the collector flips constant-on-LHS compares).
/// Same shape the VM's typed compare loops lower natively — one
/// classifier feeds both (exec/sargable.h).
struct SlotPredicate {
  uint32_t slot = 0;
  BinOp op = BinOp::kEq;
  Value constant;
};

/// True when the zone proves no row of the segment can satisfy
/// `col op constant`. Conservative: invalid zones never refute.
bool ZoneRefutes(const ZoneMap& zone, BinOp op, const Value& constant);

/// A byte blob's location in the page file: `byte_size` bytes starting
/// at page `first_page`, spanning whole pages.
struct BlobRef {
  uint64_t first_page = 0;
  uint64_t byte_size = 0;
};

/// One column segment: `row_count` consecutive extent rows starting at
/// extent position `first_row`, with the OID column and one value blob
/// + zone map per property slot.
struct Segment {
  uint64_t first_row = 0;
  uint32_t row_count = 0;
  BlobRef locals;
  std::vector<BlobRef> columns;  // indexed by slot
  std::vector<ZoneMap> zones;    // indexed by slot
};

/// True when `preds` (ANDed conjuncts) refute a row range summarized
/// by `zones` (indexed by slot): a segment's own zones, or a shared
/// scan morsel's merged ones. Predicates over slots outside `zones`
/// never refute.
bool ZonesRefute(const std::vector<ZoneMap>& zones,
                 const std::vector<SlotPredicate>& preds);

/// True when `preds` (ANDed conjuncts) refute the whole segment.
bool SegmentRefuted(const Segment& seg,
                    const std::vector<SlotPredicate>& preds);

/// The segments of one class at one epoch range, in extent order.
struct SegmentVersion {
  uint32_t class_id = 0;
  Epoch begin = 0;
  Epoch end = kEpochLatest;
  uint64_t total_rows = 0;
  std::vector<Segment> segments;
};

using SegmentVersionRef = std::shared_ptr<const SegmentVersion>;

struct IngestOptions {
  /// Rows per column segment (~64k by default: big enough that the
  /// per-segment directory entry amortizes, small enough that a zone
  /// refutation skips a meaningful page run).
  uint32_t rows_per_segment = 64 * 1024;
  /// Slots ingested without zone maps (blob still written). Exercised
  /// by the untracked-column tests: predicates over these slots must
  /// never skip a segment.
  std::vector<uint32_t> untracked_slots;
};

/// Pruning totals since construction/reset. Relaxed atomics read
/// quiescently by benches and the cost model's survival-rate learning.
struct SegmentStoreStats {
  std::atomic<uint64_t> segments_scanned{0};
  std::atomic<uint64_t> segments_skipped{0};

  void Reset() {
    segments_scanned.store(0, std::memory_order_relaxed);
    segments_skipped.store(0, std::memory_order_relaxed);
  }
};

/// Segment directory + pager-backed column storage for every ingested
/// class. Thread-safe: the directory mutex covers version lists only;
/// Segment/SegmentVersion objects are immutable after publication and
/// page access serializes inside the Pager.
class SegmentStore {
 public:
  /// Opens (creating) the single page file backing all segments.
  static Result<std::unique_ptr<SegmentStore>> Open(const std::string& path,
                                                    PagerOptions options);

  /// Snapshots class `class_id` of `store` at epoch `at` into a new
  /// open SegmentVersion [at, kEpochLatest). An already-open version
  /// of the class is closed at `at` first (re-ingest after writes).
  Status IngestClass(const ObjectStore& store, uint32_t class_id,
                     uint32_t slot_count, Epoch at,
                     const IngestOptions& options = {}) EXCLUDES(mu_);

  /// Closes the class's open version at `end_epoch` (a write commit:
  /// segment data no longer reflects epochs >= end_epoch). Readers
  /// pinned below keep it; no-op when no version is open.
  void CloseVersions(uint32_t class_id, Epoch end_epoch) EXCLUDES(mu_);

  /// The version covering epoch `at` (kEpochLatest: the open version),
  /// or null when segments cannot serve that snapshot.
  SegmentVersionRef VersionAt(uint32_t class_id, Epoch at) const
      EXCLUDES(mu_);

  /// Decodes a segment's OID column (u32 locals, extent order).
  Result<std::vector<uint32_t>> ReadLocals(const Segment& seg) const;
  /// Decodes a segment's value column for `slot`.
  Status ReadColumn(const Segment& seg, uint32_t slot,
                    std::vector<Value>* out) const;

  /// Records one pruning decision round (scan-open time): bumped once
  /// per source construction, not per batch.
  void NotePruning(uint64_t scanned, uint64_t skipped) const {
    stats_.segments_scanned.fetch_add(scanned, std::memory_order_relaxed);
    stats_.segments_skipped.fetch_add(skipped, std::memory_order_relaxed);
  }

  /// Observed fraction of segments that survived pruning, in (0, 1];
  /// 1.0 before any pruning has been observed. The cost model prices
  /// segment scans by this (docs/ARCHITECTURE.md §"Cost model").
  double SurvivalRate() const;

  const SegmentStoreStats& stats() const { return stats_; }
  SegmentStoreStats* mutable_stats() { return &stats_; }
  Pager* pager() { return pager_.get(); }
  const Pager* pager() const { return pager_.get(); }

 private:
  explicit SegmentStore(std::unique_ptr<Pager> pager)
      : pager_(std::move(pager)) {}

  Result<BlobRef> WriteBlob(const std::string& bytes);
  Result<std::string> ReadBlob(const BlobRef& ref) const;

  std::unique_ptr<Pager> pager_;

  mutable Mutex mu_;
  /// class_id -> versions ascending by begin; at most the last is open.
  std::unordered_map<uint32_t, std::vector<SegmentVersionRef>> directory_
      GUARDED_BY(mu_);

  mutable SegmentStoreStats stats_;
};

}  // namespace storage
}  // namespace vodak

#endif  // VODAK_STORAGE_SEGMENT_STORE_H_
