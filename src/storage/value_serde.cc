#include "storage/value_serde.h"

#include <cstring>
#include <utility>
#include <vector>

namespace vodak {
namespace storage {

namespace {

Status Truncated(const char* what) {
  return Status::Internal(std::string("segment decode: truncated ") + what);
}

}  // namespace

void EncodeU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void EncodeU64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

Result<uint32_t> DecodeU32(const uint8_t* data, size_t size, size_t* pos) {
  if (*pos + 4 > size) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[*pos + i]) << (8 * i);
  *pos += 4;
  return v;
}

Result<uint64_t> DecodeU64(const uint8_t* data, size_t size, size_t* pos) {
  if (*pos + 8 > size) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[*pos + i]) << (8 * i);
  *pos += 8;
  return v;
}

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case Value::Kind::kInt:
      EncodeU64(static_cast<uint64_t>(v.AsInt()), out);
      break;
    case Value::Kind::kReal: {
      double d = v.AsReal();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      EncodeU64(bits, out);
      break;
    }
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      EncodeU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      break;
    }
    case Value::Kind::kOid: {
      EncodeU32(v.AsOid().class_id, out);
      EncodeU32(v.AsOid().local, out);
      break;
    }
    case Value::Kind::kSet: {
      const ValueSet& elems = v.AsSet();
      EncodeU32(static_cast<uint32_t>(elems.size()), out);
      for (const Value& e : elems) EncodeValue(e, out);
      break;
    }
    case Value::Kind::kArray: {
      const ValueArray& elems = v.AsArray();
      EncodeU32(static_cast<uint32_t>(elems.size()), out);
      for (const Value& e : elems) EncodeValue(e, out);
      break;
    }
    case Value::Kind::kTuple: {
      const ValueTuple& fields = v.AsTuple();
      EncodeU32(static_cast<uint32_t>(fields.size()), out);
      for (const auto& [name, field] : fields) {
        EncodeU32(static_cast<uint32_t>(name.size()), out);
        out->append(name);
        EncodeValue(field, out);
      }
      break;
    }
    case Value::Kind::kDict: {
      const ValueDict& entries = v.AsDict();
      EncodeU32(static_cast<uint32_t>(entries.size()), out);
      for (const auto& [key, val] : entries) {
        EncodeValue(key, out);
        EncodeValue(val, out);
      }
      break;
    }
  }
}

Result<Value> DecodeValue(const uint8_t* data, size_t size, size_t* pos) {
  if (*pos >= size) return Truncated("tag");
  const uint8_t tag = data[(*pos)++];
  if (tag > static_cast<uint8_t>(Value::Kind::kDict)) {
    return Status::Internal("segment decode: unknown value tag " +
                            std::to_string(tag));
  }
  switch (static_cast<Value::Kind>(tag)) {
    case Value::Kind::kNull:
      return Value::Null();
    case Value::Kind::kBool: {
      if (*pos >= size) return Truncated("bool");
      return Value::Bool(data[(*pos)++] != 0);
    }
    case Value::Kind::kInt: {
      VODAK_ASSIGN_OR_RETURN(uint64_t bits, DecodeU64(data, size, pos));
      return Value::Int(static_cast<int64_t>(bits));
    }
    case Value::Kind::kReal: {
      VODAK_ASSIGN_OR_RETURN(uint64_t bits, DecodeU64(data, size, pos));
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case Value::Kind::kString: {
      VODAK_ASSIGN_OR_RETURN(uint32_t len, DecodeU32(data, size, pos));
      if (*pos + len > size) return Truncated("string");
      Value v = Value::String(
          std::string(reinterpret_cast<const char*>(data + *pos), len));
      *pos += len;
      return v;
    }
    case Value::Kind::kOid: {
      VODAK_ASSIGN_OR_RETURN(uint32_t class_id, DecodeU32(data, size, pos));
      VODAK_ASSIGN_OR_RETURN(uint32_t local, DecodeU32(data, size, pos));
      return Value::OfOid(Oid{class_id, local});
    }
    case Value::Kind::kSet: {
      VODAK_ASSIGN_OR_RETURN(uint32_t count, DecodeU32(data, size, pos));
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        VODAK_ASSIGN_OR_RETURN(Value e, DecodeValue(data, size, pos));
        elems.push_back(std::move(e));
      }
      // Written canonical (sorted + deduped), so rebuild without the
      // re-sort Value::Set would pay per set.
      return Value::SetCanonical(std::move(elems));
    }
    case Value::Kind::kArray: {
      VODAK_ASSIGN_OR_RETURN(uint32_t count, DecodeU32(data, size, pos));
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        VODAK_ASSIGN_OR_RETURN(Value e, DecodeValue(data, size, pos));
        elems.push_back(std::move(e));
      }
      return Value::Array(std::move(elems));
    }
    case Value::Kind::kTuple: {
      VODAK_ASSIGN_OR_RETURN(uint32_t count, DecodeU32(data, size, pos));
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        VODAK_ASSIGN_OR_RETURN(uint32_t len, DecodeU32(data, size, pos));
        if (*pos + len > size) return Truncated("tuple field name");
        std::string name(reinterpret_cast<const char*>(data + *pos), len);
        *pos += len;
        VODAK_ASSIGN_OR_RETURN(Value field, DecodeValue(data, size, pos));
        fields.emplace_back(std::move(name), std::move(field));
      }
      return Value::Tuple(std::move(fields));
    }
    case Value::Kind::kDict: {
      VODAK_ASSIGN_OR_RETURN(uint32_t count, DecodeU32(data, size, pos));
      std::vector<std::pair<Value, Value>> entries;
      entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        VODAK_ASSIGN_OR_RETURN(Value key, DecodeValue(data, size, pos));
        VODAK_ASSIGN_OR_RETURN(Value val, DecodeValue(data, size, pos));
        entries.emplace_back(std::move(key), std::move(val));
      }
      return Value::Dict(std::move(entries));
    }
  }
  return Status::Internal("segment decode: unreachable tag");
}

}  // namespace storage
}  // namespace vodak
