// Byte-level (de)serialization of runtime Values for the paged segment
// files (docs/ARCHITECTURE.md §"Paged storage & segment skipping"). The
// format is a recursive tag-byte encoding: one byte naming the
// Value::Kind, then a fixed- or length-prefixed payload. Containers
// serialize their canonical in-memory order (sets sorted/deduped,
// tuples field-sorted), so decoding rebuilds canonical values without
// re-sorting — sets come back through Value::SetCanonical.
#ifndef VODAK_STORAGE_VALUE_SERDE_H_
#define VODAK_STORAGE_VALUE_SERDE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "types/value.h"

namespace vodak {
namespace storage {

/// Appends the encoding of `v` to `out`.
void EncodeValue(const Value& v, std::string* out);

/// Decodes one value starting at `*pos` in data[0, size); advances
/// `*pos` past it. Errors on truncated or unknown-tag input (a
/// corrupted segment file surfaces as a Status, never UB).
Result<Value> DecodeValue(const uint8_t* data, size_t size, size_t* pos);

/// Fixed-width little-endian helpers shared with the segment headers.
void EncodeU32(uint32_t v, std::string* out);
void EncodeU64(uint64_t v, std::string* out);
Result<uint32_t> DecodeU32(const uint8_t* data, size_t size, size_t* pos);
Result<uint64_t> DecodeU64(const uint8_t* data, size_t size, size_t* pos);

}  // namespace storage
}  // namespace vodak

#endif  // VODAK_STORAGE_VALUE_SERDE_H_
