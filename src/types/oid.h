#ifndef VODAK_TYPES_OID_H_
#define VODAK_TYPES_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace vodak {

/// Typed object identifier, VML's primitive reference type. An Oid names an
/// instance within a class extent: `class_id` indexes the catalog, `local`
/// indexes the extent. The null Oid (0,0) plays the role of VML's NIL.
struct Oid {
  uint32_t class_id = 0;
  uint32_t local = 0;

  constexpr Oid() = default;
  constexpr Oid(uint32_t cls, uint32_t loc) : class_id(cls), local(loc) {}

  constexpr bool IsNull() const { return class_id == 0 && local == 0; }

  friend constexpr bool operator==(const Oid& a, const Oid& b) {
    return a.class_id == b.class_id && a.local == b.local;
  }
  friend constexpr bool operator!=(const Oid& a, const Oid& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Oid& a, const Oid& b) {
    return a.class_id != b.class_id ? a.class_id < b.class_id
                                    : a.local < b.local;
  }

  uint64_t Hash() const {
    return (static_cast<uint64_t>(class_id) << 32) | local;
  }

  std::string ToString() const {
    return "#" + std::to_string(class_id) + ":" + std::to_string(local);
  }
};

}  // namespace vodak

namespace std {
template <>
struct hash<vodak::Oid> {
  size_t operator()(const vodak::Oid& o) const {
    return static_cast<size_t>(o.Hash() * 0x9e3779b97f4a7c15ULL);
  }
};
}  // namespace std

#endif  // VODAK_TYPES_OID_H_
