#include "types/type.h"

#include <algorithm>

#include "common/logging.h"

namespace vodak {

TypeRef Type::Void() {
  static TypeRef t(new Type(TypeKind::kVoid));
  return t;
}
TypeRef Type::Any() {
  static TypeRef t(new Type(TypeKind::kAny));
  return t;
}
TypeRef Type::Bool() {
  static TypeRef t(new Type(TypeKind::kBool));
  return t;
}
TypeRef Type::Int() {
  static TypeRef t(new Type(TypeKind::kInt));
  return t;
}
TypeRef Type::Real() {
  static TypeRef t(new Type(TypeKind::kReal));
  return t;
}
TypeRef Type::String() {
  static TypeRef t(new Type(TypeKind::kString));
  return t;
}

TypeRef Type::OidOf(std::string class_name) {
  auto* t = new Type(TypeKind::kOid);
  t->class_name_ = std::move(class_name);
  return TypeRef(t);
}

TypeRef Type::SetOf(TypeRef element) {
  auto* t = new Type(TypeKind::kSet);
  t->element_ = std::move(element);
  return TypeRef(t);
}

TypeRef Type::ArrayOf(TypeRef element) {
  auto* t = new Type(TypeKind::kArray);
  t->element_ = std::move(element);
  return TypeRef(t);
}

TypeRef Type::DictOf(TypeRef key, TypeRef value) {
  auto* t = new Type(TypeKind::kDict);
  t->key_ = std::move(key);
  t->element_ = std::move(value);
  return TypeRef(t);
}

TypeRef Type::TupleOf(
    std::vector<std::pair<std::string, TypeRef>> fields) {
  auto* t = new Type(TypeKind::kTuple);
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  t->fields_ = std::move(fields);
  return TypeRef(t);
}

bool Type::Equals(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kOid:
      return class_name_ == other.class_name_;
    case TypeKind::kSet:
    case TypeKind::kArray:
      return element_->Equals(*other.element_);
    case TypeKind::kDict:
      return key_->Equals(*other.key_) && element_->Equals(*other.element_);
    case TypeKind::kTuple: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].first != other.fields_[i].first) return false;
        if (!fields_[i].second->Equals(*other.fields_[i].second))
          return false;
      }
      return true;
    }
    default:
      return true;
  }
}

bool Type::Accepts(const Type& other) const {
  if (kind_ == TypeKind::kAny || other.kind_ == TypeKind::kAny) return true;
  if (kind_ != other.kind_) {
    // INT is acceptable where REAL is expected.
    if (kind_ == TypeKind::kReal && other.kind_ == TypeKind::kInt)
      return true;
    return false;
  }
  switch (kind_) {
    case TypeKind::kOid:
      return class_name_.empty() || other.class_name_.empty() ||
             class_name_ == other.class_name_;
    case TypeKind::kSet:
    case TypeKind::kArray:
      return element_->Accepts(*other.element_);
    case TypeKind::kDict:
      return key_->Accepts(*other.key_) &&
             element_->Accepts(*other.element_);
    case TypeKind::kTuple: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].first != other.fields_[i].first) return false;
        if (!fields_[i].second->Accepts(*other.fields_[i].second))
          return false;
      }
      return true;
    }
    default:
      return true;
  }
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return "VOID";
    case TypeKind::kAny:
      return "ANY";
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt:
      return "INT";
    case TypeKind::kReal:
      return "REAL";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kOid:
      return class_name_.empty() ? "OID" : class_name_;
    case TypeKind::kSet:
      return "{" + element_->ToString() + "}";
    case TypeKind::kArray:
      return "ARRAY<" + element_->ToString() + ">";
    case TypeKind::kDict:
      return "DICTIONARY<" + key_->ToString() + "," +
             element_->ToString() + ">";
    case TypeKind::kTuple: {
      std::string out = "[";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ", ";
        out += fields_[i].first + ": " + fields_[i].second->ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

const TypeRef* Type::FindField(const std::string& name) const {
  VODAK_DCHECK(kind_ == TypeKind::kTuple);
  for (const auto& [fname, ftype] : fields_) {
    if (fname == name) return &ftype;
  }
  return nullptr;
}

}  // namespace vodak
