#ifndef VODAK_TYPES_TYPE_H_
#define VODAK_TYPES_TYPE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vodak {

/// The VML type constructors of §2.1: primitive built-in data types
/// (STRING, INT, REAL, BOOL and typed object identifiers) and the type
/// constructors TUPLE, SET, ARRAY and DICTIONARY.
enum class TypeKind {
  kVoid = 0,   ///< no value (method without result)
  kAny,        ///< top type, used where the binder cannot narrow
  kBool,
  kInt,
  kReal,
  kString,
  kOid,        ///< typed object identifier; `class_name` narrows it
  kTuple,
  kSet,
  kArray,
  kDict,
};

class Type;
using TypeRef = std::shared_ptr<const Type>;

/// Immutable type descriptor. Types are shared_ptr-interned by
/// construction helpers; equality is structural.
class Type {
 public:
  static TypeRef Void();
  static TypeRef Any();
  static TypeRef Bool();
  static TypeRef Int();
  static TypeRef Real();
  static TypeRef String();
  /// Object identifier of instances of `class_name`; empty name means
  /// "any class".
  static TypeRef OidOf(std::string class_name);
  static TypeRef SetOf(TypeRef element);
  static TypeRef ArrayOf(TypeRef element);
  static TypeRef DictOf(TypeRef key, TypeRef value);
  /// TUPLE [name: type, ...]; field order is not significant (the paper
  /// assumes unordered tuple components), fields are stored sorted.
  static TypeRef TupleOf(std::vector<std::pair<std::string, TypeRef>> fields);

  TypeKind kind() const { return kind_; }
  const std::string& class_name() const { return class_name_; }
  /// Element type for SET/ARRAY, value type for DICT.
  const TypeRef& element() const { return element_; }
  /// Key type for DICT.
  const TypeRef& key() const { return key_; }
  const std::vector<std::pair<std::string, TypeRef>>& fields() const {
    return fields_;
  }

  bool IsNumeric() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kReal;
  }
  bool IsSet() const { return kind_ == TypeKind::kSet; }
  bool IsOid() const { return kind_ == TypeKind::kOid; }

  /// Structural equality. kAny equals only kAny.
  bool Equals(const Type& other) const;
  /// `other` is acceptable where this type is expected (kAny accepts
  /// everything; untyped OID accepts any OID; otherwise structural).
  bool Accepts(const Type& other) const;

  /// VML-style rendering, e.g. "{Paragraph}" for SetOf(OidOf("Paragraph")).
  std::string ToString() const;

  /// Field lookup for tuple types; nullptr when absent.
  const TypeRef* FindField(const std::string& name) const;

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::string class_name_;
  TypeRef element_;
  TypeRef key_;
  std::vector<std::pair<std::string, TypeRef>> fields_;
};

}  // namespace vodak

#endif  // VODAK_TYPES_TYPE_H_
