#include "types/value.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace vodak {

Value Value::String(std::string s) {
  return Value(Repr(std::make_shared<const std::string>(std::move(s))));
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  elements.erase(std::unique(elements.begin(), elements.end(),
                             [](const Value& a, const Value& b) {
                               return Compare(a, b) == 0;
                             }),
                 elements.end());
  return Value(
      Repr(std::make_shared<const SetBox>(SetBox{std::move(elements)})));
}

Value Value::SetCanonical(std::vector<Value> elements) {
#ifndef NDEBUG
  for (size_t i = 1; i < elements.size(); ++i) {
    VODAK_DCHECK(Compare(elements[i - 1], elements[i]) < 0);
  }
#endif
  return Value(
      Repr(std::make_shared<const SetBox>(SetBox{std::move(elements)})));
}

Value Value::Array(std::vector<Value> elements) {
  return Value(
      Repr(std::make_shared<const ArrayBox>(ArrayBox{std::move(elements)})));
}

Value Value::Tuple(std::vector<std::pair<std::string, Value>> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Value(Repr(std::make_shared<const ValueTuple>(std::move(fields))));
}

Value Value::Dict(std::vector<std::pair<Value, Value>> entries) {
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return Compare(a.first, b.first) < 0;
  });
  return Value(Repr(std::make_shared<const ValueDict>(std::move(entries))));
}

bool Value::AsBool() const {
  VODAK_CHECK(is_bool()) << "not a BOOL: " << ToString();
  return std::get<bool>(repr_);
}

int64_t Value::AsInt() const {
  VODAK_CHECK(is_int()) << "not an INT: " << ToString();
  return std::get<int64_t>(repr_);
}

double Value::AsReal() const {
  VODAK_CHECK(is_real()) << "not a REAL: " << ToString();
  return std::get<double>(repr_);
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
  VODAK_CHECK(is_real()) << "not numeric: " << ToString();
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  VODAK_CHECK(is_string()) << "not a STRING: " << ToString();
  return *std::get<StringPtr>(repr_);
}

Oid Value::AsOid() const {
  VODAK_CHECK(is_oid()) << "not an OID: " << ToString();
  return std::get<Oid>(repr_);
}

const ValueSet& Value::AsSet() const {
  VODAK_CHECK(is_set()) << "not a SET: " << ToString();
  return std::get<SetPtr>(repr_)->elems;
}

const ValueArray& Value::AsArray() const {
  VODAK_CHECK(is_array()) << "not an ARRAY: " << ToString();
  return std::get<ArrayPtr>(repr_)->elems;
}

const ValueTuple& Value::AsTuple() const {
  VODAK_CHECK(is_tuple()) << "not a TUPLE: " << ToString();
  return *std::get<TuplePtr>(repr_);
}

const ValueDict& Value::AsDict() const {
  VODAK_CHECK(is_dict()) << "not a DICTIONARY: " << ToString();
  return *std::get<DictPtr>(repr_);
}

Result<Value> Value::GetField(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError("field access '" + name +
                             "' on non-tuple value " + ToString());
  }
  for (const auto& [fname, fval] : AsTuple()) {
    if (fname == name) return fval;
  }
  return Status::NotFound("tuple has no field '" + name + "'");
}

Result<Value> Value::GetKey(const Value& key) const {
  if (!is_dict()) {
    return Status::TypeError("key lookup on non-dictionary value " +
                             ToString());
  }
  const ValueDict& d = AsDict();
  auto it = std::lower_bound(
      d.begin(), d.end(), key,
      [](const auto& entry, const Value& k) {
        return Compare(entry.first, k) < 0;
      });
  if (it != d.end() && Compare(it->first, key) == 0) return it->second;
  return Status::NotFound("dictionary has no key " + key.ToString());
}

bool Value::Contains(const Value& element) const {
  if (is_set()) {
    const ValueSet& s = AsSet();
    return std::binary_search(
        s.begin(), s.end(), element,
        [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  }
  if (is_array()) {
    const ValueArray& a = AsArray();
    for (const Value& v : a) {
      if (Compare(v, element) == 0) return true;
    }
    return false;
  }
  return false;
}

namespace {
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

template <typename Seq, typename Cmp>
int CompareSeq(const Seq& a, const Seq& b, Cmp cmp) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = cmp(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  // INT and REAL compare numerically against each other.
  if (a.is_numeric() && b.is_numeric() && a.kind() != b.kind()) {
    return Sign(a.AsNumeric() - b.AsNumeric());
  }
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return static_cast<int>(a.AsBool()) - static_cast<int>(b.AsBool());
    case Kind::kInt: {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Kind::kReal:
      return Sign(a.AsReal() - b.AsReal());
    case Kind::kString:
      return a.AsString().compare(b.AsString());
    case Kind::kOid: {
      Oid x = a.AsOid(), y = b.AsOid();
      return x < y ? -1 : (y < x ? 1 : 0);
    }
    case Kind::kSet:
      return CompareSeq(a.AsSet(), b.AsSet(), &Value::Compare);
    case Kind::kArray:
      return CompareSeq(a.AsArray(), b.AsArray(), &Value::Compare);
    case Kind::kTuple:
      return CompareSeq(a.AsTuple(), b.AsTuple(),
                        [](const auto& x, const auto& y) {
                          int c = x.first.compare(y.first);
                          if (c != 0) return c < 0 ? -1 : 1;
                          return Compare(x.second, y.second);
                        });
    case Kind::kDict:
      return CompareSeq(a.AsDict(), b.AsDict(),
                        [](const auto& x, const auto& y) {
                          int c = Compare(x.first, y.first);
                          if (c != 0) return c;
                          return Compare(x.second, y.second);
                        });
  }
  return 0;
}

uint64_t Value::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind()) * 0x2545f4914f6cdd1dULL;
  switch (kind()) {
    case Kind::kNull:
      return h;
    case Kind::kBool:
      return HashCombine(h, AsBool() ? 1 : 0);
    case Kind::kInt: {
      // INT hashes like the numerically-equal REAL so that 1 == 1.0 also
      // implies equal hashes.
      double d = AsNumeric();
      return HashCombine(0xabcddcbaULL, HashBytes(&d, sizeof(d)));
    }
    case Kind::kReal: {
      double d = AsReal();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return HashCombine(0xabcddcbaULL, HashBytes(&d, sizeof(d)));
      }
      return HashCombine(0xabcddcbaULL, HashBytes(&d, sizeof(d)));
    }
    case Kind::kString:
      return HashCombine(h, HashBytes(AsString().data(), AsString().size()));
    case Kind::kOid:
      return HashCombine(h, AsOid().Hash());
    case Kind::kSet: {
      for (const Value& v : AsSet()) h = HashCombine(h, v.Hash());
      return h;
    }
    case Kind::kArray: {
      for (const Value& v : AsArray()) h = HashCombine(h, v.Hash());
      return h;
    }
    case Kind::kTuple: {
      for (const auto& [n, v] : AsTuple()) {
        h = HashCombine(h, HashBytes(n.data(), n.size()));
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
    case Kind::kDict: {
      for (const auto& [k, v] : AsDict()) {
        h = HashCombine(h, k.Hash());
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "NIL";
    case Kind::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kReal: {
      std::string s = std::to_string(AsReal());
      return s;
    }
    case Kind::kString:
      return "'" + AsString() + "'";
    case Kind::kOid:
      return AsOid().ToString();
    case Kind::kSet: {
      std::string out = "{";
      const ValueSet& s = AsSet();
      for (size_t i = 0; i < s.size(); ++i) {
        if (i) out += ", ";
        out += s[i].ToString();
      }
      return out + "}";
    }
    case Kind::kArray: {
      std::string out = "<";
      const ValueArray& a = AsArray();
      for (size_t i = 0; i < a.size(); ++i) {
        if (i) out += ", ";
        out += a[i].ToString();
      }
      return out + ">";
    }
    case Kind::kTuple: {
      std::string out = "[";
      const ValueTuple& t = AsTuple();
      for (size_t i = 0; i < t.size(); ++i) {
        if (i) out += ", ";
        out += t[i].first + ": " + t[i].second.ToString();
      }
      return out + "]";
    }
    case Kind::kDict: {
      std::string out = "DICT(";
      const ValueDict& d = AsDict();
      for (size_t i = 0; i < d.size(); ++i) {
        if (i) out += ", ";
        out += d[i].first.ToString() + " -> " + d[i].second.ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

TypeRef Value::RuntimeType() const {
  switch (kind()) {
    case Kind::kNull:
      return Type::Any();
    case Kind::kBool:
      return Type::Bool();
    case Kind::kInt:
      return Type::Int();
    case Kind::kReal:
      return Type::Real();
    case Kind::kString:
      return Type::String();
    case Kind::kOid:
      return Type::OidOf("");
    case Kind::kSet:
      return Type::SetOf(AsSet().empty() ? Type::Any()
                                         : AsSet()[0].RuntimeType());
    case Kind::kArray:
      return Type::ArrayOf(AsArray().empty() ? Type::Any()
                                             : AsArray()[0].RuntimeType());
    case Kind::kTuple: {
      std::vector<std::pair<std::string, TypeRef>> fields;
      for (const auto& [n, v] : AsTuple()) {
        fields.emplace_back(n, v.RuntimeType());
      }
      return Type::TupleOf(std::move(fields));
    }
    case Kind::kDict: {
      if (AsDict().empty()) return Type::DictOf(Type::Any(), Type::Any());
      return Type::DictOf(AsDict()[0].first.RuntimeType(),
                          AsDict()[0].second.RuntimeType());
    }
  }
  return Type::Any();
}

Value MakeOidSet(const std::vector<Oid>& oids) {
  std::vector<Value> vals;
  vals.reserve(oids.size());
  for (Oid o : oids) vals.push_back(Value::OfOid(o));
  return Value::Set(std::move(vals));
}

Value SetUnion(const Value& a, const Value& b) {
  std::vector<Value> out;
  const ValueSet& x = a.AsSet();
  const ValueSet& y = b.AsSet();
  out.reserve(x.size() + y.size());
  std::set_union(x.begin(), x.end(), y.begin(), y.end(),
                 std::back_inserter(out),
                 [](const Value& p, const Value& q) {
                   return Value::Compare(p, q) < 0;
                 });
  return Value::SetCanonical(std::move(out));
}

Value SetIntersect(const Value& a, const Value& b) {
  std::vector<Value> out;
  const ValueSet& x = a.AsSet();
  const ValueSet& y = b.AsSet();
  std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                        std::back_inserter(out),
                        [](const Value& p, const Value& q) {
                          return Value::Compare(p, q) < 0;
                        });
  return Value::SetCanonical(std::move(out));
}

Value SetDifference(const Value& a, const Value& b) {
  std::vector<Value> out;
  const ValueSet& x = a.AsSet();
  const ValueSet& y = b.AsSet();
  std::set_difference(x.begin(), x.end(), y.begin(), y.end(),
                      std::back_inserter(out),
                      [](const Value& p, const Value& q) {
                        return Value::Compare(p, q) < 0;
                      });
  return Value::SetCanonical(std::move(out));
}

bool SetIsSubset(const Value& a, const Value& b) {
  const ValueSet& x = a.AsSet();
  const ValueSet& y = b.AsSet();
  return std::includes(y.begin(), y.end(), x.begin(), x.end(),
                       [](const Value& p, const Value& q) {
                         return Value::Compare(p, q) < 0;
                       });
}

}  // namespace vodak
