#ifndef VODAK_TYPES_VALUE_H_
#define VODAK_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/oid.h"
#include "types/type.h"

namespace vodak {

class Value;

/// Canonical set representation: elements sorted by Value::Compare and
/// deduplicated. Canonical form makes set equality, hashing and the
/// algebra's set semantics structural.
using ValueSet = std::vector<Value>;
/// Ordered sequence (ARRAY constructor).
using ValueArray = std::vector<Value>;
/// Tuple fields sorted by name (the paper treats tuple components as
/// unordered; sorting gives a canonical form).
using ValueTuple = std::vector<std::pair<std::string, Value>>;
/// Dictionary entries sorted by key.
using ValueDict = std::vector<std::pair<Value, Value>>;

/// Immutable runtime value covering every VML domain: NULL, BOOL, INT,
/// REAL, STRING, OID and the TUPLE/SET/ARRAY/DICTIONARY constructors.
/// Container payloads are shared_ptr-held so copies are cheap; a total
/// order (Compare) and a hash make values usable as set elements, join
/// keys and dictionary keys uniformly.
class Value {
 public:
  enum class Kind {
    kNull = 0,
    kBool,
    kInt,
    kReal,
    kString,
    kOid,
    kSet,
    kArray,
    kTuple,
    kDict,
  };

  /// NULL value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value String(std::string s);
  static Value OfOid(Oid oid) { return Value(Repr(oid)); }
  /// Builds a canonical set: sorts and dedups `elements`.
  static Value Set(std::vector<Value> elements);
  /// Set that is already sorted and unique (checked in debug builds).
  static Value SetCanonical(std::vector<Value> elements);
  static Value Array(std::vector<Value> elements);
  static Value Tuple(std::vector<std::pair<std::string, Value>> fields);
  static Value Dict(std::vector<std::pair<Value, Value>> entries);

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_real() const { return kind() == Kind::kReal; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_oid() const { return kind() == Kind::kOid; }
  bool is_set() const { return kind() == Kind::kSet; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_tuple() const { return kind() == Kind::kTuple; }
  bool is_dict() const { return kind() == Kind::kDict; }
  bool is_numeric() const { return is_int() || is_real(); }

  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  /// Numeric value widened to double (INT or REAL).
  double AsNumeric() const;
  const std::string& AsString() const;
  Oid AsOid() const;
  const ValueSet& AsSet() const;
  const ValueArray& AsArray() const;
  const ValueTuple& AsTuple() const;
  const ValueDict& AsDict() const;

  /// Tuple field access; error if not a tuple or field missing.
  Result<Value> GetField(const std::string& name) const;
  /// Dictionary lookup; error when the key is absent.
  Result<Value> GetKey(const Value& key) const;

  /// Membership test for sets (binary search) and arrays (linear).
  bool Contains(const Value& element) const;

  /// Total order over all values: kinds are ordered first (by Kind enum),
  /// then payloads; INT and REAL compare numerically against each other so
  /// that 1 == 1.0 in predicates.
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  uint64_t Hash() const;

  /// Literal-like rendering: strings quoted, sets braced, tuples
  /// bracketed, e.g. `[a: 1, b: {#2:1, #2:4}]`.
  std::string ToString() const;

  /// Runtime type of this value (element types inferred from the first
  /// element; empty containers get ANY element type).
  TypeRef RuntimeType() const;

 private:
  // Distinct box types keep the variant alternatives unique even though
  // ValueSet and ValueArray share the same underlying container.
  struct SetBox {
    ValueSet elems;
  };
  struct ArrayBox {
    ValueArray elems;
  };

  using StringPtr = std::shared_ptr<const std::string>;
  using SetPtr = std::shared_ptr<const SetBox>;
  using ArrayPtr = std::shared_ptr<const ArrayBox>;
  using TuplePtr = std::shared_ptr<const ValueTuple>;
  using DictPtr = std::shared_ptr<const ValueDict>;

  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            StringPtr, Oid, SetPtr, ArrayPtr, TuplePtr,
                            DictPtr>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// Convenience: set of OIDs from a vector.
Value MakeOidSet(const std::vector<Oid>& oids);

/// Set union / intersection / difference on canonical sets.
Value SetUnion(const Value& a, const Value& b);
Value SetIntersect(const Value& a, const Value& b);
Value SetDifference(const Value& a, const Value& b);
/// True when every element of `a` is in `b` (IS-SUBSET).
bool SetIsSubset(const Value& a, const Value& b);

}  // namespace vodak

namespace std {
template <>
struct hash<vodak::Value> {
  size_t operator()(const vodak::Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
}  // namespace std

#endif  // VODAK_TYPES_VALUE_H_
