#include "vql/ast.h"

namespace vodak {
namespace vql {

std::string Query::ToString() const {
  std::string out = "ACCESS " + access->ToString() + "\nFROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) out += ", ";
    out += from[i].var + " IN " + from[i].domain->ToString();
  }
  if (where != nullptr) {
    out += "\nWHERE " + where->ToString();
  }
  return out;
}

std::string BoundQuery::ToString() const {
  std::string out = "ACCESS " + access->ToString() + "\nFROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) out += ", ";
    out += from[i].var + " IN ";
    if (from[i].kind == RangeKind::kExtent) {
      out += from[i].class_name;
    } else {
      out += from[i].domain->ToString();
    }
  }
  if (where != nullptr) {
    out += "\nWHERE " + where->ToString();
  }
  return out;
}

std::string WriteStatement::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kInsert:
      out = "INSERT INTO " + class_name;
      break;
    case Kind::kUpdate:
      out = "UPDATE " + class_name;
      break;
    case Kind::kDelete:
      out = "DELETE FROM " + class_name;
      break;
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    out += i ? ", " : " SET ";
    out += sets[i].first + " = " + sets[i].second->ToString();
  }
  if (where != nullptr) {
    out += " WHERE " + where->ToString();
  }
  return out;
}

}  // namespace vql
}  // namespace vodak
