#ifndef VODAK_VQL_AST_H_
#define VODAK_VQL_AST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "types/type.h"

namespace vodak {
namespace vql {

/// One FROM-clause range `var IN domain` (§2.2). The domain is either a
/// class name (parsed as a variable, classified by the binder) or an
/// arbitrary set-valued expression over earlier variables — Example 2's
/// `p IN d→paragraphs()` makes p *dependent* on d.
struct RangeDecl {
  std::string var;
  ExprRef domain;
};

/// Parsed `ACCESS expr FROM ranges WHERE cond` query. `where` may be null
/// (no WHERE clause). VQL uses the keyword ACCESS instead of SELECT
/// because method calls could in principle update state; as in the paper
/// we restrict optimization to side-effect-free queries.
struct Query {
  ExprRef access;
  std::vector<RangeDecl> from;
  ExprRef where;  // nullptr when absent

  std::string ToString() const;
};

/// Range classification produced by the binder.
enum class RangeKind {
  kExtent,     ///< domain is a class extent (`p IN Paragraph`)
  kDependent,  ///< domain is an expression over earlier variables
};

struct BoundRange {
  std::string var;
  RangeKind kind = RangeKind::kExtent;
  /// Class whose extent is ranged over (kExtent), or the element class
  /// when the binder can narrow a dependent domain; may be empty.
  std::string class_name;
  /// Domain expression (kDependent only).
  ExprRef domain;
  /// Element type of the range variable.
  TypeRef var_type;
};

/// Binder output: ranges classified and typed, expressions checked
/// against the catalog.
struct BoundQuery {
  ExprRef access;
  std::vector<BoundRange> from;
  ExprRef where;  // nullptr when absent
  TypeRef access_type;

  std::string ToString() const;
};

/// Parsed write statement — the mutation path's surface syntax:
///
///   INSERT INTO Class SET prop = expr, ...
///   UPDATE Class SET prop = expr, ... [WHERE pred]
///   DELETE FROM Class [WHERE pred]
///
/// UPDATE set expressions and UPDATE/DELETE predicates see the implicit
/// range variable `self`, bound to each candidate object in turn;
/// INSERT set expressions are closed (no object exists yet).
struct WriteStatement {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  std::string class_name;
  /// SET list in declaration order (empty for DELETE).
  std::vector<std::pair<std::string, ExprRef>> sets;
  ExprRef where;  // nullptr when absent; never set for INSERT

  std::string ToString() const;
};

/// Binder output for a write statement: the class resolved, property
/// names mapped to storage slots, set expressions and predicate
/// type-checked (under `self : Oid<Class>` for UPDATE / DELETE).
struct BoundWrite {
  WriteStatement::Kind kind = WriteStatement::Kind::kInsert;
  std::string class_name;
  uint32_t class_id = 0;
  /// slot -> bound value expression, SET-list order.
  std::vector<std::pair<uint32_t, ExprRef>> sets;
  ExprRef where;  // nullptr when absent
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_AST_H_
