#ifndef VODAK_VQL_AST_H_
#define VODAK_VQL_AST_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/type.h"

namespace vodak {
namespace vql {

/// One FROM-clause range `var IN domain` (§2.2). The domain is either a
/// class name (parsed as a variable, classified by the binder) or an
/// arbitrary set-valued expression over earlier variables — Example 2's
/// `p IN d→paragraphs()` makes p *dependent* on d.
struct RangeDecl {
  std::string var;
  ExprRef domain;
};

/// Parsed `ACCESS expr FROM ranges WHERE cond` query. `where` may be null
/// (no WHERE clause). VQL uses the keyword ACCESS instead of SELECT
/// because method calls could in principle update state; as in the paper
/// we restrict optimization to side-effect-free queries.
struct Query {
  ExprRef access;
  std::vector<RangeDecl> from;
  ExprRef where;  // nullptr when absent

  std::string ToString() const;
};

/// Range classification produced by the binder.
enum class RangeKind {
  kExtent,     ///< domain is a class extent (`p IN Paragraph`)
  kDependent,  ///< domain is an expression over earlier variables
};

struct BoundRange {
  std::string var;
  RangeKind kind = RangeKind::kExtent;
  /// Class whose extent is ranged over (kExtent), or the element class
  /// when the binder can narrow a dependent domain; may be empty.
  std::string class_name;
  /// Domain expression (kDependent only).
  ExprRef domain;
  /// Element type of the range variable.
  TypeRef var_type;
};

/// Binder output: ranges classified and typed, expressions checked
/// against the catalog.
struct BoundQuery {
  ExprRef access;
  std::vector<BoundRange> from;
  ExprRef where;  // nullptr when absent
  TypeRef access_type;

  std::string ToString() const;
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_AST_H_
