#include "vql/binder.h"

namespace vodak {
namespace vql {

Result<TypeRef> Binder::CheckMethodSig(
    const ClassDef& cls, const MethodSig& sig,
    const std::vector<TypeRef>& arg_types,
    const std::string& context) const {
  if (sig.params.size() != arg_types.size()) {
    return Status::TypeError(
        context + ": method '" + sig.name + "' of class '" + cls.name() +
        "' expects " + std::to_string(sig.params.size()) +
        " argument(s), got " + std::to_string(arg_types.size()));
  }
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (!sig.params[i].second->Accepts(*arg_types[i])) {
      return Status::TypeError(
          context + ": argument " + std::to_string(i + 1) + " of '" +
          sig.name + "' expects " + sig.params[i].second->ToString() +
          ", got " + arg_types[i]->ToString());
    }
  }
  return sig.return_type;
}

Result<TypeRef> Binder::InferLifted(
    const TypeRef& base, const std::string& name, bool is_method,
    const std::vector<ExprRef>& /*bound_args*/,
    const std::vector<TypeRef>& arg_types) const {
  // Access through an object reference.
  if (base->kind() == TypeKind::kOid) {
    if (base->class_name().empty()) return Type::Any();
    const ClassDef* cls = catalog_->FindClass(base->class_name());
    if (cls == nullptr) {
      return Status::BindError("unknown class '" + base->class_name() +
                               "'");
    }
    if (is_method) {
      const MethodSig* sig =
          cls->FindMethod(name, MethodLevel::kInstance);
      if (sig == nullptr) {
        return Status::BindError("class '" + cls->name() +
                                 "' has no instance method '" + name +
                                 "'");
      }
      return CheckMethodSig(*cls, *sig, arg_types, "call");
    }
    const PropertyDef* prop = cls->FindProperty(name);
    if (prop == nullptr) {
      return Status::BindError("class '" + cls->name() +
                               "' has no property '" + name + "'");
    }
    return prop->type;
  }
  // Tuple field access.
  if (!is_method && base->kind() == TypeKind::kTuple) {
    const TypeRef* field = base->FindField(name);
    if (field == nullptr) {
      return Status::BindError("tuple type " + base->ToString() +
                               " has no field '" + name + "'");
    }
    return *field;
  }
  // Set-lifted access (§2.3: D.sections): result is the union, so a set.
  if (base->kind() == TypeKind::kSet) {
    VODAK_ASSIGN_OR_RETURN(
        TypeRef member,
        InferLifted(base->element(), name, is_method, {}, arg_types));
    if (member->kind() == TypeKind::kSet) return member;
    if (member->kind() == TypeKind::kAny) return Type::SetOf(Type::Any());
    return Type::SetOf(member);
  }
  if (base->kind() == TypeKind::kAny) return Type::Any();
  return Status::TypeError(std::string(is_method ? "method" : "property") +
                           " '" + name + "' applied to value of type " +
                           base->ToString());
}

Result<ExprRef> Binder::BindExpr(
    const ExprRef& expr, const std::map<std::string, TypeRef>& scope,
    TypeRef* out_type) const {
  switch (expr->kind()) {
    case ExprKind::kConst:
      *out_type = expr->value().RuntimeType();
      return expr;
    case ExprKind::kVar: {
      auto it = scope.find(expr->var_name());
      if (it != scope.end()) {
        *out_type = it->second;
        return expr;
      }
      return Status::BindError("unbound variable '" + expr->var_name() +
                               "'");
    }
    case ExprKind::kProperty: {
      TypeRef base_type;
      VODAK_ASSIGN_OR_RETURN(ExprRef base,
                             BindExpr(expr->base(), scope, &base_type));
      VODAK_ASSIGN_OR_RETURN(
          TypeRef t, InferLifted(base_type, expr->name(), false, {}, {}));
      *out_type = t;
      return Expr::Property(std::move(base), expr->name());
    }
    case ExprKind::kMethodCall: {
      // Reclassify `ClassName→m(...)`: the receiver is a variable whose
      // name is a class and which is not shadowed by a range variable.
      std::vector<ExprRef> bound_args;
      std::vector<TypeRef> arg_types;
      for (const auto& arg : expr->args()) {
        TypeRef at;
        VODAK_ASSIGN_OR_RETURN(ExprRef ba, BindExpr(arg, scope, &at));
        bound_args.push_back(std::move(ba));
        arg_types.push_back(std::move(at));
      }
      if (expr->base()->kind() == ExprKind::kVar &&
          scope.count(expr->base()->var_name()) == 0) {
        const std::string& cls_name = expr->base()->var_name();
        const ClassDef* cls = catalog_->FindClass(cls_name);
        if (cls == nullptr) {
          return Status::BindError("unbound variable '" + cls_name + "'");
        }
        const MethodSig* sig =
            cls->FindMethod(expr->method(), MethodLevel::kClassObject);
        if (sig == nullptr) {
          return Status::BindError("class object '" + cls_name +
                                   "' has no method '" + expr->method() +
                                   "'");
        }
        VODAK_ASSIGN_OR_RETURN(
            TypeRef ret, CheckMethodSig(*cls, *sig, arg_types, "call"));
        *out_type = ret;
        return Expr::ClassMethodCall(cls_name, expr->method(),
                                     std::move(bound_args));
      }
      TypeRef base_type;
      VODAK_ASSIGN_OR_RETURN(ExprRef base,
                             BindExpr(expr->base(), scope, &base_type));
      VODAK_ASSIGN_OR_RETURN(
          TypeRef t, InferLifted(base_type, expr->method(), true,
                                 bound_args, arg_types));
      *out_type = t;
      return Expr::MethodCall(std::move(base), expr->method(),
                              std::move(bound_args));
    }
    case ExprKind::kClassMethodCall: {
      const ClassDef* cls = catalog_->FindClass(expr->name());
      if (cls == nullptr) {
        return Status::BindError("unknown class '" + expr->name() + "'");
      }
      const MethodSig* sig =
          cls->FindMethod(expr->method(), MethodLevel::kClassObject);
      if (sig == nullptr) {
        return Status::BindError("class object '" + expr->name() +
                                 "' has no method '" + expr->method() +
                                 "'");
      }
      std::vector<ExprRef> bound_args;
      std::vector<TypeRef> arg_types;
      for (const auto& arg : expr->args()) {
        TypeRef at;
        VODAK_ASSIGN_OR_RETURN(ExprRef ba, BindExpr(arg, scope, &at));
        bound_args.push_back(std::move(ba));
        arg_types.push_back(std::move(at));
      }
      VODAK_ASSIGN_OR_RETURN(
          TypeRef ret, CheckMethodSig(*cls, *sig, arg_types, "call"));
      *out_type = ret;
      return Expr::ClassMethodCall(expr->name(), expr->method(),
                                   std::move(bound_args));
    }
    case ExprKind::kBinary: {
      TypeRef lt, rt;
      VODAK_ASSIGN_OR_RETURN(ExprRef lhs, BindExpr(expr->lhs(), scope, &lt));
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, BindExpr(expr->rhs(), scope, &rt));
      BinOp op = expr->bin_op();
      switch (op) {
        case BinOp::kAnd:
        case BinOp::kOr:
          if (!Type::Bool()->Accepts(*lt) || !Type::Bool()->Accepts(*rt)) {
            return Status::TypeError(std::string(BinOpName(op)) +
                                     " requires boolean operands");
          }
          *out_type = Type::Bool();
          break;
        case BinOp::kIsIn: {
          if (rt->kind() != TypeKind::kSet &&
              rt->kind() != TypeKind::kArray &&
              rt->kind() != TypeKind::kAny) {
            return Status::TypeError("IS-IN right operand must be a set, "
                                     "got " + rt->ToString());
          }
          *out_type = Type::Bool();
          break;
        }
        case BinOp::kIsSubset:
          if ((rt->kind() != TypeKind::kSet &&
               rt->kind() != TypeKind::kAny) ||
              (lt->kind() != TypeKind::kSet &&
               lt->kind() != TypeKind::kAny)) {
            return Status::TypeError("IS-SUBSET requires set operands");
          }
          *out_type = Type::Bool();
          break;
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
          *out_type = Type::Bool();
          break;
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          if (!(lt->IsNumeric() || lt->kind() == TypeKind::kAny) ||
              !(rt->IsNumeric() || rt->kind() == TypeKind::kAny)) {
            return Status::TypeError(std::string(BinOpName(op)) +
                                     " requires numeric operands");
          }
          *out_type = (lt->kind() == TypeKind::kInt &&
                       rt->kind() == TypeKind::kInt)
                          ? Type::Int()
                          : Type::Real();
          break;
        }
        case BinOp::kUnion:
        case BinOp::kIntersect:
        case BinOp::kDiff: {
          if ((lt->kind() != TypeKind::kSet &&
               lt->kind() != TypeKind::kAny) ||
              (rt->kind() != TypeKind::kSet &&
               rt->kind() != TypeKind::kAny)) {
            return Status::TypeError(std::string(BinOpName(op)) +
                                     " requires set operands");
          }
          *out_type = lt->kind() == TypeKind::kSet ? lt : rt;
          break;
        }
      }
      return Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    case ExprKind::kUnary: {
      TypeRef t;
      VODAK_ASSIGN_OR_RETURN(ExprRef inner,
                             BindExpr(expr->operand(), scope, &t));
      if (expr->un_op() == UnOp::kNot) {
        if (!Type::Bool()->Accepts(*t)) {
          return Status::TypeError("NOT requires a boolean operand");
        }
        *out_type = Type::Bool();
      } else {
        if (!(t->IsNumeric() || t->kind() == TypeKind::kAny)) {
          return Status::TypeError("negation requires a numeric operand");
        }
        *out_type = t;
      }
      return Expr::Unary(expr->un_op(), std::move(inner));
    }
    case ExprKind::kTupleCtor: {
      std::vector<std::pair<std::string, ExprRef>> fields;
      std::vector<std::pair<std::string, TypeRef>> field_types;
      for (const auto& [name, fe] : expr->fields()) {
        TypeRef ft;
        VODAK_ASSIGN_OR_RETURN(ExprRef bf, BindExpr(fe, scope, &ft));
        fields.emplace_back(name, std::move(bf));
        field_types.emplace_back(name, std::move(ft));
      }
      *out_type = Type::TupleOf(std::move(field_types));
      return Expr::TupleCtor(std::move(fields));
    }
    case ExprKind::kSetCtor: {
      std::vector<ExprRef> elems;
      TypeRef elem_type = Type::Any();
      for (const auto& el : expr->args()) {
        TypeRef et;
        VODAK_ASSIGN_OR_RETURN(ExprRef be, BindExpr(el, scope, &et));
        elems.push_back(std::move(be));
        if (elem_type->kind() == TypeKind::kAny) elem_type = et;
      }
      *out_type = Type::SetOf(elem_type);
      return Expr::SetCtor(std::move(elems));
    }
  }
  return Status::Internal("unreachable expression kind in binder");
}

Result<BoundQuery> Binder::Bind(
    const Query& query,
    const std::map<std::string, TypeRef>& extra_scope) const {
  BoundQuery bound;
  std::map<std::string, TypeRef> scope = extra_scope;
  for (const auto& range : query.from) {
    if (scope.count(range.var) > 0) {
      return Status::BindError("duplicate range variable '" + range.var +
                               "'");
    }
    BoundRange br;
    br.var = range.var;
    // A bare identifier naming a class is an extent range.
    if (range.domain->kind() == ExprKind::kVar &&
        scope.count(range.domain->var_name()) == 0 &&
        catalog_->FindClass(range.domain->var_name()) != nullptr) {
      br.kind = RangeKind::kExtent;
      br.class_name = range.domain->var_name();
      br.var_type = Type::OidOf(br.class_name);
    } else {
      br.kind = RangeKind::kDependent;
      TypeRef domain_type;
      VODAK_ASSIGN_OR_RETURN(br.domain,
                             BindExpr(range.domain, scope, &domain_type));
      if (domain_type->kind() != TypeKind::kSet &&
          domain_type->kind() != TypeKind::kAny) {
        return Status::TypeError("range domain of '" + range.var +
                                 "' must be a set, got " +
                                 domain_type->ToString());
      }
      br.var_type = domain_type->kind() == TypeKind::kSet
                        ? domain_type->element()
                        : Type::Any();
      if (br.var_type->kind() == TypeKind::kOid) {
        br.class_name = br.var_type->class_name();
      }
    }
    scope[br.var] = br.var_type;
    bound.from.push_back(std::move(br));
  }
  if (query.where != nullptr) {
    TypeRef where_type;
    VODAK_ASSIGN_OR_RETURN(bound.where,
                           BindExpr(query.where, scope, &where_type));
    if (!Type::Bool()->Accepts(*where_type)) {
      return Status::TypeError("WHERE condition must be boolean, got " +
                               where_type->ToString());
    }
  }
  VODAK_ASSIGN_OR_RETURN(bound.access,
                         BindExpr(query.access, scope, &bound.access_type));
  return bound;
}

Result<BoundWrite> Binder::BindWrite(const WriteStatement& stmt) const {
  const ClassDef* cls = catalog_->FindClass(stmt.class_name);
  if (cls == nullptr) {
    return Status::BindError("unknown class '" + stmt.class_name + "'");
  }
  BoundWrite bound;
  bound.kind = stmt.kind;
  bound.class_name = stmt.class_name;
  bound.class_id = cls->class_id();
  // INSERT has no target object yet; UPDATE/DELETE expressions see the
  // candidate object as `self`.
  std::map<std::string, TypeRef> scope;
  if (stmt.kind != WriteStatement::Kind::kInsert) {
    scope["self"] = Type::OidOf(stmt.class_name);
  }
  std::vector<bool> seen(cls->properties().size(), false);
  for (const auto& [prop_name, value_expr] : stmt.sets) {
    const PropertyDef* prop = cls->FindProperty(prop_name);
    if (prop == nullptr) {
      return Status::BindError("class '" + stmt.class_name +
                               "' has no property '" + prop_name + "'");
    }
    if (seen[prop->slot]) {
      return Status::BindError("property '" + prop_name +
                               "' set twice in one statement");
    }
    seen[prop->slot] = true;
    TypeRef value_type;
    VODAK_ASSIGN_OR_RETURN(ExprRef bound_value,
                           BindExpr(value_expr, scope, &value_type));
    if (!prop->type->Accepts(*value_type)) {
      return Status::TypeError("SET " + prop_name + ": expected " +
                               prop->type->ToString() + ", got " +
                               value_type->ToString());
    }
    bound.sets.emplace_back(prop->slot, std::move(bound_value));
  }
  if (stmt.where != nullptr) {
    TypeRef where_type;
    VODAK_ASSIGN_OR_RETURN(bound.where,
                           BindExpr(stmt.where, scope, &where_type));
    if (!Type::Bool()->Accepts(*where_type)) {
      return Status::TypeError("WHERE condition must be boolean, got " +
                               where_type->ToString());
    }
  }
  return bound;
}

}  // namespace vql
}  // namespace vodak
