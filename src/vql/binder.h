#ifndef VODAK_VQL_BINDER_H_
#define VODAK_VQL_BINDER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "schema/catalog.h"
#include "vql/ast.h"

namespace vodak {
namespace vql {

/// Name resolution and type checking against the schema catalog.
///
/// The binder
///  - classifies FROM ranges as class extents or dependent domains,
///  - reclassifies `ClassName→m(...)` parses (method call on a variable
///    named like a class) into class-object method calls,
///  - infers a type for every expression, validating property and method
///    references and argument arity/types against the catalog.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// `extra_scope` pre-binds free variables (used by the knowledge
  /// front end to bind equivalence parameters like the `s` of E2/E5).
  Result<BoundQuery> Bind(
      const Query& query,
      const std::map<std::string, TypeRef>& extra_scope = {}) const;

  /// Binds a standalone expression in a given variable scope. On success
  /// `*out_type` carries the inferred type. Used by the knowledge-
  /// specification front end (§4.2) to validate equivalences.
  Result<ExprRef> BindExpr(const ExprRef& expr,
                           const std::map<std::string, TypeRef>& scope,
                           TypeRef* out_type) const;

  /// Binds a write statement: resolves the class, maps SET property
  /// names to storage slots, and type-checks every SET expression and
  /// the predicate. UPDATE set expressions and UPDATE/DELETE
  /// predicates bind under `self : Oid<Class>`; INSERT sets bind in an
  /// empty scope.
  Result<BoundWrite> BindWrite(const WriteStatement& stmt) const;

 private:
  Result<TypeRef> InferLifted(const TypeRef& base, const std::string& name,
                              bool is_method,
                              const std::vector<ExprRef>& bound_args,
                              const std::vector<TypeRef>& arg_types) const;

  Result<TypeRef> CheckMethodSig(const ClassDef& cls, const MethodSig& sig,
                                 const std::vector<TypeRef>& arg_types,
                                 const std::string& context) const;

  const Catalog* catalog_;
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_BINDER_H_
