#include "vql/interpreter.h"

namespace vodak {
namespace vql {

Status Interpreter::RunRanges(const BoundQuery& query, size_t index,
                              Env* env, std::vector<Value>* out) const {
  if (index == query.from.size()) {
    if (query.where != nullptr) {
      auto pred = evaluator_.EvalPredicate(query.where, *env);
      if (!pred.ok()) return pred.status();
      if (!pred.value()) return Status::OK();
    }
    auto value = evaluator_.Eval(query.access, *env);
    if (!value.ok()) return value.status();
    out->push_back(std::move(value).value());
    return Status::OK();
  }

  const BoundRange& range = query.from[index];
  if (range.kind == RangeKind::kExtent) {
    const ClassDef* cls = evaluator_.catalog()->FindClass(range.class_name);
    if (cls == nullptr) {
      return Status::BindError("unknown class '" + range.class_name + "'");
    }
    auto extent = evaluator_.store()->Extent(cls->class_id());
    if (!extent.ok()) return extent.status();
    for (Oid oid : extent.value()) {
      (*env)[range.var] = Value::OfOid(oid);
      VODAK_RETURN_IF_ERROR(RunRanges(query, index + 1, env, out));
    }
    env->erase(range.var);
    return Status::OK();
  }

  auto domain = evaluator_.Eval(range.domain, *env);
  if (!domain.ok()) return domain.status();
  if (domain.value().is_null()) return Status::OK();
  if (!domain.value().is_set()) {
    return Status::ExecError("range domain of '" + range.var +
                             "' evaluated to non-set " +
                             domain.value().ToString());
  }
  for (const Value& member : domain.value().AsSet()) {
    (*env)[range.var] = member;
    VODAK_RETURN_IF_ERROR(RunRanges(query, index + 1, env, out));
  }
  env->erase(range.var);
  return Status::OK();
}

Result<Value> Interpreter::Run(const BoundQuery& query) const {
  std::vector<Value> results;
  Env env;
  VODAK_RETURN_IF_ERROR(RunRanges(query, 0, &env, &results));
  return Value::Set(std::move(results));
}

}  // namespace vql
}  // namespace vodak
