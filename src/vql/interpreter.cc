#include "vql/interpreter.h"

namespace vodak {
namespace vql {

Status Interpreter::Flush(const BoundQuery& query, const Options& options,
                          Pending* pending,
                          std::vector<Value>* out) const {
  exec::RowBatch& batch = pending->batch;
  if (batch.empty()) return Status::OK();
  // Re-aim the const evaluator at the query's pinned snapshot (a free
  // pointer copy): every property/method read below resolves there.
  const ExprEvaluator ev = evaluator_.WithSnapshot(options.snapshot_epoch);
  if (options.row_mode) {
    // Independent-oracle path: per-row Eval/EvalPredicate only, no
    // shared code with the batched evaluators the executor uses.
    Env env;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      env.clear();
      for (size_t i = 0; i < pending->names.size(); ++i) {
        env[pending->names[i]] = batch.column(i)[r];
      }
      if (query.where != nullptr) {
        VODAK_ASSIGN_OR_RETURN(bool keep,
                               ev.EvalPredicate(query.where, env));
        if (!keep) continue;
      }
      VODAK_ASSIGN_OR_RETURN(Value v, ev.Eval(query.access, env));
      out->push_back(std::move(v));
    }
    batch.Reset(pending->names.size());
    return Status::OK();
  }
  BatchEnv env{&pending->names, &batch.columns(), batch.num_rows()};
  if (query.where != nullptr) {
    std::vector<char> keep;
    VODAK_RETURN_IF_ERROR(
        ev.EvalPredicateBatch(query.where, env, &keep));
    // Mark the survivors in the batch's selection vector instead of
    // compacting; the ACCESS expression below evaluates only the
    // selected rows through the selection view. An all-rejected batch
    // is dropped here — an empty selection has no data() to view.
    if (batch.IntersectSelection(keep) == 0) {
      batch.Reset(pending->names.size());
      return Status::OK();
    }
    batch.ExportSelectionTo(&env);
  }
  if (env.active_rows() > 0) {
    VODAK_ASSIGN_OR_RETURN(ValueColumn values,
                           ev.EvalBatch(query.access, env));
    for (Value& v : values) out->push_back(std::move(v));
  }
  batch.Reset(pending->names.size());
  return Status::OK();
}

Status Interpreter::RunRanges(const BoundQuery& query,
                              const Options& options, size_t index,
                              Env* env, Pending* pending,
                              std::vector<Value>* out) const {
  if (index == query.from.size()) {
    exec::RowBatch& batch = pending->batch;
    for (size_t i = 0; i < pending->names.size(); ++i) {
      batch.column(i).push_back(env->at(pending->names[i]));
    }
    batch.set_num_rows(batch.num_rows() + 1);
    if (batch.num_rows() >= exec::kDefaultBatchSize) {
      return Flush(query, options, pending, out);
    }
    return Status::OK();
  }

  const BoundRange& range = query.from[index];
  if (range.kind == RangeKind::kExtent) {
    const ClassDef* cls = evaluator_.catalog()->FindClass(range.class_name);
    if (cls == nullptr) {
      return Status::BindError("unknown class '" + range.class_name + "'");
    }
    VODAK_ASSIGN_OR_RETURN(auto extent,
                           ExtentFor(options, cls->class_id()));
    for (Oid oid : *extent) {
      (*env)[range.var] = Value::OfOid(oid);
      VODAK_RETURN_IF_ERROR(
          RunRanges(query, options, index + 1, env, pending, out));
    }
    env->erase(range.var);
    return Status::OK();
  }

  auto domain =
      evaluator_.WithSnapshot(options.snapshot_epoch).Eval(range.domain, *env);
  if (!domain.ok()) return domain.status();
  if (domain.value().is_null()) return Status::OK();
  if (!domain.value().is_set()) {
    return Status::ExecError("range domain of '" + range.var +
                             "' evaluated to non-set " +
                             domain.value().ToString());
  }
  for (const Value& member : domain.value().AsSet()) {
    (*env)[range.var] = member;
    VODAK_RETURN_IF_ERROR(
        RunRanges(query, options, index + 1, env, pending, out));
  }
  env->erase(range.var);
  return Status::OK();
}

Status Interpreter::RunFrom(const BoundQuery& query, const Options& options,
                            size_t first_range, Env env,
                            std::vector<Value>* out) const {
  Pending pending;
  pending.names.reserve(query.from.size());
  for (const BoundRange& range : query.from) {
    pending.names.push_back(range.var);
  }
  pending.batch.Reset(pending.names.size());
  VODAK_RETURN_IF_ERROR(
      RunRanges(query, options, first_range, &env, &pending, out));
  return Flush(query, options, &pending, out);
}

Status Interpreter::RunParallel(const BoundQuery& query,
                                const Options& options,
                                const std::vector<Oid>& extent,
                                size_t threads,
                                std::vector<Value>* out) const {
  // Morselize the outermost extent with the same load-balanced sizing
  // as the physical parallel driver.
  exec::MorselSource morsels;
  morsels.Reset(extent.size(),
                exec::BalancedMorselSize(extent.size(), threads,
                                         options.morsel_size));

  const std::string& outer_var = query.from[0].var;
  std::vector<std::vector<Value>> worker_out(threads);
  std::vector<Status> worker_status(threads, Status::OK());
  auto task = [&](size_t w) {
    worker_status[w] = [&]() -> Status {
      // Worker-local buffering: one Pending across all claimed morsels
      // keeps the batches full; inner ranges stay nested per worker.
      Pending pending;
      pending.names.reserve(query.from.size());
      for (const BoundRange& range : query.from) {
        pending.names.push_back(range.var);
      }
      pending.batch.Reset(pending.names.size());
      Env env;
      exec::Morsel morsel;
      while (morsels.Next(&morsel)) {
        for (size_t i = morsel.begin; i < morsel.end; ++i) {
          env[outer_var] = Value::OfOid(extent[i]);
          VODAK_RETURN_IF_ERROR(RunRanges(query, options, 1, &env,
                                          &pending, &worker_out[w]));
        }
      }
      return Flush(query, options, &pending, &worker_out[w]);
    }();
  };
  if (options.pool != nullptr) {
    options.pool->ParallelRun(threads, task);
  } else {
    exec::WorkerPool ephemeral(threads);
    ephemeral.ParallelRun(threads, task);
  }
  for (const Status& status : worker_status) {
    VODAK_RETURN_IF_ERROR(status);
  }
  for (std::vector<Value>& rows : worker_out) {
    for (Value& v : rows) out->push_back(std::move(v));
  }
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<Oid>>> Interpreter::ExtentFor(
    const Options& options, uint32_t class_id) const {
  if (options.shared_scans != nullptr) {
    return options.shared_scans->SharedExtent(class_id);
  }
  VODAK_ASSIGN_OR_RETURN(
      std::vector<Oid> extent,
      evaluator_.store()->Extent(class_id, options.snapshot_epoch));
  return std::make_shared<const std::vector<Oid>>(std::move(extent));
}

Result<Value> Interpreter::Run(const BoundQuery& query,
                               const Options& options) const {
  std::vector<Value> results;
  const size_t threads = exec::ResolveThreads(options.threads);
  if (threads > 1 && !query.from.empty() &&
      query.from[0].kind == RangeKind::kExtent) {
    const BoundRange& outer = query.from[0];
    const ClassDef* cls = evaluator_.catalog()->FindClass(outer.class_name);
    if (cls == nullptr) {
      return Status::BindError("unknown class '" + outer.class_name + "'");
    }
    VODAK_ASSIGN_OR_RETURN(auto extent,
                           ExtentFor(options, cls->class_id()));
    VODAK_RETURN_IF_ERROR(
        RunParallel(query, options, *extent, threads, &results));
  } else {
    VODAK_RETURN_IF_ERROR(RunFrom(query, options, 0, Env(), &results));
  }
  return Value::Set(std::move(results));
}

}  // namespace vql
}  // namespace vodak
