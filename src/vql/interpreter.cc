#include "vql/interpreter.h"

namespace vodak {
namespace vql {

Status Interpreter::Flush(const BoundQuery& query, Pending* pending,
                          std::vector<Value>* out) const {
  exec::RowBatch& batch = pending->batch;
  if (batch.empty()) return Status::OK();
  BatchEnv env{&pending->names, &batch.columns(), batch.num_rows()};
  if (query.where != nullptr) {
    std::vector<char> keep;
    VODAK_RETURN_IF_ERROR(
        evaluator_.EvalPredicateBatch(query.where, env, &keep));
    env.num_rows = batch.CompactRows(keep);
  }
  if (env.num_rows > 0) {
    VODAK_ASSIGN_OR_RETURN(ValueColumn values,
                           evaluator_.EvalBatch(query.access, env));
    for (Value& v : values) out->push_back(std::move(v));
  }
  batch.Reset(pending->names.size());
  return Status::OK();
}

Status Interpreter::RunRanges(const BoundQuery& query, size_t index,
                              Env* env, Pending* pending,
                              std::vector<Value>* out) const {
  if (index == query.from.size()) {
    exec::RowBatch& batch = pending->batch;
    for (size_t i = 0; i < pending->names.size(); ++i) {
      batch.column(i).push_back(env->at(pending->names[i]));
    }
    batch.set_num_rows(batch.num_rows() + 1);
    if (batch.num_rows() >= exec::kDefaultBatchSize) {
      return Flush(query, pending, out);
    }
    return Status::OK();
  }

  const BoundRange& range = query.from[index];
  if (range.kind == RangeKind::kExtent) {
    const ClassDef* cls = evaluator_.catalog()->FindClass(range.class_name);
    if (cls == nullptr) {
      return Status::BindError("unknown class '" + range.class_name + "'");
    }
    auto extent = evaluator_.store()->Extent(cls->class_id());
    if (!extent.ok()) return extent.status();
    for (Oid oid : extent.value()) {
      (*env)[range.var] = Value::OfOid(oid);
      VODAK_RETURN_IF_ERROR(RunRanges(query, index + 1, env, pending, out));
    }
    env->erase(range.var);
    return Status::OK();
  }

  auto domain = evaluator_.Eval(range.domain, *env);
  if (!domain.ok()) return domain.status();
  if (domain.value().is_null()) return Status::OK();
  if (!domain.value().is_set()) {
    return Status::ExecError("range domain of '" + range.var +
                             "' evaluated to non-set " +
                             domain.value().ToString());
  }
  for (const Value& member : domain.value().AsSet()) {
    (*env)[range.var] = member;
    VODAK_RETURN_IF_ERROR(RunRanges(query, index + 1, env, pending, out));
  }
  env->erase(range.var);
  return Status::OK();
}

Result<Value> Interpreter::Run(const BoundQuery& query) const {
  std::vector<Value> results;
  Env env;
  Pending pending;
  pending.names.reserve(query.from.size());
  for (const BoundRange& range : query.from) {
    pending.names.push_back(range.var);
  }
  pending.batch.Reset(pending.names.size());
  VODAK_RETURN_IF_ERROR(RunRanges(query, 0, &env, &pending, &results));
  VODAK_RETURN_IF_ERROR(Flush(query, &pending, &results));
  return Value::Set(std::move(results));
}

}  // namespace vql
}  // namespace vodak
