#ifndef VODAK_VQL_INTERPRETER_H_
#define VODAK_VQL_INTERPRETER_H_

#include "common/result.h"
#include "exec/row_batch.h"
#include "expr/expr_eval.h"
#include "vql/ast.h"

namespace vodak {
namespace vql {

/// Reference evaluator (DESIGN.md S9): straightforward nested-loop
/// evaluation of a bound query, no optimization whatsoever. Ranges are
/// iterated left to right so dependent ranges see earlier bindings; the
/// terminal WHERE / ACCESS evaluation is driven through the batched
/// expression entry points, buffering complete bindings and flushing
/// them a batch at a time.
///
/// The interpreter defines the *meaning* of a VQL query; every optimized
/// plan must return exactly the set this returns. The integration and
/// property test suites enforce that.
class Interpreter {
 public:
  Interpreter(const Catalog* catalog, ObjectStore* store,
              MethodRegistry* methods)
      : evaluator_(catalog, store, methods) {}

  /// Runs the query; the result is a SET of access-expression values
  /// (VQL results have set semantics like the §4.1 algebra).
  Result<Value> Run(const BoundQuery& query) const;

  const ExprEvaluator& evaluator() const { return evaluator_; }

 private:
  /// Buffered complete range bindings awaiting batched evaluation.
  struct Pending {
    std::vector<std::string> names;  // range variables, binding order
    exec::RowBatch batch;            // one column per name
  };

  Status RunRanges(const BoundQuery& query, size_t index, Env* env,
                   Pending* pending, std::vector<Value>* out) const;
  Status Flush(const BoundQuery& query, Pending* pending,
               std::vector<Value>* out) const;

  ExprEvaluator evaluator_;
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_INTERPRETER_H_
