#ifndef VODAK_VQL_INTERPRETER_H_
#define VODAK_VQL_INTERPRETER_H_

#include "common/result.h"
#include "expr/expr_eval.h"
#include "vql/ast.h"

namespace vodak {
namespace vql {

/// Reference evaluator (DESIGN.md S9): straightforward nested-loop
/// evaluation of a bound query, no optimization whatsoever. Ranges are
/// iterated left to right so dependent ranges see earlier bindings.
///
/// The interpreter defines the *meaning* of a VQL query; every optimized
/// plan must return exactly the set this returns. The integration and
/// property test suites enforce that.
class Interpreter {
 public:
  Interpreter(const Catalog* catalog, ObjectStore* store,
              MethodRegistry* methods)
      : evaluator_(catalog, store, methods) {}

  /// Runs the query; the result is a SET of access-expression values
  /// (VQL results have set semantics like the §4.1 algebra).
  Result<Value> Run(const BoundQuery& query) const;

  const ExprEvaluator& evaluator() const { return evaluator_; }

 private:
  Status RunRanges(const BoundQuery& query, size_t index, Env* env,
                   std::vector<Value>* out) const;

  ExprEvaluator evaluator_;
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_INTERPRETER_H_
