#ifndef VODAK_VQL_INTERPRETER_H_
#define VODAK_VQL_INTERPRETER_H_

#include "common/result.h"
#include "exec/morsel_source.h"
#include "exec/row_batch.h"
#include "exec/shared_scan.h"
#include "exec/worker_pool.h"
#include "expr/expr_eval.h"
#include "vql/ast.h"

namespace vodak {
namespace vql {

/// Reference evaluator (DESIGN.md S9): straightforward nested-loop
/// evaluation of a bound query, no optimization whatsoever. Ranges are
/// iterated left to right so dependent ranges see earlier bindings; the
/// terminal WHERE / ACCESS evaluation is driven through the batched
/// expression entry points, buffering complete bindings and flushing
/// them a batch at a time.
///
/// The interpreter defines the *meaning* of a VQL query; every optimized
/// plan must return exactly the set this returns. The integration and
/// property test suites enforce that.
class Interpreter {
 public:
  /// Evaluation knobs. The defaults are the batched serial interpreter;
  /// the switches exist for oracle independence and for routing the
  /// naive evaluation through the parallel worker infrastructure.
  struct Options {
    /// Evaluate WHERE/ACCESS row at a time through Eval/EvalPredicate,
    /// bypassing EvalBatch entirely — including the set-at-a-time
    /// method ABI, whose scalar counterparts are used instead. This is
    /// the fully independent oracle: it shares no batched-evaluation or
    /// batch-dispatch code with the physical executor, so the parity
    /// sweeps can catch bugs in EvalBatch and in native batch method
    /// implementations alike (docs/ARCHITECTURE.md §"The oracles").
    bool row_mode = false;
    /// Worker threads for the outermost extent range (>1 splits it into
    /// morsels claimed from an atomic cursor; inner ranges stay nested
    /// per worker). 1 = serial, 0 = hardware concurrency. Parallelism
    /// requires the first FROM range to be a class extent; otherwise
    /// evaluation silently stays serial.
    size_t threads = 1;
    /// Upper bound on rows per morsel of the outermost extent.
    size_t morsel_size = exec::kDefaultMorselSize;
    /// Reusable pool; when null an ephemeral pool is created.
    exec::WorkerPool* pool = nullptr;
    /// Cross-query shared scans: when set, every extent range reads its
    /// class extension through the manager's materialize-once
    /// SharedExtent instead of a private store Extent() call, so a
    /// batch of concurrent naive runs pays one extent pass per class
    /// (engine::Database::RunNaiveConcurrent installs this). Owned by
    /// the caller; evaluation semantics are unchanged — row_mode with a
    /// manager installed is still the row-at-a-time oracle.
    exec::SharedScanManager* shared_scans = nullptr;
    /// The epoch every store read resolves at — the query's pinned
    /// snapshot. The kEpochLatest default reads live state, which is
    /// only safe while no writer runs; Database::Submit and the oracle
    /// replay in the MVCC stress harness always set it.
    Epoch snapshot_epoch = kEpochLatest;
  };

  Interpreter(const Catalog* catalog, ObjectStore* store,
              MethodRegistry* methods)
      : evaluator_(catalog, store, methods) {}

  /// Runs the query; the result is a SET of access-expression values
  /// (VQL results have set semantics like the §4.1 algebra).
  Result<Value> Run(const BoundQuery& query) const {
    return Run(query, Options());
  }
  Result<Value> Run(const BoundQuery& query,
                    const Options& options) const;

  const ExprEvaluator& evaluator() const { return evaluator_; }

 private:
  /// Buffered complete range bindings awaiting batched evaluation.
  struct Pending {
    std::vector<std::string> names;  // range variables, binding order
    exec::RowBatch batch;            // one column per name
  };

  Status RunRanges(const BoundQuery& query, const Options& options,
                   size_t index, Env* env, Pending* pending,
                   std::vector<Value>* out) const;
  Status Flush(const BoundQuery& query, const Options& options,
               Pending* pending, std::vector<Value>* out) const;
  /// Serial evaluation of ranges [first_range, ...] under `env`.
  Status RunFrom(const BoundQuery& query, const Options& options,
                 size_t first_range, Env env,
                 std::vector<Value>* out) const;
  /// Morsel-parallel evaluation of the outermost extent range.
  Status RunParallel(const BoundQuery& query, const Options& options,
                     const std::vector<Oid>& extent, size_t threads,
                     std::vector<Value>* out) const;
  /// The extent of `class_id` — through the shared-scan manager when
  /// Options::shared_scans is set (materialize-once across queries),
  /// a private store scan otherwise.
  Result<std::shared_ptr<const std::vector<Oid>>> ExtentFor(
      const Options& options, uint32_t class_id) const;

  ExprEvaluator evaluator_;
};

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_INTERPRETER_H_
