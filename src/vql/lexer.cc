#include "vql/lexer.h"

#include <cctype>
#include <map>

namespace vodak {
namespace vql {

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"ACCESS", TokenKind::kAccess},
      {"FROM", TokenKind::kFrom},
      {"WHERE", TokenKind::kWhere},
      {"IN", TokenKind::kIn},
      {"AND", TokenKind::kAnd},
      {"OR", TokenKind::kOr},
      {"NOT", TokenKind::kNot},
      {"TRUE", TokenKind::kTrue},
      {"FALSE", TokenKind::kFalse},
      {"NIL", TokenKind::kNil},
      {"UNION", TokenKind::kUnion},
      {"INTERSECTION", TokenKind::kIntersection},
      {"DIFFERENCE", TokenKind::kDifference},
      {"INSERT", TokenKind::kInsert},
      {"INTO", TokenKind::kInto},
      {"UPDATE", TokenKind::kUpdate},
      {"DELETE", TokenKind::kDelete},
      {"SET", TokenKind::kSet},
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "<end>";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kReal:
      return "real";
    case TokenKind::kAccess:
      return "ACCESS";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kNil:
      return "NIL";
    case TokenKind::kIsIn:
      return "IS-IN";
    case TokenKind::kIsSubset:
      return "IS-SUBSET";
    case TokenKind::kUnion:
      return "UNION";
    case TokenKind::kIntersection:
      return "INTERSECTION";
    case TokenKind::kDifference:
      return "DIFFERENCE";
    case TokenKind::kInsert:
      return "INSERT";
    case TokenKind::kInto:
      return "INTO";
    case TokenKind::kUpdate:
      return "UPDATE";
    case TokenKind::kDelete:
      return "DELETE";
    case TokenKind::kSet:
      return "SET";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kLBracket:
      return "[";
    case TokenKind::kRBracket:
      return "]";
    case TokenKind::kLBrace:
      return "{";
    case TokenKind::kRBrace:
      return "}";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kColon:
      return ":";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kArrow:
      return "->";
    case TokenKind::kAssign:
      return "=";
    case TokenKind::kEqEq:
      return "==";
    case TokenKind::kNotEq:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
  }
  return "?";
}

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      std::string word = source.substr(i, j - i);
      i = j;
      // IS-IN / IS-SUBSET are hyphenated keywords.
      if (word == "IS" && i < n && source[i] == '-') {
        size_t k = i + 1;
        size_t w = k;
        while (w < n && IsIdentChar(source[w])) ++w;
        std::string rest = source.substr(k, w - k);
        if (rest == "IN") {
          i = w;
          push(TokenKind::kIsIn, start);
          continue;
        }
        if (rest == "SUBSET") {
          i = w;
          push(TokenKind::kIsSubset, start);
          continue;
        }
      }
      auto kw = Keywords().find(word);
      if (kw != Keywords().end()) {
        push(kw->second, start);
      } else {
        Token t;
        t.kind = TokenKind::kIdent;
        t.text = std::move(word);
        t.offset = start;
        tokens.push_back(std::move(t));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j])))
        ++j;
      bool is_real = false;
      if (j < n && source[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j])))
          ++j;
      }
      std::string num = source.substr(i, j - i);
      i = j;
      Token t;
      t.offset = start;
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string payload;
      while (j < n && source[j] != '\'') {
        payload.push_back(source[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      i = j + 1;
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(payload);
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace, start);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace, start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case ':':
        push(TokenKind::kColon, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '-':
        if (two('>')) {
          push(TokenKind::kArrow, start);
          i += 2;
        } else {
          push(TokenKind::kMinus, start);
          ++i;
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEqEq, start);
          i += 2;
        } else {
          // Assignment in write-statement SET lists; the expression
          // parser still rejects it where a comparison is meant.
          push(TokenKind::kAssign, start);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNotEq, start);
          i += 2;
        } else {
          return Status::ParseError("stray '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") +
                                  c + "' at offset " +
                                  std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace vql
}  // namespace vodak
