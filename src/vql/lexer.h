#ifndef VODAK_VQL_LEXER_H_
#define VODAK_VQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace vodak {
namespace vql {

enum class TokenKind {
  kEnd,
  kIdent,
  kString,   ///< 'single quoted'
  kInt,
  kReal,
  // Keywords.
  kAccess,
  kFrom,
  kWhere,
  kIn,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNil,
  kIsIn,
  kIsSubset,
  kUnion,
  kIntersection,
  kDifference,
  // Write statements (the mutation path's surface syntax).
  kInsert,
  kInto,
  kUpdate,
  kDelete,
  kSet,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kDot,
  kArrow,  ///< ->
  kAssign,  ///< single '=' (only valid in write-statement SET lists)
  kEqEq,
  kNotEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< identifier or string payload
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;    ///< byte offset in the source (for diagnostics)
};

/// Tokenizes VQL source. `IS-IN` and `IS-SUBSET` are single tokens, the
/// method arrow is `->` (the paper's →).
Result<std::vector<Token>> Lex(const std::string& source);

/// Token name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_LEXER_H_
