#include "vql/parser.h"

#include <cctype>

#include "vql/lexer.h"

namespace vodak {
namespace vql {

namespace {

/// Recursive-descent parser over the token stream. Grammar (§2.2):
///
///   query    := ACCESS expr FROM range (',' range)* (WHERE expr)?
///   range    := IDENT IN expr
///   expr     := or
///   or       := and (OR and)*
///   and      := not (AND not)*
///   not      := NOT not | cmp
///   cmp      := setop ((== != < <= > >= IS-IN IS-SUBSET) setop)?
///   setop    := add ((UNION INTERSECTION DIFFERENCE) add)*
///   add      := mul (('+'|'-') mul)*
///   mul      := unary (('*'|'/') unary)*
///   unary    := '-' unary | postfix
///   postfix  := primary (('.' IDENT) | ('->' IDENT '(' args ')'))*
///   primary  := literal | IDENT | '(' expr ')'
///             | '[' IDENT ':' expr (',' IDENT ':' expr)* ']'
///             | '{' (expr (',' expr)*)? '}'
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kAccess));
    Query query;
    VODAK_ASSIGN_OR_RETURN(query.access, ParseExpr());
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    for (;;) {
      RangeDecl range;
      VODAK_ASSIGN_OR_RETURN(range.var, ExpectIdent());
      VODAK_RETURN_IF_ERROR(Expect(TokenKind::kIn));
      VODAK_ASSIGN_OR_RETURN(range.domain, ParseExpr());
      query.from.push_back(std::move(range));
      if (!Accept(TokenKind::kComma)) break;
    }
    if (Accept(TokenKind::kWhere)) {
      VODAK_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return query;
  }

  Result<ExprRef> ParseStandaloneExpr() {
    VODAK_ASSIGN_OR_RETURN(ExprRef e, ParseExpr());
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

  ///   write := INSERT INTO IDENT set_list
  ///          | UPDATE IDENT set_list (WHERE expr)?
  ///          | DELETE FROM IDENT (WHERE expr)?
  ///   set_list := SET IDENT '=' expr (',' IDENT '=' expr)*
  Result<WriteStatement> ParseWrite() {
    WriteStatement stmt;
    if (Accept(TokenKind::kInsert)) {
      stmt.kind = WriteStatement::Kind::kInsert;
      VODAK_RETURN_IF_ERROR(Expect(TokenKind::kInto));
      VODAK_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent());
      VODAK_RETURN_IF_ERROR(ParseSetList(&stmt));
    } else if (Accept(TokenKind::kUpdate)) {
      stmt.kind = WriteStatement::Kind::kUpdate;
      VODAK_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent());
      VODAK_RETURN_IF_ERROR(ParseSetList(&stmt));
      if (Accept(TokenKind::kWhere)) {
        VODAK_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
      }
    } else if (Accept(TokenKind::kDelete)) {
      stmt.kind = WriteStatement::Kind::kDelete;
      VODAK_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
      VODAK_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent());
      if (Accept(TokenKind::kWhere)) {
        VODAK_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
      }
    } else {
      return Status::ParseError(
          std::string("expected INSERT, UPDATE or DELETE but found ") +
          TokenKindName(Peek().kind) + " at offset " +
          std::to_string(Peek().offset));
    }
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::ParseError(
          std::string("expected ") + TokenKindName(kind) + " but found " +
          TokenKindName(Peek().kind) + " at offset " +
          std::to_string(Peek().offset));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected identifier but found " +
                                std::string(TokenKindName(Peek().kind)) +
                                " at offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Status ParseSetList(WriteStatement* stmt) {
    VODAK_RETURN_IF_ERROR(Expect(TokenKind::kSet));
    for (;;) {
      VODAK_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
      VODAK_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
      VODAK_ASSIGN_OR_RETURN(ExprRef value, ParseExpr());
      stmt->sets.emplace_back(std::move(prop), std::move(value));
      if (!Accept(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  Result<ExprRef> ParseExpr() { return ParseOr(); }

  Result<ExprRef> ParseOr() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseAnd());
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprRef> ParseAnd() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseNot());
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprRef> ParseNot() {
    if (Accept(TokenKind::kNot)) {
      VODAK_ASSIGN_OR_RETURN(ExprRef inner, ParseNot());
      return Expr::Unary(UnOp::kNot, std::move(inner));
    }
    return ParseCmp();
  }

  Result<ExprRef> ParseCmp() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseSetOp());
    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEqEq:
        op = BinOp::kEq;
        break;
      case TokenKind::kNotEq:
        op = BinOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinOp::kGe;
        break;
      case TokenKind::kIsIn:
        op = BinOp::kIsIn;
        break;
      case TokenKind::kIsSubset:
        op = BinOp::kIsSubset;
        break;
      default:
        return lhs;
    }
    Advance();
    VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseSetOp());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprRef> ParseSetOp() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseAdd());
    for (;;) {
      BinOp op;
      if (Peek().kind == TokenKind::kUnion) {
        op = BinOp::kUnion;
      } else if (Peek().kind == TokenKind::kIntersection) {
        op = BinOp::kIntersect;
      } else if (Peek().kind == TokenKind::kDifference) {
        op = BinOp::kDiff;
      } else {
        return lhs;
      }
      Advance();
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseAdd());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprRef> ParseAdd() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseMul());
    for (;;) {
      BinOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseMul());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprRef> ParseMul() {
    VODAK_ASSIGN_OR_RETURN(ExprRef lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinOp::kDiv;
      } else {
        return lhs;
      }
      Advance();
      VODAK_ASSIGN_OR_RETURN(ExprRef rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprRef> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      VODAK_ASSIGN_OR_RETURN(ExprRef inner, ParseUnary());
      return Expr::Unary(UnOp::kNeg, std::move(inner));
    }
    return ParsePostfix();
  }

  Result<ExprRef> ParsePostfix() {
    VODAK_ASSIGN_OR_RETURN(ExprRef e, ParsePrimary());
    for (;;) {
      if (Accept(TokenKind::kDot)) {
        VODAK_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
        e = Expr::Property(std::move(e), std::move(prop));
        continue;
      }
      if (Accept(TokenKind::kArrow)) {
        VODAK_ASSIGN_OR_RETURN(std::string method, ExpectIdent());
        VODAK_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        std::vector<ExprRef> args;
        if (Peek().kind != TokenKind::kRParen) {
          for (;;) {
            VODAK_ASSIGN_OR_RETURN(ExprRef arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!Accept(TokenKind::kComma)) break;
          }
        }
        VODAK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        // Class-object calls (`Document→select_by_index`) are still
        // kMethodCall on a Var here; the binder reclassifies them.
        e = Expr::MethodCall(std::move(e), std::move(method),
                             std::move(args));
        continue;
      }
      return e;
    }
  }

  Result<ExprRef> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        int64_t v = Advance().int_value;
        return Expr::Const(Value::Int(v));
      }
      case TokenKind::kReal: {
        double v = Advance().real_value;
        return Expr::Const(Value::Real(v));
      }
      case TokenKind::kString: {
        std::string s = Advance().text;
        return Expr::Const(Value::String(std::move(s)));
      }
      case TokenKind::kTrue:
        Advance();
        return Expr::Const(Value::Bool(true));
      case TokenKind::kFalse:
        Advance();
        return Expr::Const(Value::Bool(false));
      case TokenKind::kNil:
        Advance();
        return Expr::Const(Value::Null());
      case TokenKind::kIdent:
        return Expr::Var(Advance().text);
      case TokenKind::kLParen: {
        Advance();
        VODAK_ASSIGN_OR_RETURN(ExprRef e, ParseExpr());
        VODAK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return e;
      }
      case TokenKind::kLBracket: {
        Advance();
        std::vector<std::pair<std::string, ExprRef>> fields;
        if (Peek().kind != TokenKind::kRBracket) {
          for (;;) {
            VODAK_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
            VODAK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
            VODAK_ASSIGN_OR_RETURN(ExprRef fe, ParseExpr());
            fields.emplace_back(std::move(name), std::move(fe));
            if (!Accept(TokenKind::kComma)) break;
          }
        }
        VODAK_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        return Expr::TupleCtor(std::move(fields));
      }
      case TokenKind::kLBrace: {
        Advance();
        std::vector<ExprRef> elems;
        if (Peek().kind != TokenKind::kRBrace) {
          for (;;) {
            VODAK_ASSIGN_OR_RETURN(ExprRef el, ParseExpr());
            elems.push_back(std::move(el));
            if (!Accept(TokenKind::kComma)) break;
          }
        }
        VODAK_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
        return Expr::SetCtor(std::move(elems));
      }
      default:
        return Status::ParseError(
            std::string("unexpected token ") + TokenKindName(t.kind) +
            " at offset " + std::to_string(t.offset));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& source) {
  VODAK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprRef> ParseExpr(const std::string& source) {
  VODAK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

Result<WriteStatement> ParseWrite(const std::string& source) {
  VODAK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseWrite();
}

bool IsWriteStatement(const std::string& source) {
  size_t begin = source.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return false;
  size_t end = begin;
  while (end < source.size() &&
         (std::isalpha(static_cast<unsigned char>(source[end])) != 0)) {
    ++end;
  }
  const std::string word = source.substr(begin, end - begin);
  return word == "INSERT" || word == "UPDATE" || word == "DELETE";
}

}  // namespace vql
}  // namespace vodak
