#ifndef VODAK_VQL_PARSER_H_
#define VODAK_VQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "vql/ast.h"

namespace vodak {
namespace vql {

/// Parses a full `ACCESS … FROM … [WHERE …]` query.
Result<Query> ParseQuery(const std::string& source);

/// Parses a standalone expression (used by the knowledge-specification
/// API to accept equivalences in VQL surface syntax, §4.2).
Result<ExprRef> ParseExpr(const std::string& source);

/// Parses a write statement:
///   INSERT INTO Class SET prop = expr, ...
///   UPDATE Class SET prop = expr, ... [WHERE pred]
///   DELETE FROM Class [WHERE pred]
Result<WriteStatement> ParseWrite(const std::string& source);

/// True when `source`'s first word is a write-statement keyword
/// (INSERT / UPDATE / DELETE). Cheap routing test — callers still get a
/// full parse error from ParseWrite when the rest is malformed.
bool IsWriteStatement(const std::string& source);

}  // namespace vql
}  // namespace vodak

#endif  // VODAK_VQL_PARSER_H_
