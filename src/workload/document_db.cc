#include "workload/document_db.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace vodak {
namespace workload {

const char* DocumentDb::kSpecialTitle = "Query Optimization";
const char* DocumentDb::kSearchWord = "implementation";

namespace {

// Property slot layout. Slots equal declaration order in DefineSchema;
// the constants keep Populate readable.
constexpr uint32_t kDocTitle = 0;
constexpr uint32_t kDocAuthor = 1;
constexpr uint32_t kDocSections = 2;
constexpr uint32_t kDocLargeParagraphs = 3;

constexpr uint32_t kSecNumber = 0;
constexpr uint32_t kSecTitle = 1;
constexpr uint32_t kSecDocument = 2;
constexpr uint32_t kSecParagraphs = 3;

constexpr uint32_t kParNumber = 0;
constexpr uint32_t kParSection = 1;
constexpr uint32_t kParContent = 2;

/// Reads property `prop` of every receiver in `selves` as one
/// range-scoped store column read (one slot resolution, one stats bump
/// for the whole batch). The batch ABI guarantees `selves` holds
/// same-class, non-NULL Oid values, and — because the batched evaluator
/// gathers only the live rows of a selection vector before dispatch
/// (docs/ARCHITECTURE.md §"Selection vectors") — that every receiver
/// here is a *selected* row: the bodies below never see, and never pay
/// store reads or tokenization for, rows a filter already rejected.
/// exec_selvec_test's tripwire pins this down with the registry's
/// batch_rows counter.
Status ReadReceiverColumn(MethodCallContext& ctx, const ValueColumn& selves,
                          const std::string& prop,
                          std::vector<Value>* out) {
  if (selves.empty()) return Status::OK();
  const Oid first = selves[0].AsOid();
  const ClassDef* cls = ctx.catalog->FindClassById(first.class_id);
  if (cls == nullptr) {
    return Status::NotFound("oid " + first.ToString() +
                            " refers to unknown class");
  }
  const PropertyDef* def = cls->FindProperty(prop);
  if (def == nullptr) {
    return Status::NotFound("class '" + cls->name() +
                            "' has no property '" + prop + "'");
  }
  std::vector<uint32_t> locals;
  locals.reserve(selves.size());
  for (const Value& self : selves) locals.push_back(self.AsOid().local);
  return ctx.store->GetPropertyColumn(first.class_id, def->slot, locals,
                                      out, ctx.snapshot_epoch);
}

}  // namespace

DocumentDb::DocumentDb() = default;

Status DocumentDb::DefineSchema() {
  // CLASS Document (§2.1).
  ClassDef* doc;
  {
    auto r = catalog_.DefineClass("Document");
    if (!r.ok()) return r.status();
    doc = r.value();
  }
  VODAK_RETURN_IF_ERROR(doc->AddProperty("title", Type::String()));
  VODAK_RETURN_IF_ERROR(doc->AddProperty("author", Type::String()));
  VODAK_RETURN_IF_ERROR(
      doc->AddProperty("sections", Type::SetOf(Type::OidOf("Section"))));
  VODAK_RETURN_IF_ERROR(doc->AddProperty(
      "largeParagraphs", Type::SetOf(Type::OidOf("Paragraph"))));
  VODAK_RETURN_IF_ERROR(doc->AddMethod(
      {"select_by_index",
       {{"t", Type::String()}},
       Type::SetOf(Type::OidOf("Document")),
       MethodLevel::kClassObject}));
  VODAK_RETURN_IF_ERROR(doc->AddMethod(
      {"paragraphs",
       {},
       Type::SetOf(Type::OidOf("Paragraph")),
       MethodLevel::kInstance}));

  // CLASS Section.
  ClassDef* sec;
  {
    auto r = catalog_.DefineClass("Section");
    if (!r.ok()) return r.status();
    sec = r.value();
  }
  VODAK_RETURN_IF_ERROR(sec->AddProperty("number", Type::Int()));
  VODAK_RETURN_IF_ERROR(sec->AddProperty("title", Type::String()));
  VODAK_RETURN_IF_ERROR(
      sec->AddProperty("document", Type::OidOf("Document")));
  VODAK_RETURN_IF_ERROR(
      sec->AddProperty("paragraphs", Type::SetOf(Type::OidOf("Paragraph"))));

  // CLASS Paragraph.
  ClassDef* par;
  {
    auto r = catalog_.DefineClass("Paragraph");
    if (!r.ok()) return r.status();
    par = r.value();
  }
  VODAK_RETURN_IF_ERROR(par->AddProperty("number", Type::Int()));
  VODAK_RETURN_IF_ERROR(par->AddProperty("section", Type::OidOf("Section")));
  VODAK_RETURN_IF_ERROR(par->AddProperty("content", Type::String()));
  VODAK_RETURN_IF_ERROR(par->AddMethod(
      {"retrieve_by_string",
       {{"s", Type::String()}},
       Type::SetOf(Type::OidOf("Paragraph")),
       MethodLevel::kClassObject}));
  VODAK_RETURN_IF_ERROR(par->AddMethod(
      {"document", {}, Type::OidOf("Document"), MethodLevel::kInstance}));
  VODAK_RETURN_IF_ERROR(par->AddMethod({"contains_string",
                                        {{"s", Type::String()}},
                                        Type::Bool(),
                                        MethodLevel::kInstance}));
  VODAK_RETURN_IF_ERROR(par->AddMethod({"sameDocument",
                                        {{"p", Type::OidOf("Paragraph")}},
                                        Type::Bool(),
                                        MethodLevel::kInstance}));
  VODAK_RETURN_IF_ERROR(par->AddMethod(
      {"wordCount", {}, Type::Int(), MethodLevel::kInstance}));

  // Storage registration mirrors catalog order so class ids agree.
  document_class_id_ = store_.RegisterClass(
      "Document", static_cast<uint32_t>(doc->properties().size()));
  section_class_id_ = store_.RegisterClass(
      "Section", static_cast<uint32_t>(sec->properties().size()));
  paragraph_class_id_ = store_.RegisterClass(
      "Paragraph", static_cast<uint32_t>(par->properties().size()));
  VODAK_CHECK(document_class_id_ == doc->class_id());
  VODAK_CHECK(section_class_id_ == sec->class_id());
  VODAK_CHECK(paragraph_class_id_ == par->class_id());
  return Status::OK();
}

Status DocumentDb::RegisterMethods() {
  // Document→select_by_index: external user-defined index access.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.is_external = true;
    OrderedAttributeIndex* index = &title_index_;
    impl.native = [index](MethodCallContext&, const Value&,
                          const std::vector<Value>& args) -> Result<Value> {
      if (!args[0].is_string()) {
        return Status::TypeError("select_by_index expects a STRING");
      }
      return MakeOidSet(index->Lookup(args[0].AsString()));
    };
    // Set-at-a-time form: one title-index probe per *distinct* key in
    // the batch; repeated rows (the common constant-argument shape)
    // share the probe's result set (Value copies are shared_ptr-cheap).
    impl.native_batch = [index](MethodCallContext&, const ValueColumn&,
                                size_t n,
                                const std::vector<ValueColumn>& args,
                                ValueColumn* out) -> Status {
      std::map<std::string, Value> probes;
      for (size_t i = 0; i < n; ++i) {
        const Value& t = args[0][i];
        if (!t.is_string()) {
          return Status::TypeError("select_by_index expects a STRING");
        }
        auto [it, fresh] = probes.try_emplace(t.AsString());
        if (fresh) it->second = MakeOidSet(index->Lookup(t.AsString()));
        out->push_back(it->second);
      }
      return Status::OK();
    };
    MethodCost cost;
    cost.per_call = 1.0;      // per-row share: copy the probed set
    cost.batch_setup = 10.0;  // the index probe, once per batch
    cost.fanout = 1.0;        // titles are near-unique
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Document",
        {"select_by_index",
         {{"t", Type::String()}},
         Type::SetOf(Type::OidOf("Document")),
         MethodLevel::kClassObject},
        std::move(impl), cost));
  }

  // Document::paragraphs: internal encoding, iterates sections.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.native = [](MethodCallContext& ctx, const Value& self,
                     const std::vector<Value>&) -> Result<Value> {
      VODAK_ASSIGN_OR_RETURN(
          Value sections, ReadPropertyByName(*ctx.catalog, *ctx.store,
                                             self.AsOid(), "sections",
                                             ctx.snapshot_epoch));
      std::vector<Value> out;
      if (sections.is_set()) {
        for (const Value& sec : sections.AsSet()) {
          VODAK_ASSIGN_OR_RETURN(
              Value paragraphs,
              ReadPropertyByName(*ctx.catalog, *ctx.store, sec.AsOid(),
                                 "paragraphs", ctx.snapshot_epoch));
          if (paragraphs.is_set()) {
            for (const Value& p : paragraphs.AsSet()) out.push_back(p);
          }
        }
      }
      return Value::Set(std::move(out));
    };
    MethodCost cost;
    cost.per_call = 8.0;
    cost.fanout = 12.0;  // refined by Populate
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Document",
        {"paragraphs",
         {},
         Type::SetOf(Type::OidOf("Paragraph")),
         MethodLevel::kInstance},
        std::move(impl), cost));
  }

  // Paragraph→retrieve_by_string: the external IR function.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.is_external = true;
    InvertedTextIndex* index = &paragraph_index_;
    impl.native = [index](MethodCallContext&, const Value&,
                          const std::vector<Value>& args) -> Result<Value> {
      if (!args[0].is_string()) {
        return Status::TypeError("retrieve_by_string expects a STRING");
      }
      return MakeOidSet(index->Search(args[0].AsString()));
    };
    // Set-at-a-time form: one postings intersection per *distinct*
    // search string in the batch — a WHERE clause calling the IR method
    // with a constant argument costs one Search per ~1024-row batch
    // instead of one per row.
    impl.native_batch = [index](MethodCallContext&, const ValueColumn&,
                                size_t n,
                                const std::vector<ValueColumn>& args,
                                ValueColumn* out) -> Status {
      std::map<std::string, Value> probes;
      for (size_t i = 0; i < n; ++i) {
        const Value& s = args[0][i];
        if (!s.is_string()) {
          return Status::TypeError("retrieve_by_string expects a STRING");
        }
        auto [it, fresh] = probes.try_emplace(s.AsString());
        if (fresh) it->second = MakeOidSet(index->Search(s.AsString()));
        out->push_back(it->second);
      }
      return Status::OK();
    };
    MethodCost cost;
    cost.per_call = 1.0;      // per-row share: copy the result set
    cost.batch_setup = 50.0;  // postings traversal; refined by Populate
    cost.fanout = 100.0;
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Paragraph",
        {"retrieve_by_string",
         {{"s", Type::String()}},
         Type::SetOf(Type::OidOf("Paragraph")),
         MethodLevel::kClassObject},
        std::move(impl), cost));
  }

  // Paragraph::document: the path method of §2.1
  // (`RETURN section.document`).
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kPath;
    impl.path = {"section", "document"};
    MethodCost cost;
    cost.per_call = 2.0;  // two property reads
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Paragraph",
        {"document", {}, Type::OidOf("Document"), MethodLevel::kInstance},
        std::move(impl), cost));
  }

  // Paragraph::contains_string: external IR predicate; per-call cost is
  // a full tokenization of the paragraph body — the expensive predicate
  // of Example 4.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.is_external = true;
    impl.native = [](MethodCallContext& ctx, const Value& self,
                     const std::vector<Value>& args) -> Result<Value> {
      if (!args[0].is_string()) {
        return Status::TypeError("contains_string expects a STRING");
      }
      VODAK_ASSIGN_OR_RETURN(
          Value content, ReadPropertyByName(*ctx.catalog, *ctx.store,
                                            self.AsOid(), "content",
                                            ctx.snapshot_epoch));
      if (!content.is_string()) return Value::Bool(false);
      return Value::Bool(InvertedTextIndex::MatchesText(
          content.AsString(), args[0].AsString()));
    };
    // Set-at-a-time form: one store column read for the bodies and one
    // query tokenization per distinct search string; the per-row body
    // tokenization is the irreducible marginal cost.
    impl.native_batch = [](MethodCallContext& ctx,
                           const ValueColumn& selves, size_t n,
                           const std::vector<ValueColumn>& args,
                           ValueColumn* out) -> Status {
      std::vector<Value> contents;
      contents.reserve(n);
      VODAK_RETURN_IF_ERROR(
          ReadReceiverColumn(ctx, selves, "content", &contents));
      std::map<std::string, std::vector<std::string>> tokens;
      for (size_t i = 0; i < n; ++i) {
        const Value& s = args[0][i];
        if (!s.is_string()) {
          return Status::TypeError("contains_string expects a STRING");
        }
        auto [it, fresh] = tokens.try_emplace(s.AsString());
        if (fresh) {
          it->second = InvertedTextIndex::QueryTokens(s.AsString());
        }
        out->push_back(Value::Bool(
            contents[i].is_string() &&
            InvertedTextIndex::MatchesTokens(contents[i].AsString(),
                                             it->second)));
      }
      return Status::OK();
    };
    MethodCost cost;
    cost.per_call = 30.0;    // tokenizes the body; refined by Populate
    cost.batch_setup = 3.0;  // column read + query tokenization
    cost.selectivity = 0.1;
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Paragraph",
        {"contains_string",
         {{"s", Type::String()}},
         Type::Bool(),
         MethodLevel::kInstance},
        std::move(impl), cost));
  }

  // Paragraph::sameDocument: parameterized internal method (the join
  // predicate of Example 1); body mirrors
  // `RETURN (SELF→document() == p→document())`.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.native = [](MethodCallContext& ctx, const Value& self,
                     const std::vector<Value>& args) -> Result<Value> {
      if (!args[0].is_oid()) {
        return Status::TypeError("sameDocument expects a Paragraph");
      }
      VODAK_ASSIGN_OR_RETURN(
          Value mine,
          ctx.methods->InvokeInstance(ctx, self.AsOid(), "document", {}));
      VODAK_ASSIGN_OR_RETURN(
          Value theirs,
          ctx.methods->InvokeInstance(ctx, args[0].AsOid(), "document", {}));
      return Value::Bool(mine == theirs);
    };
    MethodCost cost;
    cost.per_call = 5.0;
    cost.selectivity = 0.05;  // ~1/num_documents; refined by Populate
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Paragraph",
        {"sameDocument",
         {{"p", Type::OidOf("Paragraph")}},
         Type::Bool(),
         MethodLevel::kInstance},
        std::move(impl), cost));
  }

  // Paragraph::wordCount: derived data (§5.1), recomputed per call.
  {
    MethodImpl impl;
    impl.kind = MethodImplKind::kNative;
    impl.native = [](MethodCallContext& ctx, const Value& self,
                     const std::vector<Value>&) -> Result<Value> {
      VODAK_ASSIGN_OR_RETURN(
          Value content, ReadPropertyByName(*ctx.catalog, *ctx.store,
                                            self.AsOid(), "content",
                                            ctx.snapshot_epoch));
      if (!content.is_string()) return Value::Int(0);
      return Value::Int(static_cast<int64_t>(
          TokenizeWords(content.AsString()).size()));
    };
    // Set-at-a-time form: the body read is a single column read; the
    // per-row tokenization remains.
    impl.native_batch = [](MethodCallContext& ctx,
                           const ValueColumn& selves, size_t n,
                           const std::vector<ValueColumn>&,
                           ValueColumn* out) -> Status {
      std::vector<Value> contents;
      contents.reserve(n);
      VODAK_RETURN_IF_ERROR(
          ReadReceiverColumn(ctx, selves, "content", &contents));
      for (const Value& content : contents) {
        out->push_back(
            content.is_string()
                ? Value::Int(static_cast<int64_t>(
                      TokenizeWords(content.AsString()).size()))
                : Value::Int(0));
      }
      return Status::OK();
    };
    MethodCost cost;
    cost.per_call = 30.0;
    cost.batch_setup = 1.0;  // the body column read
    VODAK_RETURN_IF_ERROR(methods_.Register(
        "Paragraph",
        {"wordCount", {}, Type::Int(), MethodLevel::kInstance},
        std::move(impl), cost));
  }
  return Status::OK();
}

Status DocumentDb::Init() {
  if (initialized_) return Status::InvalidArgument("Init called twice");
  VODAK_RETURN_IF_ERROR(DefineSchema());
  VODAK_RETURN_IF_ERROR(RegisterMethods());
  initialized_ = true;
  return Status::OK();
}

Status DocumentDb::Populate(const CorpusParams& params) {
  if (!initialized_) return Status::InvalidArgument("Init not called");
  params_ = params;
  Rng rng(params.seed);
  ZipfSampler zipf(params.vocabulary_size, params.zipf_theta,
                   params.seed ^ 0xbeef);

  auto term = [](size_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "term%04zu", i);
    return std::string(buf);
  };

  for (uint32_t d = 0; d < params.num_documents; ++d) {
    VODAK_ASSIGN_OR_RETURN(Oid doc, store_.CreateObject(document_class_id_));
    std::string title = d == 0 ? std::string(kSpecialTitle)
                               : "Title " + std::to_string(d);
    VODAK_RETURN_IF_ERROR(
        store_.SetProperty(doc, kDocTitle, Value::String(title)));
    VODAK_RETURN_IF_ERROR(store_.SetProperty(
        doc, kDocAuthor,
        Value::String("Author " + std::to_string(d % 7))));
    title_index_.Insert(title, doc);

    std::vector<Value> section_oids;
    std::vector<Value> large_paragraphs;
    for (uint32_t s = 0; s < params.sections_per_document; ++s) {
      VODAK_ASSIGN_OR_RETURN(Oid sec,
                             store_.CreateObject(section_class_id_));
      VODAK_RETURN_IF_ERROR(store_.SetProperty(
          sec, kSecNumber, Value::Int(static_cast<int64_t>(s))));
      VODAK_RETURN_IF_ERROR(store_.SetProperty(
          sec, kSecTitle,
          Value::String("Section " + std::to_string(d) + "." +
                        std::to_string(s))));
      VODAK_RETURN_IF_ERROR(
          store_.SetProperty(sec, kSecDocument, Value::OfOid(doc)));
      section_oids.push_back(Value::OfOid(sec));

      std::vector<Value> paragraph_oids;
      for (uint32_t p = 0; p < params.paragraphs_per_section; ++p) {
        VODAK_ASSIGN_OR_RETURN(Oid par,
                               store_.CreateObject(paragraph_class_id_));
        VODAK_RETURN_IF_ERROR(store_.SetProperty(
            par, kParNumber, Value::Int(static_cast<int64_t>(p))));
        VODAK_RETURN_IF_ERROR(
            store_.SetProperty(par, kParSection, Value::OfOid(sec)));

        bool is_large = rng.NextBool(params.large_paragraph_fraction);
        uint32_t words = is_large
                             ? params.large_paragraph_threshold + 20
                             : params.words_per_paragraph;
        std::string content;
        for (uint32_t w = 0; w < words; ++w) {
          if (w) content.push_back(' ');
          content += term(zipf.Next());
        }
        if (rng.NextBool(params.implementation_fraction)) {
          content += " ";
          content += kSearchWord;
        }
        paragraph_index_.Add(par, content);
        size_t word_count = TokenizeWords(content).size();
        VODAK_RETURN_IF_ERROR(store_.SetProperty(
            par, kParContent, Value::String(std::move(content))));
        if (word_count > params.large_paragraph_threshold) {
          large_paragraphs.push_back(Value::OfOid(par));
        }
        paragraph_oids.push_back(Value::OfOid(par));
      }
      VODAK_RETURN_IF_ERROR(store_.SetProperty(
          sec, kSecParagraphs, Value::Set(std::move(paragraph_oids))));
    }
    VODAK_RETURN_IF_ERROR(store_.SetProperty(
        doc, kDocSections, Value::Set(std::move(section_oids))));
    VODAK_RETURN_IF_ERROR(store_.SetProperty(
        doc, kDocLargeParagraphs, Value::Set(std::move(large_paragraphs))));
  }

  // Refine cost annotations from actual corpus statistics, the way the
  // paper's "simple cost model" (§7) would be calibrated per database.
  // Batch-native methods split their cost into the marginal per-row work
  // (per_call) and the per-dispatch setup the set-at-a-time ABI pays
  // once per batch (batch_setup); scalar-only methods keep everything in
  // per_call as before.
  uint64_t num_paragraphs = params.num_documents *
                            params.sections_per_document *
                            params.paragraphs_per_section;
  double df = static_cast<double>(
      paragraph_index_.DocumentFrequency(kSearchWord));
  methods_.SetCost(
      "Paragraph", "contains_string", MethodLevel::kInstance,
      {static_cast<double>(params.words_per_paragraph),
       num_paragraphs ? df / static_cast<double>(num_paragraphs) : 0.1,
       1.0, 3.0});
  methods_.SetCost("Paragraph", "retrieve_by_string",
                   MethodLevel::kClassObject,
                   {1.0, 0.5, df > 0 ? df : 1.0, 20.0 + df});
  methods_.SetCost(
      "Document", "paragraphs", MethodLevel::kInstance,
      {2.0 * params.sections_per_document,
       0.5,
       static_cast<double>(params.sections_per_document *
                           params.paragraphs_per_section)});
  methods_.SetCost("Paragraph", "sameDocument", MethodLevel::kInstance,
                   {5.0,
                    params.num_documents
                        ? 1.0 / static_cast<double>(params.num_documents)
                        : 0.05,
                    1.0});
  methods_.SetCost("Paragraph", "wordCount", MethodLevel::kInstance,
                   {static_cast<double>(params.words_per_paragraph), 0.5,
                    1.0, 1.0});
  return Status::OK();
}

void DocumentDb::ResetCounters() {
  store_.mutable_stats()->Reset();
  methods_.ResetCounters();
  paragraph_index_.ResetCounters();
  title_index_.ResetCounters();
}

}  // namespace workload
}  // namespace vodak
