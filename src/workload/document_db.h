#ifndef VODAK_WORKLOAD_DOCUMENT_DB_H_
#define VODAK_WORKLOAD_DOCUMENT_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extindex/inverted_index.h"
#include "methods/method_registry.h"
#include "objstore/object_store.h"
#include "schema/catalog.h"

namespace vodak {
namespace workload {

/// Size and shape of the synthetic corpus. Defaults give a small corpus
/// suitable for unit tests; benchmarks scale num_documents up.
struct CorpusParams {
  uint32_t num_documents = 20;
  uint32_t sections_per_document = 3;
  uint32_t paragraphs_per_section = 4;
  /// Vocabulary of synthetic terms term0000..term<N-1>.
  uint32_t vocabulary_size = 500;
  /// Zipf skew of term frequencies (0 = uniform).
  double zipf_theta = 0.9;
  /// Words per paragraph body.
  uint32_t words_per_paragraph = 30;
  /// Fraction of paragraphs additionally containing the marker word
  /// "implementation" (the Example 4 search term).
  double implementation_fraction = 0.1;
  /// Paragraphs with wordCount() > large_paragraph_threshold are recorded
  /// in Document.largeParagraphs (the §4.2 implication example). The
  /// generator gives this fraction of paragraphs an extended body.
  uint32_t large_paragraph_threshold = 100;
  double large_paragraph_fraction = 0.15;
  uint64_t seed = 4711;
};

/// The paper's §2.1 example database: classes Document, Section and
/// Paragraph with exactly the properties and methods of the paper
/// (plus Document.largeParagraphs / Paragraph::wordCount() from the §4.2
/// implication example), the external IR index behind
/// `Paragraph→retrieve_by_string`, and the user-defined title index
/// behind `Document→select_by_index`.
///
/// Method inventory and their implementation categories (§2.1):
///  - Document→select_by_index(t)      class-object, external (index)
///  - Document::paragraphs()           instance, internal encoding
///  - Paragraph→retrieve_by_string(s)  class-object, external (IR)
///  - Paragraph::document()            instance, path method
///  - Paragraph::contains_string(s)    instance, external (IR predicate)
///  - Paragraph::sameDocument(p)       instance, internal, parameterized
///  - Paragraph::wordCount()           instance, internal (derived data)
class DocumentDb {
 public:
  DocumentDb();
  DocumentDb(const DocumentDb&) = delete;
  DocumentDb& operator=(const DocumentDb&) = delete;

  /// Defines the schema and registers all method implementations.
  /// Must be called exactly once before Populate().
  Status Init();

  /// Generates and loads a deterministic synthetic corpus, builds the two
  /// external indexes and precomputes largeParagraphs.
  Status Populate(const CorpusParams& params);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ObjectStore& store() { return store_; }
  MethodRegistry& methods() { return methods_; }
  const MethodRegistry& methods() const { return methods_; }
  InvertedTextIndex& paragraph_index() { return paragraph_index_; }
  OrderedAttributeIndex& title_index() { return title_index_; }

  uint32_t document_class_id() const { return document_class_id_; }
  uint32_t section_class_id() const { return section_class_id_; }
  uint32_t paragraph_class_id() const { return paragraph_class_id_; }

  const CorpusParams& params() const { return params_; }

  /// The title given to document #0 so tests and benches can target it
  /// ("Query Optimization", after Example 4).
  static const char* kSpecialTitle;
  /// The marker search word ("implementation").
  static const char* kSearchWord;

  /// Resets all measurement counters (store stats, method invocation
  /// counts, index counters).
  void ResetCounters();

 private:
  Status DefineSchema();
  Status RegisterMethods();

  Catalog catalog_;
  ObjectStore store_;
  MethodRegistry methods_;
  InvertedTextIndex paragraph_index_;
  OrderedAttributeIndex title_index_;
  CorpusParams params_;
  uint32_t document_class_id_ = 0;
  uint32_t section_class_id_ = 0;
  uint32_t paragraph_class_id_ = 0;
  bool initialized_ = false;
};

}  // namespace workload
}  // namespace vodak

#endif  // VODAK_WORKLOAD_DOCUMENT_DB_H_
