#include "workload/document_knowledge.h"

#include "common/string_util.h"

namespace vodak {
namespace workload {

Status RegisterPaperKnowledge(engine::Database* session,
                              const CorpusParams& params,
                              const std::set<std::string>& only) {
  auto want = [&only](const char* name) {
    return only.empty() || only.count(name) > 0;
  };
  semantics::KnowledgeBase& kb = session->knowledge();
  if (want("E1")) {
    VODAK_RETURN_IF_ERROR(kb.AddExprEquivalence(
        "E1", "p", "Paragraph", "p->document()", "p.section.document"));
  }
  if (want("E2")) {
    VODAK_RETURN_IF_ERROR(kb.AddCondEquivalence(
        "E2", "d", "Document", "d.title == s",
        "d IS-IN Document->select_by_index(s)"));
  }
  if (want("E3")) {
    VODAK_RETURN_IF_ERROR(kb.AddCondEquivalence(
        "E3", "p", "Paragraph", "p.section.document IS-IN D",
        "p.section IS-IN D.sections"));
  }
  if (want("E4")) {
    VODAK_RETURN_IF_ERROR(kb.AddCondEquivalence(
        "E4", "p", "Paragraph", "p.section IS-IN S",
        "p IS-IN S.paragraphs"));
  }
  if (want("E5")) {
    VODAK_RETURN_IF_ERROR(kb.AddQueryMethodEquivalence(
        "E5", "ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
        "Paragraph->retrieve_by_string(s)", {"s"}));
  }
  if (want("LARGE")) {
    VODAK_RETURN_IF_ERROR(kb.AddCondImplication(
        "LARGE", "p", "Paragraph",
        "p->wordCount() > " +
            std::to_string(params.large_paragraph_threshold),
        "p IS-IN (p->document()).largeParagraphs"));
  }
  return Status::OK();
}

void InstallStatsProviders(engine::Database* session, DocumentDb* db) {
  const CorpusParams& params = db->params();
  double paragraphs_per_doc =
      static_cast<double>(params.sections_per_document) *
      params.paragraphs_per_section;
  double num_paragraphs =
      static_cast<double>(params.num_documents) * paragraphs_per_doc;

  session->AddStatsProvider(
      [db, params, paragraphs_per_doc, num_paragraphs](
          const std::string& class_name, const std::string& method,
          MethodLevel level,
          const std::vector<ExprRef>& args) -> std::optional<opt::MethodStats> {
        // Property fanouts (corpus shape).
        if (class_name == "$property") {
          if (method == "sections") {
            return opt::MethodStats{
                1.0, 0.5,
                static_cast<double>(params.sections_per_document)};
          }
          if (method == "paragraphs") {
            return opt::MethodStats{
                1.0, 0.5,
                static_cast<double>(params.paragraphs_per_section)};
          }
          if (method == "largeParagraphs") {
            return opt::MethodStats{
                1.0, 0.5,
                params.large_paragraph_fraction * paragraphs_per_doc};
          }
          return std::nullopt;
        }
        // Document-frequency-driven statistics for the IR methods when
        // the search string is a constant.
        auto const_string =
            [&args]() -> std::optional<std::string> {
          if (args.size() == 1 && args[0]->kind() == ExprKind::kConst &&
              args[0]->value().is_string()) {
            return args[0]->value().AsString();
          }
          return std::nullopt;
        };
        if (method == "contains_string" &&
            level == MethodLevel::kInstance) {
          auto s = const_string();
          if (!s.has_value()) return std::nullopt;
          double df = 0.0;
          bool first = true;
          for (const std::string& token : TokenizeWords(*s)) {
            double token_df = static_cast<double>(
                db->paragraph_index().DocumentFrequency(token));
            df = first ? token_df : std::min(df, token_df);
            first = false;
          }
          double selectivity =
              num_paragraphs > 0 ? df / num_paragraphs : 0.1;
          // Marginal per-row body tokenization; the batch dispatch pays
          // the column read + query tokenization once per batch.
          return opt::MethodStats{
              static_cast<double>(params.words_per_paragraph),
              selectivity, 1.0, 3.0};
        }
        if (method == "retrieve_by_string" &&
            level == MethodLevel::kClassObject) {
          auto s = const_string();
          if (!s.has_value()) return std::nullopt;
          double df = 0.0;
          bool first = true;
          for (const std::string& token : TokenizeWords(*s)) {
            double token_df = static_cast<double>(
                db->paragraph_index().DocumentFrequency(token));
            df = first ? token_df : std::min(df, token_df);
            first = false;
          }
          // The postings intersection is per-batch setup under the
          // set-at-a-time ABI; rows merely share the probed set.
          return opt::MethodStats{1.0, 0.5, df, 20.0 + df};
        }
        if (method == "select_by_index" &&
            level == MethodLevel::kClassObject) {
          auto s = const_string();
          if (!s.has_value()) return std::nullopt;
          double hits = static_cast<double>(
              db->title_index().Lookup(*s).size());
          return opt::MethodStats{1.0, 0.5, hits, 10.0};
        }
        if (method == "paragraphs" && level == MethodLevel::kInstance) {
          // Document::paragraphs() (distinct from the Section property,
          // which is routed through "$property" above).
          return opt::MethodStats{
              2.0 * params.sections_per_document, 0.5, paragraphs_per_doc};
        }
        return std::nullopt;
      });
}

Result<std::unique_ptr<engine::Database>> MakePaperSession(
    DocumentDb* db, const std::set<std::string>& only,
    opt::OptimizerOptions options) {
  auto session = std::make_unique<engine::Database>(
      &db->catalog(), &db->store(), &db->methods());
  VODAK_RETURN_IF_ERROR(
      RegisterPaperKnowledge(session.get(), db->params(), only));
  InstallStatsProviders(session.get(), db);
  VODAK_RETURN_IF_ERROR(session->GenerateOptimizer(options));
  return session;
}

}  // namespace workload
}  // namespace vodak
