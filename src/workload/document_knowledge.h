#ifndef VODAK_WORKLOAD_DOCUMENT_KNOWLEDGE_H_
#define VODAK_WORKLOAD_DOCUMENT_KNOWLEDGE_H_

#include <set>
#include <string>

#include "engine/database.h"
#include "workload/document_db.h"

namespace vodak {
namespace workload {

/// Registers the paper's Example 4 equivalences on a Database session:
///
///   E1: p→document() ≡ p.section.document          (path method)
///   E2: d.title == s ⇔ d IS-IN
///         Document→select_by_index(s)               (index method)
///   E3: p.section.document IS-IN D ⇔
///         p.section IS-IN D.sections                (inverse link)
///   E4: p.section IS-IN S ⇔ p IS-IN S.paragraphs   (inverse link)
///   E5: ACCESS p FROM p IN Paragraph WHERE
///         p→contains_string(s)
///         ≡ Paragraph→retrieve_by_string(s)         (query ≡ method)
///
/// plus the §4.2 implication example:
///
///   LARGE: p→wordCount() > threshold ⇒
///            p IS-IN (p→document()).largeParagraphs
///
/// `only` restricts registration to a subset of {"E1".."E5","LARGE"}
/// (used by the ablation benchmark); empty means all.
Status RegisterPaperKnowledge(engine::Database* session,
                              const CorpusParams& params,
                              const std::set<std::string>& only = {});

/// Installs the corpus-calibrated statistics providers on the session:
/// document frequencies from the inverted index drive
/// contains_string / retrieve_by_string selectivity and fanout, the
/// title index drives select_by_index, and the corpus shape drives the
/// property fanouts (sections, paragraphs, largeParagraphs).
void InstallStatsProviders(engine::Database* session, DocumentDb* db);

/// Convenience: builds a fully wired session (knowledge + statistics +
/// generated optimizer) over an initialized and populated DocumentDb.
Result<std::unique_ptr<engine::Database>> MakePaperSession(
    DocumentDb* db, const std::set<std::string>& only = {},
    opt::OptimizerOptions options = {});

}  // namespace workload
}  // namespace vodak

#endif  // VODAK_WORKLOAD_DOCUMENT_KNOWLEDGE_H_
