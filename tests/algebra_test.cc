#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/logical.h"
#include "algebra/translate.h"
#include "vql/interpreter.h"
#include "vql/parser.h"
#include "workload/document_db.h"

namespace vodak {
namespace algebra {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Init().ok());
    workload::CorpusParams params;
    params.num_documents = 5;
    params.sections_per_document = 2;
    params.paragraphs_per_section = 2;
    params.implementation_fraction = 0.3;
    ASSERT_TRUE(db_.Populate(params).ok());
    ctx_ = std::make_unique<AlgebraContext>(&db_.catalog());
    eval_ = std::make_unique<ExprEvaluator>(&db_.catalog(), &db_.store(),
                                            &db_.methods());
  }

  /// Parses, binds and translates a VQL query.
  LogicalRef Translate(const std::string& text) {
    auto q = vql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    vql::Binder binder(&db_.catalog());
    auto bound = binder.Bind(q.value());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto plan = TranslateQuery(*ctx_, bound.value());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.value();
  }

  workload::DocumentDb db_;
  std::unique_ptr<AlgebraContext> ctx_;
  std::unique_ptr<ExprEvaluator> eval_;
};

TEST_F(AlgebraTest, GetProducesExtentTuples) {
  auto get = ctx_->Get("d", "Document");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value()->schema().at("d")->ToString(), "Document");
  Value result = EvalLogical(get.value(), *eval_).value();
  EXPECT_EQ(result.AsSet().size(), 5u);
  EXPECT_TRUE(result.AsSet()[0].GetField("d").value().is_oid());
}

TEST_F(AlgebraTest, GetUnknownClassFails) {
  EXPECT_FALSE(ctx_->Get("x", "Nope").ok());
}

TEST_F(AlgebraTest, SelectFilters) {
  auto get = ctx_->Get("d", "Document").value();
  auto cond = vql::ParseExpr("d.title == 'Query Optimization'").value();
  auto sel = ctx_->Select(cond, get);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  Value result = EvalLogical(sel.value(), *eval_).value();
  EXPECT_EQ(result.AsSet().size(), 1u);
}

TEST_F(AlgebraTest, SelectTypeChecked) {
  auto get = ctx_->Get("d", "Document").value();
  EXPECT_FALSE(ctx_->Select(vql::ParseExpr("d.title").value(), get).ok());
  EXPECT_FALSE(ctx_->Select(vql::ParseExpr("x.title == 'a'").value(), get)
                   .ok());
}

TEST_F(AlgebraTest, MapExtendsSchema) {
  auto get = ctx_->Get("p", "Paragraph").value();
  auto map =
      ctx_->Map("n", vql::ParseExpr("p.number").value(), get);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value()->schema().size(), 2u);
  EXPECT_EQ(map.value()->schema().at("n")->kind(), TypeKind::kInt);
  Value rows = EvalLogical(map.value(), *eval_).value();
  for (const Value& row : rows.AsSet()) {
    EXPECT_TRUE(row.GetField("n").value().is_int());
  }
}

TEST_F(AlgebraTest, MapRejectsDuplicateRef) {
  auto get = ctx_->Get("p", "Paragraph").value();
  EXPECT_FALSE(
      ctx_->Map("p", vql::ParseExpr("p.number").value(), get).ok());
}

TEST_F(AlgebraTest, FlatUnnestsSetValues) {
  auto get = ctx_->Get("d", "Document").value();
  auto flat =
      ctx_->Flat("s", vql::ParseExpr("d.sections").value(), get);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value()->schema().at("s")->ToString(), "Section");
  Value rows = EvalLogical(flat.value(), *eval_).value();
  EXPECT_EQ(rows.AsSet().size(), 5u * 2u);
}

TEST_F(AlgebraTest, FlatRejectsScalarExpression) {
  auto get = ctx_->Get("d", "Document").value();
  EXPECT_FALSE(
      ctx_->Flat("t", vql::ParseExpr("d.title").value(), get).ok());
}

TEST_F(AlgebraTest, JoinConditionSpansInputs) {
  auto docs = ctx_->Get("d", "Document").value();
  auto secs = ctx_->Get("s", "Section").value();
  auto join =
      ctx_->Join(vql::ParseExpr("s.document == d").value(), docs, secs);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  Value rows = EvalLogical(join.value(), *eval_).value();
  EXPECT_EQ(rows.AsSet().size(), 5u * 2u);  // each section matches its doc
}

TEST_F(AlgebraTest, JoinRejectsSharedRefs) {
  auto a = ctx_->Get("d", "Document").value();
  auto b = ctx_->Get("d", "Document").value();
  EXPECT_FALSE(
      ctx_->Join(Expr::Const(Value::Bool(true)), a, b).ok());
}

TEST_F(AlgebraTest, NaturalJoinIntersectsOnSharedRefs) {
  auto all = ctx_->Get("p", "Paragraph").value();
  auto some = ctx_->ExprSource(
      "p",
      vql::ParseExpr("Paragraph->retrieve_by_string('implementation')")
          .value());
  ASSERT_TRUE(some.ok()) << some.status().ToString();
  auto nj = ctx_->NaturalJoin(all, some.value());
  ASSERT_TRUE(nj.ok());
  Value rows = EvalLogical(nj.value(), *eval_).value();
  Value direct = EvalLogical(some.value(), *eval_).value();
  EXPECT_EQ(rows, direct);  // join with the full extent adds nothing
}

TEST_F(AlgebraTest, NaturalJoinRequiresSharedRef) {
  auto docs = ctx_->Get("d", "Document").value();
  auto secs = ctx_->Get("s", "Section").value();
  EXPECT_FALSE(ctx_->NaturalJoin(docs, secs).ok());
}

TEST_F(AlgebraTest, ExprSourceMustBeClosedAndSetValued) {
  EXPECT_FALSE(
      ctx_->ExprSource("p", vql::ParseExpr("d.sections").value()).ok());
  EXPECT_FALSE(ctx_->ExprSource("p", vql::ParseExpr("1 + 2").value()).ok());
}

TEST_F(AlgebraTest, UnionDiffRequireSameSchema) {
  auto a = ctx_->Get("d", "Document").value();
  auto b = ctx_->Get("e", "Document").value();
  EXPECT_FALSE(ctx_->Union(a, b).ok());
  EXPECT_FALSE(ctx_->Diff(a, b).ok());
  auto a2 = ctx_->Get("d", "Document").value();
  auto u = ctx_->Union(a, a2);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(EvalLogical(u.value(), *eval_).value().AsSet().size(), 5u);
  auto d = ctx_->Diff(a, a2);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(EvalLogical(d.value(), *eval_).value().AsSet().empty());
}

TEST_F(AlgebraTest, ProjectDedups) {
  auto get = ctx_->Get("p", "Paragraph").value();
  auto map = ctx_->Map("n", vql::ParseExpr("p.number").value(), get).value();
  auto proj = ctx_->Project({"n"}, map);
  ASSERT_TRUE(proj.ok());
  // Paragraph numbers are 0..1 per section; distinct values only.
  Value rows = EvalLogical(proj.value(), *eval_).value();
  EXPECT_EQ(rows.AsSet().size(), 2u);
}

TEST_F(AlgebraTest, ProjectValidatesRefs) {
  auto get = ctx_->Get("p", "Paragraph").value();
  EXPECT_FALSE(ctx_->Project({"ghost"}, get).ok());
  EXPECT_FALSE(ctx_->Project({}, get).ok());
}

TEST_F(AlgebraTest, HashingAndEquality) {
  auto a = ctx_->Get("p", "Paragraph").value();
  auto b = ctx_->Get("p", "Paragraph").value();
  auto c = ctx_->Get("q", "Paragraph").value();
  EXPECT_TRUE(LogicalNode::Equals(a, b));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(LogicalNode::Equals(a, c));

  auto cond = vql::ParseExpr("p.number == 1").value();
  auto s1 = ctx_->Select(cond, a).value();
  auto s2 = ctx_->Select(cond, b).value();
  EXPECT_TRUE(LogicalNode::Equals(s1, s2));
  EXPECT_EQ(s1->Hash(), s2->Hash());
}

TEST_F(AlgebraTest, WithInputsRebuilds) {
  auto get_p = ctx_->Get("p", "Paragraph").value();
  auto sel =
      ctx_->Select(vql::ParseExpr("p.number == 0").value(), get_p).value();
  // Swap in a different input with the same schema.
  auto source = ctx_->ExprSource(
      "p", vql::ParseExpr(
               "Paragraph->retrieve_by_string('implementation')")
               .value())
                    .value();
  auto rebuilt = ctx_->WithInputs(*sel, {source});
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt.value()->op(), LogicalOp::kSelect);
  EXPECT_EQ(rebuilt.value()->input(0)->op(), LogicalOp::kExprSource);
}

TEST_F(AlgebraTest, TranslationShapeFollowsSection41) {
  LogicalRef plan = Translate(
      "ACCESS p FROM p IN Paragraph "
      "WHERE p->contains_string('implementation')");
  // project<p>(select<...>(get<p, Paragraph>)).
  EXPECT_EQ(plan->op(), LogicalOp::kProject);
  EXPECT_EQ(plan->input(0)->op(), LogicalOp::kSelect);
  EXPECT_EQ(plan->input(0)->input(0)->op(), LogicalOp::kGet);
}

TEST_F(AlgebraTest, TranslationBuildsCrossProductsForMultipleRanges) {
  LogicalRef plan = Translate(
      "ACCESS [a: p.number, b: q.number] "
      "FROM p IN Paragraph, q IN Paragraph WHERE p->sameDocument(q)");
  EXPECT_EQ(plan->op(), LogicalOp::kProject);
  EXPECT_EQ(plan->input(0)->op(), LogicalOp::kMap);
  EXPECT_EQ(plan->input(0)->input(0)->op(), LogicalOp::kSelect);
  EXPECT_EQ(plan->input(0)->input(0)->input(0)->op(), LogicalOp::kJoin);
}

TEST_F(AlgebraTest, TranslationUsesFlatForDependentRanges) {
  LogicalRef plan = Translate(
      "ACCESS d.title FROM d IN Document, p IN d->paragraphs()");
  EXPECT_EQ(plan->op(), LogicalOp::kProject);
  EXPECT_EQ(plan->input(0)->op(), LogicalOp::kMap);
  EXPECT_EQ(plan->input(0)->input(0)->op(), LogicalOp::kFlat);
}

TEST_F(AlgebraTest, TranslatedPlansMatchInterpreter) {
  const std::vector<std::string> queries = {
      "ACCESS p FROM p IN Paragraph",
      "ACCESS d.title FROM d IN Document",
      "ACCESS p FROM p IN Paragraph WHERE "
      "p->contains_string('implementation')",
      "ACCESS [a: p.number] FROM p IN Paragraph WHERE p.number == 0",
      "ACCESS d.title FROM d IN Document, p IN d->paragraphs() "
      "WHERE p->contains_string('implementation')",
      "ACCESS [p: p.number, q: q.number] FROM p IN Paragraph, "
      "q IN Paragraph WHERE p->sameDocument(q)",
      "ACCESS p FROM p IN Paragraph WHERE "
      "p->contains_string('implementation') AND "
      "(p->document()).title == 'Query Optimization'",
  };
  vql::Binder binder(&db_.catalog());
  vql::Interpreter interp(&db_.catalog(), &db_.store(), &db_.methods());
  for (const auto& text : queries) {
    auto q = vql::ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    auto bound = binder.Bind(q.value());
    ASSERT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
    auto plan = TranslateQuery(*ctx_, bound.value());
    ASSERT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    auto expected = interp.Run(bound.value());
    ASSERT_TRUE(expected.ok()) << text;
    auto actual = EvalLogicalColumn(plan.value(),
                                    ResultRef(bound.value()), *eval_);
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    EXPECT_EQ(actual.value(), expected.value()) << text;
  }
}

TEST_F(AlgebraTest, TreePrinting) {
  LogicalRef plan = Translate(
      "ACCESS p FROM p IN Paragraph WHERE p.number == 0");
  std::string tree = plan->ToTreeString();
  EXPECT_NE(tree.find("project<p>"), std::string::npos);
  EXPECT_NE(tree.find("select<"), std::string::npos);
  EXPECT_NE(tree.find("get<p, Paragraph>"), std::string::npos);
}

}  // namespace
}  // namespace algebra
}  // namespace vodak
