#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace vodak {
namespace {

TEST(StatusTest, OkIsOk) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  VODAK_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(5).value(), 10);
  EXPECT_FALSE(Doubled(-5).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler z(10, 0.0, 123);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[z.Next()];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, SkewedWhenThetaLarge) {
  ZipfSampler z(100, 1.2, 123);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) ++counts[z.Next()];
  // Rank 0 should dominate rank 50.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
}

TEST(StringUtilTest, TokenizeWords) {
  EXPECT_EQ(TokenizeWords("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(TokenizeWords(""), std::vector<std::string>{});
  EXPECT_EQ(TokenizeWords("a1 b2-c3"),
            (std::vector<std::string>{"a1", "b2", "c3"}));
}

TEST(StringUtilTest, ContainsSubstring) {
  EXPECT_TRUE(ContainsSubstring("query optimization", "optim"));
  EXPECT_FALSE(ContainsSubstring("query", "quarry"));
}

TEST(StringUtilTest, HashStable) {
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
}

TEST(StringUtilTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace vodak
